from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description="FreeRide reproduction: harvesting bubbles in pipeline "
                "parallelism, with a declarative scenario/session API",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            # legacy name, kept for one release (forwards through the
            # same registry-backed CLI)
            "freeride = repro.cli:main",
        ],
    },
)
