from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description="FreeRide reproduction: harvesting bubbles in pipeline "
                "parallelism, with a declarative scenario/session API "
                "and a multi-job cluster layer",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
