"""Distributed-sweep walkthrough: the durable queue end to end.

The process-pool executor parallelizes a sweep inside one process tree;
the queue backend makes the sweep *durable*: every point is a row in a
SQLite task store, any number of ``repro worker`` processes (shells,
machines on a shared filesystem) lease points with a visibility
timeout, and crashed attempts are reaped back into the queue until the
attempt cap turns a poison point DEAD. Aggregated results are
byte-identical to the serial executor — ordered by point index, never
by completion time.

This example drives the whole lifecycle in one process, with an
injected clock instead of wall-time sleeps:

1. enqueue a sweep and inspect its PENDING rows;
2. drain it with a worker (after a "crashed" worker's lease is reaped);
3. re-submit the identical sweep and watch it resume — every point is
   already DONE, so the second run aggregates instantly;
4. aggregate and compare against the serial map.

The two-terminal version of the same flow::

    # terminal 1 — start a worker (it waits for work)
    PYTHONPATH=src python -m repro.cli worker runs/queue.db

    # terminal 2 — enqueue the serve sweep and collect
    PYTHONPATH=src python -m repro.cli sweep serve --backend=queue \
        --db runs/queue.db --export artifacts/

Run with::

    PYTHONPATH=src python examples/distributed_sweep.py
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.distrib import Broker, TaskStore, Worker
from repro.obs.telemetry import Telemetry


def simulate(x):
    """A stand-in point function (module-level, like every real one)."""
    return {"x": x, "latency_ms": 10.0 + 3.0 * x, "ok": x % 2 == 0}


class Clock:
    """Scripted wall time: lease expiry without actually waiting."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def main() -> None:
    clock = Clock()
    with tempfile.TemporaryDirectory() as scratch:
        db = os.path.join(scratch, "queue.db")
        items = list(range(5))

        # -- 1. enqueue ------------------------------------------------
        with TaskStore(db) as store:
            broker = Broker(store, lease_timeout_s=30.0, clock=clock)
            sweep_id, resumed = broker.submit(items, simulate)
            print(f"enqueued sweep {sweep_id} (resumed={resumed}): "
                  f"{broker.counts(sweep_id)['PENDING']} PENDING points")

            # -- 2. a worker crashes; another drains -------------------
            ghost = broker.lease("ghost-worker")
            print(f"ghost worker leased point #{ghost.point_index} "
                  "and died without reporting")
            clock.now += 31.0  # the ghost's lease expires

            telemetry = Telemetry()
            stats = Worker(store, worker_id="survivor", clock=clock,
                           sleep=lambda seconds: None,
                           telemetry=telemetry).run()
            print(f"survivor: {stats.summary()}")
            print(f"telemetry: {telemetry.snapshot()['counters']}")

            # -- 3. identical re-submit resumes ------------------------
            again, resumed = broker.submit(items, simulate)
            print(f"re-submit of the same grid: sweep {again} "
                  f"resumed={resumed}, counts={broker.counts(again)}")

            # -- 4. aggregate: byte-identical to the serial map --------
            results, events = broker.aggregate(sweep_id)
            serial = [simulate(x) for x in items]
            identical = json.dumps(results) == json.dumps(serial)
            print(f"aggregate: {len(results)} results, "
                  f"byte-identical to serial: {identical}")
            assert identical

            reaped_point = store.points(sweep_id)[ghost.point_index]
            print(f"point #{ghost.point_index}: "
                  f"attempts={reaped_point['attempts']}, "
                  f"lease_expiries={reaped_point['lease_expiries']} "
                  "(the crash burned an attempt; the retry finished it)")


if __name__ == "__main__":
    main()
