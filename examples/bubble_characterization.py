"""Characterize pipeline bubbles, as in section 2.2 of the paper.

Trains three model sizes on the simulated 4-GPU server and reports what
the paper's characterization study found:

* bubbles follow the 1F1B dependency structure — Type A at epoch edges,
  Type B waiting for the first backward, Type C from FP/BP misalignment;
* the bubble rate is about 42% and barely moves with model size, but
  drops sharply with more micro-batches;
* available GPU memory rises from stage 0 to stage 3 and shrinks as the
  model grows.

Run with::

    python examples/bubble_characterization.py
"""

from __future__ import annotations

from repro.gpu.cluster import make_server_i
from repro.metrics.traces import trace_summary
from repro.pipeline.analysis import BubbleType, bubble_rate
from repro.pipeline.config import TrainConfig, model_config
from repro.pipeline.engine import PipelineEngine
from repro.sim.engine import Engine


def characterize(size: str, micro_batches: int = 4) -> dict:
    config = TrainConfig(
        model=model_config(size),
        micro_batches=micro_batches,
        epochs=4,
        op_jitter=0.01,
    )
    sim = Engine()
    engine = PipelineEngine(sim, make_server_i(sim), config)
    result = engine.run()
    return {
        "trace": result.trace,
        "memory": engine.memory,
        "summary": trace_summary(result.trace),
    }


def main() -> None:
    print("model  mb  epoch(s)  bubble rate  duration range (s)")
    for size in ("1.2B", "3.6B", "6B"):
        summary = characterize(size)["summary"]
        low, high = summary["bubble_duration_range_s"]
        print(f"{size:>5s}   4  {summary['mean_epoch_time_s']:7.2f}  "
              f"{100 * summary['bubble_rate']:10.1f}%  "
              f"{low:.2f} - {high:.2f}")
    eight = characterize("3.6B", micro_batches=8)["summary"]
    print(f" 3.6B   8  {eight['mean_epoch_time_s']:7.2f}  "
          f"{100 * eight['bubble_rate']:10.1f}%   (paper: 26.2%)")

    print("\n3.6B bubble taxonomy (one epoch, per stage):")
    data = characterize("3.6B")
    trace, memory = data["trace"], data["memory"]
    for stage in range(4):
        bubbles = sorted(trace.bubbles_of(stage=stage, epoch=0),
                         key=lambda b: b.start)
        pattern = " ".join(
            f"{b.btype.value}({b.duration:.2f}s)" for b in bubbles
        )
        print(f"  stage {stage}: {pattern}")
        print(f"           available GPU memory: "
              f"{memory.available_gb(stage):.1f} GB")

    counts = {
        btype.value: len(trace.bubbles_of(btype=btype))
        for btype in BubbleType
    }
    print(f"\nbubble counts over 4 epochs: {counts}")
    print(f"overall bubble rate: {100 * bubble_rate(trace):.1f}% "
          "(paper: 42.4%)")


if __name__ == "__main__":
    main()
