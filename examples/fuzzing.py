"""Fuzz the spec language: seeded scenarios, invariants, and shrinking.

The fuzz layer (``src/repro/fuzz/``) turns the declarative
``ScenarioSpec`` language into a test generator.  This example walks the
three pieces the ``repro fuzz`` CLI verb composes:

* the seeded generator — every drawn spec is a pure function of one
  integer, byte-identical across processes;
* the invariant registry + equivalence frames — global properties that
  must hold for every valid scenario, plus differential re-runs
  (pool-vs-serial, heap-vs-calendar, ...) that must agree bit-for-bit;
* the shrinker — given a failing predicate, bisect the spec toward the
  minimal repro you would commit to the corpus.

Run with::

    python examples/fuzzing.py
"""

from __future__ import annotations

from repro.fuzz import (
    INVARIANTS,
    draw_spec,
    fuzz_many,
    run_case,
    shrink,
)


def show_generator() -> None:
    print("== seeded generator ==")
    for seed in range(4):
        spec = draw_spec(seed)
        knobs = [spec.kind]
        if spec.tenants:
            knobs.append("tenants")
        if spec.faults is not None:
            knobs.append("faults")
        if spec.metrics is not None and spec.metrics.mode == "streaming":
            knobs.append("streaming")
        print(f"  seed {seed}: {' + '.join(knobs)}")
    again = draw_spec(0)
    assert again.to_json() == draw_spec(0).to_json()
    print("  seed 0 redrawn: byte-identical")


def show_one_case() -> None:
    print("\n== one case under every invariant and frame ==")
    spec = draw_spec(1)
    case = run_case(spec)
    print(f"  kind={spec.kind} ok={case.ok}")
    print(f"  invariants checked: {len(INVARIANTS)}")
    print(f"  frames run: {', '.join(case.frames_run)}")
    assert case.ok, case.describe_failure()


def show_campaign() -> None:
    print("\n== a small campaign (what `repro fuzz` runs) ==")
    report = fuzz_many(0, 8, frame_budget=1)
    print("  " + report.render().splitlines()[-1])
    assert report.ok


def show_shrinking() -> None:
    print("\n== shrinking a failure to a minimal repro ==")
    # stand-in for a real bug: "any armed crash_rate misbehaves"
    for seed in range(200):
        spec = draw_spec(seed)
        if spec.faults is not None and spec.faults.crash_rate > 0:
            break
    predicate = lambda s: s.faults is not None and s.faults.crash_rate > 0
    small = shrink(spec, predicate)
    print(f"  original spec: {len(spec.to_json())} bytes "
          f"(seed {seed}, kind {spec.kind})")
    print(f"  shrunk spec:   {len(small.to_json())} bytes")
    print(f"  kept the trigger: crash_rate={small.faults.crash_rate}")
    assert small.tenants == () or small.tenants == 0 or not small.tenants


def main() -> None:
    show_generator()
    show_one_case()
    show_campaign()
    show_shrinking()
    print("\nDeeper runs: repro fuzz --seed 0 --count 500 "
          "--corpus artifacts/fuzz-corpus")


if __name__ == "__main__":
    main()
