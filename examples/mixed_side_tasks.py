"""The paper's mixed workload (section 6.2).

Four different side tasks — PageRank, ResNet18, Image processing, and
VGG19 — each landing on the worker of one pipeline stage, exactly as in
the paper ("each in one worker corresponding to the GPU of stages 0-3").
Prints per-task harvest, the Figure-9-style bubble breakdown, and the
headline I / S metrics (paper: 1.1% / 10.1%).

Run with::

    python examples/mixed_side_tasks.py
"""

from __future__ import annotations

from repro import calibration
from repro.core.middleware import FreeRide
from repro.experiments.common import baseline_time
from repro.metrics.breakdown import bubble_breakdown
from repro.metrics.cost import cost_savings, time_increase
from repro.pipeline.config import TrainConfig, model_config
from repro.workloads.registry import workload_factory


def main() -> None:
    config = TrainConfig(model=model_config("3.6B"), epochs=8, op_jitter=0.01)
    freeride = FreeRide(config)

    for name in calibration.MIXED_WORKLOAD_BY_STAGE:
        spec = freeride.submit(workload_factory(name), name=name)
        assert spec is not None, f"{name} was rejected"

    result = freeride.run()

    print("mixed workload placement and harvest:")
    for report in result.tasks:
        print(f"  stage {report.stage}: {report.name:<10s} "
              f"{report.steps_done:6d} steps, {report.units_done:9.0f} units, "
              f"running {report.running_s:6.1f}s")

    t_no = baseline_time(config)
    work = [
        (report.units_done,
         calibration.SIDE_TASK_PROFILES[
             calibration.MIXED_WORKLOAD_BY_STAGE[report.stage]])
        for report in result.tasks
    ]
    increase = time_increase(result.training.total_time, t_no)
    savings = cost_savings(t_no, result.training.total_time, work)
    print(f"\ntime increase I : {100 * increase:.2f}%  (paper: 1.1%)")
    print(f"cost savings S  : {100 * savings:.2f}%  (paper: 10.1%)")

    breakdown = bubble_breakdown(result)
    print("\nbubble time breakdown (Figure 9 'Mixed' bar):")
    for bucket, fraction in breakdown.fractions().items():
        print(f"  {bucket:18s} {100 * fraction:5.1f}%")


if __name__ == "__main__":
    main()
