"""Scalability extension (paper section 8): one manager, two servers.

Two independent pipeline-training jobs — a 3.6B model and a 1.2B model —
each on its own simulated 4-GPU server, report their bubbles to a single
shared side-task manager, which spreads eight PageRank side tasks across
the combined worker pool.

Run with::

    python examples/multi_server.py
"""

from __future__ import annotations

from repro.extensions.multi_server import MultiServerFreeRide
from repro.pipeline.config import TrainConfig, model_config
from repro.workloads.registry import workload_factory


def main() -> None:
    configs = [
        TrainConfig(model=model_config("3.6B"), epochs=6, op_jitter=0.01),
        TrainConfig(model=model_config("1.2B"), epochs=6, op_jitter=0.01,
                    seed=1),
    ]
    deployment = MultiServerFreeRide(configs)
    accepted = sum(
        1 for _ in range(8)
        if deployment.submit(workload_factory("pagerank")) is not None
    )
    print(f"submitted {accepted} PageRank tasks across "
          f"{len(deployment.workers)} workers on {len(configs)} servers")

    result = deployment.run()

    for job, training in enumerate(result.trainings):
        print(f"job {job} ({configs[job].model.name}): "
              f"{training.total_time:.1f}s over "
              f"{len(training.trace.epochs)} epochs")
    print("\nper-worker harvest:")
    for report in sorted(result.tasks, key=lambda r: r.stage):
        job, stage = divmod(report.stage, 4)
        print(f"  job {job} stage {stage}: {report.steps_done:6d} PageRank "
              f"iterations, running {report.running_s:5.1f}s, "
              f"state {report.final_state.value}")
    print(f"\ntotal harvested iterations: {result.total_units:.0f}")


if __name__ == "__main__":
    main()
