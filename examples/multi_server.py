"""Scalability extension (paper section 8): one manager, two servers.

Two independent pipeline-training jobs — a 3.6B model and a 1.2B model —
each on its own simulated 4-GPU server, report their bubbles to a single
shared side-task manager, which spreads eight PageRank side tasks across
the combined worker pool.

This is the programmatic :class:`~repro.cluster.ClusterBuilder` route;
see ``examples/cluster_session.py`` for the declarative spec/Session
version of the same deployment, and ``repro run cluster`` for the swept
experiment.

Run with::

    PYTHONPATH=src python examples/multi_server.py
"""

from __future__ import annotations

from repro.cluster import ClusterBuilder
from repro.pipeline.config import TrainConfig, model_config
from repro.workloads.registry import workload_factory


def main() -> None:
    cluster = (
        ClusterBuilder()
        .add_job(TrainConfig(model=model_config("3.6B"), epochs=6,
                             op_jitter=0.01))
        .add_job(TrainConfig(model=model_config("1.2B"), epochs=6,
                             op_jitter=0.01, seed=1), name="small")
        .build()
    )
    accepted = sum(
        1 for _ in range(8)
        if cluster.submit(workload_factory("pagerank")) is not None
    )
    print(f"submitted {accepted} PageRank tasks across "
          f"{len(cluster.workers)} workers on {cluster.num_jobs} servers")

    result = cluster.run()

    for job in result.jobs:
        print(f"{job.name}: {job.training.total_time:.1f}s over "
              f"{len(job.training.trace.epochs)} epochs, "
              f"{job.utilization:.0%} bubble utilization")
    print("\nper-worker harvest:")
    for report in sorted(result.tasks, key=lambda r: r.stage):
        job_index, stage = cluster.job_of_worker(report.stage)
        print(f"  job {job_index} stage {stage}: {report.steps_done:6d} "
              f"PageRank iterations, running {report.running_s:5.1f}s, "
              f"state {report.final_state.value}")
    print(f"\ntotal harvested iterations: {result.total_units:.0f}")


if __name__ == "__main__":
    main()
