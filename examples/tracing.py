"""Observability walkthrough: trace a faulty serving run end to end.

Aggregate metrics tell you a deadline was missed; a trace tells you
*why*. This example runs one serving scenario with a scripted
mid-request worker crash and ``obs.trace`` on, then walks the
resulting spans: the request's queue/service intervals, the crash
instant, the retry, and the side task's state-machine transitions —
and finally writes the whole thing as Chrome trace-event JSON you can
drop into Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Tracing never changes the run: span emission appends to a list and
reads the virtual clock, consuming no RNG — the same scenario with
``obs.trace`` off produces byte-identical records (a golden-hash test
pins this). The CLI shorthand for everything below is::

    repro trace serve

Run with::

    PYTHONPATH=src python examples/tracing.py
"""

from __future__ import annotations

import os
import tempfile

from repro.api import ScenarioSpec, Session
from repro.serving.arrivals import RequestTemplate, TraceArrivals

#: every stage crashes at t=1.0s — wherever the request landed, its
#: worker dies under it, forcing a retry the trace will show
CRASHES = [{"stage": stage, "at_s": 1.0, "restart_after_s": 2.0}
           for stage in range(4)]


def main() -> None:
    spec = ScenarioSpec.from_dict({
        "name": "tracing-walkthrough",
        "kind": "serving",
        "training": {"epochs": 3},
        "faults": {"crashes": CRASHES, "retry_max_attempts": 3},
        "obs": {"trace": True},
        "params": {"horizon_s": 60.0, "settle_s": 2.0},
    })
    arrivals = TraceArrivals(
        [(0.5, RequestTemplate("pagerank", job_steps=400,
                               slo_class="standard"))],
        seed=0,
    )
    with Session(spec, arrivals=arrivals) as session:
        result = session.run().results()

    trace = result.trace
    record = result.records[0]
    print(f"request outcome={record.outcome} after "
          f"{record.attempts} attempts; {trace.span_count} trace events\n")

    print("the request's story, straight from the spans:")
    for ph, name, cat, track, ts, dur, args in trace.events:
        if cat.startswith("serving.") or cat == "fault":
            when = (f"[{ts:7.3f}s +{dur:.3f}s]" if dur is not None
                    else f"[{ts:7.3f}s        ]")
            where = f"{track[0]}/{track[1]}"
            print(f"  {when} {cat:<18s} {name:<12s} on {where}")

    print("\ntelemetry counters:", trace.telemetry["counters"])

    out = os.path.join(tempfile.gettempdir(), "tracing_example_trace.json")
    trace.write_chrome(out)
    print(f"\nwrote {out} - load it in Perfetto (ui.perfetto.dev) or "
          "chrome://tracing:\none track per worker stage/tenant, the "
          "crash as an instant event, queue and\nservice intervals as "
          "spans, and counter tracks from the telemetry timelines.")


if __name__ == "__main__":
    main()
