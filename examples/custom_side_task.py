"""Implementing your own side task against the FreeRide interfaces.

Mirrors the paper's Figure 6: port a GPU workload by overriding the four
iterative-interface hooks — ``create_side_task`` (host context),
``init_side_task`` (GPU context), ``compute_step`` (the work inside
``run_next_step``), ``stop_side_task`` (cleanup). FreeRide handles
profiling, placement, pausing and resuming; the task never sees a bubble.

The example task estimates pi by Monte Carlo, one batch of samples per
step — small, repetitive steps, exactly the structure the iterative
interface wants. The same compute core is then run through the
*imperative* interface via the adapter, as the paper does for all its
workloads.

Run with::

    python examples/custom_side_task.py
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro import calibration
from repro.core.interfaces import IterativeSideTask
from repro.core.middleware import FreeRide
from repro.pipeline.config import TrainConfig, model_config
from repro.workloads.adapters import ImperativeAdapter


#: How the task behaves on the simulated GPU: 5 ms steps, 1.5 GB, modest
#: SM demand. A real deployment gets these from the automated profiler.
MONTE_CARLO_PROFILE = calibration.SideTaskProfile(
    name="monte-carlo-pi",
    step_time_s=0.005,
    memory_gb=1.5,
    units_per_step=1.0,
    gpu_duty=0.9,
    sm_demand=0.5,
    speed_server_ii=0.4,
    speed_cpu=0.05,
    mps_interference=0.2,
    naive_interference=0.6,
)


class MonteCarloPiTask(IterativeSideTask):
    """Estimate pi; every step adds 20k samples to the estimate."""

    def __init__(self, samples_per_step: int = 20_000, seed: int = 0):
        super().__init__(MONTE_CARLO_PROFILE)
        self.samples_per_step = samples_per_step
        self.seed = seed
        self.inside = 0
        self.total = 0
        self._rng: np.random.Generator | None = None

    def create_side_task(self) -> None:
        # CREATED: host-side context only.
        self._rng = np.random.default_rng(self.seed)
        self.host_loaded = True

    def compute_step(self) -> None:
        points = self._rng.random((self.samples_per_step, 2))
        self.inside += int((points ** 2).sum(axis=1).__le__(1.0).sum())
        self.total += self.samples_per_step

    @property
    def pi_estimate(self) -> float:
        return 4.0 * self.inside / self.total if self.total else float("nan")


def main() -> None:
    config = TrainConfig(model=model_config("3.6B"), epochs=6, op_jitter=0.01)

    for interface, factory in (
        ("iterative", lambda: MonteCarloPiTask()),
        ("imperative", lambda: ImperativeAdapter(MonteCarloPiTask())),
    ):
        freeride = FreeRide(config)
        spec = freeride.submit(factory, interface=interface, name=f"pi-{interface}")
        assert spec is not None, "placement failed"
        result = freeride.run()
        report = result.task(f"pi-{interface}")
        task = spec.workload
        inner = task.inner if isinstance(task, ImperativeAdapter) else task
        error = abs(inner.pi_estimate - math.pi)
        print(f"{interface:10s}: {report.steps_done:5d} steps on stage "
              f"{report.stage}, pi = {inner.pi_estimate:.5f} "
              f"(error {error:.5f}), final state {report.final_state.value}")
        assert error < 0.05, "Monte Carlo estimate should be close by now"


if __name__ == "__main__":
    main()
