"""The declarative session API, end to end.

One spec each for three of the scenario kinds — batch, pipeline
(training only), and serving — run through the same ``Session``
lifecycle, plus a spec JSON round-trip and a registry invocation. The
remaining kinds have their own walkthroughs: ``kind="cluster"`` in
``cluster_session.py`` and the multi-tenant serving layer in
``multi_tenant.py``.

Run with: PYTHONPATH=src python examples/session_api.py
"""

from repro.api import ScenarioSpec, Session, registry

# -- batch: harvest bubbles with two side tasks -------------------------
batch = ScenarioSpec.from_dict({
    "name": "example-batch",
    "kind": "batch",
    "training": {"epochs": 2},
    "workloads": [{"name": "pagerank", "replicate": False}],
})
with Session(batch) as session:
    session.submit("resnet18")  # replicated on every fitting worker
    result = session.run().results()
print(f"batch:    {result.total_units:.0f} side-task units alongside "
      f"{result.training.total_time:.1f}s of training")

# -- pipeline: training only, for bubble characterization ---------------
pipeline = ScenarioSpec.from_dict({
    "name": "example-pipeline",
    "kind": "pipeline",
    "training": {"model": "1.2B", "epochs": 2},
})
training = Session(pipeline).run().results()
print(f"pipeline: {training.total_time:.1f}s for 2 epochs of 1.2B")

# -- serving: open-loop traffic through admission control ---------------
serving = ScenarioSpec.from_dict({
    "name": "example-serving",
    "kind": "serving",
    "seed": 7,
    "training": {"epochs": 2},
    "arrivals": {"kind": "poisson", "rate_per_s": 2.0},
    "policy": {"admission": "backpressure", "assignment": "edf"},
    "params": {"horizon_s": 6.0},
})
served = Session(serving).run().results()
print(f"serving:  {served.metrics.completed}/{served.metrics.offered} "
      f"requests completed, goodput {served.metrics.goodput_rps:.2f} req/s")

# -- specs are data: JSON round-trips re-run identically ----------------
rehydrated = ScenarioSpec.from_json(serving.to_json())
assert rehydrated == serving
again = Session(rehydrated).run().results()
assert again.metrics.completed == served.metrics.completed
print("round-trip: re-hydrated spec reproduced the run")

# -- the registry drives the paper's scenarios the same way -------------
fig1 = registry.run("fig1")
print("\n" + fig1.render().splitlines()[0])
