"""Fault-tolerance walkthrough: crashes, retries, and checkpoints.

One serving scenario, run four times against the *same* scripted
fault — every worker dies at t=1.0s and comes back two seconds later,
right under the single in-flight request — with progressively stronger
recovery:

1. no recovery: the request dies with its worker ("failed");
2. retries: the frontend re-queues the request with seeded backoff and
   re-dispatches it when capacity returns — zero admitted requests
   lost;
3. restart: the side task is preempted instead of killed, but resumes
   from scratch, wasting everything done so far;
4. checkpointing: the task rolls back only to its last periodic
   snapshot — same fault, strictly less wasted work, no retry needed.

The fault plan is ordinary spec data derived from the root seed, so
each faulted run is byte-for-byte reproducible (and re-runnable from
the exported JSON). The registered sweep over crash rate x recovery
mode is ``repro run resilience``.

Run with::

    PYTHONPATH=src python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.api import ScenarioSpec, Session
from repro.serving.arrivals import RequestTemplate, TraceArrivals

#: every stage crashes at t=1.0 and restarts at t=3.0 — wherever the
#: request landed, its worker dies under it
CRASHES = [{"stage": stage, "at_s": 1.0, "restart_after_s": 2.0}
           for stage in range(4)]


def run_variant(label: str, faults: dict) -> None:
    spec = ScenarioSpec.from_dict({
        "name": f"fault-tolerance-{label}",
        "kind": "serving",
        "training": {"epochs": 3},
        "faults": faults,
        "params": {"horizon_s": 60.0, "settle_s": 2.0},
    })
    # Trace replay is programmatic: hand the arrival process to the
    # session directly (a JSON spec names poisson/bursty/diurnal).
    trace = [(0.5, RequestTemplate("pagerank", job_steps=400,
                                   slo_class="standard"))]
    with Session(spec, arrivals=TraceArrivals(trace, seed=0)) as session:
        result = session.run().results()

    record = result.records[0]
    res = result.resilience
    print(f"{label:<12s} outcome={record.outcome:<9s} "
          f"attempts={record.attempts}  steps={record.steps_done:3d}  "
          f"crashes={res.crashes}  retries={res.retries}  "
          f"preempt/restore={res.preemptions}/{res.restores}  "
          f"wasted={res.wasted_steps} steps"
          + (f"  ({record.failure})" if record.failure else ""))


def main() -> None:
    print("one request, every worker crashes at t=1.0s "
          "(restart after 2.0s):\n")
    run_variant("no-recovery", {"crashes": CRASHES})
    run_variant("retries", {"crashes": CRASHES, "retry_max_attempts": 3})
    run_variant("restart", {"crashes": CRASHES, "recovery": "restart"})
    run_variant("checkpoint", {"crashes": CRASHES, "recovery": "checkpoint",
                               "checkpoint_interval_steps": 10})

    print("\nwith retries the admitted request is never lost; with a "
          "checkpoint\npolicy the task survives in place, wasting only "
          "the steps since the\nlast snapshot (restart-from-scratch "
          "wastes everything done so far).")


if __name__ == "__main__":
    main()
