"""Multi-job cluster walkthrough: `kind="cluster"` through the session API.

The paper's section-8 deployment, declaratively: two pipeline-training
jobs — a 3.6B model and a 1.2B model, each on its own simulated 4-GPU
server — report their bubbles to one shared side-task manager, which
spreads a shared PageRank workload across the combined 8-worker pool.

Three ways to drive the same thing:

1. this script (a spec with explicit per-job entries, via `Session`);
2. the CLI sweep: ``repro run cluster --set jobs=3`` (an int expands to
   N copies of the base training section);
3. the programmatic builder: ``ClusterBuilder().add_job(...).build()``.

Run with::

    PYTHONPATH=src python examples/cluster_session.py
"""

from __future__ import annotations

from repro.api import ScenarioSpec, Session


def main() -> None:
    spec = ScenarioSpec.from_dict({
        "name": "two-job-cluster",
        "kind": "cluster",
        "jobs": [
            {"training": {"model": "3.6B", "epochs": 6}},
            {"training": {"model": "1.2B", "epochs": 6}, "name": "small"},
        ],
        "workloads": [{"name": "pagerank"}],   # shared, replicated pool-wide
        "policy": {"assignment": "least_loaded"},
    })

    with Session(spec) as session:
        result = session.run().results()

    for job in result.jobs:
        print(f"{job.name}: trained {job.training.total_time:.1f}s, "
              f"produced {job.bubble_time_s:.1f}s of bubbles, "
              f"harvested {job.harvested_s:.1f}s "
              f"({job.utilization:.0%} utilization)")

    print("\nper-worker harvest:")
    for report in sorted(result.tasks, key=lambda r: r.stage):
        print(f"  worker {report.stage}: {report.steps_done:6d} PageRank "
              f"iterations, running {report.running_s:5.1f}s, "
              f"state {report.final_state.value}")

    print(f"\ncluster totals: {result.total_units:.0f} units over "
          f"{result.total_bubble_s:.1f} bubble-seconds "
          f"({result.utilization:.0%} utilization, "
          f"{len(result.rejections)} rejections)")

    # The spec is plain data: export it, re-run it, get the same bytes.
    print(f"\nre-runnable spec:\n{spec.to_json()}")


if __name__ == "__main__":
    main()
