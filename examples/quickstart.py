"""Quickstart: harvest pipeline bubbles for a ResNet18 training side task.

Runs the paper's default setup — a 3.6B-parameter model trained in a
4-stage pipeline on the simulated 4x48GB server — submits one ResNet18
side task per GPU, and reports the two headline metrics: time increase I
(should be about 1%) and cost savings S (positive).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import calibration
from repro.core.middleware import FreeRide
from repro.experiments.common import baseline_time
from repro.metrics.cost import cost_savings, time_increase
from repro.pipeline.config import TrainConfig, model_config
from repro.workloads.registry import workload_factory


def main() -> None:
    config = TrainConfig(
        model=model_config("3.6B"),
        micro_batches=4,
        epochs=8,
        op_jitter=0.01,
    )

    # 1. Bring up FreeRide: profiles the training job's bubbles offline,
    #    instruments the pipeline engine, starts one worker per GPU.
    freeride = FreeRide(config)

    # 2. Submit a side task. FreeRide's automated profiler measures its
    #    GPU memory and per-step duration, then Algorithm 1 places one
    #    copy on every worker whose bubbles have enough memory.
    copies = freeride.submit_replicated(
        workload_factory("resnet18"), interface="iterative"
    )
    print(f"accepted {copies} ResNet18 copies (one per eligible worker)")

    # 3. Train. Side tasks run only inside bubbles.
    result = freeride.run()

    # 4. The paper's metrics.
    t_no = baseline_time(config)
    increase = time_increase(result.training.total_time, t_no)
    savings = cost_savings(
        t_no,
        result.training.total_time,
        [(result.total_units, calibration.RESNET18)],
    )
    print(f"training time            : {result.training.total_time:8.2f} s "
          f"(baseline {t_no:.2f} s)")
    print(f"time increase I          : {100 * increase:8.2f} %   "
          "(paper: ~0.9%)")
    print(f"cost savings S           : {100 * savings:8.2f} %   "
          "(paper: ~6.4%)")
    print(f"side-task work harvested : {result.total_units:8.0f} images "
          f"({result.total_steps} training steps)")
    for report in result.tasks:
        print(f"  {report.name}: stage {report.stage}, "
              f"{report.steps_done} steps, state {report.final_state.value}")


if __name__ == "__main__":
    main()
