"""Multi-tenant fairness walkthrough: tenants through the session API.

Three tenants share one training job's bubbles: a paying "gold" tenant
with a 4x weighted-fair share, a "silver" tenant at the standard share,
and a "greedy" tenant that offers 10x more load than anyone else.
Per-tenant token buckets clip the greedy tenant's admissions to its own
budget, and the stride-scheduled ``weighted`` dispatch discipline splits
the actual bubble service 4:1:1 across backlogged tenants — the greedy
tenant's extra traffic buys it rejections, not service.

Three ways to drive the same thing:

1. this script (explicit ``TenantSpec`` entries, via `Session`);
2. the CLI sweep: ``repro run fairness --set tenants=3 --set
   assignment=weighted`` (an int expands to N identical tenants);
3. ad hoc: hand a :class:`repro.tenancy.TenantArrivals` and tenant
   shares straight to :class:`repro.serving.frontend.ServingFrontend`.

Run with::

    PYTHONPATH=src python examples/multi_tenant.py
"""

from __future__ import annotations

from repro.api import ScenarioSpec, Session

#: small batch-class jobs, so every completion counts toward goodput
MIX = [{"workload": "pagerank", "job_steps": 60, "slo_class": "batch"}]


def main() -> None:
    spec = ScenarioSpec.from_dict({
        "name": "three-tenants",
        "kind": "serving",
        "training": {"epochs": 3},
        "tenants": [
            {"name": "gold", "weight": 4.0, "rate_per_s": 4.0,
             "arrival_rate_per_s": 6.0, "mix": MIX},
            {"name": "silver", "weight": 1.0, "rate_per_s": 4.0,
             "arrival_rate_per_s": 6.0, "mix": MIX},
            {"name": "greedy", "weight": 1.0, "rate_per_s": 2.0,
             "arrival_rate_per_s": 60.0, "mix": MIX},
        ],
        "policy": {
            "admission": "per_tenant_token_bucket",  # isolation
            "discipline": "weighted",                # stride dispatch
            "queue_capacity": 128,
        },
    })

    with Session(spec) as session:
        result = session.run().results()

    print(f"service open {result.open_duration_s:.1f}s, "
          f"{result.metrics.offered} requests offered, "
          f"{result.metrics.completed} completed\n")
    for usage in result.fairness.tenants:
        m = usage.metrics
        print(f"{usage.name:<7s} w={usage.weight:g}  "
              f"offered {m.offered:3d}  admitted {m.admitted:3d}  "
              f"rejected {m.rejected:3d}  completed {m.completed:3d}  "
              f"goodput {m.goodput_rps:4.2f} req/s  "
              f"share {usage.share:.3f} (target {usage.target_share:.3f})")
    print(f"\nJain index (weight-normalized goodput): "
          f"{result.fairness.jain_goodput:.3f}")
    print(f"max share error vs targets: "
          f"{result.fairness.max_share_error:.3f}")

    # The spec is plain data: export it, re-run it, get the same bytes.
    print(f"\nre-runnable spec:\n{spec.to_json()}")


if __name__ == "__main__":
    main()
