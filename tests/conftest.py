"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.gpu.device import SimGPU
from repro.gpu.sharing import SharingMode
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> RandomStreams:
    return RandomStreams(seed=7)


@pytest.fixture
def gpu(engine: Engine) -> SimGPU:
    # Unit tests inspect the occupancy trace, so recording is opted in
    # (production servers leave it off; see make_server_i).
    return SimGPU(engine, name="gpu0", memory_gb=48.0, sharing=SharingMode.MPS,
                  record_occupancy=True)
