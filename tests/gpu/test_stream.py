"""Unit tests for CUDA-stream-like FIFO ordering."""

from __future__ import annotations

import pytest

from repro.gpu.device import SimGPU
from repro.gpu.process import GPUProcess
from repro.gpu.stream import Stream
from repro.sim.engine import Engine
from repro.sim.signals import Signal


@pytest.fixture
def proc(engine: Engine, gpu: SimGPU) -> GPUProcess:
    return GPUProcess(engine, gpu, name="p")


def test_stream_serializes_kernels(engine, gpu, proc):
    stream = Stream(proc)
    first = stream.submit(work_s=1.0)
    second = stream.submit(work_s=1.0)
    engine.run(until=second)
    assert engine.now == pytest.approx(2.0)
    assert first.processed and first.ok


def test_stream_completion_order_matches_submission(engine, gpu, proc):
    stream = Stream(proc)
    order: list[int] = []
    for i, work in enumerate([0.5, 0.1, 0.2]):
        done = stream.submit(work_s=work)
        done.callbacks.append(lambda _ev, i=i: order.append(i))
    engine.run()
    assert order == [0, 1, 2]


def test_stream_depth(engine, gpu, proc):
    stream = Stream(proc)
    stream.submit(work_s=1.0)
    stream.submit(work_s=1.0)
    assert stream.depth == 2
    engine.run()
    assert stream.depth == 0


def test_kill_fails_queued_kernels(engine, gpu, proc):
    stream = Stream(proc)
    running = stream.submit(work_s=5.0)
    queued = stream.submit(work_s=1.0)

    def killer():
        yield engine.timeout(1.0)
        proc.send_signal(Signal.SIGKILL)

    engine.process(killer())
    engine.run()
    assert running.processed and not running.ok
    assert queued.processed and not queued.ok


def test_submit_after_kill_fails_cleanly(engine, gpu, proc):
    proc.kill()
    stream = Stream(proc)
    done = stream.submit(work_s=1.0)
    engine.run()
    assert done.processed and not done.ok
