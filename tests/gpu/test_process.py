"""Unit tests for GPUProcess: memory limits, signals, kill semantics."""

from __future__ import annotations

import pytest

from repro.errors import GpuOutOfMemoryError, ProcessKilledError
from repro.gpu.device import SimGPU
from repro.gpu.kernel import Priority
from repro.gpu.process import GPUProcess
from repro.sim.engine import Engine
from repro.sim.signals import Signal


@pytest.fixture
def proc(engine: Engine, gpu: SimGPU) -> GPUProcess:
    return GPUProcess(engine, gpu, name="task", priority=Priority.SIDE)


def test_mps_limit_enforced_before_device_capacity(engine, gpu, proc):
    proc.memory_limit_gb = 8.0
    proc.allocate(6.0)
    with pytest.raises(GpuOutOfMemoryError) as excinfo:
        proc.allocate(3.0)
    assert excinfo.value.limit_gb == 8.0
    assert proc.memory_gb == pytest.approx(6.0)
    assert gpu.used_gb == pytest.approx(6.0)


def test_oom_of_one_process_leaves_others_untouched(engine, gpu):
    victim = GPUProcess(engine, gpu, "victim", memory_limit_gb=4.0)
    bystander = GPUProcess(engine, gpu, "bystander")
    bystander.allocate(20.0)
    with pytest.raises(GpuOutOfMemoryError):
        victim.allocate(5.0)
    assert bystander.alive and bystander.memory_gb == pytest.approx(20.0)


def test_sigkill_frees_memory_and_cancels_kernels(engine, gpu, proc):
    proc.allocate(12.0)
    done = proc.launch_kernel(work_s=100.0)
    proc.send_signal(Signal.SIGKILL)
    engine.run()
    assert not proc.alive
    assert gpu.used_gb == 0.0
    assert done.processed and not done.ok


def test_dead_process_cannot_allocate_or_launch(engine, gpu, proc):
    proc.kill()
    with pytest.raises(ProcessKilledError):
        proc.allocate(1.0)
    with pytest.raises(ProcessKilledError):
        proc.launch_kernel(work_s=1.0)


def test_signals_to_dead_process_are_ignored(engine, gpu, proc):
    proc.kill()
    proc.send_signal(Signal.SIGKILL)  # must not raise
    proc.send_signal(Signal.SIGTSTP)


def test_sigtstp_stops_host_but_not_inflight_kernel(engine, gpu, proc):
    """The asynchronous-kernel effect behind the imperative interface's
    overhead: a stopped process's kernel keeps running (paper section 5)."""
    done = proc.launch_kernel(work_s=2.0)
    proc.send_signal(Signal.SIGTSTP)
    assert proc.stopped
    engine.run(until=done)
    assert engine.now == pytest.approx(2.0)  # the kernel finished anyway


def test_wait_if_stopped_blocks_until_sigcont(engine, gpu, proc):
    log: list[float] = []

    def body():
        yield from proc.wait_if_stopped()
        log.append(engine.now)

    proc.send_signal(Signal.SIGTSTP)
    proc.attach(engine.process(body()))

    def resumer():
        yield engine.timeout(3.0)
        proc.send_signal(Signal.SIGCONT)

    engine.process(resumer())
    engine.run()
    assert log == [3.0]


def test_wait_if_stopped_passes_through_when_running(engine, gpu, proc):
    log: list[float] = []

    def body():
        yield from proc.wait_if_stopped()
        log.append(engine.now)
        yield engine.timeout(0.0)

    proc.attach(engine.process(body()))
    engine.run()
    assert log == [0.0]


def test_kill_interrupts_attached_sim_processes(engine, gpu, proc):
    outcome: list[str] = []

    def body():
        try:
            yield engine.timeout(100.0)
            outcome.append("finished")
        except Exception as exc:  # Interrupt carries ProcessKilledError cause
            outcome.append(type(exc).__name__)

    proc.attach(engine.process(body()))

    def killer():
        yield engine.timeout(1.0)
        proc.kill()

    engine.process(killer())
    engine.run()
    assert outcome == ["Interrupt"]


def test_kill_while_stopped_raises_in_wait_loop(engine, gpu, proc):
    outcome: list[str] = []

    def body():
        try:
            yield from proc.wait_if_stopped()
            outcome.append("resumed")
        except Exception as exc:
            outcome.append(type(exc).__name__)

    proc.send_signal(Signal.SIGTSTP)
    proc.attach(engine.process(body()))

    def killer():
        yield engine.timeout(1.0)
        proc.kill()

    engine.process(killer())
    engine.run()
    assert outcome == ["Interrupt"]


def test_memory_trace_ends_at_zero_after_kill(engine, gpu, proc):
    proc.allocate(5.0)
    proc.kill()
    assert proc.memory_trace[-1][1] == 0.0
