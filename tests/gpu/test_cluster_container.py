"""Unit tests for servers, MPS control, and containers."""

from __future__ import annotations

import pytest

from repro import calibration
from repro.gpu.cluster import make_server_cpu, make_server_i, make_server_ii
from repro.gpu.container import Container
from repro.gpu.process import GPUProcess
from repro.gpu.sharing import SharingMode
from repro.sim.engine import Engine
from repro.sim.signals import Signal


def test_server_i_matches_paper_testbed(engine: Engine):
    server = make_server_i(engine)
    assert server.num_gpus == 4
    assert all(gpu.memory_gb == 48.0 for gpu in server.gpus)
    assert server.price_per_hour == pytest.approx(3.96)


def test_server_ii_matches_paper_testbed(engine: Engine):
    server = make_server_ii(engine)
    assert server.num_gpus == 1
    assert server.gpus[0].memory_gb == 10.0
    assert server.price_per_hour == pytest.approx(0.18)


def test_server_cpu_has_no_gpus(engine: Engine):
    server = make_server_cpu(engine)
    assert server.num_gpus == 0 and server.is_cpu_only


def test_mps_enable_disable_toggles_sharing(engine: Engine):
    server = make_server_i(engine)
    gpu = server.gpu(0)
    server.mps.disable(gpu)
    assert gpu.sharing is SharingMode.TIME_SLICE
    server.mps.enable(gpu)
    assert gpu.sharing is SharingMode.MPS


def test_mps_memory_limit_applies_to_process(engine: Engine):
    server = make_server_i(engine)
    proc = GPUProcess(engine, server.gpu(0), "task")
    server.mps.set_memory_limit(proc, 8.0)
    assert proc.memory_limit_gb == 8.0
    assert server.mps.memory_limit_of(proc) == 8.0
    server.mps.clear_memory_limit(proc)
    assert proc.memory_limit_gb is None


def test_mps_rejects_foreign_device(engine: Engine):
    server = make_server_i(engine)
    other = make_server_ii(engine)
    with pytest.raises(ValueError):
        server.mps.enable(other.gpu(0))


def test_mps_rejects_nonpositive_limit(engine: Engine):
    server = make_server_i(engine)
    proc = GPUProcess(engine, server.gpu(0), "task")
    with pytest.raises(ValueError):
        server.mps.set_memory_limit(proc, 0.0)


def test_container_stop_kills_members(engine: Engine):
    server = make_server_i(engine)
    box = Container("worker0")
    proc = box.adopt(GPUProcess(engine, server.gpu(0), "task"))
    proc.allocate(4.0)
    box.stop()
    assert not proc.alive
    assert server.gpu(0).used_gb == 0.0
    with pytest.raises(RuntimeError):
        box.adopt(GPUProcess(engine, server.gpu(0), "late"))


def test_container_isolates_faults(engine: Engine):
    server = make_server_i(engine)
    box = Container("worker0")
    crasher = box.adopt(GPUProcess(engine, server.gpu(0), "crasher"))
    survivor = box.adopt(GPUProcess(engine, server.gpu(0), "survivor"))
    crasher.send_signal(Signal.SIGKILL)
    box.record_fault(crasher, "OOM")
    assert survivor.alive
    assert box.faults == [("crasher", "OOM")]
    assert box.live_processes == [survivor]


def test_calibration_profiles_cover_the_six_tasks():
    assert set(calibration.SIDE_TASK_PROFILES) == {
        "resnet18", "resnet50", "vgg19", "pagerank", "graph_sgd", "image",
    }
    assert calibration.MIXED_WORKLOAD_BY_STAGE == (
        "pagerank", "resnet18", "image", "vgg19",
    )


def test_batch_size_rescaling_is_monotonic():
    base = calibration.RESNET18
    small = calibration.scale_model_training_profile(base, 16)
    large = calibration.scale_model_training_profile(base, 128)
    assert small.step_time_s < base.step_time_s < large.step_time_s
    assert small.memory_gb < base.memory_gb < large.memory_gb
    assert large.units_per_step == 128.0
    with pytest.raises(ValueError):
        calibration.scale_model_training_profile(base, 0)
