"""Deeper tests of the GPU contention model across sharing modes."""

from __future__ import annotations

import pytest

from repro.gpu.device import SimGPU
from repro.gpu.kernel import Interference, Priority, TRAINING_INTERFERENCE
from repro.gpu.process import GPUProcess
from repro.gpu.sharing import SharingMode
from repro.sim.engine import Engine


def procs(engine, gpu, side_interference):
    training = GPUProcess(engine, gpu, "train", Priority.TRAINING,
                          interference=TRAINING_INTERFERENCE)
    side = GPUProcess(engine, gpu, "side", Priority.SIDE,
                      interference=side_interference)
    return training, side


class TestMpsMode:
    def test_interference_is_additive_across_contenders(self, engine):
        gpu = SimGPU(engine, "g", memory_gb=48.0, sharing=SharingMode.MPS)
        training = GPUProcess(engine, gpu, "t", Priority.TRAINING)
        spec = Interference(mps_on_higher=0.25)
        for i in range(2):
            side = GPUProcess(engine, gpu, f"s{i}", Priority.SIDE,
                              interference=spec)
            side.launch_kernel(work_s=100.0)
        done = training.launch_kernel(work_s=1.0)
        engine.run(until=done)
        # slowdown = 1 + 0.25 + 0.25
        assert engine.now == pytest.approx(1.5)

    def test_priority_asymmetry(self, engine):
        """Training steals more from the side task than vice versa."""
        gpu = SimGPU(engine, "g", memory_gb=48.0, sharing=SharingMode.MPS)
        training, side = procs(engine, gpu,
                               Interference(mps_on_higher=0.2, mps_on_lower=0.3))
        training.launch_kernel(work_s=100.0)
        side_done = side.launch_kernel(work_s=1.0)
        engine.run(until=side_done)
        side_time = engine.now  # stretched by training's mps_on_lower = 1.0
        assert side_time == pytest.approx(2.0)

    def test_freed_contender_restores_full_speed(self, engine):
        gpu = SimGPU(engine, "g", memory_gb=48.0, sharing=SharingMode.MPS)
        training, side = procs(engine, gpu, Interference(mps_on_higher=1.0))
        side.launch_kernel(work_s=0.5)  # halved by training: finishes at 1.0
        done = training.launch_kernel(work_s=1.0)
        engine.run(until=done)
        # Both slow each other 2x while overlapped: the side kernel's 0.5
        # work takes 1.0s; training does 0.5 work by then and the rest at
        # full speed -> 1.0 + 0.5 = 1.5.
        assert engine.now == pytest.approx(1.5)


class TestTimeSliceMode:
    def test_three_processes_share_a_third_each(self, engine):
        gpu = SimGPU(engine, "g", memory_gb=48.0,
                     sharing=SharingMode.TIME_SLICE)
        done = []
        for i in range(3):
            proc = GPUProcess(engine, gpu, f"p{i}", Priority.SIDE,
                              interference=Interference(time_slice=1.0))
            done.append(proc.launch_kernel(work_s=1.0))
        engine.run(until=done[0])
        assert engine.now == pytest.approx(3.0)

    def test_mode_switch_affects_only_new_rates(self, engine):
        """MPS enable/disable mid-run changes contention going forward."""
        from repro.gpu.mps import MpsControl

        gpu = SimGPU(engine, "g", memory_gb=48.0, sharing=SharingMode.MPS)
        mps = MpsControl([gpu])
        training, side = procs(
            engine, gpu,
            Interference(mps_on_higher=0.0, time_slice=1.0),
        )
        side.launch_kernel(work_s=1000.0)
        done = training.launch_kernel(work_s=1.0)

        def disable_mps():
            yield engine.timeout(0.5)
            mps.disable(gpu)  # now time-sliced: training halves
            gpu._recompute()

        engine.process(disable_mps())
        engine.run(until=done)
        # 0.5s at full speed (no MPS interference), 0.5 work left at half
        # speed under time slicing -> 0.5 + 1.0 = 1.5
        assert engine.now == pytest.approx(1.5)


class TestOccupancyAccounting:
    def test_occupancy_splits_training_and_side(self, engine):
        gpu = SimGPU(engine, "g", memory_gb=48.0, sharing=SharingMode.MPS,
                     record_occupancy=True)
        training, side = procs(engine, gpu, Interference())
        training.launch_kernel(work_s=1.0, sm_demand=0.9)
        side.launch_kernel(work_s=1.0, sm_demand=0.4)
        engine.run()
        both = [(hi, lo) for _t, _tot, hi, lo in gpu.occupancy_trace
                if hi > 0 and lo > 0]
        assert both and both[0] == (0.9, 0.4)

    def test_total_occupancy_clipped_at_one(self, engine):
        gpu = SimGPU(engine, "g", memory_gb=48.0, sharing=SharingMode.MPS,
                     record_occupancy=True)
        for i in range(3):
            proc = GPUProcess(engine, gpu, f"p{i}", Priority.SIDE)
            proc.launch_kernel(work_s=1.0, sm_demand=0.8)
        engine.run()
        assert max(total for _t, total, _hi, _lo in gpu.occupancy_trace) <= 1.0
