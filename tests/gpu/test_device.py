"""Unit tests for the SimGPU rate model, memory ledger, and traces."""

from __future__ import annotations

import pytest

from repro.errors import GpuOutOfMemoryError, ProcessKilledError, SimulationError
from repro.gpu.device import SimGPU
from repro.gpu.kernel import Interference, Priority
from repro.gpu.process import GPUProcess
from repro.gpu.sharing import SharingMode
from repro.sim.engine import Engine


def _proc(engine, gpu, name="p", priority=Priority.SIDE, interference=None,
          limit=None):
    return GPUProcess(
        engine, gpu, name=name, priority=priority,
        interference=interference or Interference(), memory_limit_gb=limit,
    )


def test_solo_kernel_runs_at_full_speed(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu)
    done = proc.launch_kernel(work_s=2.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(2.0)


def test_zero_work_kernel_completes_instantly(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu)
    done = proc.launch_kernel(work_s=0.0)
    engine.run(until=done)
    assert engine.now == 0.0


def test_speed_factor_scales_duration(engine: Engine):
    slow_gpu = SimGPU(engine, "slow", memory_gb=10.0, speed_factor=0.5)
    proc = _proc(engine, slow_gpu)
    done = proc.launch_kernel(work_s=1.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(2.0)


def test_same_process_kernels_do_not_interfere(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu, interference=Interference(time_slice=1.0))
    first = proc.launch_kernel(work_s=1.0)
    second = proc.launch_kernel(work_s=1.0)
    engine.run(until=first)
    engine.run(until=second)
    assert engine.now == pytest.approx(1.0)


def test_mps_side_kernel_slows_training_kernel(engine: Engine, gpu: SimGPU):
    """A side kernel with mps_on_higher=0.5 stretches training 1s -> 1.5s."""
    training = _proc(engine, gpu, "train", Priority.TRAINING)
    side = _proc(
        engine, gpu, "side", Priority.SIDE,
        interference=Interference(mps_on_higher=0.5, mps_on_lower=0.0),
    )
    side.launch_kernel(work_s=100.0)  # long-running background contender
    done = training.launch_kernel(work_s=1.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(1.5)


def test_training_halves_side_speed_under_mps(engine: Engine, gpu: SimGPU):
    from repro.gpu.kernel import TRAINING_INTERFERENCE

    training = _proc(engine, gpu, "train", Priority.TRAINING,
                     interference=TRAINING_INTERFERENCE)
    side = _proc(engine, gpu, "side", Priority.SIDE)
    training.launch_kernel(work_s=100.0)
    done = side.launch_kernel(work_s=1.0)
    engine.run(until=done)
    assert engine.now == pytest.approx(2.0)  # slowdown 1 + 1.0


def test_time_slice_mode_serializes_processes(engine: Engine):
    gpu = SimGPU(engine, "g", memory_gb=10.0, sharing=SharingMode.TIME_SLICE)
    a = _proc(engine, gpu, "a", interference=Interference(time_slice=1.0))
    b = _proc(engine, gpu, "b", interference=Interference(time_slice=1.0))
    done_a = a.launch_kernel(work_s=1.0)
    done_b = b.launch_kernel(work_s=1.0)
    engine.run(until=done_a)
    # Both ran at half speed until a finished at t=2.
    assert engine.now == pytest.approx(2.0)
    engine.run(until=done_b)
    # b then finishes its remaining ~0 work at full speed.
    assert engine.now == pytest.approx(2.0, abs=1e-6)


def test_rate_change_midway_is_settled_correctly(engine: Engine, gpu: SimGPU):
    """A contender arriving halfway stretches only the remaining work."""
    training = _proc(engine, gpu, "train", Priority.TRAINING)
    side = _proc(
        engine, gpu, "side", Priority.SIDE,
        interference=Interference(mps_on_higher=1.0),
    )
    done = training.launch_kernel(work_s=2.0)

    def contend():
        yield engine.timeout(1.0)
        side.launch_kernel(work_s=50.0)

    engine.process(contend())
    engine.run(until=done)
    # 1s at full speed + 1s of work at half speed = 3s total.
    assert engine.now == pytest.approx(3.0)


def test_exclusive_mode_rejects_corunning(engine: Engine):
    gpu = SimGPU(engine, "g", memory_gb=10.0, sharing=SharingMode.EXCLUSIVE)
    a = _proc(engine, gpu, "a")
    b = _proc(engine, gpu, "b")
    a.launch_kernel(work_s=5.0)
    with pytest.raises(SimulationError):
        b.launch_kernel(work_s=1.0)


def test_memory_ledger_tracks_allocations(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu)
    proc.allocate(10.0)
    assert gpu.used_gb == pytest.approx(10.0)
    assert gpu.available_gb == pytest.approx(38.0)
    proc.free(4.0)
    assert gpu.used_gb == pytest.approx(6.0)
    proc.free()
    assert gpu.used_gb == 0.0


def test_device_oom_when_capacity_exceeded(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu)
    proc.allocate(40.0)
    with pytest.raises(GpuOutOfMemoryError):
        proc.allocate(10.0)
    # Failed allocation must not be recorded.
    assert gpu.used_gb == pytest.approx(40.0)


def test_over_free_raises(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu)
    proc.allocate(1.0)
    with pytest.raises(SimulationError):
        proc.free(2.0)


def test_cancel_kernels_fails_their_events(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu)
    done = proc.launch_kernel(work_s=10.0)
    gpu.cancel_kernels_of(proc)
    engine.run()
    assert done.processed and not done.ok
    assert isinstance(done.exception, ProcessKilledError)


def test_occupancy_trace_records_activity(engine: Engine, gpu: SimGPU):
    training = _proc(engine, gpu, "train", Priority.TRAINING)
    done = training.launch_kernel(work_s=1.0, sm_demand=0.9)
    engine.run(until=done)
    # Trace has an entry with training occupancy 0.9 and a final zero entry.
    peaks = [entry[2] for entry in gpu.occupancy_trace]
    assert max(peaks) == pytest.approx(0.9)
    assert gpu.occupancy_trace[-1][1] == 0.0


def test_utilization_counts_busy_time(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu)
    done = proc.launch_kernel(work_s=1.0)
    engine.run(until=done)
    engine.run(until=4.0)
    assert gpu.utilization() == pytest.approx(0.25)


def test_memory_trace_records_changes(engine: Engine, gpu: SimGPU):
    proc = _proc(engine, gpu)
    proc.allocate(8.0)
    engine.run(until=1.0)
    proc.free()
    values = [gb for _t, gb in gpu.memory_trace]
    assert values == [8.0, 0.0]
