"""Tests for the section-8 extensions: multi-server FreeRide and traces."""

from __future__ import annotations

import json

import pytest

from repro.core.states import SideTaskState
from repro.extensions.multi_server import MultiServerFreeRide
from repro.metrics.traces import (
    bubbles_json,
    memory_csv,
    occupancy_csv,
    ops_csv,
    trace_summary,
)
from repro.pipeline.config import TrainConfig, model_config
from repro.workloads.registry import workload_factory


@pytest.fixture(scope="module")
def two_jobs():
    configs = [
        TrainConfig(model=model_config("3.6B"), epochs=3, op_jitter=0.01),
        TrainConfig(model=model_config("1.2B"), epochs=3, op_jitter=0.01,
                    seed=1),
    ]
    deployment = MultiServerFreeRide(configs)
    accepted = 0
    for _ in range(8):
        if deployment.submit(workload_factory("pagerank")) is not None:
            accepted += 1
    result = deployment.run()
    return deployment, accepted, result


class TestMultiServer:
    def test_manager_sees_workers_from_both_servers(self, two_jobs):
        deployment, _accepted, _result = two_jobs
        assert len(deployment.workers) == 8
        assert len(deployment.pipelines) == 2

    def test_tasks_spread_across_both_servers(self, two_jobs):
        _deployment, accepted, result = two_jobs
        assert accepted == 8
        stages = sorted(report.stage for report in result.tasks)
        assert stages == list(range(8))  # one per global worker

    def test_both_trainings_complete(self, two_jobs):
        _deployment, _accepted, result = two_jobs
        assert len(result.trainings) == 2
        for training in result.trainings:
            assert len(training.trace.epochs) == 3

    def test_every_task_harvested_bubbles(self, two_jobs):
        _deployment, _accepted, result = two_jobs
        for report in result.tasks:
            assert report.final_state is SideTaskState.STOPPED
            assert report.steps_done > 0, report.name

    def test_needs_at_least_one_job(self):
        with pytest.raises(ValueError):
            MultiServerFreeRide([])


class TestTraceExport:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.gpu.cluster import make_server_i
        from repro.pipeline.engine import PipelineEngine
        from repro.sim.engine import Engine

        sim = Engine()
        # The occupancy-CSV test reads the opt-in SM-occupancy trace.
        server = make_server_i(sim, record_occupancy=True)
        config = TrainConfig(model=model_config("3.6B"), epochs=1,
                             op_jitter=0.0)
        result = PipelineEngine(sim, server, config).run()
        return server, result

    def test_occupancy_csv_parses(self, run):
        server, _result = run
        text = occupancy_csv(server.gpu(0))
        lines = text.strip().splitlines()
        assert lines[0] == "time_s,occupancy,training,side"
        assert len(lines) > 5

    def test_occupancy_csv_rejects_non_recording_gpu(self):
        """Recording is opt-in; exporting without it raises, not empties."""
        from repro.gpu.device import SimGPU
        from repro.sim.engine import Engine

        gpu = SimGPU(Engine(), "silent", memory_gb=10.0)
        with pytest.raises(ValueError, match="record_occupancy"):
            occupancy_csv(gpu)

    def test_memory_csv_parses(self, run):
        server, _result = run
        lines = memory_csv(server.gpu(0)).strip().splitlines()
        assert lines[0] == "time_s,used_gb"

    def test_ops_csv_row_count(self, run):
        _server, result = run
        lines = ops_csv(result.trace).strip().splitlines()
        assert len(lines) - 1 == len(result.trace.ops)

    def test_bubbles_json_round_trips(self, run):
        _server, result = run
        payload = json.loads(bubbles_json(result.trace))
        assert len(payload) == len(result.trace.bubbles)
        assert all(entry["type"] in "ABC" for entry in payload)

    def test_summary_fields(self, run):
        _server, result = run
        summary = trace_summary(result.trace)
        assert summary["epochs"] == 1
        assert 0.3 < summary["bubble_rate"] < 0.5
        assert summary["ops"] == 32
