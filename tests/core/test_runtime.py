"""Focused tests for the iterative and imperative runtimes."""

from __future__ import annotations

import pytest

from repro import calibration
from repro.core.manager import SideTaskManager
from repro.core.profiler import profile_side_task
from repro.core.runtime import Command, CommandKind, ImperativeRuntime, IterativeRuntime
from repro.core.states import SideTaskState
from repro.core.task_spec import TaskProfile, TaskSpec
from repro.core.worker import ManagedBubble, SideTaskWorker
from repro.gpu.cluster import make_server_i
from repro.sim.engine import Engine
from repro.workloads.adapters import ImperativeAdapter
from repro.workloads.model_training import make_resnet18


def setup(engine, interface="iterative"):
    # record_occupancy: several tests below read the SM-occupancy trace.
    server = make_server_i(engine, record_occupancy=True)
    worker = SideTaskWorker(engine, server.gpu(0), 0,
                            side_task_memory_gb=20.0, mps=server.mps)
    manager = SideTaskManager(engine, [worker])
    if interface == "iterative":
        factory = make_resnet18
    else:
        factory = lambda: ImperativeAdapter(make_resnet18())
    profile = profile_side_task(factory(), interface=interface)
    workload = factory()
    spec = TaskSpec(workload=workload, profile=profile)
    manager.submit(spec, interface)
    runtime = worker.all_tasks[0]
    return server, worker, manager, runtime, workload


class TestIterativeRuntime:
    def test_wrong_interface_type_rejected(self, engine, gpu):
        from repro.gpu.container import Container
        from repro.gpu.process import GPUProcess
        from repro.sim.rng import RandomStreams

        proc = GPUProcess(engine, gpu, "p")
        adapter = ImperativeAdapter(make_resnet18())
        spec = TaskSpec(workload=adapter,
                        profile=TaskProfile(gpu_memory_gb=1.0, step_time_s=0.1))
        with pytest.raises(TypeError):
            IterativeRuntime(engine, spec, proc, Container("c"),
                             RandomStreams(0))
        good_spec = TaskSpec(workload=make_resnet18(),
                             profile=TaskProfile(gpu_memory_gb=1.0,
                                                 step_time_s=0.1))
        with pytest.raises(TypeError):
            ImperativeRuntime(engine, good_spec, proc, Container("c"),
                              RandomStreams(0))

    def test_init_loads_gpu_memory_with_transfer_time(self, engine):
        server, _worker, _manager, runtime, _workload = setup(engine)
        engine.run(until=engine.now + 1.0)
        assert runtime.state is SideTaskState.PAUSED
        assert runtime.proc.memory_gb == pytest.approx(
            calibration.RESNET18.memory_gb
        )
        # init_s includes the H2D transfer at the calibrated bandwidth.
        expected = calibration.RESNET18.memory_gb / calibration.H2D_BANDWIDTH_GB_S
        assert runtime.init_s == pytest.approx(expected, abs=0.01)

    def test_duplicate_commands_are_harmless(self, engine):
        _server, _worker, _manager, runtime, workload = setup(engine)
        engine.run(until=engine.now + 1.0)
        runtime.deliver(Command(CommandKind.INIT))     # duplicate init
        runtime.deliver(Command(CommandKind.PAUSE))    # pause while paused
        engine.run(until=engine.now + 0.5)
        assert runtime.state is SideTaskState.PAUSED
        assert runtime.alive

    def test_stop_while_paused_releases_memory(self, engine):
        server, _worker, manager, runtime, _workload = setup(engine)
        engine.run(until=engine.now + 1.0)
        manager.stop_task(runtime)
        engine.run(until=engine.now + 0.5)
        assert runtime.state is SideTaskState.STOPPED
        assert server.gpu(0).used_gb == 0.0

    def test_commands_after_termination_ignored(self, engine):
        _server, _worker, manager, runtime, _workload = setup(engine)
        engine.run(until=engine.now + 1.0)
        manager.stop_task(runtime)
        engine.run(until=engine.now + 0.5)
        runtime.deliver(Command(CommandKind.START, bubble_end=engine.now + 1))
        engine.run(until=engine.now + 0.5)
        assert runtime.state is SideTaskState.STOPPED

    def test_resume_latency_charged_per_bubble(self, engine):
        _server, _worker, manager, runtime, workload = setup(engine)
        engine.run(until=engine.now + 1.0)
        for _ in range(3):
            manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                             expected_end=engine.now + 0.4,
                                             available_gb=20.0))
            engine.run(until=engine.now + 1.0)
        assert runtime.overhead_s >= 3 * calibration.TASK_RESUME_LATENCY_S


class TestImperativeRuntime:
    def test_pause_uses_sigtstp_and_records_timestamp(self, engine):
        _server, _worker, manager, runtime, workload = setup(
            engine, "imperative")
        engine.run(until=engine.now + 1.0)
        assert runtime.state is SideTaskState.PAUSED
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=engine.now + 0.5,
                                         available_gb=20.0))
        engine.run(until=engine.now + 0.3)
        assert runtime.state is SideTaskState.RUNNING
        assert not runtime.proc.stopped
        engine.run(until=engine.now + 0.8)  # past the bubble end
        assert runtime.state is SideTaskState.PAUSED
        assert runtime.proc.stopped
        assert runtime.last_paused_at > 0
        assert workload.steps_done > 0

    def test_inflight_kernel_overruns_bubble_end(self, engine):
        """The imperative interface's defining overhead: the kernel that
        was on the GPU when SIGTSTP landed keeps running."""
        server, _worker, manager, runtime, _workload = setup(
            engine, "imperative")
        engine.run(until=engine.now + 1.0)
        bubble_end = engine.now + 0.1  # shorter than one 30 ms step chain
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=bubble_end,
                                         available_gb=20.0))
        engine.run(until=engine.now + 1.0)
        last_side_kernel = max(
            (t for t, _tot, _hi, side in server.gpu(0).occupancy_trace
             if side > 0),
            default=0.0,
        )
        # Unlike the iterative gate, execution ran past the bubble's end.
        assert last_side_kernel > bubble_end

    def test_resume_continues_same_workload(self, engine):
        _server, _worker, manager, runtime, workload = setup(
            engine, "imperative")
        engine.run(until=engine.now + 1.0)
        for _ in range(2):
            manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                             expected_end=engine.now + 0.3,
                                             available_gb=20.0))
            engine.run(until=engine.now + 1.0)
        first_burst = workload.steps_done
        assert first_burst > 0
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=engine.now + 0.3,
                                         available_gb=20.0))
        engine.run(until=engine.now + 1.0)
        assert workload.steps_done > first_burst

    def test_stop_kills_the_body(self, engine):
        _server, _worker, manager, runtime, _workload = setup(
            engine, "imperative")
        engine.run(until=engine.now + 1.0)
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=engine.now + 0.3,
                                         available_gb=20.0))
        engine.run(until=engine.now + 0.2)
        manager.stop_task(runtime)
        engine.run(until=engine.now + 1.0)
        assert runtime.machine.terminated
        assert not runtime.proc.alive
