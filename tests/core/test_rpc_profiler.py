"""Unit tests for the RPC channel and the automated side-task profiler."""

from __future__ import annotations

import pytest

from repro import calibration
from repro.core.profiler import profile_side_task
from repro.core.rpc import RpcChannel
from repro.errors import RpcError, SideTaskError
from repro.sim.engine import Engine
from repro.workloads.adapters import ImperativeAdapter
from repro.workloads.graph_analytics import PageRankTask
from repro.workloads.model_training import make_resnet18


class TestRpc:
    def test_cast_delivers_after_latency(self, engine: Engine):
        channel = RpcChannel(engine, "test", latency_s=0.5)
        seen: list[float] = []
        channel.cast(lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.5]

    def test_call_round_trip(self, engine: Engine):
        channel = RpcChannel(engine, "test", latency_s=0.25)
        reply = channel.call(lambda a, b: a + b, 2, 3)
        assert engine.run(until=reply) == 5
        assert engine.now == pytest.approx(0.5)

    def test_call_propagates_handler_errors(self, engine: Engine):
        channel = RpcChannel(engine, "test", latency_s=0.1)

        def boom():
            raise ValueError("nope")

        reply = channel.call(boom)
        engine.run()
        assert reply.processed and not reply.ok
        assert isinstance(reply.exception, RpcError)

    def test_negative_latency_rejected(self, engine: Engine):
        with pytest.raises(RpcError):
            RpcChannel(engine, "bad", latency_s=-1.0)

    def test_counters(self, engine: Engine):
        channel = RpcChannel(engine, "test")
        channel.cast(lambda: None)
        channel.call(lambda: None)
        assert channel.casts_sent == 1
        assert channel.calls_sent == 1


class TestRpcCoalescing:
    """Same-instant casts share one heap event; order is untouched."""

    def test_adjacent_casts_share_one_heap_event(self, engine: Engine):
        channel = RpcChannel(engine, "test", latency_s=0.5)
        order: list[int] = []
        channel.cast(order.append, 1)
        channel.cast(order.append, 2)
        channel.cast(order.append, 3)
        assert len(engine._heap) == 1  # three casts, one event
        assert channel.casts_sent == 3
        engine.run()
        assert order == [1, 2, 3]
        assert engine.now == pytest.approx(0.5)

    def test_intervening_schedule_breaks_the_batch(self, engine: Engine):
        """Coalescing must never reorder casts relative to other events
        scheduled in between, so any unrelated scheduling closes the
        open batch."""
        channel = RpcChannel(engine, "test", latency_s=0.5)
        order: list[str] = []
        channel.cast(order.append, "cast-1")
        between = engine.timeout(0.5)
        between.callbacks.append(lambda _ev: order.append("timeout"))
        channel.cast(order.append, "cast-2")
        assert len(engine._heap) == 3
        engine.run()
        # Heap tie-break is (time, sequence): exactly the pre-coalescing
        # execution order.
        assert order == ["cast-1", "timeout", "cast-2"]

    def test_casts_at_different_instants_do_not_coalesce(self, engine: Engine):
        channel = RpcChannel(engine, "test", latency_s=0.5)
        seen: list[float] = []
        channel.cast(lambda: seen.append(engine.now))
        engine.run(until=0.25)
        channel.cast(lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.5, 0.75]

    def test_cast_from_inside_a_delivery_gets_a_fresh_event(
            self, engine: Engine):
        """A handler casting again on the same channel (latency 0) must
        land in a *later* event, not splice into the running batch."""
        channel = RpcChannel(engine, "chain", latency_s=0.0)
        order: list[str] = []

        def first():
            order.append("first")
            channel.cast(lambda: order.append("nested"))

        channel.cast(first)
        channel.cast(order.append, "second")
        engine.run()
        assert order == ["first", "second", "nested"]


class TestProfiler:
    def test_profiles_memory_and_step_time(self):
        profile = profile_side_task(make_resnet18(), interface="iterative")
        assert profile.gpu_memory_gb == pytest.approx(
            calibration.RESNET18.memory_gb
        )
        # Median measured step near the calibrated 30.4 ms.
        assert profile.step_time_s == pytest.approx(0.0304, rel=0.10)
        assert profile.units_per_step == pytest.approx(64.0)
        assert profile.is_iterative

    def test_imperative_profile_has_no_step_time(self):
        """Paper 4.3: the tool cannot measure per-step duration of
        imperative tasks."""
        workload = ImperativeAdapter(make_resnet18())
        profile = profile_side_task(workload, interface="imperative")
        assert profile.step_time_s is None
        assert not profile.is_iterative
        assert profile.gpu_memory_gb > 0

    def test_profiling_runs_real_computation(self):
        task = PageRankTask()
        profile_side_task(task, interface="iterative", steps=8)
        assert task.steps_done == 8
        assert len(task.residuals) == 8

    def test_batch_size_changes_profile(self):
        small = profile_side_task(make_resnet18(batch_size=16))
        large = profile_side_task(make_resnet18(batch_size=128))
        assert small.gpu_memory_gb < large.gpu_memory_gb
        assert small.step_time_s < large.step_time_s

    def test_invalid_arguments_rejected(self):
        with pytest.raises(SideTaskError):
            profile_side_task(make_resnet18(), interface="declarative")
        with pytest.raises(SideTaskError):
            profile_side_task(make_resnet18(), steps=0)
