"""Direct unit tests for every assignment policy in ``core/policies.py``.

The ablation benchmarks exercise these only end-to-end; here each policy's
selection rule and tie-breaking are pinned down against hand-built worker
states, including the deadline-aware policies the serving layer adds.
"""

from __future__ import annotations

import dataclasses

from repro import calibration
from repro.core.manager import SideTaskManager
from repro.core.policies import (
    NAMED_POLICIES,
    best_fit_policy,
    edf_policy,
    first_fit_policy,
    least_loaded_policy,
    starvation_aware_policy,
    worst_fit_policy,
)
from repro.core.task_spec import TaskProfile, TaskSpec
from repro.core.worker import SideTaskWorker
from repro.gpu.cluster import make_server_i
from repro.workloads.model_training import ModelTrainingTask


def make_workers(engine, memories=(10.0, 20.0, 20.0, 5.0)):
    server = make_server_i(engine)
    return [
        SideTaskWorker(engine, server.gpu(stage), stage,
                       side_task_memory_gb=memory, mps=server.mps)
        for stage, memory in enumerate(memories)
    ]


def make_spec(name="spec", gb=2.0, deadline_s=None, submitted_at=0.0):
    perf = dataclasses.replace(calibration.RESNET18, memory_gb=gb)
    return TaskSpec(
        workload=ModelTrainingTask(perf),
        profile=TaskProfile(gpu_memory_gb=gb, step_time_s=0.03),
        name=name,
        deadline_s=deadline_s,
        submitted_at=submitted_at,
    )


def add_task(worker, name, deadline_s=None, submitted_at=0.0):
    spec = make_spec(name=name, deadline_s=deadline_s,
                     submitted_at=submitted_at)
    return worker.add_task(spec, "iterative")


class TestMemoryFitPolicies:
    def test_best_fit_picks_tightest_memory(self, engine):
        workers = make_workers(engine, memories=(10.0, 6.0, 20.0))
        assert best_fit_policy(workers) is workers[1]

    def test_worst_fit_picks_loosest_memory(self, engine):
        workers = make_workers(engine, memories=(10.0, 6.0, 20.0))
        assert worst_fit_policy(workers) is workers[2]

    def test_best_fit_tie_goes_to_first_in_order(self, engine):
        workers = make_workers(engine, memories=(8.0, 8.0, 8.0))
        assert best_fit_policy(workers) is workers[0]

    def test_worst_fit_tie_goes_to_first_in_order(self, engine):
        workers = make_workers(engine, memories=(8.0, 8.0, 8.0))
        assert worst_fit_policy(workers) is workers[0]

    def test_best_fit_sees_reservations_not_raw_capacity(self, engine):
        """available_gb (capacity minus reservations) drives the fit."""
        workers = make_workers(engine, memories=(10.0, 9.0))
        add_task(workers[0], "resident")  # 2 GB reserved -> 8.0 available
        assert best_fit_policy(workers) is workers[0]
        assert worst_fit_policy(workers) is workers[1]

    def test_empty_eligible_list_rejects(self, engine):
        for policy in NAMED_POLICIES.values():
            assert policy([]) is None


class TestLeastLoadedPolicy:
    def test_fewest_live_tasks_wins(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0))
        add_task(workers[0], "a")
        assert least_loaded_policy(workers) is workers[1]

    def test_tie_goes_to_first_in_order(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0, 20.0))
        add_task(workers[0], "a")
        add_task(workers[1], "b")
        add_task(workers[2], "c")
        assert least_loaded_policy(workers) is workers[0]

    def test_ignores_terminated_tasks(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0))
        doomed = add_task(workers[0], "a")
        add_task(workers[1], "b")
        workers[0].kill_task(doomed, "test")
        assert least_loaded_policy(workers) is workers[0]


class TestFirstFitPolicy:
    def test_takes_first_eligible(self, engine):
        workers = make_workers(engine, memories=(3.0, 20.0))
        assert first_fit_policy(workers) is workers[0]


class TestEdfPolicy:
    def test_prefers_worker_with_fewest_earlier_deadlines(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0))
        # Worker 0 holds two tasks due before the incoming deadline;
        # worker 1 holds two due *after* it (they don't delay it at all).
        add_task(workers[0], "a", deadline_s=5.0)
        add_task(workers[0], "b", deadline_s=8.0)
        add_task(workers[1], "c", deadline_s=50.0)
        add_task(workers[1], "d", deadline_s=60.0)
        spec = make_spec(name="urgent", deadline_s=10.0)
        assert edf_policy(workers, spec) is workers[1]
        assert least_loaded_policy(workers, spec) is workers[0]  # contrast

    def test_best_effort_tasks_never_count_as_ahead(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0))
        add_task(workers[0], "be1")  # no deadline
        add_task(workers[0], "be2")
        add_task(workers[1], "due", deadline_s=1.0)
        spec = make_spec(name="urgent", deadline_s=10.0)
        assert edf_policy(workers, spec) is workers[0]

    def test_tie_falls_back_to_least_loaded(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0))
        add_task(workers[0], "a", deadline_s=50.0)
        add_task(workers[0], "b", deadline_s=60.0)
        add_task(workers[1], "c", deadline_s=70.0)
        spec = make_spec(name="urgent", deadline_s=10.0)
        # Zero tasks are due before the request on either worker: the
        # tie breaks on live-task count.
        assert edf_policy(workers, spec) is workers[1]

    def test_without_spec_degrades_to_least_loaded(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0))
        add_task(workers[0], "a", deadline_s=5.0)
        assert edf_policy(workers) is workers[1]


class TestStarvationAwarePolicy:
    def test_avoids_worker_with_oldest_backlog(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0))
        engine.run(until=10.0)
        add_task(workers[0], "ancient", submitted_at=1.0)   # waited 9 s
        add_task(workers[1], "recent", submitted_at=9.0)    # waited 1 s
        spec = make_spec(name="new", submitted_at=10.0)
        assert starvation_aware_policy(workers, spec) is workers[1]

    def test_empty_workers_beat_any_backlog(self, engine):
        workers = make_workers(engine, memories=(20.0, 20.0))
        engine.run(until=5.0)
        add_task(workers[0], "waiting", submitted_at=0.0)
        assert starvation_aware_policy(workers) is workers[1]


class TestManagerIntegration:
    def test_manager_passes_spec_to_policy(self, engine):
        seen = []

        def spy_policy(eligible, spec=None):
            seen.append(spec)
            return eligible[0] if eligible else None

        workers = make_workers(engine, memories=(20.0,))
        manager = SideTaskManager(engine, workers, policy=spy_policy)
        spec = make_spec(name="tracked", deadline_s=3.0)
        manager.submit(spec)
        assert seen == [spec]

    def test_registry_names_are_complete(self):
        assert set(NAMED_POLICIES) == {
            "least_loaded", "first_fit", "best_fit", "worst_fit",
            "edf", "starvation_aware",
        }
