"""Tests for the GPU resource-limit mechanisms (paper section 4.5, Fig. 8)."""

from __future__ import annotations

import pytest

from repro.core.manager import SideTaskManager
from repro.core.profiler import profile_side_task
from repro.core.states import SideTaskState
from repro.core.task_spec import TaskSpec
from repro.core.worker import ManagedBubble, SideTaskWorker
from repro.gpu.cluster import make_server_i
from repro.sim.engine import Engine
from repro.workloads.misbehaving import MemoryLeakTask, NonPausingTask
from repro.workloads.model_training import make_resnet18


def build(engine, workload_factory, memory_gb=20.0, limit=None,
          interface="iterative"):
    # record_occupancy: the program-directed-limit test reads the trace.
    server = make_server_i(engine, record_occupancy=True)
    worker = SideTaskWorker(engine, server.gpu(0), 0,
                            side_task_memory_gb=memory_gb, mps=server.mps)
    manager = SideTaskManager(engine, [worker])
    # Profile a fresh probe instance so the serving instance starts clean.
    profile = profile_side_task(workload_factory(), interface=interface)
    workload = workload_factory()
    spec = TaskSpec(workload=workload, profile=profile, memory_limit_gb=limit)
    manager.submit(spec, interface)
    runtime = worker.all_tasks[0]
    engine.run(until=engine.now + 1.0)  # create + init settle
    return server, worker, manager, runtime, workload


class TestProgramDirectedLimit:
    def test_step_not_started_when_remaining_time_too_short(self, engine):
        _server, _worker, manager, runtime, workload = build(
            engine, make_resnet18)
        # A bubble shorter than one step: the gate must refuse.
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=engine.now + 0.02,
                                         available_gb=20.0))
        engine.run(until=engine.now + 0.5)
        assert workload.steps_done == 0

    def test_insufficient_time_is_accounted(self, engine):
        _server, _worker, manager, runtime, workload = build(
            engine, make_resnet18)
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=engine.now + 0.3,
                                         available_gb=20.0))
        engine.run(until=engine.now + 1.0)
        assert workload.steps_done > 0
        assert runtime.insufficient_s > 0  # the unusable bubble tail

    def test_steps_fit_within_bubble(self, engine):
        _server, _worker, manager, runtime, workload = build(
            engine, make_resnet18)
        end = engine.now + 0.5
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=end,
                                         available_gb=20.0))
        engine.run(until=engine.now + 1.0)
        # All step kernels must have completed before (approximately) the
        # bubble end the manager announced.
        last_point = max(
            (t for t, _tot, _hi, lo in _server.gpu(0).occupancy_trace if lo > 0),
            default=0.0,
        )
        assert last_point <= end + 0.02


class TestFrameworkEnforcedLimit:
    def test_non_pausing_task_is_killed_after_grace_period(self, engine):
        """Figure 8(a): the worker terminates the task via SIGKILL."""
        server, worker, manager, runtime, workload = build(
            engine, NonPausingTask)
        # One bubble long enough for the 16 honest steps plus the runaway
        # kernel that then refuses to pause at the bubble's end.
        bubble_end = engine.now + 0.65
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=bubble_end,
                                         available_gb=20.0))
        engine.run(until=engine.now + 3.0)
        assert workload.steps_done >= workload.honest_steps
        assert not runtime.proc.alive
        assert runtime.machine.terminated
        assert worker.kills and "time limit" in worker.kills[0][1]
        # The kill lands about one grace period after the pause attempt.
        stopped_at = [
            when for when, state in runtime.machine.history
            if state.value == "STOPPED"
        ][-1]
        from repro import calibration
        assert stopped_at - bubble_end == pytest.approx(
            calibration.GRACE_PERIOD_S, abs=0.1
        )

    def test_well_behaved_task_is_not_killed(self, engine):
        _server, worker, manager, runtime, workload = build(
            engine, make_resnet18)
        for _ in range(3):
            manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                             expected_end=engine.now + 0.4,
                                             available_gb=20.0))
            engine.run(until=engine.now + 1.2)
        assert runtime.proc.alive
        assert not worker.kills


class TestMemoryLimit:
    def test_leaking_task_is_oom_killed_at_its_limit(self, engine):
        """Figure 8(b): the 8 GB cap kills the leaking side task."""
        server, worker, manager, runtime, workload = build(
            engine, MemoryLeakTask, limit=8.0
        )
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=engine.now + 5.0,
                                         available_gb=20.0))
        engine.run(until=engine.now + 6.0)
        assert not runtime.proc.alive
        assert runtime.failure is not None and "OOM" in runtime.failure
        # The process never exceeded its cap and its memory returned to 0.
        peak = max(gb for _t, gb in runtime.proc.memory_trace)
        assert peak <= 8.0 + 1e-6
        assert runtime.proc.memory_trace[-1][1] == 0.0

    def test_oom_leaves_other_processes_untouched(self, engine):
        server, worker, manager, runtime, workload = build(
            engine, lambda: MemoryLeakTask(leak_gb_per_step=2.0), limit=6.0)
        from repro.gpu.process import GPUProcess
        bystander = GPUProcess(engine, server.gpu(0), "training-sim")
        bystander.allocate(20.0)
        manager.add_bubble(ManagedBubble(stage=0, start=engine.now,
                                         expected_end=engine.now + 5.0,
                                         available_gb=20.0))
        engine.run(until=engine.now + 6.0)
        assert not runtime.proc.alive
        assert bystander.alive
        assert bystander.memory_gb == pytest.approx(20.0)
