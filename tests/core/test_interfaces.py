"""Unit tests for the user-facing side-task interfaces."""

from __future__ import annotations

import pytest

from repro import calibration
from repro.core.interfaces import SideTaskContext
from repro.gpu.process import GPUProcess
from repro.sim.rng import RandomStreams
from repro.workloads.model_training import make_resnet18


@pytest.fixture
def ctx(engine, gpu):
    proc = GPUProcess(engine, gpu, "task")
    return SideTaskContext(engine, proc, RandomStreams(0), "task")


class TestContext:
    def test_now_tracks_engine(self, engine, ctx):
        assert ctx.now == 0.0
        engine.run(until=2.0)
        assert ctx.now == 2.0

    def test_jitter_of_zero_is_zero(self, ctx):
        assert ctx.jitter(0.0) == 0.0

    def test_jitter_is_deterministic_per_task_name(self, engine, gpu):
        first = SideTaskContext(engine, GPUProcess(engine, gpu, "a"),
                                RandomStreams(1), "a")
        second = SideTaskContext(engine, GPUProcess(engine, gpu, "a"),
                                 RandomStreams(1), "a")
        assert first.jitter(1.0) == second.jitter(1.0)


class TestIterativeDefaults:
    def test_default_step_realizes_profiled_duration(self, engine, ctx):
        task = make_resnet18()
        task.create_side_task()
        task.init_side_task(ctx)

        def body():
            yield from task.run_next_step(ctx)

        proc = engine.process(body())
        engine.run(until=proc)
        assert engine.now == pytest.approx(
            calibration.RESNET18.step_time_s, rel=0.15
        )
        assert task.steps_done == 1
        assert task.units_done == 64.0

    def test_default_init_allocates_profiled_memory(self, engine, ctx):
        task = make_resnet18()
        task.create_side_task()
        task.init_side_task(ctx)
        assert ctx.proc.memory_gb == pytest.approx(
            calibration.RESNET18.memory_gb
        )
        task.stop_side_task(ctx)
        assert ctx.proc.memory_gb == 0.0

    def test_stop_is_idempotent(self, engine, ctx):
        task = make_resnet18()
        task.create_side_task()
        task.init_side_task(ctx)
        task.stop_side_task(ctx)
        task.stop_side_task(ctx)  # second call must not raise
        assert ctx.proc.memory_gb == 0.0

    def test_endless_by_default(self):
        assert make_resnet18().is_finished is False

    def test_step_splits_host_and_kernel_by_gpu_duty(self, engine, ctx):
        task = make_resnet18()
        task.create_side_task()
        task.init_side_task(ctx)

        def body():
            yield from task.run_next_step(ctx)

        engine.process(body())
        engine.run()
        # The GPU was busy for ~gpu_duty of the step.
        gpu = ctx.proc.device
        busy = gpu.busy_time
        expected = (calibration.RESNET18.step_time_s
                    * calibration.RESNET18.gpu_duty)
        assert busy == pytest.approx(expected, rel=0.2)
