"""Unit and property tests for the Figure-4(a) state machine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.states import (
    CORE_TRANSITIONS,
    SideTaskState,
    StateMachine,
    TRANSITION_TABLE,
    Transition,
    legal_transitions,
)
from repro.errors import IllegalTransitionError


class TestTransitionTable:
    def test_happy_path(self):
        machine = StateMachine()
        machine.apply(Transition.CREATE, 0.0)
        machine.apply(Transition.INIT, 1.0)
        machine.apply(Transition.START, 2.0)
        machine.apply(Transition.RUN_NEXT_STEP, 2.5)
        machine.apply(Transition.PAUSE, 3.0)
        machine.apply(Transition.START, 4.0)
        machine.apply(Transition.STOP, 5.0)
        assert machine.state is SideTaskState.STOPPED
        assert machine.terminated

    def test_stop_reachable_from_created_paused_running(self):
        """Figure 4a: StopSideTask from CREATED, PAUSED, and RUNNING."""
        for path in ([Transition.CREATE],
                     [Transition.CREATE, Transition.INIT],
                     [Transition.CREATE, Transition.INIT, Transition.START]):
            machine = StateMachine()
            for transition in path:
                machine.apply(transition)
            machine.apply(Transition.STOP)
            assert machine.terminated

    def test_run_next_step_is_self_loop(self):
        machine = StateMachine(state=SideTaskState.RUNNING)
        machine.apply(Transition.RUN_NEXT_STEP)
        assert machine.state is SideTaskState.RUNNING

    def test_illegal_transitions_raise(self):
        machine = StateMachine()
        with pytest.raises(IllegalTransitionError):
            machine.apply(Transition.START)  # SUBMITTED -> RUNNING illegal
        machine.apply(Transition.CREATE)
        with pytest.raises(IllegalTransitionError):
            machine.apply(Transition.PAUSE)

    def test_stopped_is_terminal(self):
        machine = StateMachine(state=SideTaskState.STOPPED)
        for transition in Transition:
            with pytest.raises(IllegalTransitionError):
                machine.apply(transition)

    def test_submitted_cannot_stop_directly(self):
        """SUBMITTED has no process yet — nothing to stop (Figure 4a)."""
        assert Transition.STOP not in legal_transitions(SideTaskState.SUBMITTED)

    def test_legal_transitions_match_table(self):
        for state in SideTaskState:
            expected = {
                transition
                for (from_state, transition) in TRANSITION_TABLE
                if from_state is state
            }
            assert legal_transitions(state) == expected

    def test_six_core_transitions(self):
        """The paper's framework has exactly six transitions; the
        recovery layer adds four more."""
        assert len(CORE_TRANSITIONS) == 6
        assert len(Transition) == 10

    def test_error_reports_state_transition_and_task(self):
        machine = StateMachine(task_id="pagerank-0")
        with pytest.raises(IllegalTransitionError) as excinfo:
            machine.apply(Transition.START)
        error = excinfo.value
        assert error.current == "SUBMITTED"
        assert error.requested == "StartSideTask"
        assert error.task_id == "pagerank-0"
        message = str(error)
        assert "SUBMITTED" in message
        assert "StartSideTask" in message
        assert "pagerank-0" in message


class TestRecoveryEdges:
    """The CHECKPOINTED/PREEMPTED/RESUMED extension, exhaustively."""

    RECOVERY_TABLE = {
        (SideTaskState.RUNNING, Transition.CHECKPOINT):
            SideTaskState.CHECKPOINTED,
        (SideTaskState.CHECKPOINTED, Transition.RESUME):
            SideTaskState.RUNNING,
        (SideTaskState.CREATED, Transition.PREEMPT):
            SideTaskState.PREEMPTED,
        (SideTaskState.PAUSED, Transition.PREEMPT):
            SideTaskState.PREEMPTED,
        (SideTaskState.RUNNING, Transition.PREEMPT):
            SideTaskState.PREEMPTED,
        (SideTaskState.CHECKPOINTED, Transition.PREEMPT):
            SideTaskState.PREEMPTED,
        (SideTaskState.RESUMED, Transition.PREEMPT):
            SideTaskState.PREEMPTED,
        (SideTaskState.PREEMPTED, Transition.RESTORE):
            SideTaskState.RESUMED,
        (SideTaskState.RESUMED, Transition.START):
            SideTaskState.RUNNING,
        (SideTaskState.CHECKPOINTED, Transition.STOP):
            SideTaskState.STOPPED,
        (SideTaskState.PREEMPTED, Transition.STOP):
            SideTaskState.STOPPED,
        (SideTaskState.RESUMED, Transition.STOP):
            SideTaskState.STOPPED,
    }

    PAPER_TABLE = {
        (SideTaskState.SUBMITTED, Transition.CREATE): SideTaskState.CREATED,
        (SideTaskState.CREATED, Transition.INIT): SideTaskState.PAUSED,
        (SideTaskState.PAUSED, Transition.START): SideTaskState.RUNNING,
        (SideTaskState.RUNNING, Transition.PAUSE): SideTaskState.PAUSED,
        (SideTaskState.RUNNING, Transition.RUN_NEXT_STEP):
            SideTaskState.RUNNING,
        (SideTaskState.CREATED, Transition.STOP): SideTaskState.STOPPED,
        (SideTaskState.PAUSED, Transition.STOP): SideTaskState.STOPPED,
        (SideTaskState.RUNNING, Transition.STOP): SideTaskState.STOPPED,
    }

    def test_table_is_exactly_paper_plus_recovery(self):
        """The paper's 8 edges are intact and only the 12 recovery edges
        were added — no edge slipped in or out."""
        assert TRANSITION_TABLE == {**self.PAPER_TABLE, **self.RECOVERY_TABLE}

    @pytest.mark.parametrize("state,transition", sorted(
        (
            (state, transition)
            for state in SideTaskState
            for transition in Transition
            if (state, transition) not in TRANSITION_TABLE
        ),
        key=lambda pair: (pair[0].value, pair[1].value),
    ))
    def test_every_missing_edge_is_illegal(self, state, transition):
        machine = StateMachine(state=state, task_id="t")
        with pytest.raises(IllegalTransitionError):
            machine.apply(transition)
        assert machine.state is state

    def test_checkpoint_round_trip(self):
        machine = StateMachine(state=SideTaskState.RUNNING)
        machine.apply(Transition.CHECKPOINT, 1.0)
        assert machine.state is SideTaskState.CHECKPOINTED
        machine.apply(Transition.RESUME, 1.1)
        assert machine.state is SideTaskState.RUNNING

    def test_preempt_restore_start_cycle(self):
        machine = StateMachine(state=SideTaskState.RUNNING)
        machine.apply(Transition.PREEMPT, 1.0)
        assert machine.resumable
        machine.apply(Transition.RESTORE, 2.0)
        assert machine.state is SideTaskState.RESUMED
        machine.apply(Transition.START, 3.0)
        assert machine.state is SideTaskState.RUNNING

    def test_only_preempted_is_resumable(self):
        for state in SideTaskState:
            machine = StateMachine(state=state)
            assert machine.resumable == (state is SideTaskState.PREEMPTED)

    def test_checkpoint_only_from_running(self):
        for state in SideTaskState:
            legal = Transition.CHECKPOINT in legal_transitions(state)
            assert legal == (state is SideTaskState.RUNNING)

    def test_stopped_still_the_only_terminal_state(self):
        """STOP must remain reachable from every non-terminal state with
        a process, and STOPPED must remain absorbing."""
        for state in SideTaskState:
            if state in (SideTaskState.SUBMITTED, SideTaskState.STOPPED):
                assert Transition.STOP not in legal_transitions(state)
            else:
                assert Transition.STOP in legal_transitions(state)
        assert legal_transitions(SideTaskState.STOPPED) == set()


class TestTimeInState:
    def test_accounts_time_per_state(self):
        machine = StateMachine()
        machine.apply(Transition.CREATE, 0.0)
        machine.apply(Transition.INIT, 2.0)
        machine.apply(Transition.START, 5.0)
        machine.apply(Transition.PAUSE, 9.0)
        assert machine.time_in_state(SideTaskState.CREATED, until=10.0) == 2.0
        assert machine.time_in_state(SideTaskState.PAUSED, until=10.0) == 4.0
        assert machine.time_in_state(SideTaskState.RUNNING, until=10.0) == 4.0


@given(st.lists(st.sampled_from(list(Transition)), max_size=30))
def test_property_machine_never_enters_undefined_state(transitions):
    """Any transition sequence leaves the machine in a defined state, and
    illegal steps change nothing."""
    machine = StateMachine()
    for transition in transitions:
        before = machine.state
        if machine.can_apply(transition):
            machine.apply(transition)
            assert machine.state is TRANSITION_TABLE[(before, transition)]
        else:
            with pytest.raises(IllegalTransitionError):
                machine.apply(transition)
            assert machine.state is before
        assert machine.state in SideTaskState


@given(st.lists(st.sampled_from(list(Transition)), max_size=30))
def test_property_history_is_consistent(transitions):
    machine = StateMachine()
    applied = 0
    for i, transition in enumerate(transitions):
        if machine.can_apply(transition):
            machine.apply(transition, now=float(i))
            applied += 1
    assert len(machine.history) == applied
    times = [when for when, _state in machine.history]
    assert times == sorted(times)
