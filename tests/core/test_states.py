"""Unit and property tests for the Figure-4(a) state machine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.states import (
    SideTaskState,
    StateMachine,
    TRANSITION_TABLE,
    Transition,
    legal_transitions,
)
from repro.errors import IllegalTransitionError


class TestTransitionTable:
    def test_happy_path(self):
        machine = StateMachine()
        machine.apply(Transition.CREATE, 0.0)
        machine.apply(Transition.INIT, 1.0)
        machine.apply(Transition.START, 2.0)
        machine.apply(Transition.RUN_NEXT_STEP, 2.5)
        machine.apply(Transition.PAUSE, 3.0)
        machine.apply(Transition.START, 4.0)
        machine.apply(Transition.STOP, 5.0)
        assert machine.state is SideTaskState.STOPPED
        assert machine.terminated

    def test_stop_reachable_from_created_paused_running(self):
        """Figure 4a: StopSideTask from CREATED, PAUSED, and RUNNING."""
        for path in ([Transition.CREATE],
                     [Transition.CREATE, Transition.INIT],
                     [Transition.CREATE, Transition.INIT, Transition.START]):
            machine = StateMachine()
            for transition in path:
                machine.apply(transition)
            machine.apply(Transition.STOP)
            assert machine.terminated

    def test_run_next_step_is_self_loop(self):
        machine = StateMachine(state=SideTaskState.RUNNING)
        machine.apply(Transition.RUN_NEXT_STEP)
        assert machine.state is SideTaskState.RUNNING

    def test_illegal_transitions_raise(self):
        machine = StateMachine()
        with pytest.raises(IllegalTransitionError):
            machine.apply(Transition.START)  # SUBMITTED -> RUNNING illegal
        machine.apply(Transition.CREATE)
        with pytest.raises(IllegalTransitionError):
            machine.apply(Transition.PAUSE)

    def test_stopped_is_terminal(self):
        machine = StateMachine(state=SideTaskState.STOPPED)
        for transition in Transition:
            with pytest.raises(IllegalTransitionError):
                machine.apply(transition)

    def test_submitted_cannot_stop_directly(self):
        """SUBMITTED has no process yet — nothing to stop (Figure 4a)."""
        assert Transition.STOP not in legal_transitions(SideTaskState.SUBMITTED)

    def test_legal_transitions_match_table(self):
        for state in SideTaskState:
            expected = {
                transition
                for (from_state, transition) in TRANSITION_TABLE
                if from_state is state
            }
            assert legal_transitions(state) == expected

    def test_six_distinct_transitions(self):
        """The paper's framework has exactly six transitions."""
        assert len(Transition) == 6


class TestTimeInState:
    def test_accounts_time_per_state(self):
        machine = StateMachine()
        machine.apply(Transition.CREATE, 0.0)
        machine.apply(Transition.INIT, 2.0)
        machine.apply(Transition.START, 5.0)
        machine.apply(Transition.PAUSE, 9.0)
        assert machine.time_in_state(SideTaskState.CREATED, until=10.0) == 2.0
        assert machine.time_in_state(SideTaskState.PAUSED, until=10.0) == 4.0
        assert machine.time_in_state(SideTaskState.RUNNING, until=10.0) == 4.0


@given(st.lists(st.sampled_from(list(Transition)), max_size=30))
def test_property_machine_never_enters_undefined_state(transitions):
    """Any transition sequence leaves the machine in a defined state, and
    illegal steps change nothing."""
    machine = StateMachine()
    for transition in transitions:
        before = machine.state
        if machine.can_apply(transition):
            machine.apply(transition)
            assert machine.state is TRANSITION_TABLE[(before, transition)]
        else:
            with pytest.raises(IllegalTransitionError):
                machine.apply(transition)
            assert machine.state is before
        assert machine.state in SideTaskState


@given(st.lists(st.sampled_from(list(Transition)), max_size=30))
def test_property_history_is_consistent(transitions):
    machine = StateMachine()
    applied = 0
    for i, transition in enumerate(transitions):
        if machine.can_apply(transition):
            machine.apply(transition, now=float(i))
            applied += 1
    assert len(machine.history) == applied
    times = [when for when, _state in machine.history]
    assert times == sorted(times)
