"""Unit tests for Algorithm 1 (assignment) and Algorithm 2 (management)."""

from __future__ import annotations

import pytest

from repro.core.manager import SideTaskManager
from repro.core.policies import (
    best_fit_policy,
    first_fit_policy,
    least_loaded_policy,
    worst_fit_policy,
)
from repro.core.profiler import profile_side_task
from repro.core.runtime import Command, CommandKind
from repro.core.states import SideTaskState
from repro.core.task_spec import TaskProfile, TaskSpec
from repro.core.worker import ManagedBubble, SideTaskWorker
from repro.errors import TaskRejectedError
from repro.gpu.cluster import make_server_i
from repro.sim.engine import Engine
from repro.workloads.model_training import make_resnet18


def make_workers(engine, memories=(3.0, 10.65, 18.3, 25.95)):
    server = make_server_i(engine)
    return [
        SideTaskWorker(engine, server.gpu(stage), stage,
                       side_task_memory_gb=memory, mps=server.mps)
        for stage, memory in enumerate(memories)
    ], server


def spec_with_memory(gb, step_s=0.03):
    """A task whose real allocation matches its profiled memory."""
    import dataclasses

    from repro import calibration
    from repro.workloads.model_training import ModelTrainingTask

    perf = dataclasses.replace(
        calibration.RESNET18, memory_gb=gb, step_time_s=step_s
    )
    return TaskSpec(
        workload=ModelTrainingTask(perf),
        profile=TaskProfile(gpu_memory_gb=gb, step_time_s=step_s,
                            units_per_step=64.0),
    )


class TestAlgorithm1:
    def test_assigns_to_least_loaded_eligible_worker(self, engine):
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        first = manager.submit(spec_with_memory(2.6))
        assert first is workers[0]  # all eligible, all empty, first wins
        second = manager.submit(spec_with_memory(2.6))
        assert second is workers[1]  # worker0 now has one task

    def test_memory_filter_excludes_small_workers(self, engine):
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        assigned = manager.submit(spec_with_memory(11.5))  # > stages 0-1
        assert assigned is workers[2]

    def test_rejects_when_nothing_fits(self, engine):
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        with pytest.raises(TaskRejectedError):
            manager.submit(spec_with_memory(30.0))
        assert len(manager.rejections) == 1

    def test_rejection_carries_policy_and_queue_context(self, engine):
        """A rejection names the policy that said no, the eligibility
        count, and the caller's queue depth (satellite of the API
        redesign: no more bare TaskRejectedError)."""
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        with pytest.raises(TaskRejectedError) as exc_info:
            manager.submit(spec_with_memory(30.0), queue_depth=5)
        error = exc_info.value
        assert error.policy == "least_loaded_policy"
        assert error.queue_depth == 5
        assert error.eligible_workers == 0
        assert error.task_name
        message = str(error)
        assert "policy=least_loaded_policy" in message
        assert "0/4 workers eligible" in message
        assert "queue depth 5" in message
        # The manager's rejection log records the same context.
        _name, reason = manager.rejections[0]
        assert "queue depth 5" in reason

    def test_reservation_prevents_memory_oversubscription(self, engine):
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        assert manager.submit(spec_with_memory(11.5)) is workers[2]
        assert manager.submit(spec_with_memory(11.5)) is workers[3]
        # worker3 still has 25.95 - 11.5 > 11.5 GB free: a third copy fits
        assert manager.submit(spec_with_memory(11.5)) is workers[3]
        with pytest.raises(TaskRejectedError):
            manager.submit(spec_with_memory(11.5))  # nothing left now

    def test_boundary_requires_strictly_more_memory(self, engine):
        """Algorithm 1 line 5: Worker.GPUMem > Task.GPUMem (strict)."""
        workers, _ = make_workers(engine, memories=(5.0, 5.0, 5.0, 5.0))
        manager = SideTaskManager(engine, workers)
        with pytest.raises(TaskRejectedError):
            manager.submit(spec_with_memory(5.0))


class TestPolicies:
    def test_policy_behaviours_differ(self, engine):
        workers, _ = make_workers(engine)
        eligible = workers[1:]  # 10.65, 18.3, 25.95
        assert first_fit_policy(eligible) is workers[1]
        assert best_fit_policy(eligible) is workers[1]
        assert worst_fit_policy(eligible) is workers[3]
        assert least_loaded_policy(eligible) is workers[1]
        assert least_loaded_policy([]) is None
        assert first_fit_policy([]) is None


class TestAlgorithm2:
    def _submit_and_settle(self, engine, workers, manager, spec):
        runtime = None
        manager.submit(spec)
        for worker in workers:
            if worker.all_tasks:
                runtime = worker.all_tasks[-1]
        engine.run(until=engine.now + 1.0)
        return runtime

    def test_task_is_inited_after_assignment(self, engine):
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        runtime = self._submit_and_settle(engine, workers, manager,
                                          spec_with_memory(2.6))
        assert runtime.state is SideTaskState.PAUSED  # init done, waiting

    def test_bubble_starts_and_pauses_task(self, engine):
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        runtime = self._submit_and_settle(engine, workers, manager,
                                          spec_with_memory(2.6))
        bubble = ManagedBubble(stage=0, start=engine.now,
                               expected_end=engine.now + 0.5,
                               available_gb=3.0)
        manager.add_bubble(bubble)
        engine.run(until=engine.now + 0.2)
        assert runtime.state is SideTaskState.RUNNING
        engine.run(until=engine.now + 1.0)  # past the bubble's end
        assert runtime.state is SideTaskState.PAUSED
        assert runtime.workload.steps_done > 0

    def test_steps_only_run_inside_bubbles(self, engine):
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        runtime = self._submit_and_settle(engine, workers, manager,
                                          spec_with_memory(2.6))
        engine.run(until=engine.now + 5.0)  # no bubbles at all
        assert runtime.workload.steps_done == 0

    def test_stale_bubble_is_discarded(self, engine):
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        runtime = self._submit_and_settle(engine, workers, manager,
                                          spec_with_memory(2.6))
        stale = ManagedBubble(stage=0, start=engine.now,
                              expected_end=engine.now + 0.0005,
                              available_gb=3.0)
        manager.add_bubble(stale)
        engine.run(until=engine.now + 0.5)
        assert runtime.workload.steps_done == 0

    def test_next_task_served_after_first_finishes(self, engine):
        # Only worker0 is eligible; two small tasks fit its reservation.
        workers, _ = make_workers(engine, memories=(3.0, 0.0, 0.0, 0.0))
        manager = SideTaskManager(engine, workers)
        manager.submit(spec_with_memory(1.2))
        manager.submit(spec_with_memory(1.2))
        worker0 = workers[0]
        assert worker0.get_task_num() == 2
        engine.run(until=engine.now + 1.0)
        task_one = worker0.current_task
        manager.stop_task(task_one)
        engine.run(until=engine.now + 1.0)
        assert task_one.machine.terminated
        assert worker0.current_task is not task_one
        assert worker0.current_task is not None

    def test_reported_end_pauses_before_expected_end(self, engine):
        """The manager honours an actual-end report that arrives early."""
        workers, _ = make_workers(engine)
        manager = SideTaskManager(engine, workers)
        runtime = self._submit_and_settle(engine, workers, manager,
                                          spec_with_memory(2.6))
        bubble = ManagedBubble(stage=0, start=engine.now,
                               expected_end=engine.now + 10.0,
                               available_gb=3.0)
        manager.add_bubble(bubble)
        engine.run(until=engine.now + 0.3)
        assert runtime.state is SideTaskState.RUNNING
        manager.bubble_ended(0, engine.now)
        engine.run(until=engine.now + 0.3)
        assert runtime.state is SideTaskState.PAUSED
