"""Unit tests for the per-GPU side-task worker."""

from __future__ import annotations

import pytest

from repro.core.task_spec import TaskProfile, TaskSpec
from repro.core.worker import ManagedBubble, SideTaskWorker
from repro.errors import SideTaskError
from repro.gpu.cluster import make_server_i
from repro.workloads.model_training import make_resnet18


@pytest.fixture
def worker(engine):
    server = make_server_i(engine)
    return SideTaskWorker(engine, server.gpu(0), 0, side_task_memory_gb=10.0,
                          mps=server.mps)


def spec():
    return TaskSpec(workload=make_resnet18(),
                    profile=TaskProfile(gpu_memory_gb=2.63, step_time_s=0.03,
                                        units_per_step=64.0))


class TestTaskLifecycle:
    def test_add_task_reserves_memory_and_sets_limit(self, engine, worker):
        runtime = worker.add_task(spec(), "iterative")
        assert worker.available_gb == pytest.approx(10.0 - 2.63)
        assert worker.get_task_num() == 1
        # MPS limit: requested 1.25x headroom, clamped to worker memory.
        assert runtime.proc.memory_limit_gb == pytest.approx(2.63 * 1.25)

    def test_limit_clamped_to_worker_memory(self, engine):
        server = make_server_i(engine)
        tight = SideTaskWorker(engine, server.gpu(0), 0,
                               side_task_memory_gb=3.0, mps=server.mps)
        runtime = tight.add_task(spec(), "iterative")
        assert runtime.proc.memory_limit_gb == pytest.approx(3.0)

    def test_unknown_interface_rejected(self, engine, worker):
        with pytest.raises(SideTaskError):
            worker.add_task(spec(), "quantum")

    def test_release_is_idempotent(self, engine, worker):
        runtime = worker.add_task(spec(), "iterative")
        worker.release(runtime)
        worker.release(runtime)
        assert worker.available_gb == pytest.approx(10.0)

    def test_next_task_skips_terminated(self, engine, worker):
        first = worker.add_task(spec(), "iterative")
        second = worker.add_task(spec(), "iterative")
        first.kill("test")
        assert worker.next_task() is second

    def test_stop_tears_down_container(self, engine, worker):
        runtime = worker.add_task(spec(), "iterative")
        worker.stop()
        engine.run()
        assert not runtime.proc.alive
        assert not worker.container.running


class TestBubbleQueue:
    def test_update_skips_stale_bubbles(self, engine, worker):
        stale = ManagedBubble(stage=0, start=0.0, expected_end=0.0,
                              available_gb=10.0)
        fresh = ManagedBubble(stage=0, start=0.0, expected_end=100.0,
                              available_gb=10.0)
        worker.enqueue_bubble(stale)
        worker.enqueue_bubble(fresh)
        assert worker.has_new_bubble()
        worker.update_current_bubble()
        assert worker.current_bubble is fresh

    def test_all_stale_keeps_previous(self, engine, worker):
        current = ManagedBubble(stage=0, start=0.0, expected_end=100.0,
                                available_gb=10.0)
        worker.current_bubble = current
        worker.enqueue_bubble(
            ManagedBubble(stage=0, start=0.0, expected_end=0.0,
                          available_gb=10.0)
        )
        worker.update_current_bubble()
        assert worker.current_bubble is current

    def test_has_ended_semantics(self, engine):
        bubble = ManagedBubble(stage=0, start=0.0, expected_end=5.0,
                               available_gb=1.0)
        assert not bubble.has_ended(4.9)
        assert bubble.has_ended(5.0)
        # An explicit end report can end it earlier than expected.
        bubble.reported_end = 3.0
        assert bubble.has_ended(3.0)
        # No expected end and no report: never considered ended.
        open_bubble = ManagedBubble(stage=0, start=0.0, expected_end=None,
                                    available_gb=1.0)
        assert not open_bubble.has_ended(1e9)
