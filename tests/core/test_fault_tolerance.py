"""Fault-tolerance tests: side-task failures never hurt training.

Paper section 8: "since FreeRide deploys side tasks in Docker containers
as processes that are independent of the pipeline training, failures of
side tasks, such as illegal memory access, will not impact the main
pipeline training workload."
"""

from __future__ import annotations

import pytest

from repro.core.middleware import FreeRide
from repro.gpu.cluster import make_server_i
from repro.pipeline.config import TrainConfig, model_config
from repro.pipeline.engine import PipelineEngine
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.workloads.misbehaving import MemoryLeakTask, NonPausingTask
from repro.workloads.registry import workload_factory


@pytest.fixture(scope="module")
def config() -> TrainConfig:
    return TrainConfig(model=model_config("3.6B"), epochs=3, op_jitter=0.01,
                       seed=0)


@pytest.fixture(scope="module")
def baseline_time(config) -> float:
    sim = Engine()
    return PipelineEngine(
        sim, make_server_i(sim), config, rng=RandomStreams(0).spawn("pipeline")
    ).run().total_time


class TestFaultIsolation:
    def test_oom_task_does_not_break_training(self, config, baseline_time):
        freeride = FreeRide(config)
        freeride.submit(lambda: MemoryLeakTask(), name="leaker",
                        memory_limit_gb=2.5)
        result = freeride.run()
        report = result.task("leaker")
        assert report.failure is not None and "OOM" in report.failure
        # Training completed all epochs at normal speed.
        assert len(result.training.trace.epochs) == config.epochs
        assert result.training.total_time / baseline_time - 1 < 0.05

    def test_killed_task_does_not_break_training(self, config, baseline_time):
        freeride = FreeRide(config)
        freeride.submit(lambda: NonPausingTask(actual_kernel_s=8.0),
                        name="runaway")
        result = freeride.run()
        report = result.task("runaway")
        assert report.failure is not None and "time limit" in report.failure
        assert len(result.training.trace.epochs) == config.epochs

    def test_failed_task_memory_returns_to_device(self, config):
        freeride = FreeRide(config)
        freeride.submit(lambda: MemoryLeakTask(), name="leaker",
                        memory_limit_gb=2.5)
        freeride.run()
        stage = freeride._submissions[0][2]
        gpu = freeride.server.gpu(stage)
        # Only the training allocation remains.
        training_gb = freeride.memory.stage_memory_gb(stage)
        assert gpu.used_gb == pytest.approx(training_gb, abs=0.01)

    def test_healthy_task_unaffected_by_failing_neighbour(self, config):
        freeride = FreeRide(config)
        freeride.submit(workload_factory("pagerank"), name="healthy")
        freeride.submit(lambda: MemoryLeakTask(), name="leaker",
                        memory_limit_gb=2.5)
        result = freeride.run()
        assert result.task("healthy").failure is None
        assert result.task("healthy").steps_done > 0
        assert result.task("leaker").failure is not None

    def test_container_records_the_fault(self, config):
        freeride = FreeRide(config)
        freeride.submit(lambda: MemoryLeakTask(), name="leaker",
                        memory_limit_gb=2.5)
        freeride.run()
        stage = freeride._submissions[0][2]
        faults = freeride.workers[stage].container.faults
        assert faults and "OOM" in faults[0][1]

    def test_queued_task_runs_after_failed_predecessor(self, config):
        freeride = FreeRide(config)
        # Both tasks target the same worker: the leaker dies, PageRank
        # must then be served from the queue.
        freeride.submit(lambda: MemoryLeakTask(), name="leaker",
                        memory_limit_gb=2.5)
        from repro.core.policies import first_fit_policy
        freeride.manager.policy = first_fit_policy
        freeride.submit(workload_factory("pagerank"), name="queued")
        leak_stage = freeride._submissions[0][2]
        queued_stage = freeride._submissions[1][2]
        result = freeride.run()
        assert result.task("leaker").failure is not None
        if queued_stage == leak_stage:
            assert result.task("queued").steps_done > 0
