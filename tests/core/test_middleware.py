"""End-to-end tests of the FreeRide facade (paper Figure 3 workflow)."""

from __future__ import annotations

import pytest

from repro.core.middleware import FreeRide
from repro.core.states import SideTaskState
from repro.pipeline.config import TrainConfig, model_config
from repro.workloads.registry import workload_factory


@pytest.fixture(scope="module")
def small_config() -> TrainConfig:
    return TrainConfig(model=model_config("3.6B"), epochs=3, op_jitter=0.01,
                       seed=0)


@pytest.fixture(scope="module")
def resnet_run(small_config):
    freeride = FreeRide(small_config)
    accepted = freeride.submit_replicated(workload_factory("resnet18"))
    result = freeride.run()
    return freeride, accepted, result


class TestServing:
    def test_one_copy_per_worker(self, resnet_run):
        _freeride, accepted, result = resnet_run
        assert accepted == 4
        assert sorted(report.stage for report in result.tasks) == [0, 1, 2, 3]

    def test_all_tasks_stop_cleanly(self, resnet_run):
        _freeride, _accepted, result = resnet_run
        for report in result.tasks:
            assert report.final_state is SideTaskState.STOPPED
            assert report.failure is None

    def test_side_tasks_did_real_work(self, resnet_run):
        freeride, _accepted, result = resnet_run
        assert result.total_steps > 100
        assert result.total_units == result.total_steps * 64
        # The real SGD inside the steps made the loss fall.
        for spec, _interface, _stage in freeride._submissions:
            assert spec.workload.loss_improved

    def test_running_time_is_bounded_by_bubble_time(self, resnet_run):
        _freeride, _accepted, result = resnet_run
        trace = result.training.trace
        for report in result.tasks:
            bubble_time = sum(
                bubble.duration
                for bubble in trace.bubbles_of(stage=report.stage)
            )
            assert report.running_s <= bubble_time * 1.05

    def test_memory_fit_controls_placement(self, small_config):
        freeride = FreeRide(small_config)
        accepted = freeride.submit_replicated(workload_factory("vgg19"))
        result = freeride.run()
        # VGG19 does not fit the bubbles of stages 0-1 (paper section 6.5).
        assert accepted == 2
        assert sorted(report.stage for report in result.tasks) == [2, 3]

    def test_rejection_when_no_worker_fits(self, small_config):
        freeride = FreeRide(small_config)
        spec = freeride.submit(
            workload_factory("vgg19"), memory_limit_gb=None, name="huge",
            profile=None,
        )
        assert spec is not None
        # Fill the remaining memory; a 26 GB task fits nowhere.
        from repro.core.task_spec import TaskProfile
        rejected = freeride.submit(
            workload_factory("vgg19"),
            profile=TaskProfile(gpu_memory_gb=26.0, step_time_s=0.2),
        )
        assert rejected is None
        assert freeride.manager.rejections

    def test_mixed_workload_matches_paper_placement(self, small_config):
        """Paper 6.2: PageRank, ResNet18, Image, VGG19 on stages 0-3."""
        freeride = FreeRide(small_config)
        for name in ("pagerank", "resnet18", "image", "vgg19"):
            assert freeride.submit(workload_factory(name)) is not None
        result = freeride.run()
        placement = {report.name.split("-")[0]: report.stage
                     for report in result.tasks}
        assert placement["pagerank"] == 0
        assert placement["resnet18"] == 1
        assert placement["image"] == 2
        assert placement["vgg19"] == 3

    def test_finite_task_finishes_and_frees_worker(self, small_config):
        from repro.workloads.image_processing import ImageTask
        freeride = FreeRide(small_config)
        freeride.submit(lambda: ImageTask(total_images=5), name="finite")
        result = freeride.run()
        report = result.task("finite")
        assert report.final_state is SideTaskState.STOPPED
        assert report.steps_done == 5


class TestOverhead:
    def test_iterative_overhead_is_about_one_percent(self, small_config,
                                                     resnet_run):
        from repro.gpu.cluster import make_server_i
        from repro.pipeline.engine import PipelineEngine
        from repro.sim.engine import Engine
        from repro.sim.rng import RandomStreams

        _freeride, _accepted, result = resnet_run
        sim = Engine()
        baseline = PipelineEngine(
            sim, make_server_i(sim), small_config,
            rng=RandomStreams(0).spawn("pipeline"),
        ).run()
        increase = result.training.total_time / baseline.total_time - 1
        assert -0.01 < increase < 0.03  # paper: about 1%

    def test_fresh_runs_are_deterministic(self, small_config):
        def run_once():
            freeride = FreeRide(small_config)
            freeride.submit_replicated(workload_factory("pagerank"))
            return freeride.run()

        first = run_once()
        second = run_once()
        assert first.training.total_time == second.training.total_time
        assert first.total_steps == second.total_steps
