"""Integration tests: the pipeline engine reproduces the paper's bubbles."""

from __future__ import annotations

import pytest

from repro.gpu.cluster import make_server_i
from repro.pipeline.analysis import BubbleType, bubble_rate, bubble_shape_stats
from repro.pipeline.config import TrainConfig, model_config
from repro.pipeline.engine import PipelineEngine, profile_bubbles
from repro.pipeline.instrumentation import BubbleProfile, RecordingListener
from repro.pipeline.ops import OpKind, dependencies
from repro.sim.engine import Engine


def run_training(size="3.6B", micro_batches=4, epochs=2, jitter=0.0,
                 listener=None, profile=None, schedule="1f1b", seed=0):
    sim = Engine()
    server = make_server_i(sim)
    config = TrainConfig(
        model=model_config(size),
        micro_batches=micro_batches,
        epochs=epochs,
        op_jitter=jitter,
        schedule=schedule,
        seed=seed,
    )
    engine = PipelineEngine(sim, server, config, listener=listener,
                            profile=profile)
    result = engine.run()
    return result, server


class TestDependencyCorrectness:
    def test_every_op_executes_exactly_once_per_epoch(self):
        result, _ = run_training(epochs=2)
        per_epoch = {}
        for record in result.trace.ops:
            per_epoch.setdefault(record.epoch, []).append(record.op)
        for epoch, ops in per_epoch.items():
            assert len(ops) == len(set(ops)) == 4 * 4 * 2

    def test_no_op_starts_before_its_dependencies_finish(self):
        result, _ = run_training(epochs=2)
        for epoch in range(2):
            ends = {
                record.op: record.end
                for record in result.trace.ops if record.epoch == epoch
            }
            for record in result.trace.ops:
                if record.epoch != epoch:
                    continue
                for dep in dependencies(record.op, 4):
                    assert record.start >= ends[dep] - 1e-9, (
                        f"{record.op} started before {dep} finished"
                    )

    def test_ops_on_one_stage_never_overlap(self):
        result, _ = run_training(epochs=2)
        for stage in range(4):
            records = sorted(result.trace.ops_of(stage), key=lambda r: r.start)
            for before, after in zip(records, records[1:]):
                assert after.start >= before.end - 1e-9


class TestBubbleReproduction:
    """The headline characterization results of paper section 2.2."""

    def test_bubble_rate_is_about_42_percent(self):
        result, _ = run_training("1.2B", epochs=3)
        assert bubble_rate(result.trace) == pytest.approx(0.424, abs=0.01)

    def test_bubble_rate_falls_slightly_with_model_size(self):
        small, _ = run_training("1.2B", epochs=3)
        large, _ = run_training("6B", epochs=3)
        rate_small = bubble_rate(small.trace)
        rate_large = bubble_rate(large.trace)
        assert rate_large < rate_small
        assert rate_small - rate_large < 0.05  # "drops only slightly"

    def test_micro_batch_8_drops_rate_to_about_26_percent(self):
        result, _ = run_training("3.6B", micro_batches=8, epochs=3)
        assert bubble_rate(result.trace) == pytest.approx(0.262, abs=0.02)

    def test_figure1_stage0_pattern_is_B_C_C_C(self):
        result, _ = run_training(epochs=1)
        pattern = [
            bubble.btype.value
            for bubble in sorted(result.trace.bubbles_of(stage=0),
                                 key=lambda b: b.start)
        ]
        assert pattern == ["B", "C", "C", "C"]

    def test_figure1_stage3_has_only_type_A(self):
        result, _ = run_training(epochs=1)
        types = {b.btype for b in result.trace.bubbles_of(stage=3)}
        assert types == {BubbleType.TYPE_A}

    def test_type_a_missing_only_on_first_stage(self):
        result, _ = run_training(epochs=1)
        leading_a = [
            bubble for bubble in result.trace.bubbles_of(btype=BubbleType.TYPE_A)
            if bubble.index == 0
        ]
        assert {bubble.stage for bubble in leading_a} == {1, 2, 3}

    def test_type_b_duration_decreases_with_stage(self):
        result, _ = run_training(epochs=1)
        durations = {}
        for bubble in result.trace.bubbles_of(btype=BubbleType.TYPE_B):
            durations[bubble.stage] = bubble.duration
        assert sorted(durations) == [0, 1, 2]
        assert durations[0] > durations[1] > durations[2]

    def test_leading_type_a_duration_increases_with_stage(self):
        result, _ = run_training(epochs=1)
        leading = {
            bubble.stage: bubble.duration
            for bubble in result.trace.bubbles_of(btype=BubbleType.TYPE_A)
            if bubble.index == 0
        }
        assert leading[1] < leading[2] < leading[3]

    def test_bubble_durations_span_paper_range(self):
        result, _ = run_training(epochs=2)
        stats = bubble_shape_stats(result.trace)
        assert stats["min_s"] == pytest.approx(0.22, abs=0.03)
        assert 1.0 <= stats["max_s"] <= 1.5

    def test_bubbles_repeat_identically_across_epochs(self):
        """Epochs are 'repetitive and stable' (paper sections 2.2, 8)."""
        result, _ = run_training(epochs=3)
        def shape(epoch):
            return [
                (b.stage, b.index, b.btype, round(b.duration, 9))
                for b in sorted(result.trace.bubbles_of(epoch=epoch),
                                key=lambda b: (b.stage, b.index))
            ]
        assert shape(0) == shape(1) == shape(2)

    def test_gpipe_schedule_also_runs(self):
        result, _ = run_training(epochs=1, schedule="gpipe")
        assert result.total_time > 0
        assert bubble_rate(result.trace) > 0.3


class TestAccounting:
    def test_busy_plus_bubble_covers_epoch_span(self):
        """Per stage: op time + optimizer + bubbles == epoch duration."""
        result, _ = run_training(epochs=1)
        epoch = result.trace.epochs[0]
        for stage in range(4):
            busy = sum(r.duration for r in result.trace.ops_of(stage))
            idle = sum(b.duration for b in result.trace.bubbles_of(stage=stage))
            # the optimizer kernel is the only unaccounted interval
            gap = epoch.duration - busy - idle
            assert 0 <= gap < 0.5, f"stage {stage}: unaccounted {gap}"

    def test_memory_constant_during_training(self):
        _result, server = run_training(epochs=1)
        for stage in range(4):
            assert server.gpu(stage).used_gb > 0

    def test_deterministic_given_seed(self):
        first, _ = run_training(jitter=0.01, seed=5, epochs=2)
        second, _ = run_training(jitter=0.01, seed=5, epochs=2)
        assert first.total_time == second.total_time

    def test_different_seeds_differ_with_jitter(self):
        first, _ = run_training(jitter=0.01, seed=1, epochs=2)
        second, _ = run_training(jitter=0.01, seed=2, epochs=2)
        assert first.total_time != second.total_time


class TestInstrumentation:
    def test_listener_sees_bubble_starts_and_ends(self):
        listener = RecordingListener()
        result, _ = run_training(epochs=1, listener=listener)
        assert len(listener.starts) >= len(result.trace.bubbles)
        assert len(listener.epoch_starts) == len(listener.epoch_ends) == 1

    def test_reported_types_match_trace(self):
        listener = RecordingListener()
        result, _ = run_training(epochs=1, listener=listener)
        reported = {(s.stage, s.index): s.btype for s in listener.starts}
        for bubble in result.trace.bubbles:
            assert reported[(bubble.stage, bubble.index)] == bubble.btype

    def test_profile_provides_expected_durations(self):
        from repro.pipeline.config import TrainConfig
        profile = profile_bubbles(
            make_server_i,
            TrainConfig(model=model_config("3.6B"), epochs=4),
            profiling_epochs=3,
        )
        assert profile.bubbles_per_epoch(0) == 4
        assert profile.total_bubble_time(0) == pytest.approx(9 * 0.22, rel=0.05)
        # Bubbles are keyed by the op position they precede: stage 0's
        # first wait is before its first backward at position 4 (FFFFBBBB).
        assert profile.expected_duration(0, 4) is not None
        assert profile.expected_duration(0, 0) is None  # F0 never waits
        assert profile.expected_duration(0, 99) is None

    def test_serving_run_reports_expected_durations(self):
        profile = profile_bubbles(
            make_server_i,
            TrainConfig(model=model_config("3.6B"), epochs=2),
        )
        listener = RecordingListener()
        run_training(epochs=1, listener=listener, profile=profile)
        assert listener.starts, "no bubbles reported"
        for start in listener.starts:
            assert start.expected_duration is not None
            assert start.expected_end == pytest.approx(
                start.start + start.expected_duration
            )

    def test_hook_cost_stretches_training(self):
        plain, _ = run_training(epochs=2)
        costly = RecordingListener(hook_cost_s=0.005)
        profile = profile_bubbles(
            make_server_i, TrainConfig(model=model_config("3.6B"), epochs=2)
        )
        slowed, _ = run_training(epochs=2, listener=costly, profile=profile)
        increase = slowed.total_time / plain.total_time - 1
        assert 0.0 < increase < 0.03
