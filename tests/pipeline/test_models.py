"""Unit tests for configs, the timing model, and the memory model."""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.pipeline.config import TrainConfig, model_config
from repro.pipeline.memory_model import MemoryModel
from repro.pipeline.ops import Op, OpKind
from repro.pipeline.timing import TimingModel


class TestConfig:
    def test_presets(self):
        assert model_config("3.6B").params_billion == 3.6
        assert model_config(2.4).params_billion == 2.4

    def test_unknown_preset_rejected(self):
        with pytest.raises(PipelineError):
            model_config("7B")

    def test_invalid_train_config_rejected(self):
        model = model_config("1.2B")
        with pytest.raises(PipelineError):
            TrainConfig(model=model, num_stages=1)
        with pytest.raises(PipelineError):
            TrainConfig(model=model, micro_batches=0)
        with pytest.raises(PipelineError):
            TrainConfig(model=model, epochs=0)
        with pytest.raises(PipelineError):
            TrainConfig(model=model, schedule="zigzag")


class TestTimingModel:
    def test_bp_is_twice_fp(self):
        timing = TimingModel(model_config("3.6B"))
        assert timing.bp_time == pytest.approx(2 * timing.fp_time)

    def test_larger_models_have_faster_ops(self):
        """Micro-batch size is maximized before OOM, so per-op time falls
        with model size (paper Figure 2b)."""
        small = TimingModel(model_config("1.2B"))
        large = TimingModel(model_config("6B"))
        assert large.fp_time < small.fp_time

    def test_analytic_bubble_rate_matches_paper(self):
        """(S-1)/(M+S-1) = 42.9% for S=4, M=4 — the paper measures 42.4%."""
        timing = TimingModel(model_config("3.6B"))
        rate = timing.ideal_bubble_rate(num_stages=4, micro_batches=4)
        assert 0.40 < rate < 0.43

    def test_more_micro_batches_lower_bubble_rate(self):
        timing = TimingModel(model_config("3.6B"))
        assert timing.ideal_bubble_rate(4, 8) < timing.ideal_bubble_rate(4, 4)

    def test_op_duration_without_jitter_is_exact(self):
        timing = TimingModel(model_config("3.6B"))
        assert timing.op_duration(Op(0, 0, OpKind.FORWARD)) == timing.fp_time
        assert timing.op_duration(Op(0, 0, OpKind.BACKWARD)) == timing.bp_time

    def test_optimizer_time_scales_with_params(self):
        small = TimingModel(model_config("1.2B"))
        large = TimingModel(model_config("6B"))
        assert large.optimizer_time == pytest.approx(5 * small.optimizer_time)


class TestMemoryModel:
    @pytest.fixture
    def memory(self) -> MemoryModel:
        return MemoryModel(model_config("3.6B"), num_stages=4, micro_batches=4)

    def test_stage0_available_below_3gb(self, memory):
        """Paper section 2.2: 'less than 3 GB' at stage 0 for 3.6B."""
        assert memory.available_gb(0) <= 3.0 + 1e-6

    def test_stage3_available_above_20gb(self, memory):
        """Paper section 2.2: 'more than 20 GB' at stage 3."""
        assert memory.available_gb(3) > 20.0

    def test_available_memory_increases_with_stage(self, memory):
        values = [memory.available_gb(stage) for stage in range(4)]
        assert values == sorted(values)

    def test_in_flight_micro_batches_rule(self, memory):
        assert [memory.in_flight_micro_batches(s) for s in range(4)] == [4, 3, 2, 1]

    def test_larger_models_leave_less_available_memory(self):
        """Paper Figure 2a: bubbles in larger LLMs have less memory."""
        small = MemoryModel(model_config("1.2B"), 4, 4)
        large = MemoryModel(model_config("6B"), 4, 4)
        for stage in range(4):
            assert large.available_gb(stage) < small.available_gb(stage)

    def test_oversized_model_rejected(self):
        huge = MemoryModel(model_config(40.0), 4, 4)
        with pytest.raises(PipelineError):
            huge.stage_memory_gb(0)

    def test_stage_bounds_checked(self, memory):
        with pytest.raises(PipelineError):
            memory.available_gb(4)

    def test_summary_has_one_row_per_stage(self, memory):
        rows = memory.per_stage_summary()
        assert [row["stage"] for row in rows] == [0, 1, 2, 3]
        for row in rows:
            assert row["used_gb"] + row["available_gb"] == pytest.approx(48.0)
