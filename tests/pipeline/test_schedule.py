"""Unit tests for schedule generation and op dependency rules."""

from __future__ import annotations

import pytest

from repro.errors import PipelineError
from repro.pipeline.ops import Op, OpKind, dependencies
from repro.pipeline.schedule import ScheduleKind, stage_order


def _kinds(order):
    return "".join("F" if op.kind is OpKind.FORWARD else "B" for op in order)


class TestOneFOneB:
    def test_first_stage_runs_all_forwards_then_backwards(self):
        order = stage_order("1f1b", stage=0, num_stages=4, micro_batches=4)
        assert _kinds(order) == "FFFFBBBB"

    def test_last_stage_strictly_alternates(self):
        order = stage_order("1f1b", stage=3, num_stages=4, micro_batches=4)
        assert _kinds(order) == "FBFBFBFB"

    def test_middle_stage_warmup_depth(self):
        order = stage_order("1f1b", stage=1, num_stages=4, micro_batches=4)
        assert _kinds(order) == "FFFBFBBB"
        order = stage_order("1f1b", stage=2, num_stages=4, micro_batches=4)
        assert _kinds(order) == "FFBFBFBB"

    def test_every_micro_batch_appears_once_per_kind(self):
        for stage in range(4):
            order = stage_order("1f1b", stage, 4, 6)
            forwards = [op.micro_batch for op in order if op.kind is OpKind.FORWARD]
            backwards = [op.micro_batch for op in order if op.kind is OpKind.BACKWARD]
            assert forwards == sorted(forwards) == list(range(6))
            assert backwards == sorted(backwards) == list(range(6))

    def test_warmup_capped_by_micro_batches(self):
        # 8 stages, 2 micro-batches: warmup cannot exceed M.
        order = stage_order("1f1b", stage=0, num_stages=8, micro_batches=2)
        assert _kinds(order) == "FFBB"

    def test_backward_never_precedes_own_forward(self):
        for stage in range(4):
            order = stage_order("1f1b", stage, 4, 4)
            seen_forward: set[int] = set()
            for op in order:
                if op.kind is OpKind.FORWARD:
                    seen_forward.add(op.micro_batch)
                else:
                    assert op.micro_batch in seen_forward


class TestGPipe:
    def test_all_forwards_then_all_backwards(self):
        order = stage_order(ScheduleKind.GPIPE, stage=2, num_stages=4,
                            micro_batches=3)
        assert _kinds(order) == "FFFBBB"


class TestDependencies:
    def test_forward_depends_on_upstream_forward(self):
        deps = dependencies(Op(2, 1, OpKind.FORWARD), num_stages=4)
        assert deps == [Op(1, 1, OpKind.FORWARD)]

    def test_first_stage_forward_has_no_deps(self):
        assert dependencies(Op(0, 0, OpKind.FORWARD), num_stages=4) == []

    def test_backward_depends_on_downstream_backward_and_own_forward(self):
        deps = dependencies(Op(1, 2, OpKind.BACKWARD), num_stages=4)
        assert Op(2, 2, OpKind.BACKWARD) in deps
        assert Op(1, 2, OpKind.FORWARD) in deps

    def test_last_stage_backward_depends_on_own_forward_only(self):
        deps = dependencies(Op(3, 0, OpKind.BACKWARD), num_stages=4)
        assert deps == [Op(3, 0, OpKind.FORWARD)]

    def test_stage_out_of_range_rejected(self):
        with pytest.raises(PipelineError):
            stage_order("1f1b", stage=4, num_stages=4, micro_batches=4)
        with pytest.raises(PipelineError):
            stage_order("1f1b", stage=-1, num_stages=4, micro_batches=4)
