"""Unit and property tests for the paper's cost model (section 6.1.5)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import calibration
from repro.metrics.cost import (
    cost_savings,
    dedicated_throughput,
    energy_cost_estimate,
    side_task_cost_usd,
    time_increase,
    training_cost_usd,
)


class TestTimeIncrease:
    def test_basic(self):
        assert time_increase(110.0, 100.0) == pytest.approx(0.10)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            time_increase(10.0, 0.0)

    def test_faster_run_is_negative(self):
        """The paper's Figure 7 reports small negative increases (noise)."""
        assert time_increase(99.0, 100.0) < 0


class TestDedicatedThroughput:
    def test_server_i_is_the_solo_rate(self):
        profile = calibration.RESNET18
        assert dedicated_throughput(profile, "server_i") == pytest.approx(
            profile.units_per_step / profile.step_time_s
        )

    def test_platform_ordering(self):
        """Server-I > Server-II > CPU for every task (Table 1)."""
        for profile in calibration.SIDE_TASK_PROFILES.values():
            s1 = dedicated_throughput(profile, "server_i")
            s2 = dedicated_throughput(profile, "server_ii")
            cpu = dedicated_throughput(profile, "cpu")
            assert s1 > s2 > cpu, profile.name

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            dedicated_throughput(calibration.RESNET18, "tpu")


class TestCostFormulas:
    def test_training_cost_is_linear_in_time(self):
        assert training_cost_usd(3600.0) == pytest.approx(3.96)
        assert training_cost_usd(1800.0) == pytest.approx(1.98)

    def test_side_task_cost_prices_against_server_ii(self):
        profile = calibration.RESNET18
        throughput_ii = dedicated_throughput(profile, "server_ii")
        one_hour_of_work = throughput_ii * 3600
        cost = side_task_cost_usd(one_hour_of_work, profile)
        assert cost == pytest.approx(calibration.SERVER_II_PRICE_PER_HOUR)

    def test_savings_zero_when_no_work_and_no_overhead(self):
        assert cost_savings(100.0, 100.0, []) == 0.0

    def test_savings_negative_when_overhead_dominates(self):
        savings = cost_savings(100.0, 150.0, [])
        assert savings == pytest.approx(-0.5)

    def test_savings_positive_when_work_dominates(self):
        profile = calibration.RESNET18
        throughput_ii = dedicated_throughput(profile, "server_ii")
        work = [(throughput_ii * 100.0, profile)]  # 100 Server-II-seconds
        savings = cost_savings(100.0, 100.0, work)
        expected = (
            calibration.SERVER_II_PRICE_PER_HOUR
            / calibration.SERVER_I_PRICE_PER_HOUR
        )
        assert savings == pytest.approx(expected)

    def test_paper_table2_arithmetic(self):
        """Sanity-check the paper's own numbers: aggregate ResNet18
        throughput / Server-II throughput * price ratio - I = S."""
        ratio = 1586.6 / 998.7  # paper Table 1
        s = ratio * 0.18 / 3.96 - 0.009
        assert s == pytest.approx(0.064, abs=0.005)  # paper Table 2: 6.4%


class TestEnergyHook:
    def test_energy_cost_scales_with_occupancy(self):
        idle = energy_cost_estimate(3600, 0.0)
        busy = energy_cost_estimate(3600, 1.0)
        assert busy > idle > 0


@given(
    st.floats(min_value=1.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=1e6),
)
def test_property_time_increase_sign_matches_order(t_no, extra):
    assert time_increase(t_no + extra, t_no) >= 0
    assert time_increase(t_no, t_no) == 0


@given(
    st.floats(min_value=10.0, max_value=1e5),
    st.floats(min_value=10.0, max_value=1e5),
    st.floats(min_value=0.0, max_value=1e7),
)
def test_property_savings_monotone_in_work(t_no, t_with, units):
    """More harvested work never reduces savings."""
    profile = calibration.PAGERANK
    low = cost_savings(t_no, t_with, [(units, profile)])
    high = cost_savings(t_no, t_with, [(units * 2, profile)])
    assert high >= low


@given(
    st.floats(min_value=10.0, max_value=1e5),
    st.floats(min_value=0.0, max_value=1e5),
)
def test_property_savings_monotone_in_overhead(t_no, extra):
    """More training slowdown never increases savings."""
    profile = calibration.IMAGE
    work = [(1000.0, profile)]
    better = cost_savings(t_no, t_no, work)
    worse = cost_savings(t_no, t_no + extra, work)
    assert worse <= better
