"""Unit tests for the fairness accounting metrics."""

from __future__ import annotations

import pytest

from repro.metrics.fairness import (
    fairness_metrics,
    jain_index,
    weighted_share_error,
)
from repro.serving.arrivals import TaskRequest
from repro.serving.frontend import RequestRecord
from repro.tenancy.tenants import TenantShare


def test_jain_index_bounds():
    assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_index([5.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    assert jain_index([]) == 1.0
    assert jain_index([0.0, 0.0]) == 1.0
    assert jain_index([2.0, 1.0]) == pytest.approx(0.9, abs=1e-9)


def test_weighted_share_error():
    # Exact weight-proportional allocation: zero error.
    assert weighted_share_error([4.0, 1.0], [4.0, 1.0]) == pytest.approx(0.0)
    # One-hot against equal weights: error is 1 - 1/n.
    assert weighted_share_error([1.0, 0.0], [1.0, 1.0]) == pytest.approx(0.5)
    assert weighted_share_error([], []) == 0.0
    assert weighted_share_error([0.0, 0.0], [1.0, 1.0]) == 0.0
    with pytest.raises(ValueError, match="one weight per value"):
        weighted_share_error([1.0], [1.0, 2.0])


def _record(request_id: int, tenant: str, completed: bool) -> RequestRecord:
    record = RequestRecord(
        request=TaskRequest(request_id=request_id, arrival_s=0.0,
                            workload="pagerank", job_steps=10,
                            slo_class="batch", tenant=tenant),
        deadline_s=None,
        admitted_at=0.0,
    )
    if completed:
        record.assigned_at = 0.5
        record.completed_at = 1.0
    return record


def test_fairness_metrics_groups_by_tenant():
    records = (
        [_record(i, "a", completed=True) for i in range(6)]
        + [_record(6 + i, "b", completed=True) for i in range(2)]
        + [_record(8, "b", completed=False)]
    )
    shares = (TenantShare("a", weight=3.0), TenantShare("b", weight=1.0))
    metrics = fairness_metrics(records, shares, duration_s=10.0)
    a, b = metrics.tenant("a"), metrics.tenant("b")
    assert a.metrics.offered == 6 and a.metrics.completed == 6
    assert b.metrics.offered == 3 and b.metrics.completed == 2
    assert a.share == pytest.approx(0.75)
    assert a.target_share == pytest.approx(0.75)
    assert b.share == pytest.approx(0.25)
    # 6/3 vs 2/1 normalized goodput: perfectly weight-proportional.
    assert metrics.jain_goodput == pytest.approx(1.0)
    assert metrics.max_share_error == pytest.approx(0.0)
    assert metrics.summary()["tenants"][0]["tenant"] == "a"


def test_undeclared_tenants_are_accounted_at_weight_one():
    records = [_record(0, "ghost", completed=True)]
    metrics = fairness_metrics(records, (TenantShare("a"),), duration_s=5.0)
    assert [usage.name for usage in metrics.tenants] == ["a", "ghost"]
    assert metrics.tenant("ghost").weight == 1.0
    assert metrics.tenant("ghost").share == pytest.approx(1.0)


def test_unknown_tenant_lookup_raises():
    metrics = fairness_metrics([], (TenantShare("a"),), duration_s=1.0)
    with pytest.raises(KeyError):
        metrics.tenant("nope")
