"""Round-trip tests for the offline-plotting trace exporters."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.gpu.cluster import make_server_i
from repro.gpu.device import SimGPU
from repro.metrics.traces import (
    bubbles_json,
    memory_csv,
    occupancy_csv,
    ops_csv,
    trace_summary,
)
from repro.pipeline.config import TrainConfig, model_config
from repro.pipeline.engine import PipelineEngine
from repro.sim.engine import Engine


@pytest.fixture(scope="module")
def training():
    """One short recorded training run shared by the module's tests."""
    sim = Engine()
    server = make_server_i(sim, record_occupancy=True)
    config = TrainConfig(model=model_config("3.6B"), epochs=2)
    result = PipelineEngine(sim, server, config).run()
    return result, server


def _rows(text: str) -> list[dict]:
    return list(csv.DictReader(io.StringIO(text)))


class TestOccupancyCsv:
    def test_round_trip(self, training):
        _, server = training
        gpu = server.gpus[0]
        rows = _rows(occupancy_csv(gpu))
        assert len(rows) == len(gpu.occupancy_trace)
        for row, (time, total, tr, side) in zip(rows, gpu.occupancy_trace):
            assert float(row["time_s"]) == pytest.approx(time, abs=1e-6)
            assert float(row["occupancy"]) == pytest.approx(total, abs=1e-3)
            assert float(row["training"]) == pytest.approx(tr, abs=1e-3)
            assert float(row["side"]) == pytest.approx(side, abs=1e-3)

    def test_non_recording_device_raises(self):
        gpu = SimGPU(Engine(), "gpu0", memory_gb=16.0)
        with pytest.raises(ValueError, match="record_occupancy=False"):
            occupancy_csv(gpu)

    def test_error_message_is_one_sentence(self):
        gpu = SimGPU(Engine(), "gpu0", memory_gb=16.0)
        with pytest.raises(ValueError) as excinfo:
            occupancy_csv(gpu)
        message = str(excinfo.value)
        assert message.startswith("gpu0 has no occupancy trace")
        assert "record_occupancy=True" in message


class TestMemoryCsv:
    def test_round_trip(self, training):
        _, server = training
        gpu = server.gpus[0]
        rows = _rows(memory_csv(gpu))
        assert len(rows) == len(gpu.memory_trace)
        for row, (time, used) in zip(rows, gpu.memory_trace):
            assert float(row["time_s"]) == pytest.approx(time, abs=1e-6)
            assert float(row["used_gb"]) == pytest.approx(used, abs=1e-3)


class TestOpsCsv:
    def test_round_trip(self, training):
        result, _ = training
        rows = _rows(ops_csv(result.trace))
        assert len(rows) == len(result.trace.ops)
        for row, record in zip(rows, result.trace.ops):
            assert int(row["epoch"]) == record.epoch
            assert int(row["stage"]) == record.op.stage
            assert row["kind"] == record.op.kind.value
            assert int(row["micro_batch"]) == record.op.micro_batch
            assert float(row["start_s"]) == pytest.approx(
                record.start, abs=1e-6
            )
            assert float(row["end_s"]) == pytest.approx(record.end, abs=1e-6)


class TestBubblesJson:
    def test_round_trip(self, training):
        result, _ = training
        bubbles = json.loads(bubbles_json(result.trace))
        assert len(bubbles) == len(result.trace.bubbles)
        for entry, bubble in zip(bubbles, result.trace.bubbles):
            assert entry["epoch"] == bubble.epoch
            assert entry["stage"] == bubble.stage
            assert entry["index"] == bubble.index
            assert entry["type"] == bubble.btype.value
            assert entry["start_s"] == pytest.approx(bubble.start, abs=1e-6)
            assert entry["duration_s"] == pytest.approx(
                bubble.duration, abs=1e-6
            )
            assert entry["available_gb"] == pytest.approx(
                bubble.available_gb, abs=1e-3
            )

    def test_output_is_stable(self, training):
        result, _ = training
        assert bubbles_json(result.trace) == bubbles_json(result.trace)


class TestTraceSummary:
    def test_digest_matches_trace(self, training):
        result, _ = training
        summary = trace_summary(result.trace)
        assert summary["epochs"] == len(result.trace.epochs)
        assert summary["ops"] == len(result.trace.ops)
        assert summary["bubble_count"] == len(result.trace.bubbles)
        assert json.dumps(summary)  # JSON-serializable digest
