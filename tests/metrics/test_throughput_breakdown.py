"""Unit tests for Table-1 rows and the Figure-9 breakdown."""

from __future__ import annotations

import pytest

from repro import calibration
from repro.core.middleware import FreeRide
from repro.metrics.breakdown import BubbleBreakdown, bubble_breakdown
from repro.metrics.throughput import throughput_row
from repro.pipeline.config import TrainConfig, model_config
from repro.workloads.registry import workload_factory


class TestThroughputRow:
    def test_speedups(self):
        row = throughput_row(
            "resnet18", calibration.RESNET18,
            units_done=1000.0, duration_s=10.0,
            server_ii_throughput=50.0, cpu_throughput=2.0,
        )
        assert row.freeride_iterative == pytest.approx(100.0)
        assert row.speedup_vs_server_ii == pytest.approx(2.0)
        assert row.speedup_vs_cpu == pytest.approx(50.0)

    def test_defaults_to_analytic_dedicated_rates(self):
        row = throughput_row("pagerank", calibration.PAGERANK,
                             units_done=500.0, duration_s=10.0)
        assert row.server_ii > row.server_cpu > 0

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            throughput_row("x", calibration.IMAGE, 1.0, 0.0)


class TestBreakdownFractions:
    def test_fractions_sum_to_at_most_one(self):
        breakdown = BubbleBreakdown(
            total_bubble_s=10.0, running_s=6.0, freeride_runtime_s=2.0,
            insufficient_s=1.0, no_task_oom_s=1.0,
        )
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_empty_breakdown(self):
        breakdown = BubbleBreakdown(0.0, 0.0, 0.0, 0.0, 0.0)
        assert all(value == 0.0 for value in breakdown.fractions().values())


class TestBreakdownFromRun:
    @pytest.fixture(scope="class")
    def vgg_result(self):
        config = TrainConfig(model=model_config("3.6B"), epochs=3,
                             op_jitter=0.01)
        freeride = FreeRide(config)
        freeride.submit_replicated(workload_factory("vgg19"))
        return freeride.run()

    def test_oom_bucket_is_stages_without_tasks(self, vgg_result):
        breakdown = bubble_breakdown(vgg_result)
        trace = vgg_result.training.trace
        expected_oom = sum(
            bubble.duration for bubble in trace.bubbles
            if bubble.stage in (0, 1)
        )
        assert breakdown.no_task_oom_s == pytest.approx(expected_oom)

    def test_buckets_cover_all_bubble_time(self, vgg_result):
        breakdown = bubble_breakdown(vgg_result)
        covered = (breakdown.running_s + breakdown.freeride_runtime_s
                   + breakdown.insufficient_s + breakdown.no_task_oom_s)
        assert covered == pytest.approx(breakdown.total_bubble_s, rel=0.05)

    def test_running_never_exceeds_bubble_time(self, vgg_result):
        breakdown = bubble_breakdown(vgg_result)
        assert breakdown.running_s <= breakdown.total_bubble_s
