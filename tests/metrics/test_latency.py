"""Unit tests for the streaming latency accumulator and serving metrics."""

from __future__ import annotations

import pytest

from repro.metrics.latency import LatencyStats, serving_metrics
from repro.serving.arrivals import TaskRequest
from repro.serving.frontend import RequestRecord


class TestLatencyStats:
    def test_quantiles_on_known_data(self):
        stats = LatencyStats()
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:  # out of order on purpose
            stats.observe(value)
        assert stats.count == 5
        assert stats.p50 == 3.0
        assert stats.quantile(0.0) == 1.0
        assert stats.quantile(1.0) == 5.0
        assert stats.quantile(0.25) == 2.0  # exact grid point
        assert stats.mean == 3.0
        assert stats.max == 5.0

    def test_interpolates_between_samples(self):
        stats = LatencyStats()
        stats.observe(0.0)
        stats.observe(10.0)
        assert stats.p50 == 5.0
        assert stats.quantile(0.95) == pytest.approx(9.5)

    def test_empty_stats_read_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.p50 == stats.p95 == stats.p99 == 0.0
        assert stats.mean == 0.0

    def test_rejects_bad_inputs(self):
        stats = LatencyStats()
        with pytest.raises(ValueError):
            stats.observe(-1.0)
        with pytest.raises(ValueError):
            stats.quantile(1.5)

    def test_summary_is_json_safe(self):
        import json

        stats = LatencyStats()
        stats.observe(1.0)
        assert json.loads(json.dumps(stats.summary()))["count"] == 1


def _record(request_id, arrival_s, *, deadline_s=None, rejected_at=None,
            admitted_at=None, assigned_at=None, completed_at=None,
            offered=True):
    record = RequestRecord(
        request=TaskRequest(request_id=request_id, arrival_s=arrival_s,
                            workload="pagerank", job_steps=10),
        deadline_s=deadline_s,
        offered=offered,
    )
    record.rejected_at = rejected_at
    record.admitted_at = admitted_at
    record.assigned_at = assigned_at
    record.completed_at = completed_at
    return record


class TestServingMetrics:
    def test_aggregates_lifecycles(self):
        records = [
            # completed within its deadline
            _record(0, 0.0, deadline_s=10.0, admitted_at=0.0,
                    assigned_at=1.0, completed_at=5.0),
            # completed but missed its deadline
            _record(1, 0.0, deadline_s=2.0, admitted_at=0.0,
                    assigned_at=1.0, completed_at=5.0),
            # best effort, completed (counts toward goodput)
            _record(2, 1.0, admitted_at=1.0, assigned_at=1.0,
                    completed_at=9.0),
            # rejected at admission
            _record(3, 2.0, rejected_at=2.0),
            # admitted but never finished
            _record(4, 3.0, admitted_at=3.0, assigned_at=4.0),
            # arrived after close: excluded entirely
            _record(5, 50.0, offered=False),
        ]
        metrics = serving_metrics(records, duration_s=10.0)
        assert metrics.offered == 5
        assert metrics.admitted == 4
        assert metrics.rejected == 1
        assert metrics.assigned == 4
        assert metrics.completed == 3
        assert metrics.slo_met == 2
        assert metrics.unserved == 1
        assert metrics.rejection_rate == pytest.approx(0.2)
        assert metrics.throughput_rps == pytest.approx(0.3)
        assert metrics.goodput_rps == pytest.approx(0.2)
        assert metrics.queueing.count == 4
        assert metrics.queueing.p50 == pytest.approx(1.0)
        assert metrics.completion.count == 3

    def test_empty_run_is_all_zero(self):
        metrics = serving_metrics([], duration_s=0.0)
        assert metrics.offered == 0
        assert metrics.rejection_rate == 0.0
        assert metrics.goodput_rps == 0.0


class TestTerminalOutcomeAccounting:
    """Every terminal outcome lands in exactly one aggregate bucket.

    ``serving_metrics`` reads ``record.outcome`` directly (records
    always have the attribute), so each record must contribute to
    precisely one of rejected/completed/failed/unserved — and the
    resilience tallies must count failed/exhausted once each, over all
    records including never-offered ones.
    """

    def _with_outcome(self, record, outcome, attempts=1):
        record.outcome = outcome
        record.attempts = attempts
        return record

    def test_each_outcome_counted_exactly_once(self):
        records = [
            self._with_outcome(
                _record(0, 0.0, admitted_at=0.0, assigned_at=0.5,
                        completed_at=1.0), "completed"),
            self._with_outcome(
                _record(1, 0.0, admitted_at=0.0, assigned_at=0.5),
                "failed", attempts=1),
            self._with_outcome(
                _record(2, 0.0, admitted_at=0.0, assigned_at=0.5),
                "exhausted", attempts=3),
            self._with_outcome(_record(3, 0.0, rejected_at=0.0), "rejected"),
            # admitted, never terminal: the leftover/unserved bucket
            _record(4, 0.0, admitted_at=0.0),
            # never offered, but carries a failure outcome: excluded
            # from serving counts, included in resilience tallies
            self._with_outcome(
                _record(5, 50.0, offered=False), "failed", attempts=2),
        ]
        metrics = serving_metrics(records, duration_s=10.0)
        assert metrics.offered == 5
        assert metrics.rejected == 1
        assert metrics.completed == 1
        assert metrics.failed == 2          # failed + exhausted
        assert metrics.unserved == 1
        # each offered record in exactly one terminal bucket
        assert (metrics.rejected + metrics.completed + metrics.failed
                + metrics.unserved) == metrics.offered

    def test_accumulator_resilience_tallies_span_unoffered(self):
        from repro.metrics.latency import ServingAccumulator

        accumulator = ServingAccumulator()
        accumulator.add(self._with_outcome(
            _record(0, 50.0, offered=False), "failed", attempts=2))
        accumulator.add(self._with_outcome(
            _record(1, 0.0, admitted_at=0.0, assigned_at=0.5),
            "exhausted", attempts=3))
        assert accumulator.retries == 3          # (2-1) + (3-1)
        assert accumulator.failed_requests == 1
        assert accumulator.exhausted_requests == 1
        # the unoffered failure never leaks into serving counts
        assert accumulator.offered == 1
        assert accumulator.failed == 1
