"""Backend selection: SweepBackend validation, use_backend scoping,
environment resolution, and the hardened worker-count parsing."""

from __future__ import annotations

import pytest

from repro.distrib import SweepBackend, current_backend, use_backend
from repro.distrib.executor import BACKEND_ENV, QUEUE_ENV, resolve
from repro.errors import SweepConfigError
from repro.experiments import common
from tests.distrib import pointfns


class TestSweepBackendValidation:
    def test_unknown_backend(self):
        with pytest.raises(SweepConfigError, match="unknown sweep backend"):
            SweepBackend(backend="threads")

    def test_negative_workers(self):
        with pytest.raises(SweepConfigError, match="workers"):
            SweepBackend(workers=-1)

    def test_max_attempts_floor(self):
        with pytest.raises(SweepConfigError, match="max_attempts"):
            SweepBackend(max_attempts=0)

    def test_queue_requires_a_db(self):
        with pytest.raises(SweepConfigError, match="database path"):
            SweepBackend(backend="queue").require_db()
        assert SweepBackend(backend="queue", db="q.db").require_db() == "q.db"


class TestResolution:
    def test_default_is_pool(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve().backend == "pool"
        assert current_backend() is None

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "queue")
        with use_backend("pool"):
            assert resolve("serial").backend == "serial"
            config = SweepBackend(backend="queue", db="x.db")
            assert resolve(config) is config

    def test_context_beats_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        with use_backend("queue", db="ctx.db") as scoped:
            assert resolve() is scoped
            assert resolve().db == "ctx.db"
        assert resolve().backend == "serial"

    def test_contexts_nest_innermost_wins(self):
        with use_backend("pool"):
            with use_backend("serial"):
                assert resolve().backend == "serial"
            assert resolve().backend == "pool"

    def test_environment_backend_and_db(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "queue")
        monkeypatch.setenv(QUEUE_ENV, "env.db")
        config = resolve()
        assert config.backend == "queue"
        assert config.db == "env.db"

    def test_garbage_environment_is_an_error(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "cloud")
        with pytest.raises(SweepConfigError, match="REPRO_SWEEP_BACKEND"):
            resolve()


class TestSweepWorkersParsing:
    def test_unset_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert common.sweep_workers() >= 1

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", " 4 ")
        assert common.sweep_workers() == 4

    @pytest.mark.parametrize("value", ["zero", "2.5", "", "-", "1e2"])
    def test_garbage_is_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", value)
        if not value.strip():
            assert common.sweep_workers() >= 1
        else:
            with pytest.raises(SweepConfigError,
                               match="REPRO_SWEEP_WORKERS"):
                common.sweep_workers()

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_non_positive_is_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", value)
        with pytest.raises(SweepConfigError, match="positive"):
            common.sweep_workers()


class TestSweepDispatch:
    def test_serial_backend_runs_inline(self):
        assert common.sweep([1, 2], pointfns.double, backend="serial") \
            == [pointfns.double(1), pointfns.double(2)]

    def test_ambient_context_reaches_nested_sweeps(self):
        with use_backend("serial"):
            assert common.sweep([3], pointfns.double) == [pointfns.double(3)]

    def test_worker_mode_forces_serial_even_under_queue(self, tmp_path,
                                                        monkeypatch):
        # Inside a queue worker the worker IS the parallelism: a nested
        # sweep must run inline, not re-enter the queue.
        monkeypatch.setattr(common, "_IN_SWEEP_WORKER", True)
        config = SweepBackend(backend="queue",
                              db=str(tmp_path / "nested.db"))
        assert common.sweep([4], pointfns.double, backend=config) \
            == [pointfns.double(4)]
        assert not (tmp_path / "nested.db").exists()
