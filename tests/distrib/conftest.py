"""Shared fixtures for the durable-sweep tests."""

from __future__ import annotations

import pytest

from tests.distrib import pointfns


@pytest.fixture(autouse=True)
def _isolate_sweep_state():
    """In-process Workers set the process-global nested-sweep flag and
    the flaky() counter persists across tests; restore both."""
    from repro.experiments import common

    saved = common._IN_SWEEP_WORKER
    pointfns.CALLS.clear()
    yield
    common._IN_SWEEP_WORKER = saved
    pointfns.CALLS.clear()


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "queue.db")


class FakeClock:
    """A settable wall clock for sleep-free lease-expiry tests."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()
