"""Queue row serialization: fn references and payload envelopes."""

from __future__ import annotations

import functools
import json

import pytest

from repro.api import registry
from repro.distrib import codec
from repro.errors import DistribError
from tests.distrib import pointfns


class TestFnRef:
    def test_module_level_function_round_trips(self):
        ref = codec.fn_ref(pointfns.double)
        assert ref == "tests.distrib.pointfns:double"
        assert codec.resolve_fn(ref) is pointfns.double

    def test_lambda_is_rejected(self):
        with pytest.raises(DistribError, match="lambda or locally defined"):
            codec.fn_ref(lambda x: x)

    def test_local_function_is_rejected(self):
        def local(x):
            return x

        with pytest.raises(DistribError, match="lambda or locally defined"):
            codec.fn_ref(local)

    def test_partial_is_rejected(self):
        with pytest.raises(DistribError, match="module-level name"):
            codec.fn_ref(functools.partial(pointfns.double))

    def test_shadowed_name_is_rejected(self, monkeypatch):
        # A decorator-style wrapper that keeps the original __qualname__
        # but is not what the module attribute resolves to must not ship:
        # workers would silently run the unwrapped function.
        def imposter(x):
            return x

        imposter.__module__ = pointfns.double.__module__
        imposter.__qualname__ = pointfns.double.__qualname__
        with pytest.raises(DistribError, match="does not resolve back"):
            codec.fn_ref(imposter)

    @pytest.mark.parametrize("ref", ["no-colon", ":qual", "mod:", ""])
    def test_malformed_reference(self, ref):
        with pytest.raises(DistribError, match="malformed|module-level"):
            codec.resolve_fn(ref)

    def test_missing_module(self):
        with pytest.raises(DistribError, match="cannot import"):
            codec.resolve_fn("tests.distrib.no_such_module:fn")

    def test_missing_attribute(self):
        with pytest.raises(DistribError, match="no attribute"):
            codec.resolve_fn("tests.distrib.pointfns:nope")

    def test_non_callable(self):
        with pytest.raises(DistribError, match="not callable"):
            codec.resolve_fn("tests.distrib.pointfns:CALLS")


class TestEnvelopes:
    @pytest.mark.parametrize("value", [
        None, 0, 1.5, "text", [1, 2, 3], {"a": 1, "b": [True, None]},
    ])
    def test_json_safe_values_round_trip(self, value):
        assert codec.decode(codec.encode_item(value)) == value
        assert codec.decode(codec.encode_result(value)) == value

    def test_spec_round_trips_losslessly(self):
        spec = registry.get("serve").spec().override(
            {"training.epochs": 3, "seed": 9}
        )
        decoded = codec.decode(codec.encode_item(spec))
        assert decoded == spec
        assert json.loads(codec.encode_item(spec))["codec"] == "spec"

    def test_non_json_values_fall_back_to_pickle(self):
        value = {(1, 2): "tuple-keyed"}
        text = codec.encode_item(value)
        assert json.loads(text)["codec"] == "pickle"
        assert codec.decode(text) == value

    def test_tuples_pickle_instead_of_degrading_to_lists(self):
        # json.dumps would happily write (1, 2) as [1, 2]; the decoded
        # value must compare equal to what was submitted.
        assert codec.decode(codec.encode_item((1, 2))) == (1, 2)

    def test_item_encoding_is_canonical(self):
        # Sorted keys: the sweep fingerprint (and thus resume) must not
        # depend on dict construction order.
        a = codec.encode_item({"x": 1, "y": 2})
        b = codec.encode_item({"y": 2, "x": 1})
        assert a == b

    def test_result_encoding_preserves_insertion_order(self):
        # Result rows re-serialize byte-identically to the serial
        # executor's output, and dict key order is part of those bytes.
        text = codec.encode_result({"z": 1, "a": 2})
        assert json.dumps(codec.decode(text)) == '{"z": 1, "a": 2}'

    @pytest.mark.parametrize("text", [
        "not json", "[1, 2]", '{"data": 1}', '{"codec": "wat", "data": 1}',
    ])
    def test_corrupt_payloads_raise(self, text):
        with pytest.raises(DistribError, match="corrupt|unknown"):
            codec.decode(text)
