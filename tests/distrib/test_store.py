"""TaskStore: the state machine, guarded transitions, and the reaper."""

from __future__ import annotations

import json

import pytest

from repro.distrib.store import (
    DEAD,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    RUNNING,
    TaskStore,
)
from repro.errors import DistribError

RETRY_JSON = json.dumps({"max_attempts": 3})


def make_sweep(store, sweep_id="s1", n=3, max_attempts=3,
               lease_timeout_s=60.0, now=1000.0, fingerprint="fp"):
    return store.create_sweep(
        sweep_id, "tests.distrib.pointfns:double",
        [json.dumps({"codec": "json", "data": i}) for i in range(n)],
        fingerprint, retry_json=RETRY_JSON, max_attempts=max_attempts,
        lease_timeout_s=lease_timeout_s, now=now,
    )


@pytest.fixture
def store(db_path):
    with TaskStore(db_path) as task_store:
        yield task_store


class TestCreateSweep:
    def test_fresh_sweep_is_all_pending(self, store):
        assert make_sweep(store, n=3) is False
        assert store.counts("s1") == {
            PENDING: 3, LEASED: 0, RUNNING: 0, DONE: 0, FAILED: 0, DEAD: 0,
        }
        assert store.sweep_row("s1")["num_points"] == 3

    def test_resubmit_resumes_without_touching_rows(self, store):
        make_sweep(store)
        row = store.lease_next("w1", now=1000.0)
        store.complete("s1", row["point_index"], "w1", "{}", 0, now=1001.0)
        assert make_sweep(store) is True
        counts = store.counts("s1")
        assert counts[DONE] == 1 and counts[PENDING] == 2

    def test_fingerprint_mismatch_is_an_error(self, store):
        make_sweep(store, fingerprint="fp")
        with pytest.raises(DistribError, match="fingerprint mismatch"):
            make_sweep(store, fingerprint="other")

    def test_unknown_sweep_row(self, store):
        with pytest.raises(DistribError, match="no sweep"):
            store.sweep_row("nope")


class TestLeasing:
    def test_leases_lowest_index_first_and_counts_attempt(self, store):
        make_sweep(store)
        row = store.lease_next("w1", now=1000.0)
        assert row["point_index"] == 0
        assert row["attempts"] == 1
        assert row["fn"] == "tests.distrib.pointfns:double"
        assert row["lease_timeout_s"] == 60.0
        assert store.counts("s1")[LEASED] == 1

    def test_concurrent_leases_get_distinct_points(self, store):
        make_sweep(store, n=2)
        first = store.lease_next("w1", now=1000.0)
        second = store.lease_next("w2", now=1000.0)
        assert {first["point_index"], second["point_index"]} == {0, 1}
        assert store.lease_next("w3", now=1000.0) is None

    def test_queue_latency_measures_leasable_wait(self, store):
        make_sweep(store, now=1000.0)
        row = store.lease_next("w1", now=1007.5)
        assert row["queue_latency_s"] == pytest.approx(7.5)

    def test_lease_timeout_override(self, store):
        make_sweep(store)
        row = store.lease_next("w1", now=1000.0, lease_timeout_s=5.0)
        assert row["lease_timeout_s"] == 5.0
        # expires at now + 5, not now + 60
        assert store.reap_expired(now=1006.0) == (1, 0)

    def test_sweep_pinning(self, store):
        make_sweep(store, "s1", n=1)
        make_sweep(store, "s2", n=1)
        row = store.lease_next("w1", now=1000.0, sweep_id="s2")
        assert row["sweep_id"] == "s2"


class TestTransitions:
    def test_happy_path(self, store):
        make_sweep(store, n=1)
        row = store.lease_next("w1", now=1000.0)
        assert store.mark_running("s1", 0, "w1", now=1000.1)
        assert store.complete("s1", 0, "w1", '{"ok": 1}', 42, now=1001.0)
        point = store.points("s1")[0]
        assert point["state"] == DONE
        assert point["result"] == '{"ok": 1}'
        assert point["events"] == 42
        assert store.all_terminal("s1")
        assert row["attempts"] == 1

    def test_wrong_worker_cannot_transition(self, store):
        make_sweep(store, n=1)
        store.lease_next("w1", now=1000.0)
        assert not store.mark_running("s1", 0, "w2", now=1000.1)
        assert not store.complete("s1", 0, "w2", "{}", 0, now=1000.1)
        assert not store.fail("s1", 0, "w2", "x", now=1000.1,
                              not_before=1000.1, dead=False)
        assert store.points("s1")[0]["state"] == LEASED

    def test_failed_point_waits_for_its_backoff_gate(self, store):
        make_sweep(store, n=1)
        store.lease_next("w1", now=1000.0)
        assert store.fail("s1", 0, "w1", "boom", now=1001.0,
                          not_before=1031.0, dead=False)
        point = store.points("s1")[0]
        assert point["state"] == FAILED
        assert point["error"] == "boom"
        assert point["worker_id"] is None
        assert store.lease_next("w2", now=1030.0) is None
        retry = store.lease_next("w2", now=1031.0)
        assert retry["attempts"] == 2

    def test_dead_is_terminal(self, store):
        make_sweep(store, n=1)
        store.lease_next("w1", now=1000.0)
        assert store.fail("s1", 0, "w1", "fatal", now=1001.0,
                          not_before=1001.0, dead=True)
        assert store.points("s1")[0]["state"] == DEAD
        assert store.lease_next("w2", now=9999.0) is None
        assert store.all_terminal("s1")

    def test_completion_clears_stale_error(self, store):
        make_sweep(store, n=1)
        store.lease_next("w1", now=1000.0)
        store.fail("s1", 0, "w1", "boom", now=1001.0, not_before=1001.0,
                   dead=False)
        store.lease_next("w1", now=1002.0)
        store.complete("s1", 0, "w1", "{}", 0, now=1003.0)
        assert store.points("s1")[0]["error"] is None


class TestReaper:
    def test_expired_lease_returns_to_pending(self, store):
        make_sweep(store, n=2, lease_timeout_s=10.0)
        store.lease_next("w1", now=1000.0)
        assert store.reap_expired(now=1005.0) == (0, 0)
        assert store.reap_expired(now=1010.5) == (1, 0)
        point = store.points("s1")[0]
        assert point["state"] == PENDING
        assert point["lease_expiries"] == 1
        assert point["attempts"] == 1  # the crashed attempt stays burned
        assert point["worker_id"] is None

    def test_running_leases_expire_too(self, store):
        make_sweep(store, n=1, lease_timeout_s=10.0)
        store.lease_next("w1", now=1000.0)
        store.mark_running("s1", 0, "w1", now=1000.1)
        assert store.reap_expired(now=1011.0) == (1, 0)

    def test_poison_point_goes_dead_at_the_attempt_cap(self, store):
        make_sweep(store, n=1, max_attempts=2, lease_timeout_s=10.0)
        store.lease_next("w1", now=1000.0)
        assert store.reap_expired(now=1011.0) == (1, 0)
        store.lease_next("w2", now=1011.0)
        assert store.reap_expired(now=1022.0) == (0, 1)
        point = store.points("s1")[0]
        assert point["state"] == DEAD
        assert "lease expired after 2 attempt(s)" in point["error"]
        assert point["lease_expiries"] == 2

    def test_requeued_point_resets_queue_latency(self, store):
        make_sweep(store, n=1, lease_timeout_s=10.0, now=1000.0)
        store.lease_next("w1", now=1000.0)
        store.reap_expired(now=1011.0)
        row = store.lease_next("w2", now=1012.0)
        assert row["queue_latency_s"] == pytest.approx(1.0)


class TestIntrospection:
    def test_results_are_ordered_by_index_not_completion(self, store):
        make_sweep(store, n=3)
        leases = [store.lease_next(f"w{i}", now=1000.0) for i in range(3)]
        for row in reversed(leases):  # complete out of order
            store.complete("s1", row["point_index"],
                           f"w{row['point_index']}",
                           json.dumps({"i": row["point_index"]}), 0,
                           now=2000.0 - row["point_index"])
        assert [json.loads(r["result"])["i"] for r in store.results("s1")] \
            == [0, 1, 2]

    def test_has_any_sweep(self, store):
        assert not store.has_any_sweep()
        make_sweep(store)
        assert store.has_any_sweep()
