"""The worker loop: drain, retry, crash-recovery, telemetry."""

from __future__ import annotations

import pytest

from repro.distrib import Broker, TaskStore, Worker
from repro.errors import DistribError
from repro.faults.retry import RetryPolicy
from repro.obs.telemetry import Telemetry
from tests.distrib import pointfns


@pytest.fixture
def store(db_path):
    with TaskStore(db_path) as task_store:
        yield task_store


def make_worker(store, clock, **kwargs):
    kwargs.setdefault("telemetry", Telemetry())
    kwargs.setdefault("worker_id", "test-worker")
    return Worker(store, clock=clock, sleep=clock.advance, **kwargs)


class TestDrain:
    def test_drains_the_store_and_exits(self, store, clock):
        broker = Broker(store, clock=clock)
        sweep_id, _ = broker.submit([1, 2, 3], pointfns.double)
        worker = make_worker(store, clock)
        stats = worker.run()
        assert stats.points_done == 3
        assert stats.points_failed == 0
        results, events = broker.aggregate(sweep_id)
        assert results == [pointfns.double(i) for i in (1, 2, 3)]
        assert "3 point(s) done" in stats.summary()

    def test_empty_store_is_not_drained(self, store, clock):
        # An empty database means "the sweep is still being enqueued":
        # the worker must wait, not exit.
        assert not make_worker(store, clock)._drained()

    def test_max_points_bounds_the_run(self, store, clock):
        broker = Broker(store, clock=clock)
        broker.submit([1, 2, 3], pointfns.double)
        stats = make_worker(store, clock, max_points=2).run()
        assert stats.points_done == 2
        assert broker.counts()["PENDING"] == 1

    def test_worker_telemetry_reports_through_obs(self, store, clock):
        broker = Broker(store, clock=clock)
        broker.submit([5, 6], pointfns.double)
        telemetry = Telemetry()
        make_worker(store, clock, telemetry=telemetry).run()
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["distrib.attempts"] == 2
        assert snapshot["counters"]["distrib.points_done"] == 2
        assert "distrib.queue_latency_s" in snapshot["gauges"]

    def test_nested_sweeps_inside_a_point_run_serial(self, store, clock):
        from repro.experiments import common

        broker = Broker(store, clock=clock)
        broker.submit([1], pointfns.double)
        make_worker(store, clock).run()
        assert common._IN_SWEEP_WORKER is True  # reset by the fixture


class TestRetries:
    def test_transient_failure_retries_to_success(self, store, clock):
        broker = Broker(store, clock=clock)
        sweep_id, _ = broker.submit([1, 2], pointfns.flaky)
        telemetry = Telemetry()
        stats = make_worker(store, clock, telemetry=telemetry).run()
        assert stats.points_done == 2
        assert stats.points_failed == 2  # one failed attempt each
        assert telemetry.snapshot()["counters"]["distrib.failures"] == 2
        results, _ = broker.aggregate(sweep_id)
        assert [row["attempt"] for row in results] == [2, 2]
        assert store.points(sweep_id)[0]["attempts"] == 2

    def test_poison_point_goes_dead_and_aggregate_reports_it(
            self, store, clock):
        broker = Broker(store, retry=RetryPolicy(max_attempts=2),
                        clock=clock)
        sweep_id, _ = broker.submit([1], pointfns.boom)
        stats = make_worker(store, clock).run()
        assert stats.points_done == 0
        assert stats.points_failed == 2
        assert store.points(sweep_id)[0]["state"] == "DEAD"
        with pytest.raises(DistribError, match="DEAD"):
            broker.aggregate(sweep_id)

    def test_failure_records_the_exception_text(self, store, clock):
        broker = Broker(store, retry=RetryPolicy(max_attempts=1),
                        clock=clock)
        sweep_id, _ = broker.submit([7], pointfns.boom)
        make_worker(store, clock).run()
        assert "ValueError: boom on 7" in store.points(sweep_id)[0]["error"]


class TestCrashRecovery:
    def test_reaps_a_dead_workers_lease_and_finishes(self, store, clock):
        broker = Broker(store, lease_timeout_s=30.0, clock=clock)
        sweep_id, _ = broker.submit([1, 2], pointfns.double)
        # A ghost worker takes point 0 and dies without reporting.
        assert broker.lease("ghost").point_index == 0
        clock.advance(31.0)  # its lease expires
        telemetry = Telemetry()
        stats = make_worker(store, clock, telemetry=telemetry).run()
        assert stats.points_done == 2
        assert stats.lease_expiries_reaped == 1
        assert telemetry.snapshot()["counters"]["distrib.lease_expiries"] == 1
        point = store.points(sweep_id)[0]
        assert point["lease_expiries"] == 1
        assert point["attempts"] == 2  # the ghost's attempt stays burned
        results, _ = broker.aggregate(sweep_id)
        assert results == [pointfns.double(1), pointfns.double(2)]

    def test_live_lease_is_not_stolen(self, store, clock):
        broker = Broker(store, lease_timeout_s=30.0, clock=clock)
        broker.submit([1], pointfns.double)
        broker.lease("ghost")
        worker = make_worker(store, clock)
        assert worker.broker.reap() == (0, 0)
        assert worker.broker.lease(worker.worker_id) is None

    def test_lost_lease_completion_is_discarded(self, store, clock):
        # Worker A leases, stalls past the timeout; the point is reaped
        # and finished by worker B. A's late completion must lose.
        broker = Broker(store, lease_timeout_s=30.0, clock=clock)
        sweep_id, _ = broker.submit([1], pointfns.double)
        stale = broker.lease("slow")
        clock.advance(31.0)
        make_worker(store, clock).run()
        assert not broker.complete(stale, "slow", {"late": True})
        results, _ = broker.aggregate(sweep_id)
        assert results == [pointfns.double(1)]
