"""The acceptance contract: queue-backed sweeps aggregate byte-identical
to the serial and pool executors, through crashes and resumes."""

from __future__ import annotations

import json

import pytest

from repro.api import registry
from repro.distrib import Broker, SweepBackend, TaskStore, Worker
from repro.experiments import common
from tests.distrib import pointfns

SERVE_OVERRIDES = {
    "training.epochs": 1,
    "sweep.axes": {"arrivals.rate_per_s": [2.0, 4.0]},
}


def serialize(result) -> bytes:
    # The determinism suite's framing: byte-identical means identical
    # JSON bytes, key order included.
    return json.dumps(result.data).encode()


def drain(db_path, clock, **kwargs):
    """Run an in-process worker over the database until it drains,
    then restore the nested-sweep flag so this process can keep acting
    as a queue client."""
    saved = common._IN_SWEEP_WORKER
    try:
        with TaskStore(db_path) as store:
            return Worker(store, worker_id="inline", clock=clock,
                          sleep=clock.advance, **kwargs).run()
    finally:
        common._IN_SWEEP_WORKER = saved


class TestSimpleSweeps:
    def test_queue_matches_serial_and_resumes_instantly(
            self, db_path, clock):
        items = list(range(6))
        serial = common.sweep(items, pointfns.double, backend="serial")
        # Enqueue + drain first, exactly as external workers would...
        with TaskStore(db_path) as store:
            Broker(store, clock=clock).submit(items, pointfns.double)
        drain(db_path, clock)
        # ...then the client run finds every row DONE and resumes.
        config = SweepBackend(backend="queue", db=db_path, workers=0,
                              timeout_s=10.0)
        queued = common.sweep(items, pointfns.double, backend=config)
        assert json.dumps(queued) == json.dumps(serial)

    def test_empty_sweep_never_touches_the_queue(self, tmp_path):
        config = SweepBackend(backend="queue",
                              db=str(tmp_path / "untouched.db"))
        assert common.sweep([], pointfns.double, backend=config) == []
        assert not (tmp_path / "untouched.db").exists()

    def test_queue_results_survive_crash_and_interleaving(
            self, db_path, clock):
        # Two workers split the sweep; one "crashes" (a ghost lease that
        # expires) and the survivor finishes the reaped point. The
        # aggregate must still equal the serial map, in order.
        items = [10, 11, 12, 13]
        with TaskStore(db_path) as store:
            broker = Broker(store, lease_timeout_s=30.0, clock=clock)
            sweep_id, _ = broker.submit(items, pointfns.double)
            broker.lease("ghost")  # crashes holding point 0
            drain(db_path, clock, max_points=2)  # survivor does 2 points
            clock.advance(31.0)  # ghost's lease expires mid-sweep
            drain(db_path, clock)
            results, _ = broker.aggregate(sweep_id)
        assert results == [pointfns.double(i) for i in items]
        assert json.dumps(results) == json.dumps(
            [pointfns.double(i) for i in items]
        )


class TestServeScenario:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return registry.run("serve", overrides=SERVE_OVERRIDES,
                            backend="serial")

    def test_pool_matches_serial(self, serial_result):
        pooled = registry.run("serve", overrides=SERVE_OVERRIDES,
                              backend="pool")
        assert serialize(pooled) == serialize(serial_result)

    def test_queue_matches_serial_via_subprocess_worker(
            self, db_path, serial_result):
        # The real topology: the client enqueues and a separate `repro
        # worker` process drains — then a second client run resumes the
        # fully terminal sweep without any worker at all.
        config = SweepBackend(backend="queue", db=db_path, workers=1,
                              poll_s=0.05, timeout_s=120.0)
        queued = registry.run("serve", overrides=SERVE_OVERRIDES,
                              backend=config)
        assert serialize(queued) == serialize(serial_result)

        resumed = registry.run(
            "serve", overrides=SERVE_OVERRIDES,
            backend=SweepBackend(backend="queue", db=db_path, workers=0,
                                 timeout_s=10.0),
        )
        assert serialize(resumed) == serialize(serial_result)

    def test_artifact_files_are_byte_identical(self, tmp_path, db_path,
                                               serial_result):
        serial_dir = tmp_path / "serial"
        queue_dir = tmp_path / "queue"
        serial_result.write_artifacts(str(serial_dir))
        config = SweepBackend(backend="queue", db=db_path, workers=1,
                              poll_s=0.05, timeout_s=120.0)
        queued = registry.run("serve", overrides=SERVE_OVERRIDES,
                              backend=config)
        queued.write_artifacts(str(queue_dir))
        for name in ("serve.json", "serve.csv", "serve.txt"):
            assert (queue_dir / name).read_bytes() \
                == (serial_dir / name).read_bytes(), name
