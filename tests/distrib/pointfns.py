"""Module-level point functions for distrib tests.

Queue point functions ship as ``module:qualname`` references, so the
functions the tests sweep must live at module level (exactly the
constraint production experiment points obey).
"""

from __future__ import annotations

import collections

#: per-value call counter for flaky(); tests reset it between runs
CALLS: "collections.Counter[object]" = collections.Counter()


def double(x):
    return {"x": x, "twice": 2 * x}


def boom(x):
    raise ValueError(f"boom on {x!r}")


def flaky(x):
    """Fail the first attempt for each value, succeed on the second."""
    CALLS[x] += 1
    if CALLS[x] < 2:
        raise RuntimeError(f"transient failure #{CALLS[x]} on {x!r}")
    return {"x": x, "attempt": CALLS[x]}
