"""Broker: enqueue/resume semantics, retry policy, aggregation."""

from __future__ import annotations

import pytest

from repro.distrib import Broker, TaskStore
from repro.distrib.broker import _backoff_rng
from repro.errors import DistribError
from repro.faults.retry import RetryPolicy
from tests.distrib import pointfns


@pytest.fixture
def store(db_path):
    with TaskStore(db_path) as task_store:
        yield task_store


@pytest.fixture
def broker(store, clock):
    return Broker(store, clock=clock)


class TestSubmit:
    def test_sweep_id_is_the_grid_fingerprint(self, broker):
        sweep_id, resumed = broker.submit([1, 2, 3], pointfns.double)
        assert not resumed
        assert len(sweep_id) == 16
        again, resumed = broker.submit([1, 2, 3], pointfns.double)
        assert resumed and again == sweep_id

    def test_different_grids_get_different_ids(self, broker):
        first, _ = broker.submit([1, 2], pointfns.double)
        second, _ = broker.submit([1, 2, 3], pointfns.double)
        third, _ = broker.submit([1, 2], pointfns.flaky)
        assert len({first, second, third}) == 3

    def test_explicit_sweep_id_guards_against_grid_swap(self, broker):
        broker.submit([1, 2], pointfns.double, sweep_id="mine")
        with pytest.raises(DistribError, match="fingerprint mismatch"):
            broker.submit([3, 4], pointfns.double, sweep_id="mine")

    def test_policy_is_recorded_per_sweep(self, store, clock):
        custom = Broker(store, retry=RetryPolicy(max_attempts=7), clock=clock)
        sweep_id, _ = custom.submit([1], pointfns.double)
        assert store.sweep_row(sweep_id)["max_attempts"] == 7


class TestLeaseLifecycle:
    def test_lease_carries_decoded_payload(self, broker):
        sweep_id, _ = broker.submit(["a", "b"], pointfns.double)
        lease = broker.lease("w1")
        assert lease.sweep_id == sweep_id
        assert lease.point_index == 0
        assert lease.payload == "a"
        assert lease.attempts == 1
        assert lease.fn_ref == "tests.distrib.pointfns:double"

    def test_complete_then_aggregate(self, broker):
        sweep_id, _ = broker.submit([1, 2], pointfns.double)
        for _ in range(2):
            lease = broker.lease("w1")
            assert broker.start(lease, "w1")
            assert broker.complete(lease, "w1",
                                   pointfns.double(lease.payload), events=5)
        results, events = broker.aggregate(sweep_id)
        assert results == [{"x": 1, "twice": 2}, {"x": 2, "twice": 4}]
        assert events == 10
        assert broker.finished(sweep_id)

    def test_aggregate_refuses_unfinished_sweeps(self, broker):
        sweep_id, _ = broker.submit([1, 2], pointfns.double)
        with pytest.raises(DistribError, match="not finished"):
            broker.aggregate(sweep_id)

    def test_aggregate_names_dead_points(self, broker, clock):
        sweep_id, _ = broker.submit([1], pointfns.boom)
        for _ in range(3):  # DEFAULT_RETRY.max_attempts
            lease = broker.lease("w1")
            broker.fail(lease, "w1", "boom on 1")
            clock.advance(60.0)  # past any backoff gate
        assert broker.counts(sweep_id)["DEAD"] == 1
        with pytest.raises(DistribError, match=r"1 DEAD point\(s\).*#0.*boom"):
            broker.aggregate(sweep_id)


class TestRetryBackoff:
    def test_failed_point_is_gated_then_retried(self, broker, clock):
        broker.submit([1], pointfns.double)
        lease = broker.lease("w1")
        assert broker.fail(lease, "w1", "transient")
        # immediately after the failure the backoff gate holds...
        assert broker.lease("w1") is None
        # ...and a RetryPolicy delay later the point leases again.
        clock.advance(10.0)
        retry = broker.lease("w1")
        assert retry is not None and retry.attempts == 2

    def test_backoff_jitter_is_a_pure_hash(self):
        a = RetryPolicy().delay_s(1, _backoff_rng("s", 0, 1))
        b = RetryPolicy().delay_s(1, _backoff_rng("s", 0, 1))
        other = RetryPolicy().delay_s(1, _backoff_rng("s", 1, 1))
        assert a == b
        assert a != other

    def test_attempt_cap_marks_dead(self, store, clock):
        broker = Broker(store, retry=RetryPolicy(max_attempts=2), clock=clock)
        sweep_id, _ = broker.submit([1], pointfns.boom)
        for expected_attempt in (1, 2):
            lease = broker.lease("w1")
            assert lease.attempts == expected_attempt
            broker.fail(lease, "w1", "boom")
            clock.advance(60.0)
        assert broker.lease("w1") is None
        assert store.points(sweep_id)[0]["state"] == "DEAD"

    def test_reap_delegates_to_store(self, broker, clock):
        broker.submit([1], pointfns.double, sweep_id="s")
        broker.lease("w1", lease_timeout_s=5.0)
        assert broker.reap() == (0, 0)
        clock.advance(6.0)
        assert broker.reap() == (1, 0)
