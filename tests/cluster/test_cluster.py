"""Tests for the first-class cluster layer (`repro.cluster`).

Covers the four surfaces ISSUE 4 names: spec round-trip, the
ClusterRunner lifecycle through Session, N-job serial-vs-pool
determinism, and the stage-offset correctness of bubble reports
(`_OffsetListener`).
"""

from __future__ import annotations

import json

import pytest

from repro.api import registry
from repro.api.session import ClusterRunner, Session, make_runner
from repro.api.spec import (
    ClusterSpec,
    JobSpec,
    ScenarioSpec,
    TrainingSpec,
    WorkloadSpec,
)
from repro.cluster import Cluster, ClusterBuilder, ClusterResult
from repro.errors import SessionError, SpecError
from repro.experiments import common
from repro.pipeline.config import TrainConfig, model_config


def cluster_spec(jobs=2, **overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        name="cluster-test",
        kind="cluster",
        jobs=jobs,
        training=TrainingSpec(epochs=2),
        workloads=(WorkloadSpec(name="pagerank"),),
    )
    return spec.override(overrides) if overrides else spec


# ----------------------------------------------------------------------
# spec round-trip
# ----------------------------------------------------------------------
class TestClusterSpec:
    def test_int_jobs_round_trips(self):
        spec = cluster_spec(jobs=3)
        assert spec.to_dict()["jobs"] == 3
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_explicit_job_list_round_trips(self):
        spec = ScenarioSpec(
            kind="cluster",
            jobs=(
                JobSpec(training=TrainingSpec(model="3.6B", epochs=2)),
                JobSpec(training=TrainingSpec(model="1.2B", epochs=2),
                        name="small"),
            ),
        )
        rehydrated = ScenarioSpec.from_json(spec.to_json())
        assert rehydrated == spec
        assert rehydrated.jobs[1].name == "small"
        assert rehydrated.jobs[1].training.model == "1.2B"

    def test_int_jobs_expand_to_copies_of_the_base_sections(self):
        spec = cluster_spec(jobs=3)
        jobs = spec.job_specs()
        assert len(jobs) == 3
        assert all(job.training == spec.training for job in jobs)
        assert all(job.cluster == spec.cluster for job in jobs)

    def test_job_configs_stagger_seeds(self):
        configs = cluster_spec(jobs=3, seed=7).job_configs()
        assert [config.seed for config in configs] == [7, 8, 9]

    def test_cluster_kind_requires_jobs(self):
        with pytest.raises(SpecError, match="need jobs"):
            ScenarioSpec(kind="cluster")

    def test_negative_jobs_rejected(self):
        with pytest.raises(SpecError, match=">= 0"):
            ScenarioSpec(kind="cluster", jobs=-1)

    def test_set_jobs_override_is_the_cli_path(self):
        """`repro run cluster --set jobs=4`: an int override replaces
        whatever job shape the spec had."""
        spec = cluster_spec(jobs=2).override({"jobs": 4})
        assert spec.num_jobs == 4

    def test_policy_string_sugar(self):
        """`--set policy=edf` names the assignment policy."""
        spec = cluster_spec().override({"policy": "edf"})
        assert spec.policy.assignment == "edf"
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_parent_override_pins_child_axes(self):
        """`--set policy=edf` on the default cluster scenario pins the
        policy.assignment sweep axis instead of being re-swept away."""
        result_spec = registry.run("cluster", overrides={
            "policy": "edf",
            "sweep.axes": {"jobs": [1],
                           "workloads": [[{"name": "pagerank"}]]},
        }).scenario
        assert result_spec.policy.assignment == "edf"

    def test_child_override_pins_subtree_axis(self):
        """An override *inside* a swept subtree (--set
        workloads.0.batch_size=32 against the 'workloads' mix axis)
        pins the whole axis rather than being silently replaced."""
        from repro.api.registry import _pin_swept_fields
        from repro.experiments.cluster import default_spec

        overrides = {"workloads.0.batch_size": 32}
        spec = _pin_swept_fields(
            default_spec().override(overrides), overrides)
        assert "workloads" not in spec.sweep.axes
        for point in spec.sweep_points():
            assert point.workloads[0].batch_size == 32

    def test_per_job_server_factories(self):
        spec = ScenarioSpec(
            kind="cluster",
            jobs=(JobSpec(cluster=ClusterSpec(server="server_i")),),
        )
        assert spec.job_specs()[0].cluster.factory() is not None


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
class TestBuilder:
    def test_builder_chains_jobs(self):
        config = TrainConfig(model=model_config("3.6B"), epochs=1,
                             op_jitter=0.01)
        cluster = (ClusterBuilder()
                   .add_job(config)
                   .add_job(config, name="second")
                   .build())
        assert cluster.num_jobs == 2
        assert len(cluster.workers) == 2 * config.num_stages
        assert cluster.layout[1][0] == "second"

    def test_builder_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ClusterBuilder().build()

    def test_job_of_worker_maps_global_to_local(self):
        config = TrainConfig(model=model_config("3.6B"), epochs=1,
                             op_jitter=0.01)
        cluster = ClusterBuilder([config, config]).build()
        assert cluster.job_of_worker(0) == (0, 0)
        assert cluster.job_of_worker(config.num_stages) == (1, 0)
        assert cluster.job_of_worker(config.num_stages + 1) == (1, 1)
        with pytest.raises(IndexError):
            cluster.job_of_worker(2 * config.num_stages)


# ----------------------------------------------------------------------
# ClusterRunner lifecycle via Session
# ----------------------------------------------------------------------
class TestClusterRunner:
    def test_make_runner_dispatches_cluster_kind(self):
        assert isinstance(make_runner(cluster_spec()), ClusterRunner)

    def test_session_runs_cluster_to_a_typed_result(self):
        with Session(cluster_spec()) as session:
            result = session.run().results()
        assert isinstance(result, ClusterResult)
        assert len(result.jobs) == 2
        assert result.total_units > 0
        assert 0.0 < result.utilization <= 1.0
        # Tasks land on both jobs' workers (least-loaded spreads).
        stages = {report.stage for report in result.tasks}
        assert stages == set(range(8))

    def test_tasks_partition_across_job_results(self):
        result = Session(cluster_spec()).run().results()
        partitioned = sum(len(job.tasks) for job in result.jobs)
        assert partitioned == len(result.tasks)
        for job in result.jobs:
            for report in job.tasks:
                assert job.stage_offset <= report.stage \
                    < job.stage_offset + job.num_stages

    def test_session_submit_extends_cluster_scenarios(self):
        session = Session(cluster_spec())
        session.submit("resnet18", replicate=False)
        result = session.run().results()
        names = {report.name.rsplit("-", 1)[0] for report in result.tasks}
        assert "resnet18" in names

    def test_submit_on_traffic_cluster_raises(self):
        spec = cluster_spec().override({
            "arrivals": {"kind": "poisson", "rate_per_s": 2.0},
            "params.horizon_s": 3.0,
        })
        with pytest.raises(SessionError, match="arrivals"):
            Session(spec).submit("pagerank")

    def test_submit_with_runner_kwarg_arrivals_raises_too(self):
        """A trace-replay process handed to the runner directly puts
        the cluster in serving mode; submit() must not silently drop
        the workload into the ignored spec.workloads list."""
        from repro.serving.arrivals import PoissonArrivals

        session = Session(cluster_spec(),
                          arrivals=PoissonArrivals(2.0, seed=0))
        with pytest.raises(SessionError, match="arrivals|mix"):
            session.submit("pagerank")

    def test_serving_against_the_combined_pool(self):
        """Open-loop traffic admitted against the cluster's pool, with
        per-job token buckets on the existing admission seam."""
        spec = cluster_spec().override({
            "arrivals": {"kind": "poisson", "rate_per_s": 2.0},
            "policy.admission": "per_job_token_bucket",
            "params.horizon_s": 4.0,
        })
        result = Session(spec).run().results()
        assert isinstance(result, ClusterResult)
        assert result.metrics is not None
        assert result.metrics.offered > 0
        assert result.open_duration_s == pytest.approx(4.0)

    def test_per_job_buckets_scale_admission_with_job_count(self):
        from repro.serving.frontend import PerJobTokenBucket

        single = PerJobTokenBucket(jobs=1, rate_per_s=1.0, burst=1.0)
        double = PerJobTokenBucket(jobs=2, rate_per_s=1.0, burst=1.0)
        admitted_single = sum(
            1 for _ in range(4) if single.admit(0.0, None, 0)[0])
        admitted_double = sum(
            1 for _ in range(4) if double.admit(0.0, None, 0)[0])
        assert admitted_single == 1
        assert admitted_double == 2

    def test_same_spec_same_results(self):
        first = Session(cluster_spec()).run().results()
        second = Session(cluster_spec()).run().results()
        assert [job.training.total_time for job in first.jobs] == \
            [job.training.total_time for job in second.jobs]
        assert first.total_units == second.total_units


# ----------------------------------------------------------------------
# N-job determinism: serial vs pool, export re-run
# ----------------------------------------------------------------------
CLUSTER_REDUCED = {
    "training.epochs": 1,
    "sweep.axes": {
        "jobs": [1, 2],
        "policy.assignment": ["least_loaded"],
        "workloads": [[{"name": "pagerank"}]],
    },
}


def _serialize(rows) -> bytes:
    return json.dumps(rows, sort_keys=True).encode()


def _cluster_rows(max_workers: int) -> bytes:
    from repro.experiments.cluster import _cluster_point

    spec = registry.get("cluster").spec().override(CLUSTER_REDUCED)
    rows = common.sweep(spec.sweep_points(), _cluster_point,
                        max_workers=max_workers)
    return _serialize(rows)


def test_pool_and_serial_cluster_sweeps_are_byte_identical():
    assert _cluster_rows(max_workers=1) == _cluster_rows(max_workers=2)


def test_exported_cluster_spec_reruns_byte_identically():
    """The acceptance loop: run, export the spec JSON, re-hydrate,
    re-run — rows and rendering match byte for byte."""
    first = registry.run("cluster", overrides=CLUSTER_REDUCED)
    spec = ScenarioSpec.from_json(first.scenario.to_json())
    assert spec == first.scenario
    second = registry.run("cluster", spec=spec)
    assert _serialize(first.row_dicts()) == _serialize(second.row_dicts())
    assert first.render() == second.render()


# ----------------------------------------------------------------------
# _OffsetListener stage mapping
# ----------------------------------------------------------------------
class _RecordingManager:
    """Captures what the manager would receive over RPC."""

    def __init__(self):
        self.bubbles = []
        self.ended = []

    def add_bubble(self, bubble):
        self.bubbles.append(bubble)

    def bubble_ended(self, stage, now):
        self.ended.append((stage, now))


class TestOffsetListener:
    def _listener(self, engine, manager, stage_offset):
        from repro.cluster.builder import _OffsetListener
        from repro.pipeline.memory_model import MemoryModel

        config = TrainConfig(model=model_config("3.6B"), epochs=1,
                             op_jitter=0.01)
        memory = MemoryModel(config.model, config.num_stages,
                             config.micro_batches, gpu_memory_gb=48.0)
        return _OffsetListener(engine, manager, memory, 0.0, 0.001,
                               stage_offset=stage_offset)

    def test_bubble_reports_shift_by_the_job_offset(self, engine):
        from repro.pipeline.analysis import BubbleType
        from repro.pipeline.instrumentation import BubbleStart

        manager = _RecordingManager()
        listener = self._listener(engine, manager, stage_offset=4)
        listener.on_bubble_start(BubbleStart(
            stage=1, index=0, start=0.0, btype=BubbleType.TYPE_A,
            available_gb=10.0, expected_duration=0.5,
        ))
        listener.on_bubble_end(1, 0.5)
        engine.run()
        assert [bubble.stage for bubble in manager.bubbles] == [5]
        assert manager.ended == [(5, 0.5)]

    def test_zero_offset_is_the_identity(self, engine):
        from repro.pipeline.analysis import BubbleType
        from repro.pipeline.instrumentation import BubbleStart

        manager = _RecordingManager()
        listener = self._listener(engine, manager, stage_offset=0)
        listener.on_bubble_start(BubbleStart(
            stage=2, index=0, start=0.0, btype=BubbleType.TYPE_B,
            available_gb=10.0, expected_duration=0.25,
        ))
        engine.run()
        assert manager.bubbles[0].stage == 2

    def test_live_cluster_reports_every_global_stage(self):
        """End to end: a 2-job cluster's shared manager sees bubbles for
        all 8 global worker indices, each mapping back to the right
        job/local stage."""
        config_a = TrainConfig(model=model_config("3.6B"), epochs=1,
                               op_jitter=0.01)
        config_b = TrainConfig(model=model_config("1.2B"), epochs=1,
                               op_jitter=0.01, seed=1)
        cluster = ClusterBuilder([config_a, config_b]).build()
        seen: set[int] = set()
        original = cluster.manager.add_bubble

        def spy(bubble):
            seen.add(bubble.stage)
            original(bubble)

        cluster.manager.add_bubble = spy
        cluster.run()
        assert seen == set(range(8))
        assert {cluster.job_of_worker(stage)[0] for stage in seen} == {0, 1}
