"""Atomic artifact writes: readers never observe a torn file."""

from __future__ import annotations

import os

import pytest

from repro.ioutil import atomic_write_text


def test_writes_the_content(tmp_path):
    path = tmp_path / "out.json"
    atomic_write_text(path, '{"a": 1}')
    assert path.read_text() == '{"a": 1}'


def test_replaces_an_existing_file(tmp_path):
    path = tmp_path / "out.json"
    path.write_text("old")
    atomic_write_text(path, "new")
    assert path.read_text() == "new"


def test_no_temp_files_left_behind(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "content")
    assert os.listdir(tmp_path) == ["out.txt"]


def test_failed_write_leaves_the_old_file_intact(tmp_path, monkeypatch):
    path = tmp_path / "out.txt"
    path.write_text("survivor")

    def explode(fd):
        raise OSError("disk full")

    monkeypatch.setattr(os, "fsync", explode)
    with pytest.raises(OSError, match="disk full"):
        atomic_write_text(path, "torn")
    assert path.read_text() == "survivor"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_relative_path_without_directory(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    atomic_write_text("bare.txt", "x")
    assert (tmp_path / "bare.txt").read_text() == "x"
