"""Smoke tests: every registered experiment runs and renders.

The benchmarks exercise the full-size experiments; these tests run
reduced versions through the registry (the only entry point since the
PR-3 deprecation shims were dropped) so `pytest tests/` stays fast
while still covering the experiment code paths end to end.
"""

from __future__ import annotations

import pytest

from repro.api import registry
from repro.experiments import ablations, fig7


def test_registry_contains_all_artifacts():
    assert set(registry.names()) == {
        "fig1", "fig2", "table1", "table2", "fig7", "fig8", "fig9",
        "ablations", "serve", "cluster", "fairness", "resilience",
        "fuzzcase",
    }


def test_fig1_runs_and_renders():
    result = registry.run("fig1")
    text = result.render()
    assert "stage 0" in text and "Figure 1(b)" in text
    assert result.data["stages"][0]["pattern"] == "B C C C"


def test_fig2_reduced():
    result = registry.run("fig2", overrides={"training.epochs": 2})
    assert "bubble rate" in result.render()
    assert len(result.data["by_model"]) == 3


def test_table1_reduced():
    result = registry.run("table1", overrides={
        "training.epochs": 2,
        "sweep.points": [{"workloads.0.name": name}
                         for name in ("resnet18", "pagerank")],
    })
    text = result.render()
    assert "resnet18" in text and "pagerank" in text
    for row in result.rows():
        assert row.freeride_iterative > 0


def test_table2_reduced():
    result = registry.run("table2", overrides={
        "training.epochs": 2,
        "sweep.axes": {"workloads.0.name": ["resnet18"],
                       "params.method": ["iterative", "imperative", "mps",
                                         "naive"]},
        "params.include_mixed": False,
    })
    assert "resnet18" in result.render()
    cells = {cell.method: cell for cell in result.data["cells"]}
    assert cells["iterative"].time_increase < cells["mps"].time_increase


def test_fig7_reduced():
    spec = fig7.default_spec().override({
        "training.epochs": 2, "params.tasks": ["resnet18"],
    })
    points = fig7.micro_batch_sweep(spec)
    assert {point.x for point in points} == {4, 6, 8}


def test_fig8_runs():
    result = registry.run("fig8")
    assert result.data["time_limit"]["killed_at_s"] is not None
    assert result.data["memory_limit"]["killed"]
    assert "Figure 8" in result.render()


def test_fig9_reduced():
    result = registry.run("fig9", overrides={
        "training.epochs": 2,
        "sweep.points": [{"workloads.0.name": name}
                         for name in ("resnet18", "vgg19")],
    })
    rows = {row["task"]: row for row in result.data["rows"]}
    assert rows["vgg19"]["no_task_oom"] > rows["resnet18"]["no_task_oom"]
    assert "bubble time breakdown" in result.render()


def test_ablations_reduced():
    rows = ablations.schedule_sweep(
        ablations.default_spec().override({"training.epochs": 2}))
    assert {row["schedule"] for row in rows} == {"1f1b", "gpipe"}


SERVE_REDUCED = {
    "training.epochs": 2,
    "sweep.axes": {
        "arrivals.rate_per_s": [2.0],
        "policy.admission": ["always"],
        "policy.assignment": ["least_loaded"],
    },
}


def test_serve_reduced():
    result = registry.run("serve", overrides=SERVE_REDUCED)
    assert len(result.data["rows"]) == 1
    row = result.data["rows"][0]
    assert row["offered"] > 0
    assert row["completed"] > 0
    assert 0.0 <= row["rejection_rate"] <= 1.0
    assert row["completion_p50"] <= row["completion_p95"] <= row["completion_p99"]
    text = result.render()
    assert "goodput" in text and "rejected" in text


def test_serve_seed_changes_traffic():
    base = registry.run("serve", overrides=SERVE_REDUCED).data["rows"][0]
    other = registry.run(
        "serve", overrides={**SERVE_REDUCED, "seed": 1}).data["rows"][0]
    assert base["offered"] != other["offered"] or \
        base["completion_p50"] != other["completion_p50"]


CLUSTER_REDUCED = {
    "training.epochs": 2,
    "sweep.axes": {
        "jobs": [1, 2],
        "policy.assignment": ["least_loaded"],
        "workloads": [[{"name": "pagerank"}]],
    },
}


def test_cluster_reduced():
    result = registry.run("cluster", overrides=CLUSTER_REDUCED)
    rows = result.data["rows"]
    assert [row["jobs"] for row in rows] == [1, 2]
    # Two jobs double the pool: more workers, more placements, more units.
    assert rows[1]["workers"] == 2 * rows[0]["workers"]
    assert rows[1]["total_units"] > rows[0]["total_units"]
    for row in rows:
        assert 0.0 < row["utilization"] <= 1.0
    assert "utilization" in result.render()


def test_cli_runs_fig1(capsys):
    """`repro run fig1` prints the figure."""
    from repro.cli import main
    assert main(["run", "fig1"]) == 0
    captured = capsys.readouterr()
    assert "Figure 1(a)" in captured.out


def test_cli_positional_form_is_gone():
    """The pre-registry positional form was dropped with the PR-3 shims."""
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["fig1"])


def test_cli_rejects_unknown_experiment():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_cli_seed_flag_applies_to_every_scenario(capsys):
    """--seed is spec-level: fig1 (which ignored it pre-registry)
    accepts it and reseeds the training jitter."""
    from repro.cli import main
    assert main(["run", "fig1", "--seed", "3"]) == 0
    captured = capsys.readouterr()
    assert "does not take" not in captured.err
    assert "Figure 1(a)" in captured.out
