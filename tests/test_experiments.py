"""Smoke tests: every experiment module runs and renders.

The benchmarks exercise the full-size experiments; these tests run
reduced versions so `pytest tests/` stays fast while still covering the
experiment code paths end to end.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, fig1, fig2, fig8, fig9, table1, table2
from repro.experiments import ablations, fig7, serve


def test_registry_contains_all_paper_artifacts():
    assert set(EXPERIMENTS) == {
        "fig1", "fig2", "table1", "table2", "fig7", "fig8", "fig9",
        "ablations", "serve",
    }


def test_fig1_runs_and_renders():
    data = fig1.run()
    text = fig1.render(data)
    assert "stage 0" in text and "Figure 1(b)" in text
    assert data["stages"][0]["pattern"] == "B C C C"


def test_fig2_reduced():
    data = fig2.run(epochs=2)
    text = fig2.render(data)
    assert "bubble rate" in text
    assert len(data["by_model"]) == 3


def test_table1_reduced():
    data = table1.run(epochs=2, tasks=("resnet18", "pagerank"))
    text = table1.render(data)
    assert "resnet18" in text and "pagerank" in text
    for row in data["rows"]:
        assert row.freeride_iterative > 0


def test_table2_reduced():
    data = table2.run(epochs=2, tasks=("resnet18",), include_mixed=False)
    text = table2.render(data)
    assert "resnet18" in text
    cells = {cell.method: cell for cell in data["cells"]}
    assert cells["iterative"].time_increase < cells["mps"].time_increase


def test_fig7_reduced():
    points = fig7.run_micro_batch_sweep(epochs=2, tasks=("resnet18",))
    assert {point.x for point in points} == {4, 6, 8}


def test_fig8_runs():
    data = fig8.run()
    assert data["time_limit"]["killed_at_s"] is not None
    assert data["memory_limit"]["killed"]
    assert "Figure 8" in fig8.render(data)


def test_fig9_reduced():
    data = fig9.run(epochs=2, tasks=("resnet18", "vgg19"))
    rows = {row["task"]: row for row in data["rows"]}
    assert rows["vgg19"]["no_task_oom"] > rows["resnet18"]["no_task_oom"]
    assert "bubble time breakdown" in fig9.render(data)


def test_ablations_reduced():
    rows = ablations.run_schedules(epochs=2)
    assert {row["schedule"] for row in rows} == {"1f1b", "gpipe"}


def test_serve_reduced():
    data = serve.run(epochs=2, rates=(2.0,), admissions=("always",),
                     policies=("least_loaded",))
    assert len(data["rows"]) == 1
    row = data["rows"][0]
    assert row["offered"] > 0
    assert row["completed"] > 0
    assert 0.0 <= row["rejection_rate"] <= 1.0
    assert row["completion_p50"] <= row["completion_p95"] <= row["completion_p99"]
    text = serve.render(data)
    assert "goodput" in text and "rejected" in text


def test_serve_seed_changes_traffic():
    kwargs = dict(epochs=2, rates=(2.0,), admissions=("always",),
                  policies=("least_loaded",))
    base = serve.run(seed=0, **kwargs)["rows"][0]
    other = serve.run(seed=1, **kwargs)["rows"][0]
    assert base["offered"] != other["offered"] or \
        base["completion_p50"] != other["completion_p50"]


def test_cli_runs_fig1(capsys):
    """`repro run fig1` prints the figure."""
    from repro.cli import main
    assert main(["run", "fig1"]) == 0
    captured = capsys.readouterr()
    assert "Figure 1(a)" in captured.out


def test_cli_legacy_positional_form_still_works(capsys):
    """One release of back-compat: `freeride fig1` forwards to run."""
    from repro.cli import main
    assert main(["fig1"]) == 0
    captured = capsys.readouterr()
    assert "Figure 1(a)" in captured.out
    assert "deprecated" in captured.err


def test_cli_rejects_unknown_experiment():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["run", "fig99"])
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_seed_flag_applies_to_every_scenario(capsys):
    """--seed is spec-level now: fig1 (which ignored it pre-registry)
    accepts it and reseeds the training jitter."""
    from repro.cli import main
    assert main(["run", "fig1", "--seed", "3"]) == 0
    captured = capsys.readouterr()
    assert "does not take" not in captured.err
    assert "Figure 1(a)" in captured.out
