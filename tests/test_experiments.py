"""Smoke tests: every experiment module runs and renders.

The benchmarks exercise the full-size experiments; these tests run
reduced versions so `pytest tests/` stays fast while still covering the
experiment code paths end to end.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, fig1, fig2, fig8, fig9, table1, table2
from repro.experiments import ablations, fig7


def test_registry_contains_all_paper_artifacts():
    assert set(EXPERIMENTS) == {
        "fig1", "fig2", "table1", "table2", "fig7", "fig8", "fig9",
        "ablations",
    }


def test_fig1_runs_and_renders():
    data = fig1.run()
    text = fig1.render(data)
    assert "stage 0" in text and "Figure 1(b)" in text
    assert data["stages"][0]["pattern"] == "B C C C"


def test_fig2_reduced():
    data = fig2.run(epochs=2)
    text = fig2.render(data)
    assert "bubble rate" in text
    assert len(data["by_model"]) == 3


def test_table1_reduced():
    data = table1.run(epochs=2, tasks=("resnet18", "pagerank"))
    text = table1.render(data)
    assert "resnet18" in text and "pagerank" in text
    for row in data["rows"]:
        assert row.freeride_iterative > 0


def test_table2_reduced():
    data = table2.run(epochs=2, tasks=("resnet18",), include_mixed=False)
    text = table2.render(data)
    assert "resnet18" in text
    cells = {cell.method: cell for cell in data["cells"]}
    assert cells["iterative"].time_increase < cells["mps"].time_increase


def test_fig7_reduced():
    points = fig7.run_micro_batch_sweep(epochs=2, tasks=("resnet18",))
    assert {point.x for point in points} == {4, 6, 8}


def test_fig8_runs():
    data = fig8.run()
    assert data["time_limit"]["killed_at_s"] is not None
    assert data["memory_limit"]["killed"]
    assert "Figure 8" in fig8.render(data)


def test_fig9_reduced():
    data = fig9.run(epochs=2, tasks=("resnet18", "vgg19"))
    rows = {row["task"]: row for row in data["rows"]}
    assert rows["vgg19"]["no_task_oom"] > rows["resnet18"]["no_task_oom"]
    assert "bubble time breakdown" in fig9.render(data)


def test_ablations_reduced():
    rows = ablations.run_schedules(epochs=2)
    assert {row["schedule"] for row in rows} == {"1f1b", "gpipe"}


def test_cli_runs_fig1(capsys):
    from repro.cli import main
    assert main(["fig1"]) == 0
    captured = capsys.readouterr()
    assert "Figure 1(a)" in captured.out


def test_cli_rejects_unknown_experiment():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["fig99"])
