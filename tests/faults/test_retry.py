"""Serving retry/backoff tests: transient worker death loses no requests.

The acceptance criterion pinned here: with retries enabled, a single
transient worker crash loses zero admitted requests — every one ends in
an explicit terminal outcome, and the run's ``failed`` count is zero.
"""

from __future__ import annotations

from repro.api.session import ServingRunner
from repro.api.spec import FaultSpec, ScenarioSpec
from repro.experiments import common
from repro.faults.plan import WorkerCrash
from repro.serving.arrivals import RequestTemplate, TraceArrivals


def _run(faults, *, trace=None, epochs=3):
    if trace is None:
        template = RequestTemplate("pagerank", job_steps=400,
                                   slo_class="standard")
        trace = [(0.5, template)]
    spec = ScenarioSpec(
        name="retry-test", kind="serving", seed=0, faults=faults,
        params={"horizon_s": 1e4, "settle_s": 2.0},
    )
    runner = ServingRunner(
        spec,
        config=common.train_config(epochs=epochs),
        arrivals=TraceArrivals(trace, seed=0),
    )
    return runner.run()


#: every stage dies once at t=1.0 and returns at t=3.0 — wherever the
#: request landed, its worker crashed under it
TRANSIENT_ALL_STAGES = tuple(
    WorkerCrash(stage=stage, at_s=1.0, restart_after_s=2.0)
    for stage in range(4)
)


class TestZeroLoss:
    def test_transient_crash_with_retries_loses_no_admitted_request(self):
        result = _run(FaultSpec(crashes=TRANSIENT_ALL_STAGES,
                                retry_max_attempts=3, recovery="none"))
        metrics = result.metrics
        assert metrics.admitted > 0
        assert metrics.failed == 0
        assert metrics.completed == metrics.admitted
        for record in result.records:
            if record.admitted_at is not None:
                assert record.outcome == "completed"
                assert record.steps_done == record.request.job_steps

    def test_same_crash_without_retries_loses_the_request(self):
        result = _run(FaultSpec(crashes=TRANSIENT_ALL_STAGES,
                                retry_max_attempts=1, recovery="none"))
        record = result.records[0]
        assert record.outcome == "failed"
        assert "crashed" in record.failure
        assert result.metrics.failed == 1
        assert result.metrics.completed == 0

    def test_retry_ledger_counts_the_extra_attempts(self):
        result = _run(FaultSpec(crashes=TRANSIENT_ALL_STAGES,
                                retry_max_attempts=3, recovery="none"))
        record = result.records[0]
        assert record.attempts == 2
        assert result.resilience.retries == 1
        assert result.resilience.failed_requests == 0
        assert result.resilience.exhausted_requests == 0


class TestExhaustion:
    def test_permanent_loss_exhausts_retries_with_context(self):
        # All workers die for good: every retry re-dispatches into a
        # dead pool and the request must surface a full explanation.
        crashes = tuple(
            WorkerCrash(stage=stage, at_s=1.0, restart_after_s=None)
            for stage in range(4)
        )
        result = _run(FaultSpec(crashes=crashes, retry_max_attempts=2,
                                recovery="none"))
        record = result.records[0]
        assert record.outcome in ("exhausted", "failed")
        assert record.failure is not None
        if record.outcome == "exhausted":
            assert "retries exhausted after" in record.failure
            assert "crashed" in record.failure
        assert result.metrics.failed == 1


class TestRecordBookkeeping:
    def test_retried_attempt_gets_a_distinct_task_name(self):
        result = _run(FaultSpec(crashes=TRANSIENT_ALL_STAGES,
                                retry_max_attempts=3, recovery="none"))
        record = result.records[0]
        assert record.attempts == 2
        # The retry attempt ran under a suffixed name, so per-task
        # ledgers (fault hashes, reports) never collide across attempts.
        assert record.spec.name.endswith("-a1")

    def test_summary_carries_attempts_and_outcome(self):
        result = _run(FaultSpec(crashes=TRANSIENT_ALL_STAGES,
                                retry_max_attempts=3, recovery="none"))
        summary = result.records[0].summary()
        assert summary["attempts"] == 2
        assert summary["outcome"] == "completed"
        assert summary["failure"] is None

    def test_healthy_run_is_untouched_by_retry_config(self):
        """A retry policy with no faults must not change the outcome of
        a healthy run (the retry stream is drawn only on failures)."""
        plain = _run(None)
        with_retry = _run(FaultSpec(retry_max_attempts=3))
        assert [r.summary() for r in plain.records] == [
            r.summary() for r in with_retry.records
        ]
