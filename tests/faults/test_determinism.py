"""Determinism regression for faulted runs.

The acceptance guard for the fault layer: injecting failures must not
cost reproducibility. A reduced resilience sweep produces byte-identical
rows whether points run serially or in process-pool workers, and a
faulted scenario re-executed from its exported spec JSON reproduces the
run byte for byte — crashes, retries, restores and all.
"""

from __future__ import annotations

import json

from repro.experiments import common, resilience

#: reduced resilience grid: every recovery mode, a crash rate high
#: enough that the plan is never empty over the short horizon
OVERRIDES = {
    "training.epochs": 1,
    "faults.crash_rate": 4.0,
    "faults.restart_after_s": 2.0,
    "sweep.axes": {
        "faults.crash_rate": [4.0],
        "faults.recovery": ["none", "restart", "checkpoint"],
    },
}


def _serialize(rows) -> bytes:
    return json.dumps(rows, sort_keys=True).encode()


def _reduced_points():
    spec = resilience.default_spec().override(OVERRIDES)
    horizon_s = common.baseline_time(spec.train_config()) * float(
        spec.param("open_fraction")
    )
    return spec.sweep_points({"params.horizon_s": horizon_s})


def test_faulted_sweep_pool_matches_serial_byte_for_byte():
    points = _reduced_points()
    serial = common.sweep(points, resilience._resilience_point,
                          max_workers=1)
    pooled = common.sweep(points, resilience._resilience_point,
                          max_workers=2)
    assert any(row["crashes"] > 0 for row in serial)
    assert _serialize(serial) == _serialize(pooled)


def test_faulted_run_reruns_from_exported_spec_json():
    """CI's tier-1 determinism check: export the faulted point spec to
    JSON, re-hydrate, re-run, compare byte for byte."""
    from repro.api.spec import ScenarioSpec

    for point in _reduced_points():
        rehydrated = ScenarioSpec.from_json(point.to_json())
        assert rehydrated == point
        first = resilience._resilience_point(point)
        second = resilience._resilience_point(rehydrated)
        assert _serialize(first) == _serialize(second)


def test_full_resilience_experiment_rerun_is_byte_identical():
    spec = resilience.default_spec().override(OVERRIDES)
    first = resilience.run_spec(spec)["rows"]
    second = resilience.run_spec(spec)["rows"]
    assert _serialize(first) == _serialize(second)
