"""Unit tests for the fault plan, injector queries, and retry math."""

from __future__ import annotations

import pytest

from repro.faults import (
    CheckpointPolicy,
    DropWindow,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SlowdownWindow,
    WorkerCrash,
    build_plan,
)
from repro.sim.rng import RandomStreams


class TestBuildPlan:
    def test_same_seed_same_plan(self):
        first = build_plan(7, horizon_s=30.0, num_stages=4, crash_rate=2.0)
        second = build_plan(7, horizon_s=30.0, num_stages=4, crash_rate=2.0)
        assert first == second

    def test_different_seeds_differ(self):
        first = build_plan(7, horizon_s=30.0, num_stages=4, crash_rate=3.0)
        second = build_plan(8, horizon_s=30.0, num_stages=4, crash_rate=3.0)
        assert first != second

    def test_zero_rate_is_empty(self):
        plan = build_plan(0, horizon_s=30.0, num_stages=4)
        assert plan.crashes == ()
        assert plan.empty

    def test_crashes_sorted_and_in_range(self):
        plan = build_plan(3, horizon_s=20.0, num_stages=4, crash_rate=2.0)
        times = [crash.at_s for crash in plan.crashes]
        assert times == sorted(times)
        for crash in plan.crashes:
            assert 0 <= crash.stage < 4
            assert 0.0 <= crash.at_s <= 20.0

    def test_restart_delay_carried_onto_sampled_crashes(self):
        plan = build_plan(3, horizon_s=20.0, num_stages=4, crash_rate=2.0,
                          restart_after_s=1.5)
        assert plan.crashes
        assert all(crash.restart_after_s == 1.5 for crash in plan.crashes)

    def test_extra_sections_make_plan_non_empty(self):
        plan = build_plan(0, horizon_s=10.0, num_stages=4,
                          slowdowns=(SlowdownWindow(0, 1.0, 2.0, 2.0),))
        assert not plan.empty


class TestInjectorQueries:
    def _injector(self, **kwargs) -> FaultInjector:
        return FaultInjector(FaultPlan(**kwargs))

    def test_step_failures_deterministic_per_attempt(self):
        first = self._injector(step_failure_rate=0.5, step_failure_seed=11)
        second = self._injector(step_failure_rate=0.5, step_failure_seed=11)
        draws_a = [first.step_fails("t") for _ in range(50)]
        draws_b = [second.step_fails("t") for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_step_failures_independent_across_tasks(self):
        injector = self._injector(step_failure_rate=0.5, step_failure_seed=11)
        solo = self._injector(step_failure_rate=0.5, step_failure_seed=11)
        # Interleave another task's draws; "a"'s sequence must not move.
        interleaved = []
        for _ in range(30):
            injector.step_fails("b")
            interleaved.append(injector.step_fails("a"))
        assert interleaved == [solo.step_fails("a") for _ in range(30)]

    def test_zero_rate_never_fails(self):
        injector = self._injector(step_failure_rate=0.0)
        assert not any(injector.step_fails("t") for _ in range(20))

    def test_slowdown_factor_window_bounds(self):
        injector = self._injector(
            slowdowns=(SlowdownWindow(stage=1, start_s=2.0, end_s=4.0,
                                      factor=3.0),)
        )
        assert injector.slowdown_factor(1, 1.9) == 1.0
        assert injector.slowdown_factor(1, 2.0) == 3.0
        assert injector.slowdown_factor(1, 3.9) == 3.0
        assert injector.slowdown_factor(1, 4.0) == 1.0
        assert injector.slowdown_factor(0, 3.0) == 1.0

    def test_overlapping_slowdowns_take_the_max(self):
        injector = self._injector(
            slowdowns=(SlowdownWindow(0, 0.0, 10.0, 2.0),
                       SlowdownWindow(0, 5.0, 6.0, 4.0))
        )
        assert injector.slowdown_factor(0, 5.5) == 4.0
        assert injector.slowdown_factor(0, 8.0) == 2.0


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.5,
                             backoff_factor=2.0, jitter=0.0)
        rng = RandomStreams(0).stream("test")
        assert policy.delay_s(1, rng) == pytest.approx(0.5)
        assert policy.delay_s(2, rng) == pytest.approx(1.0)
        assert policy.delay_s(3, rng) == pytest.approx(2.0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(max_attempts=2, backoff_s=1.0,
                             backoff_factor=1.0, jitter=0.25)
        rng = RandomStreams(1).stream("test")
        for _ in range(100):
            assert 0.75 <= policy.delay_s(1, rng) <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCheckpointPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_steps=-1)
        with pytest.raises(ValueError):
            CheckpointPolicy(checkpoint_cost_s=-0.1)

    def test_interval_zero_means_restart_from_scratch(self):
        policy = CheckpointPolicy(interval_steps=0)
        assert policy.interval_steps == 0


class TestArmValidation:
    def test_out_of_range_stage_rejected(self):
        from repro.core.middleware import FreeRide
        from repro.experiments import common

        freeride = FreeRide(common.train_config(epochs=1))
        injector = FaultInjector(
            FaultPlan(crashes=(WorkerCrash(stage=9, at_s=1.0),))
        )
        with pytest.raises(ValueError, match="stage 9"):
            injector.arm(freeride)

    def test_drop_windows_installed_on_manager_rpc(self):
        from repro.core.middleware import FreeRide
        from repro.experiments import common

        freeride = FreeRide(common.train_config(epochs=1))
        windows = (DropWindow(start_s=1.0, end_s=2.0),)
        injector = FaultInjector(
            FaultPlan(rpc_drops=windows, rpc_retry_delay_s=0.1)
        )
        injector.arm(freeride)
        assert freeride.manager.rpc.drop_windows == windows
        assert freeride.manager.rpc.retransmit_delay_s == 0.1
        assert all(worker.injector is injector for worker in freeride.workers)
