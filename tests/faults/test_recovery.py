"""Checkpoint/preempt/restore integration tests over the live pool.

The scripted-crash scenarios here pin the acceptance criteria of the
recovery layer: a checkpointed task survives its worker dying and
resumes from its last snapshot; restart-from-scratch (interval 0) keeps
the same seam but wastes strictly more work; tasks without a checkpoint
policy are killed outright, exactly as before the layer existed.
"""

from __future__ import annotations

import pytest

from repro.api.session import ServingRunner
from repro.api.spec import FaultSpec, ScenarioSpec
from repro.core.middleware import FreeRide
from repro.core.states import SideTaskState
from repro.experiments import common
from repro.faults import CheckpointPolicy, FaultInjector, FaultPlan, WorkerCrash
from repro.serving.arrivals import RequestTemplate, TraceArrivals
from repro.workloads.registry import workload_factory


def _crashed_freeride(checkpoint, *, crash_at=6.0, restart_after=3.0,
                      epochs=2):
    """A batch run whose every submitted task sees its worker crash."""
    freeride = FreeRide(common.train_config(epochs=epochs))
    for stage in range(len(freeride.workers)):
        freeride.submit(workload_factory("pagerank"), name=f"pr{stage}",
                        checkpoint=checkpoint)
    crashes = tuple(
        WorkerCrash(stage=stage, at_s=crash_at, restart_after_s=restart_after)
        for stage in range(len(freeride.workers))
    )
    FaultInjector(FaultPlan(crashes=crashes)).arm(freeride)
    return freeride


class TestBatchRecovery:
    def test_checkpointed_tasks_survive_worker_crashes(self):
        freeride = _crashed_freeride(CheckpointPolicy(interval_steps=4))
        result = freeride.run()
        assert any(report.preemptions > 0 for report in result.tasks)
        for report in result.tasks:
            assert report.restores == report.preemptions
            if report.preemptions:
                # The task kept making progress after the crash.
                assert report.failure is None
                assert report.steps_done > 0

    def test_unprotected_tasks_die_with_their_worker(self):
        freeride = _crashed_freeride(None)
        result = freeride.run()
        crashed = [r for r in result.tasks if r.failure is not None]
        assert crashed
        for report in crashed:
            assert "crashed" in report.failure
            assert report.preemptions == 0

    def test_permanent_crash_without_capacity_abandons_at_teardown(self):
        freeride = FreeRide(common.train_config(epochs=2))
        freeride.submit(workload_factory("pagerank"), name="pr",
                        checkpoint=CheckpointPolicy())
        stage = freeride._submissions[0][2]
        # Every worker dies for good: the preempted task can never land.
        crashes = tuple(
            WorkerCrash(stage=s, at_s=6.0, restart_after_s=None)
            for s in range(len(freeride.workers))
        )
        FaultInjector(FaultPlan(crashes=crashes)).arm(freeride)
        result = freeride.run()
        report = result.task("pr")
        if report.preemptions:
            assert report.failure is not None
            assert "never restored" in report.failure
        assert freeride.workers[stage].crashed

    def test_crash_log_records_downtime(self):
        freeride = _crashed_freeride(CheckpointPolicy())
        freeride.run()
        for worker in freeride.workers:
            assert len(worker.crash_log) == 1
            crashed_at, restarted_at = worker.crash_log[0]
            assert crashed_at == pytest.approx(6.0)
            assert restarted_at == pytest.approx(9.0)
            assert not worker.crashed


def _single_request_run(faults, *, job_steps=400, epochs=3):
    template = RequestTemplate("pagerank", job_steps=job_steps,
                               slo_class="standard")
    spec = ScenarioSpec(
        name="recovery-test", kind="serving", seed=0, faults=faults,
        params={"horizon_s": 1e4, "settle_s": 2.0},
    )
    runner = ServingRunner(
        spec,
        config=common.train_config(epochs=epochs),
        arrivals=TraceArrivals([(0.5, template)], seed=0),
    )
    return runner.run()


class TestServingRecovery:
    CRASH = (WorkerCrash(stage=0, at_s=1.0, restart_after_s=3.0),)

    def test_checkpointed_request_resumes_without_a_retry(self):
        result = _single_request_run(
            FaultSpec(crashes=self.CRASH, recovery="checkpoint",
                      checkpoint_interval_steps=10)
        )
        record = result.records[0]
        assert record.status == "completed"
        assert record.attempts == 1  # recovered, not re-dispatched
        assert record.steps_done == 400
        assert result.resilience.preemptions == 1
        assert result.resilience.restores == 1
        assert result.resilience.checkpoints > 0

    def test_checkpoint_wastes_strictly_less_than_restart(self):
        """The acceptance criterion: periodic snapshots bound wasted work
        below restart-from-scratch on the same fault sequence."""
        restart = _single_request_run(
            FaultSpec(crashes=self.CRASH, recovery="restart")
        ).resilience
        checkpointed = _single_request_run(
            FaultSpec(crashes=self.CRASH, recovery="checkpoint",
                      checkpoint_interval_steps=10)
        ).resilience
        assert restart.preemptions == checkpointed.preemptions == 1
        assert restart.wasted_steps > 0
        assert checkpointed.wasted_steps < restart.wasted_steps
        assert checkpointed.wasted_s < restart.wasted_s
        # Only the checkpointing run pays snapshot overhead.
        assert restart.checkpoints == 0
        assert checkpointed.checkpoint_overhead_s > 0

    def test_restored_task_state_machine_went_through_preempted(self):
        result = _single_request_run(
            FaultSpec(crashes=self.CRASH, recovery="checkpoint",
                      checkpoint_interval_steps=10)
        )
        record = result.records[0]
        assert record.status == "completed"
        # The run's resilience ledger saw the full preempt/restore cycle
        # and the request record carries no failure from it.
        assert record.failure is None
        assert result.resilience.restore_overhead_s > 0


class TestManagerCrashSemantics:
    def test_crashed_worker_not_eligible_until_restart(self):
        freeride = FreeRide(common.train_config(epochs=2))
        freeride.manager.crash_worker(0, restart_after_s=None)
        eligible = freeride.manager.eligible_workers(0.1)
        assert freeride.workers[0] not in eligible
        freeride.manager._restart_worker(0)
        eligible = freeride.manager.eligible_workers(0.1)
        assert freeride.workers[0] in eligible

    def test_double_crash_is_idempotent(self):
        freeride = FreeRide(common.train_config(epochs=2))
        freeride.manager.crash_worker(0)
        freeride.manager.crash_worker(0)
        assert len(freeride.workers[0].crash_log) == 1

    def test_terminal_states_after_full_run(self):
        """After teardown every runtime is terminal — nothing is left in
        a zombie state, restored or not."""
        freeride = _crashed_freeride(CheckpointPolicy(interval_steps=4))
        freeride.run()
        seen = set()
        runtimes = [
            task for worker in freeride.workers for task in worker.all_tasks
        ] + list(freeride.manager.preempted)
        for runtime in runtimes:
            if id(runtime) in seen:
                continue
            seen.add(id(runtime))
            assert runtime.machine.state is SideTaskState.STOPPED
