"""FaultSpec: validation, JSON round-trip, and policy derivation."""

from __future__ import annotations

import pytest

from repro.api.registry import expand_overrides
from repro.api.spec import FaultSpec, ScenarioSpec, SpecError
from repro.faults.plan import DropWindow, SlowdownWindow, WorkerCrash

FULL = FaultSpec(
    crash_rate=1.5,
    crashes=(WorkerCrash(stage=1, at_s=3.0, restart_after_s=2.0),
             WorkerCrash(stage=0, at_s=7.5, restart_after_s=None)),
    restart_after_s=4.0,
    step_failure_rate=0.01,
    slowdowns=(SlowdownWindow(stage=2, start_s=1.0, end_s=5.0, factor=3.0),),
    rpc_drop_windows=(DropWindow(start_s=2.0, end_s=2.5),),
    recovery="checkpoint",
    checkpoint_interval_steps=8,
    retry_max_attempts=3,
    attempt_timeout_s=30.0,
)


class TestValidation:
    def test_unknown_recovery_mode(self):
        with pytest.raises(SpecError, match="recovery"):
            FaultSpec(recovery="pray")

    def test_negative_crash_rate(self):
        with pytest.raises(SpecError, match="crash_rate"):
            FaultSpec(crash_rate=-1.0)

    def test_step_failure_rate_must_be_below_one(self):
        with pytest.raises(SpecError, match="step_failure_rate"):
            FaultSpec(step_failure_rate=1.0)

    def test_retry_attempts_at_least_one(self):
        with pytest.raises(SpecError, match="retry_max_attempts"):
            FaultSpec(retry_max_attempts=0)

    def test_faults_only_on_serving_or_cluster(self):
        with pytest.raises(SpecError, match="faults"):
            ScenarioSpec(name="x", kind="batch", faults=FaultSpec())
        ScenarioSpec(name="x", kind="serving", faults=FaultSpec())
        ScenarioSpec(name="x", kind="cluster", jobs=2, faults=FaultSpec())


class TestRoundTrip:
    def test_nested_sections_survive_json(self):
        spec = ScenarioSpec(name="rt", kind="serving", faults=FULL)
        rehydrated = ScenarioSpec.from_json(spec.to_json())
        assert rehydrated == spec
        assert rehydrated.faults.crashes == FULL.crashes
        assert rehydrated.faults.slowdowns == FULL.slowdowns
        assert rehydrated.faults.rpc_drop_windows == FULL.rpc_drop_windows

    def test_absent_faults_stays_none(self):
        spec = ScenarioSpec(name="rt", kind="serving")
        assert ScenarioSpec.from_json(spec.to_json()).faults is None


class TestPolicyDerivation:
    def test_active_requires_an_injection_knob(self):
        assert not FaultSpec().active
        assert not FaultSpec(recovery="checkpoint",
                             retry_max_attempts=5).active
        assert FaultSpec(crash_rate=0.1).active
        assert FaultSpec(crashes=(WorkerCrash(stage=0, at_s=1.0),)).active
        assert FaultSpec(step_failure_rate=0.1).active

    def test_retry_policy_none_by_default(self):
        assert FaultSpec().retry_policy() is None

    def test_retry_policy_fields_map_through(self):
        policy = FaultSpec(retry_max_attempts=4, retry_backoff_s=0.25,
                           retry_backoff_factor=3.0, retry_jitter=0.0,
                           attempt_timeout_s=9.0).retry_policy()
        assert policy.max_attempts == 4
        assert policy.backoff_s == 0.25
        assert policy.backoff_factor == 3.0
        assert policy.jitter == 0.0
        assert policy.attempt_timeout_s == 9.0

    def test_timeout_alone_builds_a_policy(self):
        policy = FaultSpec(attempt_timeout_s=5.0).retry_policy()
        assert policy is not None
        assert policy.max_attempts == 1

    def test_checkpoint_policy_per_recovery_mode(self):
        assert FaultSpec(recovery="none").checkpoint_policy() is None
        restart = FaultSpec(recovery="restart").checkpoint_policy()
        assert restart.interval_steps == 0
        periodic = FaultSpec(recovery="checkpoint",
                             checkpoint_interval_steps=8).checkpoint_policy()
        assert periodic.interval_steps == 8

    def test_build_plan_merges_scripted_and_sampled_sorted(self):
        plan = FULL.build_plan(seed=3, horizon_s=20.0, num_stages=4)
        keys = [(crash.at_s, crash.stage) for crash in plan.crashes]
        assert keys == sorted(keys)
        # Both scripted crashes survive the merge verbatim.
        for scripted in FULL.crashes:
            assert scripted in plan.crashes
        # And the sampled ones carry the spec's restart delay.
        sampled = [c for c in plan.crashes if c not in FULL.crashes]
        assert sampled
        assert all(c.restart_after_s == 4.0 for c in sampled)

    def test_build_plan_deterministic_in_seed(self):
        assert (FULL.build_plan(3, 20.0, 4)
                == FULL.build_plan(3, 20.0, 4))
        assert (FULL.build_plan(3, 20.0, 4)
                != FULL.build_plan(4, 20.0, 4))


class TestSugar:
    def test_crash_rate_and_recovery_expand_to_faults_paths(self):
        expanded = expand_overrides(
            {"crash_rate": 2.0, "recovery": "checkpoint", "seed": 7}
        )
        assert expanded == {
            "faults.crash_rate": 2.0,
            "faults.recovery": "checkpoint",
            "seed": 7,
        }

    def test_override_reaches_nested_fault_fields(self):
        spec = ScenarioSpec(name="s", kind="serving", faults=FaultSpec())
        bumped = spec.override({"faults.crash_rate": 2.0,
                                "faults.recovery": "restart"})
        assert bumped.faults.crash_rate == 2.0
        assert bumped.faults.recovery == "restart"
