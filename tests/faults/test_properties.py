"""Property-based guard: any fault sequence leaves tasks terminal.

Whatever crash schedule hypothesis throws at a run — clustered,
permanent, repeated on one stage, or past the horizon — after teardown
every side-task runtime must be in a terminal state and the recovery
ledgers must satisfy their invariants (no phantom restores, no negative
wasted work).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.middleware import FreeRide
from repro.core.states import SideTaskState
from repro.experiments import common
from repro.faults import CheckpointPolicy, FaultInjector, FaultPlan, WorkerCrash
from repro.workloads.registry import workload_factory

crashes_strategy = st.lists(
    st.builds(
        WorkerCrash,
        stage=st.integers(min_value=0, max_value=3),
        at_s=st.floats(min_value=0.1, max_value=20.0,
                       allow_nan=False, allow_infinity=False),
        restart_after_s=st.one_of(
            st.none(),
            st.floats(min_value=0.1, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
        ),
    ),
    max_size=6,
)


def _all_runtimes(freeride):
    seen, runtimes = set(), []
    candidates = [
        task for worker in freeride.workers for task in worker.all_tasks
    ] + list(freeride.manager.preempted)
    for runtime in candidates:
        if id(runtime) not in seen:
            seen.add(id(runtime))
            runtimes.append(runtime)
    return runtimes


@settings(max_examples=8, deadline=None)
@given(crashes=crashes_strategy)
def test_every_fault_sequence_leaves_tasks_terminal(crashes):
    freeride = FreeRide(common.train_config(epochs=1))
    for stage in range(len(freeride.workers)):
        freeride.submit(
            workload_factory("pagerank"), name=f"pr{stage}",
            checkpoint=CheckpointPolicy(interval_steps=4),
        )
    FaultInjector(FaultPlan(crashes=tuple(crashes))).arm(freeride)
    result = freeride.run()

    runtimes = _all_runtimes(freeride)
    assert runtimes
    for runtime in runtimes:
        assert runtime.machine.state is SideTaskState.STOPPED
    for report in result.tasks:
        assert report.restores <= report.preemptions
        assert report.wasted_steps >= 0
        assert report.steps_done >= 0


@settings(max_examples=8, deadline=None)
@given(crashes=crashes_strategy,
       step_failure_rate=st.floats(min_value=0.0, max_value=0.3))
def test_unprotected_tasks_end_terminal_too(crashes, step_failure_rate):
    freeride = FreeRide(common.train_config(epochs=1))
    for stage in range(len(freeride.workers)):
        freeride.submit(workload_factory("pagerank"), name=f"pr{stage}")
    plan = FaultPlan(crashes=tuple(crashes),
                     step_failure_rate=step_failure_rate,
                     step_failure_seed=7)
    FaultInjector(plan).arm(freeride)
    result = freeride.run()

    for runtime in _all_runtimes(freeride):
        assert runtime.machine.state is SideTaskState.STOPPED
    # Without a checkpoint policy nothing is ever preempted or restored.
    for report in result.tasks:
        assert report.preemptions == 0
        assert report.restores == 0
