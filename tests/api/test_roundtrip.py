"""Acceptance guard: export -> from_dict -> re-run is byte-identical.

The JSON a spec exports must contain everything that determines the
run: re-hydrating it and re-running reproduces the rows byte for byte,
for both the serving path and a figure (the two kinds of runner).
"""

from __future__ import annotations

import json

from repro.api import registry
from repro.api.spec import ScenarioSpec

#: reduced serve scenario: one point, one epoch
SERVE_OVERRIDES = {
    "training.epochs": 1,
    "sweep.axes": {
        "arrivals.rate_per_s": [2.0],
        "policy.admission": ["backpressure"],
        "policy.assignment": ["edf"],
    },
}


def _rows_bytes(result) -> bytes:
    return json.dumps(result.row_dicts(), sort_keys=True).encode()


def test_serve_json_round_trip_rerun_is_byte_identical():
    first = registry.run("serve", overrides=SERVE_OVERRIDES)
    spec = ScenarioSpec.from_json(first.scenario.to_json())
    assert spec == first.scenario
    second = registry.run("serve", spec=spec)
    assert _rows_bytes(first) == _rows_bytes(second)
    assert first.render() == second.render()


def test_fig2_json_round_trip_rerun_is_byte_identical():
    first = registry.run("fig2", overrides={"training.epochs": 1})
    spec = ScenarioSpec.from_json(first.scenario.to_json())
    second = registry.run("fig2", spec=spec)
    assert _rows_bytes(first) == _rows_bytes(second)
    assert first.render() == second.render()


def test_exported_point_spec_reruns_one_point():
    """A materialized sweep point (what a pool worker ran) is itself a
    complete, re-runnable scenario: re-hydrating it through JSON and
    running it alone reproduces the full sweep's row byte for byte."""
    from repro.experiments.common import baseline_time
    from repro.experiments.serve import _serve_point

    base = registry.get("serve").spec().override(SERVE_OVERRIDES)
    data = registry.get("serve").run_spec(base)
    t_no = baseline_time(base.train_config())
    point = base.sweep_points({
        "params.horizon_s": data["horizon_s"],
        "params.t_no": t_no,
    })[0]
    rehydrated = ScenarioSpec.from_json(point.to_json())
    assert rehydrated == point
    row = _serve_point(rehydrated)
    assert json.dumps(row, sort_keys=True) == \
        json.dumps(data["rows"][0], sort_keys=True)
