"""sweep_points() edge cases: the seam the distributed queue ships
through, so its corner behavior is pinned here."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import registry
from repro.api.spec import ScenarioSpec, SpecError, SweepSpec


@pytest.fixture
def serve_spec() -> ScenarioSpec:
    return registry.get("serve").spec()


def with_axes(spec: ScenarioSpec, axes: dict) -> ScenarioSpec:
    return dataclasses.replace(spec, sweep=SweepSpec(axes=axes))


class TestGridShapes:
    def test_empty_axis_yields_no_points(self, serve_spec):
        spec = with_axes(serve_spec, {"arrivals.rate_per_s": ()})
        assert spec.sweep_points() == []

    def test_no_axes_yields_the_single_base_point(self, serve_spec):
        spec = with_axes(serve_spec, {})
        points = spec.sweep_points()
        assert len(points) == 1
        assert points[0].sweep is None
        assert points[0].arrivals == serve_spec.arrivals

    def test_no_sweep_at_all_yields_one_point(self, serve_spec):
        spec = dataclasses.replace(serve_spec, sweep=None)
        assert len(spec.sweep_points()) == 1

    def test_single_point_grid(self, serve_spec):
        spec = with_axes(serve_spec, {"arrivals.rate_per_s": (3.5,)})
        points = spec.sweep_points()
        assert len(points) == 1
        assert points[0].arrivals.rate_per_s == 3.5

    def test_points_clear_their_own_grid(self, serve_spec):
        # A point re-runs alone: shipping it to a worker must not fan
        # out again into the whole sweep.
        for point in serve_spec.sweep_points():
            assert point.sweep is None

    def test_axes_and_points_are_mutually_exclusive(self):
        with pytest.raises(SpecError, match="axes or points"):
            SweepSpec(axes={"seed": (1,)}, points=({"seed": 2},))


class TestOverrideCollisions:
    def test_extra_wins_over_the_swept_axis(self, serve_spec):
        # extra merges after the grid entry, so a collision resolves to
        # the extra value — how experiments pin derived context even
        # when a sweep names the same path.
        spec = with_axes(serve_spec, {"arrivals.rate_per_s": (1.0, 2.0)})
        points = spec.sweep_points({"arrivals.rate_per_s": 9.0})
        assert [p.arrivals.rate_per_s for p in points] == [9.0, 9.0]

    def test_callable_extra_sees_the_colliding_override(self, serve_spec):
        spec = with_axes(serve_spec, {"arrivals.rate_per_s": (1.0, 2.0)})
        points = spec.sweep_points(
            lambda overrides: {"seed": int(overrides["arrivals.rate_per_s"])}
        )
        assert [p.seed for p in points] == [1, 2]
        assert [p.arrivals.rate_per_s for p in points] == [1.0, 2.0]


class TestPointSpecRoundTrip:
    def test_point_specs_round_trip_byte_exactly(self, serve_spec):
        # The queue stores point specs as JSON text; a decode/encode
        # cycle must reproduce the exact bytes (floats via repr
        # round-trip, key order preserved) or resume fingerprints and
        # byte-identical aggregation would both break.
        for point in serve_spec.sweep_points():
            text = point.to_json()
            rebuilt = ScenarioSpec.from_json(text)
            assert rebuilt == point
            assert rebuilt.to_json() == text

    def test_awkward_floats_survive(self, serve_spec):
        spec = with_axes(
            serve_spec, {"arrivals.rate_per_s": (0.1 + 0.2, 1e-17, 2.0**53)}
        )
        points = spec.sweep_points()
        values = [ScenarioSpec.from_json(p.to_json()).arrivals.rate_per_s
                  for p in points]
        assert values == [0.1 + 0.2, 1e-17, 2.0**53]
