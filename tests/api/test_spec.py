"""ScenarioSpec codec tests: round-trips, overrides, sweep grids."""

from __future__ import annotations

import json

import pytest

from repro.api.spec import (
    ArrivalSpec,
    ClusterSpec,
    MixEntrySpec,
    ObsSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TrainingSpec,
    WorkloadSpec,
    default_mix,
)
from repro.errors import SpecError
from repro.serving.arrivals import DEFAULT_MIX


def full_spec() -> ScenarioSpec:
    """A spec exercising every section."""
    return ScenarioSpec(
        name="everything",
        kind="serving",
        seed=7,
        cluster=ClusterSpec(record_occupancy=True),
        training=TrainingSpec(model="1.2B", micro_batches=8, epochs=2),
        workloads=(WorkloadSpec(name="pagerank", replicate=False),
                   WorkloadSpec(name="vgg19", batch_size=32)),
        arrivals=ArrivalSpec(kind="bursty", rate_per_s=3.5,
                             mix=(MixEntrySpec("pagerank", job_steps=10),)),
        policy=PolicySpec(assignment="edf", admission="backpressure",
                          discipline="fifo", queue_capacity=16,
                          grace_period_s=0.25),
        obs=ObsSpec(trace=True, trace_pipeline=False, ring_limit=256),
        sweep=SweepSpec(axes={"arrivals.rate_per_s": (1.0, 2.0)}),
        params={"open_fraction": 0.5, "note": "hello"},
    )


class TestRoundTrip:
    def test_dict_round_trip_is_equal(self):
        spec = full_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_equal(self):
        spec = full_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_to_dict_is_json_shaped(self):
        """to_dict emits exactly what json.loads reads back: no tuples,
        no dataclasses — so dict and JSON round-trips are the same trip."""
        spec = full_spec()
        assert spec.to_dict() == json.loads(spec.to_json())

    def test_default_spec_round_trips(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown ScenarioSpec field"):
            ScenarioSpec.from_dict({"frobnicate": 1})

    def test_unknown_nested_field_rejected(self):
        with pytest.raises(SpecError, match="TrainingSpec"):
            ScenarioSpec.from_dict({"training": {"epoch": 4}})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="unknown scenario kind"):
            ScenarioSpec(kind="quantum")


class TestOverride:
    def test_scalar_override(self):
        spec = ScenarioSpec().override({"training.epochs": 3, "seed": 9})
        assert spec.training.epochs == 3
        assert spec.seed == 9

    def test_list_index_override(self):
        spec = ScenarioSpec(workloads=(WorkloadSpec(), WorkloadSpec()))
        out = spec.override({"workloads.1.name": "vgg19"})
        assert out.workloads[0].name == "resnet18"
        assert out.workloads[1].name == "vgg19"

    def test_params_keys_may_be_created(self):
        spec = ScenarioSpec().override({"params.t_no": 1.25})
        assert spec.params == {"t_no": 1.25}

    def test_whole_subtree_override(self):
        spec = ScenarioSpec(sweep=SweepSpec(axes={"seed": (1, 2)}))
        out = spec.override({"sweep.axes": {"training.epochs": [2, 4]}})
        assert out.sweep.axes == {"training.epochs": (2, 4)}

    def test_override_does_not_mutate_original(self):
        spec = ScenarioSpec()
        spec.override({"training.epochs": 99})
        assert spec.training.epochs == 8

    def test_missing_section_is_an_error(self):
        with pytest.raises(SpecError, match="no 'arrivals' section"):
            ScenarioSpec().override({"arrivals.rate_per_s": 2.0})

    def test_bad_list_index_is_an_error(self):
        spec = ScenarioSpec(workloads=(WorkloadSpec(),))
        with pytest.raises(SpecError, match="out of range"):
            spec.override({"workloads.3.name": "x"})

    def test_bad_value_still_validates(self):
        with pytest.raises(SpecError, match="unknown scenario kind"):
            ScenarioSpec().override({"kind": "nonsense"})


class TestSweep:
    def test_axes_product_iterates_last_axis_fastest(self):
        sweep = SweepSpec(axes={"a": (1, 2), "b": ("x", "y")})
        assert sweep.overrides() == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_points_pass_through(self):
        sweep = SweepSpec(points=({"a": 1}, {"a": 2, "b": 3}))
        assert sweep.overrides() == [{"a": 1}, {"a": 2, "b": 3}]

    def test_axes_and_points_are_exclusive(self):
        with pytest.raises(SpecError):
            SweepSpec(axes={"a": (1,)}, points=({"a": 1},))

    def test_sweep_points_are_self_contained(self):
        spec = ScenarioSpec(sweep=SweepSpec(axes={"training.epochs": (1, 2)}))
        points = spec.sweep_points()
        assert [p.training.epochs for p in points] == [1, 2]
        assert all(p.sweep is None for p in points)

    def test_sweep_points_merge_constant_extra(self):
        spec = ScenarioSpec(sweep=SweepSpec(axes={"training.epochs": (1, 2)}))
        points = spec.sweep_points({"params.t_no": 5.0})
        assert all(p.params["t_no"] == 5.0 for p in points)

    def test_sweep_points_merge_callable_extra(self):
        spec = ScenarioSpec(sweep=SweepSpec(axes={"training.epochs": (1, 2)}))
        points = spec.sweep_points(
            lambda ov: {"params.double": ov["training.epochs"] * 2})
        assert [p.params["double"] for p in points] == [2, 4]

    def test_specless_sweep_is_the_single_point(self):
        points = ScenarioSpec().sweep_points()
        assert len(points) == 1
        assert points[0] == ScenarioSpec()


class TestAssembly:
    def test_training_spec_matches_common_train_config(self):
        from repro.experiments.common import train_config

        spec = ScenarioSpec(training=TrainingSpec(epochs=4), seed=3)
        assert spec.train_config() == train_config(epochs=4, seed=3)

    def test_default_mix_mirrors_serving_default(self):
        assert tuple(e.to_template() for e in default_mix()) == DEFAULT_MIX

    def test_arrival_spec_builds_seeded_process(self):
        process = ArrivalSpec(kind="poisson", rate_per_s=2.0).build(seed=5)
        assert process.seed == 5
        assert process.rate_per_s == 2.0

    def test_cluster_spec_rejects_unknown_server(self):
        with pytest.raises(SpecError, match="unknown server"):
            ClusterSpec(server="server_ix").factory()

    def test_policy_spec_rejects_unknown_assignment(self):
        with pytest.raises(SpecError, match="unknown assignment policy"):
            PolicySpec(assignment="coin_flip").assignment_policy()


class TestObsSpec:
    def test_defaults_are_off_but_present(self):
        """Every scenario has an obs section (never None), so the
        ``--set obs.trace=true`` dotted path always has a parent."""
        spec = ScenarioSpec()
        assert spec.obs == ObsSpec()
        assert spec.obs.trace is False
        assert spec.obs.trace_pipeline is True

    def test_round_trips_through_dict(self):
        obs = ObsSpec(trace=True, ring_limit=64)
        assert ObsSpec.from_dict(obs.to_dict()) == obs

    def test_dotted_override_enables_tracing(self):
        spec = ScenarioSpec().override({"obs.trace": True})
        assert spec.obs.trace is True

    def test_registry_sugar_expands_to_obs_trace(self):
        from repro.api.registry import expand_overrides

        assert expand_overrides({"trace": True}) == {"obs.trace": True}

    def test_ring_limit_must_be_positive(self):
        with pytest.raises(SpecError, match="ring_limit"):
            ObsSpec(ring_limit=0)

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError):
            ObsSpec.from_dict({"tracing": True})
