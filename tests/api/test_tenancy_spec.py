"""Spec-language and registry coverage for the tenancy surface."""

from __future__ import annotations

import pytest

from repro.api import registry
from repro.api.spec import MixEntrySpec, ScenarioSpec, TenantSpec
from repro.errors import SpecError
from repro.tenancy.tenants import TenantShare


def _tenant_spec() -> ScenarioSpec:
    return ScenarioSpec.from_dict({
        "name": "tenanted",
        "kind": "serving",
        "seed": 3,
        "training": {"epochs": 2},
        "tenants": [
            {"name": "gold", "weight": 4.0, "rate_per_s": 3.0,
             "burst": 6.0, "arrival_rate_per_s": 5.0,
             "mix": [{"workload": "pagerank", "job_steps": 50,
                      "slo_class": "batch"}]},
            {"name": "bronze"},
        ],
        "policy": {"admission": "per_tenant_token_bucket",
                   "discipline": "weighted"},
    })


def test_tenant_spec_round_trips_dict_and_json():
    spec = _tenant_spec()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    assert spec.to_json() == ScenarioSpec.from_json(spec.to_json()).to_json()


def test_tenant_fields_survive_the_round_trip():
    spec = ScenarioSpec.from_dict(_tenant_spec().to_dict())
    gold = spec.tenant_specs()[0]
    assert gold.weight == 4.0
    assert gold.rate_per_s == 3.0
    assert gold.mix[0] == MixEntrySpec(workload="pagerank", job_steps=50,
                                       slo_class="batch")


def test_int_tenants_expand_to_identical_named_tenants():
    spec = ScenarioSpec.from_dict({"kind": "serving", "tenants": 3})
    assert spec.tenants == 3
    assert [tenant.name for tenant in spec.tenant_specs()] == [
        "tenant0", "tenant1", "tenant2",
    ]
    assert spec.num_tenants == 3
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_tenant_shares_and_arrivals_derive_from_the_spec():
    spec = _tenant_spec()
    shares = spec.tenant_shares()
    assert shares == (
        TenantShare("gold", weight=4.0, rate_per_s=3.0, burst=6.0),
        TenantShare("bronze", weight=1.0, rate_per_s=2.0, burst=4.0),
    )
    requests = spec.tenant_arrivals().generate(10.0)
    assert {request.tenant for request in requests} == {"gold", "bronze"}
    # tenant i draws with seed + i: identical entries, distinct traffic
    twin = spec.override({"tenants.1": spec.to_dict()["tenants"][0] |
                          {"name": "gold2"}})
    gold, gold2 = (
        [r for r in twin.tenant_arrivals().generate(10.0)
         if r.tenant == name]
        for name in ("gold", "gold2")
    )
    assert [r.arrival_s for r in gold] != [r.arrival_s for r in gold2]


def test_tenant_validation_errors():
    with pytest.raises(SpecError, match="unique"):
        ScenarioSpec.from_dict({"kind": "serving",
                                "tenants": [{"name": "t"}, {"name": "t"}]})
    with pytest.raises(SpecError, match="arrivals"):
        ScenarioSpec.from_dict({"kind": "serving", "tenants": 2,
                                "arrivals": {"kind": "poisson"}})
    with pytest.raises(SpecError, match="serving/cluster"):
        ScenarioSpec.from_dict({"kind": "batch", "tenants": 2})
    with pytest.raises(SpecError, match=">= 0"):
        ScenarioSpec.from_dict({"kind": "serving", "tenants": -1})


def test_serving_without_arrivals_or_tenants_is_an_error():
    from repro.api.session import ServingRunner

    spec = ScenarioSpec(kind="serving")
    with pytest.raises(SpecError, match="no arrivals"):
        ServingRunner(spec).prepare()


def test_expand_overrides_policy_shorthands():
    assert registry.expand_overrides({"assignment": "edf"}) == {
        "policy.assignment": "edf"
    }
    assert registry.expand_overrides({"admission": "backpressure"}) == {
        "policy.admission": "backpressure"
    }
    assert registry.expand_overrides({"discipline": "fifo"}) == {
        "policy.discipline": "fifo"
    }
    # The fairness vocabulary: weighted "assignment" is dispatch-side.
    assert registry.expand_overrides({"assignment": "weighted"}) == {
        "policy.discipline": "weighted"
    }
    # Untouched keys pass through unchanged.
    assert registry.expand_overrides({"seed": 7}) == {"seed": 7}


def test_tenants_override_pins_the_fairness_sweep_axis():
    result = registry.run("fairness", overrides={
        "tenants": 2,
        "assignment": "weighted",
        "training.epochs": 1,
        "params.horizon_s": 3.0,
    })
    # Both swept axes pinned -> exactly one point, one row per tenant.
    assert result.scenario.sweep is None
    rows = result.rows()
    assert [row.tenant for row in rows] == ["tenant0", "tenant1"]
    assert all(row.discipline == "weighted" for row in rows)
