"""CLI tests for the registry-backed `repro` command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_list_names_every_scenario(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1", "table2", "serve", "ablations"):
        assert name in out


def test_list_json_is_machine_readable(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert {entry["name"] for entry in payload} >= {"fig1", "serve"}
    assert all({"name", "title", "kind"} <= set(entry) for entry in payload)


def test_run_with_set_overrides(capsys):
    assert main(["run", "fig1", "--set", "training.micro_batches=8"]) == 0
    assert "Figure 1(a)" in capsys.readouterr().out


def test_run_rejects_bad_set_syntax():
    with pytest.raises(SystemExit):
        main(["run", "fig1", "--set", "nonsense"])


def test_run_reports_spec_errors_cleanly(capsys):
    assert main(["run", "fig1", "--set", "training.epoch=2"]) == 2
    assert "error:" in capsys.readouterr().err


def test_export_spec_only_round_trips(capsys):
    assert main(["export", "fig1", "--spec-only", "--seed", "5"]) == 0
    from repro.api.spec import ScenarioSpec

    spec = ScenarioSpec.from_json(capsys.readouterr().out)
    assert spec.name == "fig1"
    assert spec.seed == 5


def test_run_from_spec_file(tmp_path, capsys):
    assert main(["export", "fig1", "--spec-only"]) == 0
    spec_path = tmp_path / "fig1.json"
    spec_path.write_text(capsys.readouterr().out)
    assert main(["run", "fig1", "--spec", str(spec_path)]) == 0
    assert "Figure 1(a)" in capsys.readouterr().out


def test_run_from_exported_artifact(tmp_path, capsys):
    """The documented flow: `repro export` then `repro run --spec` on
    the artifact itself (the spec lives under its "scenario" key)."""
    assert main(["export", "fig1", "--out", str(tmp_path),
                 "--format", "json"]) == 0
    capsys.readouterr()
    assert main(["run", "fig1", "--spec", str(tmp_path / "fig1.json")]) == 0
    assert "Figure 1(a)" in capsys.readouterr().out


def test_spec_file_errors_are_clean(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig1", "--spec", str(tmp_path / "missing.json")])
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit):
        main(["run", "fig1", "--spec", str(bad)])


def test_export_writes_artifacts(tmp_path, capsys):
    assert main(["export", "fig1", "--out", str(tmp_path)]) == 0
    printed = capsys.readouterr().out.splitlines()
    assert len(printed) == 3
    assert (tmp_path / "fig1.json").exists()
    assert (tmp_path / "fig1.csv").exists()
    assert (tmp_path / "fig1.txt").exists()


def test_export_single_format(tmp_path, capsys):
    assert main(["export", "fig1", "--out", str(tmp_path),
                 "--format", "json"]) == 0
    assert (tmp_path / "fig1.json").exists()
    assert not (tmp_path / "fig1.csv").exists()


def test_export_explicit_csv_without_rows_fails_loudly(tmp_path, capsys):
    """fig8 has no tabular rows: --format csv must not exit 0 having
    written nothing."""
    assert main(["export", "fig8", "--out", str(tmp_path),
                 "--format", "csv"]) == 2
    assert "no tabular rows" in capsys.readouterr().err
    assert not (tmp_path / "fig8.csv").exists()


def test_mismatched_spec_file_is_a_clean_error(tmp_path, capsys):
    """A serve export fed to fig1 errors instead of running the wrong
    simulation and crashing."""
    assert main(["export", "serve", "--spec-only"]) == 0
    spec_path = tmp_path / "serve.json"
    spec_path.write_text(capsys.readouterr().out)
    assert main(["run", "fig1", "--spec", str(spec_path)]) == 2
    assert "different experiment" in capsys.readouterr().err


def test_trace_writes_chrome_trace_json(tmp_path, capsys):
    assert main(["trace", "serve", "--epochs", "1",
                 "--out", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    path = tmp_path / "serve_trace.json"
    assert str(path) in captured.out
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert events
    categories = {event.get("cat") for event in events}
    assert "serving.admission" in categories or "serving.queue" in categories
    assert "serving.service" in categories
    # one named track per worker stage
    threads = {event["args"]["name"] for event in events
               if event["ph"] == "M" and event["name"] == "thread_name"}
    assert any(name.startswith("stage") for name in threads)


def test_trace_jsonl_flag_adds_event_log(tmp_path, capsys):
    assert main(["trace", "fig1", "--epochs", "1", "--out", str(tmp_path),
                 "--jsonl"]) == 0
    jsonl_path = tmp_path / "fig1_trace.jsonl"
    assert jsonl_path.exists()
    lines = jsonl_path.read_text().splitlines()
    assert lines
    assert all(json.loads(line)["ph"] in ("X", "i") for line in lines)


def test_run_with_trace_sugar_also_writes_trace(tmp_path, capsys):
    assert main(["run", "serve", "--epochs", "1", "--set", "trace=true",
                 "--set", 'sweep.axes={"arrivals.rate_per_s": [4.0]}',
                 "--export", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "serving capacity" in captured.out.lower() or captured.out
    trace_path = tmp_path / "serve_trace.json"
    assert trace_path.exists()
    assert json.loads(trace_path.read_text())["traceEvents"]


def test_sweep_serial_backend_prints_the_table(capsys):
    assert main(["sweep", "fig1", "--backend", "serial"]) == 0
    assert "Figure 1(a)" in capsys.readouterr().out


def test_sweep_queue_backend_with_local_worker(tmp_path, capsys):
    db = str(tmp_path / "q.db")
    assert main([
        "sweep", "serve", "--backend", "queue", "--db", db,
        "--workers", "1", "--poll", "0.05", "--epochs", "1",
        "--set", 'sweep.axes={"arrivals.rate_per_s": [2.0]}',
        "--export", str(tmp_path / "out"),
    ]) == 0
    captured = capsys.readouterr()
    assert "Serve:" in captured.out
    assert (tmp_path / "out" / "serve.json").exists()
    # the queue database documents the run: one DONE point
    import sqlite3

    con = sqlite3.connect(db)
    states = dict(con.execute(
        "SELECT state, COUNT(*) FROM points GROUP BY state"
    ).fetchall())
    con.close()
    assert states == {"DONE": 1}


def test_worker_exits_cleanly_on_a_terminal_store(tmp_path, capsys):
    from repro.distrib import Broker
    from repro.experiments import common
    from tests.distrib import pointfns

    db = str(tmp_path / "q.db")
    broker = Broker(db)
    broker.submit([1, 2], pointfns.double)
    saved = common._IN_SWEEP_WORKER
    try:
        assert main(["worker", db, "--id", "cli-test", "--poll", "0.05"]) == 0
    finally:
        # the in-process worker flips the nested-sweep flag for the
        # whole test process; put it back
        common._IN_SWEEP_WORKER = saved
    err = capsys.readouterr().err
    assert "worker cli-test: 2 point(s) done" in err
    assert broker.counts()["DONE"] == 2
