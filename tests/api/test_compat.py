"""Deprecation-shim tests: the legacy entry points still work, warn,
and print byte-identically to the registry path."""

from __future__ import annotations

import pytest

from repro.api import registry
from repro.experiments import fig8, serve


def test_legacy_run_warns_deprecation():
    with pytest.warns(DeprecationWarning, match="legacy entry point"):
        fig8.run()


def test_legacy_fig8_output_matches_registry_byte_for_byte():
    with pytest.warns(DeprecationWarning):
        legacy = fig8.render(fig8.run())
    assert legacy == registry.run("fig8").render()


def test_legacy_serve_output_matches_registry_byte_for_byte():
    kwargs = dict(epochs=1, rates=(2.0,), admissions=("always",),
                  policies=("least_loaded",))
    with pytest.warns(DeprecationWarning):
        legacy = serve.render(serve.run(**kwargs))
    via_registry = registry.run("serve", overrides={
        "training.epochs": 1,
        "sweep.axes": {
            "arrivals.rate_per_s": [2.0],
            "policy.admission": ["always"],
            "policy.assignment": ["least_loaded"],
        },
    })
    assert legacy == via_registry.render()


def test_legacy_freeride_facade_still_works():
    """FreeRide(...) driven by hand remains supported for one release."""
    from repro.core.middleware import FreeRide
    from repro.experiments.common import train_config
    from repro.workloads.registry import workload_factory

    freeride = FreeRide(train_config(epochs=1))
    assert freeride.submit(workload_factory("pagerank")) is not None
    result = freeride.run()
    assert result.tasks[0].steps_done > 0


def test_legacy_experiments_mapping_still_importable():
    from repro.experiments import EXPERIMENTS

    assert set(EXPERIMENTS) == set(registry.names())
    for name, module in EXPERIMENTS.items():
        assert callable(module.run)
        assert callable(module.render)
