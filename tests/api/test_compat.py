"""The PR-3 deprecation shims are gone; the programmatic facades stay.

The legacy per-experiment ``run()`` bodies, the positional CLI form,
and the ``freeride`` script alias were scheduled for deletion "next
release" — these tests pin that they are actually gone, and that the
supported programmatic surface (``FreeRide`` driven by hand, the
``extensions.multi_server`` re-export shim) still works.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablations, fig1, fig7, fig8, serve


@pytest.mark.parametrize("module", [fig1, fig8, serve, fig7, ablations])
def test_legacy_run_entry_points_are_gone(module):
    assert not hasattr(module, "run")


def test_compat_module_is_gone():
    with pytest.raises(ImportError):
        import repro.api.compat  # noqa: F401


def test_freeride_script_alias_is_gone():
    import pathlib

    setup = pathlib.Path(__file__).parents[2] / "setup.py"
    text = setup.read_text()
    assert "freeride = repro.cli:main" not in text
    assert "repro = repro.cli:main" in text


def test_freeride_facade_still_works():
    """FreeRide(...) driven by hand remains the programmatic surface."""
    from repro.core.middleware import FreeRide
    from repro.experiments.common import train_config
    from repro.workloads.registry import workload_factory

    freeride = FreeRide(train_config(epochs=1))
    assert freeride.submit(workload_factory("pagerank")) is not None
    result = freeride.run()
    assert result.tasks[0].steps_done > 0


def test_multi_server_shim_re_exports_cluster():
    """extensions/multi_server.py survives only as a re-export shim."""
    from repro.cluster import Cluster, ClusterResult
    from repro.extensions import multi_server

    assert multi_server.MultiServerFreeRide is Cluster
    assert multi_server.MultiServerResult is ClusterResult
