"""Session lifecycle tests: configure -> submit -> run -> results."""

from __future__ import annotations

import pytest

from repro.api.session import (
    BatchRunner,
    PipelineRunner,
    ServingRunner,
    Session,
    make_runner,
)
from repro.api.spec import ArrivalSpec, ScenarioSpec, TrainingSpec, WorkloadSpec
from repro.core.middleware import FreeRideResult
from repro.errors import SessionError, SpecError
from repro.pipeline.engine import TrainingResult
from repro.serving.frontend import ServingResult


def batch_spec(**params) -> ScenarioSpec:
    return ScenarioSpec(
        name="batch-test",
        training=TrainingSpec(epochs=1),
        workloads=(WorkloadSpec(name="pagerank", replicate=False),),
        params=params,
    )


class TestLifecycle:
    def test_results_before_run_raises(self):
        with pytest.raises(SessionError, match="has not run"):
            Session(batch_spec()).results()

    def test_run_then_results(self):
        session = Session(batch_spec())
        result = session.run().results()
        assert isinstance(result, FreeRideResult)
        assert result.tasks[0].steps_done > 0

    def test_run_is_idempotent(self):
        session = Session(batch_spec())
        assert session.run().results() is session.run().results()

    def test_context_manager(self):
        with Session(batch_spec()) as session:
            result = session.run().results()
        assert result.training.total_time > 0

    def test_configure_replaces_spec(self):
        session = Session().configure(batch_spec())
        assert session.spec.name == "batch-test"

    def test_configure_after_prepare_raises(self):
        session = Session(batch_spec())
        session.runner.prepare()
        with pytest.raises(SessionError, match="already prepared"):
            session.configure(batch_spec())

    def test_unconfigured_session_raises(self):
        with pytest.raises(SessionError, match="no scenario"):
            Session().run()

    def test_submit_after_run_raises(self):
        session = Session(batch_spec())
        session.run()
        with pytest.raises(SessionError, match="already ran"):
            session.submit("resnet18")


class TestSubmit:
    def test_submit_extends_the_spec_before_prepare(self):
        session = Session(batch_spec())
        session.submit("resnet18", replicate=False)
        assert [w.name for w in session.spec.workloads] == [
            "pagerank", "resnet18"]
        result = session.run().results()
        assert len(result.tasks) == 2

    def test_submit_accepts_workload_spec_with_overrides(self):
        session = Session(batch_spec())
        session.submit(WorkloadSpec(name="resnet18"), replicate=False)
        assert session.spec.workloads[-1].replicate is False

    def test_submit_on_serving_scenario_raises(self):
        spec = ScenarioSpec(kind="serving", arrivals=ArrivalSpec())
        with pytest.raises(SessionError, match="batch"):
            Session(spec).submit("pagerank")


class TestRunners:
    def test_make_runner_dispatches_on_kind(self):
        assert isinstance(make_runner(ScenarioSpec(kind="batch")), BatchRunner)
        assert isinstance(make_runner(ScenarioSpec(kind="pipeline")),
                          PipelineRunner)
        assert isinstance(
            make_runner(ScenarioSpec(kind="serving", arrivals=ArrivalSpec())),
            ServingRunner)

    def test_pipeline_runner_runs_training_only(self):
        spec = ScenarioSpec(kind="pipeline", training=TrainingSpec(epochs=1))
        result = Session(spec).run().results()
        assert isinstance(result, TrainingResult)

    def test_serving_runner_runs_traffic(self):
        spec = ScenarioSpec(
            kind="serving",
            training=TrainingSpec(epochs=1),
            arrivals=ArrivalSpec(kind="poisson", rate_per_s=2.0),
            params={"horizon_s": 4.0},
        )
        result = Session(spec).run().results()
        assert isinstance(result, ServingResult)
        assert result.metrics.offered > 0

    def test_serving_without_arrivals_raises(self):
        spec = ScenarioSpec(kind="serving", training=TrainingSpec(epochs=1))
        with pytest.raises(SpecError, match="no arrivals"):
            Session(spec).run()

    def test_policy_overrides_reach_freeride(self):
        spec = ScenarioSpec(
            training=TrainingSpec(epochs=1),
            workloads=(WorkloadSpec(name="pagerank", replicate=False),),
        ).override({"policy.grace_period_s": 0.125,
                    "policy.rpc_latency_s": 0.002})
        session = Session(spec)
        session.runner.prepare()
        freeride = session.runner.freeride
        assert freeride.manager.grace_period_s == 0.125
        assert freeride.manager.rpc.latency_s == 0.002

    def test_same_spec_same_results(self):
        """Two sessions over one spec are byte-equivalent."""
        first = Session(batch_spec()).run().results()
        second = Session(batch_spec()).run().results()
        assert first.training.total_time == second.training.total_time
        assert first.total_units == second.total_units
