"""Registry tests: contents, seed acceptance, rows, artifact export."""

from __future__ import annotations

import json

import pytest

from repro.api import registry
from repro.api.results import ResultRow, ResultSet
from repro.api.spec import ScenarioSpec

ALL_SCENARIOS = (
    "fig1", "fig2", "table1", "table2", "fig7", "fig8", "fig9",
    "ablations", "serve", "cluster", "fairness", "resilience",
    "fuzzcase",
)


def test_registry_contains_every_paper_artifact():
    assert tuple(registry.names()) == tuple(sorted(ALL_SCENARIOS))


def test_describe_is_json_safe():
    text = json.dumps(registry.describe())
    assert all(name in text for name in ALL_SCENARIOS)


def test_unknown_scenario_raises_with_choices():
    with pytest.raises(KeyError, match="fig1"):
        registry.get("fig99")


def test_duplicate_registration_rejected():
    definition = registry.get("fig1")
    with pytest.raises(ValueError, match="already registered"):
        registry.register(definition.name, definition.title,
                          definition.spec, definition.run_spec,
                          definition.render)


@pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
def test_every_scenario_accepts_seed(name):
    """The --seed regression guard: with the registry there is no
    signature probing, so seed must be an overridable field of every
    scenario's spec (the CLI maps --seed to it)."""
    definition = registry.get(name)
    spec = definition.spec()
    overridden = spec.override({"seed": 1234})
    assert overridden.seed == 1234
    assert overridden.train_config().seed == 1234


@pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
def test_every_default_spec_round_trips(name):
    spec = registry.get(name).spec()
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_run_applies_overrides_and_wraps_result():
    result = registry.run("fig1", overrides={"training.micro_batches": 8})
    assert isinstance(result, ResultSet)
    assert result.scenario.training.micro_batches == 8
    assert "Figure 1(a)" in result.render()
    assert result.rows()
    assert all(isinstance(row, ResultRow) for row in result.rows())


def test_artifact_export_writes_all_formats(tmp_path):
    result = registry.run("fig1")
    written = result.write_artifacts(str(tmp_path))
    names = sorted(p.rsplit("/", 1)[-1] for p in written)
    assert names == ["fig1.csv", "fig1.json", "fig1.txt"]
    payload = json.loads((tmp_path / "fig1.json").read_text())
    assert payload["experiment"] == "fig1"
    # The embedded scenario re-hydrates to the spec that ran.
    assert ScenarioSpec.from_dict(payload["scenario"]) == result.scenario
    assert payload["rows"]
    csv_text = (tmp_path / "fig1.csv").read_text()
    assert csv_text.splitlines()[0].startswith("stage,")
    assert (tmp_path / "fig1.txt").read_text().startswith("Figure 1(a)")


def test_rowless_experiment_skips_csv(tmp_path):
    result = registry.run("fig8")
    written = result.write_artifacts(str(tmp_path))
    names = sorted(p.rsplit("/", 1)[-1] for p in written)
    assert names == ["fig8.json", "fig8.txt"]


def test_override_of_swept_axis_pins_it():
    """--set on a swept field must win, not be silently re-swept."""
    result = registry.run("serve", overrides={
        "training.epochs": 1,
        "policy.admission": "backpressure",
        "sweep.axes": {
            "arrivals.rate_per_s": [2.0],
            "policy.admission": ["always", "token_bucket"],
            "policy.assignment": ["least_loaded"],
        },
    })
    rows = result.data["rows"]
    assert len(rows) == 1
    assert rows[0]["admission"] == "backpressure"


def test_override_colliding_with_sweep_points_is_an_error():
    from repro.errors import SpecError

    with pytest.raises(SpecError, match="sweep points"):
        registry.run("table1", overrides={"workloads.0.name": "vgg19"})


def test_spec_kind_must_match_the_experiment():
    from repro.errors import SpecError

    serving_spec = registry.get("serve").spec()
    with pytest.raises(SpecError, match="different"):
        registry.run("fig1", spec=serving_spec)
