"""Determinism regression: serial and parallel sweeps, byte for byte.

The fast-path kernel, the trajectory memoization, and the process-pool
sweep executor must all be invisible in the numbers: the same seed has to
produce the same bubble counts, task units, and total times whether the
points run serially, in pool workers, or twice in the same process.
"""

from __future__ import annotations

import json

from repro.experiments import common
from repro.workloads.registry import workload_factory


def _serialize(results) -> bytes:
    """Canonical by-value bytes (float repr is exact, so equal bytes
    mean equal numbers; pickle would differ on object identity alone)."""
    return json.dumps(results, sort_keys=True).encode()

#: fig7-scale points (model-size sweep shape, 1 epoch to stay quick)
ITEMS = (("1.2B", "pagerank"), ("3.6B", "resnet18"))


def _point(item):
    """One sweep point; module-level so pool workers can unpickle it."""
    size, name = item
    config = common.train_config(size=size, epochs=1)
    result = common.run_freeride(
        config, [(workload_factory(name), "iterative", True)]
    )
    return {
        "size": size,
        "task": name,
        "total_time": result.training.total_time,
        "total_units": result.total_units,
        "total_steps": result.total_steps,
        "bubble_count": len(result.bubble_profile.durations),
        "per_task": [
            (report.name, report.stage, report.steps_done,
             report.units_done, report.running_s, report.overhead_s)
            for report in result.tasks
        ],
    }


#: sha256 of _point(("3.6B", "resnet18")) captured before the RPC
#: cast-coalescing optimization landed: coalescing (and any future event
#: plumbing change) must be invisible in the simulation's numbers.
PRE_COALESCE_GOLDEN = \
    "1f2d682de2fccd24d0d66f6cea3444e9c47aaf1c57b3cc58729f1d0ab52f72ec"


def test_rpc_coalescing_left_the_numbers_untouched():
    import hashlib

    blob = _serialize(_point(("3.6B", "resnet18")))
    assert hashlib.sha256(blob).hexdigest() == PRE_COALESCE_GOLDEN


def test_serial_rerun_is_byte_identical():
    first = _serialize(common.sweep(ITEMS, _point, max_workers=1))
    second = _serialize(common.sweep(ITEMS, _point, max_workers=1))
    assert first == second


def test_parallel_sweep_matches_serial_byte_for_byte():
    serial = _serialize(common.sweep(ITEMS, _point, max_workers=1))
    parallel = _serialize(common.sweep(ITEMS, _point, max_workers=2))
    assert serial == parallel


def test_sweep_preserves_order():
    assert common.sweep([3, 1, 2], _identity, max_workers=2) == [3, 1, 2]


def _identity(item):
    return item
