"""Integration tests for the MPS / naive / dedicated baselines."""

from __future__ import annotations

import pytest

from repro.baselines.colocation import run_colocation
from repro.baselines.dedicated import run_dedicated
from repro.experiments.common import baseline_time, train_config
from repro.metrics.cost import dedicated_throughput, time_increase
from repro.workloads.registry import make_workload, workload_factory


@pytest.fixture(scope="module")
def config():
    return train_config(epochs=3)


@pytest.fixture(scope="module")
def t_no(config):
    return baseline_time(config)


class TestColocation:
    def test_mps_slows_training_substantially(self, config, t_no):
        result = run_colocation(config, workload_factory("resnet18"), "mps")
        increase = time_increase(result.training.total_time, t_no)
        assert 0.08 < increase < 0.35  # paper: 16.8%

    def test_naive_is_worse_than_mps(self, config, t_no):
        mps = run_colocation(config, workload_factory("resnet18"), "mps")
        naive = run_colocation(config, workload_factory("resnet18"), "naive")
        assert naive.training.total_time > mps.training.total_time

    def test_graph_sgd_mps_anomaly(self, config, t_no):
        """Paper: 'the time increase of Graph SGD with MPS is as high as
        231%' because of its compute intensity."""
        result = run_colocation(config, workload_factory("graph_sgd"), "mps")
        increase = time_increase(result.training.total_time, t_no)
        assert increase > 1.0

    def test_side_tasks_do_work_continuously(self, config):
        result = run_colocation(config, workload_factory("pagerank"), "mps")
        assert result.total_units > 0
        assert all(report.steps_done > 0 for report in result.tasks)

    def test_placement_respects_memory(self, config):
        result = run_colocation(config, workload_factory("vgg19"), "mps")
        assert sorted(report.stage for report in result.tasks) == [2, 3]

    def test_explicit_placement(self, config):
        placement = [(0, workload_factory("pagerank")),
                     (3, workload_factory("resnet18"))]
        result = run_colocation(config, mode="naive", placement=placement)
        assert sorted(report.stage for report in result.tasks) == [0, 3]

    def test_invalid_arguments_rejected(self, config):
        with pytest.raises(ValueError):
            run_colocation(config, workload_factory("image"), mode="hyperq")
        with pytest.raises(ValueError):
            run_colocation(config, None, mode="mps")  # neither factory nor placement

    def test_training_completes_all_epochs(self, config):
        result = run_colocation(config, workload_factory("resnet50"), "naive")
        assert len(result.training.trace.epochs) == config.epochs


class TestDedicated:
    def test_simulated_matches_analytic_throughput(self):
        for name in ("resnet18", "pagerank", "image"):
            workload = make_workload(name)
            analytic = dedicated_throughput(workload.perf, "server_ii")
            result = run_dedicated(make_workload(name), "server_ii",
                                   duration_s=20.0)
            assert result.throughput == pytest.approx(analytic, rel=0.05), name

    def test_cpu_is_much_slower_than_server_ii(self):
        gpu = run_dedicated(make_workload("resnet18"), "server_ii", 10.0)
        cpu = run_dedicated(make_workload("resnet18"), "cpu", 10.0)
        assert gpu.throughput > 10 * cpu.throughput

    def test_enforced_memory_reports_oom(self):
        result = run_dedicated(make_workload("vgg19"), "server_ii",
                               duration_s=5.0, enforce_memory=True)
        assert result.oom
        assert result.throughput == 0.0

    def test_oversized_batch_ooms_only_when_enforced(self):
        big = lambda: make_workload("vgg19", batch_size=128)
        enforced = run_dedicated(big(), "server_ii", 5.0, enforce_memory=True)
        tolerant = run_dedicated(big(), "server_ii", 5.0, enforce_memory=False)
        assert enforced.oom and not tolerant.oom

    def test_real_compute_happens(self):
        workload = make_workload("pagerank")
        run_dedicated(workload, "server_ii", duration_s=2.0)
        assert workload.residuals  # real PageRank iterations ran

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            run_dedicated(make_workload("image"), "dgx", 1.0)
