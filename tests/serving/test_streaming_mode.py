"""Streaming metrics mode: constant-memory accounting, pinned against
the records-mode reference.

The contract under test:

* every lifecycle/outcome *count* matches records mode exactly (the
  accumulators fold the same records the list-based fold would, just
  one at a time);
* latency means/extremes are exact; the tracked quantiles (p50/p95/p99)
  come from P² sketches and must sit within a 5% relative error bound
  of the exact fold on the 10^4-sample reference run;
* streaming runs are exactly as deterministic as records runs —
  serial vs process-pool sweeps are byte-identical;
* ``ServingResult.records`` is empty by design in streaming mode.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.api.session import Session
from repro.api.spec import (
    ArrivalSpec,
    FaultSpec,
    MetricsSpec,
    PolicySpec,
    ScenarioSpec,
    SpecError,
)
from repro.experiments import common
from repro.metrics.latency import LatencyStats, StreamingLatencyStats

RATE = 120.0


def _spec(mode: str, **extra) -> ScenarioSpec:
    return ScenarioSpec(
        name="streaming-test",
        kind="serving",
        seed=5,
        arrivals=ArrivalSpec(kind="poisson", rate_per_s=RATE),
        metrics=MetricsSpec(mode=mode),
        **extra,
    )


def _run(spec: ScenarioSpec):
    with Session(spec) as session:
        return session.run().results()


COUNT_FIELDS = ("offered", "admitted", "rejected", "assigned", "completed",
                "slo_met", "failed", "unserved", "duration_s",
                "goodput_rps", "throughput_rps", "rejection_rate")


def _counts(metrics) -> dict:
    return {field: getattr(metrics, field) for field in COUNT_FIELDS}


class TestStreamingParity:
    def test_counts_and_exact_stats_match_records_mode(self):
        records_result = _run(_spec("records"))
        streaming_result = _run(_spec("streaming"))
        assert _counts(records_result.metrics) == \
            _counts(streaming_result.metrics)
        for name in ("queueing", "completion"):
            exact = getattr(records_result.metrics, name)
            sketch = getattr(streaming_result.metrics, name)
            assert sketch.count == exact.count
            assert sketch.mean == pytest.approx(exact.mean, rel=1e-12)
            assert sketch.max == exact.max

    def test_streaming_drops_records(self):
        result = _run(_spec("streaming"))
        assert result.records == []
        assert _run(_spec("records")).records

    def test_fairness_parity_with_tenants(self):
        mix = [{"workload": "pagerank", "job_steps": 60,
                "slo_class": "batch"}]

        def tenant_spec(mode: str) -> ScenarioSpec:
            return ScenarioSpec.from_dict({
                "name": "t", "kind": "serving", "seed": 2,
                "metrics": {"mode": mode},
                "tenants": [
                    {"name": "gold", "weight": 3.0, "rate_per_s": 4.0,
                     "arrival_rate_per_s": 5.0, "mix": mix},
                    {"name": "silver", "weight": 1.0, "rate_per_s": 4.0,
                     "arrival_rate_per_s": 5.0, "mix": mix},
                ],
                "policy": {"admission": "per_tenant_token_bucket",
                           "discipline": "weighted"},
            })

        records_result = _run(tenant_spec("records"))
        streaming_result = _run(tenant_spec("streaming"))
        ref = records_result.fairness
        got = streaming_result.fairness
        assert [u.name for u in got.tenants] == [u.name for u in ref.tenants]
        for ref_usage, got_usage in zip(ref.tenants, got.tenants):
            assert _counts(got_usage.metrics) == _counts(ref_usage.metrics)
            assert got_usage.share == pytest.approx(ref_usage.share)
            assert got_usage.target_share == ref_usage.target_share
        assert got.jain_goodput == pytest.approx(ref.jain_goodput)
        assert got.max_share_error == pytest.approx(ref.max_share_error)

    def test_resilience_parity_under_faults_and_retries(self):
        faults = FaultSpec(crash_rate=1.0, step_failure_rate=0.05,
                           retry_max_attempts=3)
        records_result = _run(_spec("records", faults=faults))
        streaming_result = _run(_spec("streaming", faults=faults))
        ref = records_result.resilience.summary()
        got = streaming_result.resilience.summary()
        assert got == ref
        assert ref["retries"] > 0 or ref["failed_requests"] > 0


class TestSketchAccuracy:
    def test_quantiles_within_bound_on_reference_run(self):
        """10^4 lognormal samples: tracked quantiles within 5% relative
        error of the exact interpolated fold (the documented bound)."""
        rng = random.Random(0)
        exact = LatencyStats()
        sketch = StreamingLatencyStats()
        for _ in range(10_000):
            sample = rng.lognormvariate(0.0, 1.0)
            exact.observe(sample)
            sketch.observe(sample)
        for q in (0.50, 0.95, 0.99):
            assert sketch.quantile(q) == \
                pytest.approx(exact.quantile(q), rel=0.05)
        assert sketch.count == exact.count
        assert sketch.mean == pytest.approx(exact.mean, rel=1e-12)
        assert sketch.quantile(0.0) == exact.quantile(0.0)
        assert sketch.quantile(1.0) == exact.quantile(1.0)

    def test_untracked_quantile_raises(self):
        sketch = StreamingLatencyStats()
        sketch.observe(1.0)
        with pytest.raises(ValueError, match="only track"):
            sketch.quantile(0.75)

    def test_exact_below_five_samples(self):
        exact = LatencyStats()
        sketch = StreamingLatencyStats()
        for sample in (3.0, 1.0, 4.0, 1.5):
            exact.observe(sample)
            sketch.observe(sample)
        for q in (0.50, 0.95, 0.99):
            assert sketch.quantile(q) == exact.quantile(q)


def _sweep_point(mode: str) -> dict:
    result = _run(_spec(mode))
    return {
        "mode": mode,
        "metrics": _counts(result.metrics),
        "queueing": result.metrics.queueing.summary(),
        "completion": result.metrics.completion.summary(),
        "records": len(result.records),
    }


class TestStreamingDeterminism:
    def test_serial_vs_pool_byte_identical(self):
        items = ("streaming", "streaming")
        serial = json.dumps(
            common.sweep(items, _sweep_point, max_workers=1),
            sort_keys=True)
        parallel = json.dumps(
            common.sweep(items, _sweep_point, max_workers=2),
            sort_keys=True)
        assert serial == parallel

    def test_rerun_is_byte_identical(self):
        first = json.dumps(_sweep_point("streaming"), sort_keys=True)
        second = json.dumps(_sweep_point("streaming"), sort_keys=True)
        assert first == second


class TestMetricsSpec:
    def test_defaults_to_records(self):
        assert ScenarioSpec(name="s", kind="serving").metrics.mode == \
            "records"

    def test_round_trips_through_dict(self):
        spec = _spec("streaming")
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.metrics.mode == "streaming"
        assert clone == spec

    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecError, match="metrics.mode"):
            MetricsSpec(mode="sampled")

    def test_streaming_requires_serving_kind(self):
        with pytest.raises(SpecError, match="serving"):
            ScenarioSpec(name="s", kind="pipeline",
                         metrics=MetricsSpec(mode="streaming"))

    def test_vectorized_arrivals_round_trip(self):
        spec = ScenarioSpec(
            name="s", kind="serving",
            arrivals=ArrivalSpec(kind="poisson", rate_per_s=10.0,
                                 vectorized=True),
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.arrivals.vectorized is True
        assert clone.arrivals.build().vectorized is True
