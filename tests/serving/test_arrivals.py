"""Unit tests for the open-loop arrival generators."""

from __future__ import annotations

import pytest

from repro.serving.arrivals import (
    DEFAULT_MIX,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    RequestTemplate,
    TraceArrivals,
    make_arrivals,
)


class TestPoissonArrivals:
    def test_same_seed_is_byte_identical(self):
        first = PoissonArrivals(2.0, seed=3).generate(50.0)
        second = PoissonArrivals(2.0, seed=3).generate(50.0)
        assert first == second

    def test_generate_is_idempotent_on_one_instance(self):
        """Reusing one process across runs offers identical traffic."""
        process = PoissonArrivals(2.0, seed=3)
        assert process.generate(50.0) == process.generate(50.0)
        bursty = BurstyArrivals(1.0, 4.0, seed=2)
        assert bursty.generate(50.0) == bursty.generate(50.0)

    def test_different_seeds_differ(self):
        first = PoissonArrivals(2.0, seed=3).generate(50.0)
        second = PoissonArrivals(2.0, seed=4).generate(50.0)
        assert [r.arrival_s for r in first] != [r.arrival_s for r in second]

    def test_rate_matches_over_long_horizon(self):
        requests = PoissonArrivals(5.0, seed=0).generate(2000.0)
        assert len(requests) == pytest.approx(5.0 * 2000.0, rel=0.05)

    def test_times_increasing_and_within_horizon(self):
        requests = PoissonArrivals(3.0, seed=1).generate(30.0)
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert all(0.0 <= t < 30.0 for t in times)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_mix_weights_drive_frequencies(self):
        mix = (RequestTemplate("pagerank", 10, weight=9.0),
               RequestTemplate("resnet18", 10, weight=1.0))
        requests = PoissonArrivals(5.0, mix=mix, seed=0).generate(500.0)
        share = sum(r.workload == "pagerank" for r in requests) / len(requests)
        assert share == pytest.approx(0.9, abs=0.05)

    def test_request_names_are_stable_and_unique(self):
        requests = PoissonArrivals(2.0, seed=0).generate(20.0)
        names = [r.name for r in requests]
        assert len(set(names)) == len(names)
        assert names[0] == f"{requests[0].workload}-r0"

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_empty_horizon_yields_nothing(self):
        assert PoissonArrivals(2.0, seed=0).generate(0.0) == []


class TestBurstyArrivals:
    def test_mean_rate_between_states(self):
        process = BurstyArrivals(rate_low=1.0, rate_high=9.0,
                                 mean_dwell_s=5.0, seed=0)
        requests = process.generate(2000.0)
        rate = len(requests) / 2000.0
        assert 1.0 < rate < 9.0
        assert rate == pytest.approx(process.mean_rate_per_s, rel=0.2)

    def test_burst_phases_are_denser(self):
        """Windowed counts should spread much wider than a Poisson's."""
        requests = BurstyArrivals(rate_low=0.5, rate_high=20.0,
                                  mean_dwell_s=10.0, seed=1).generate(400.0)
        counts = [0] * 40
        for request in requests:
            counts[min(39, int(request.arrival_s / 10.0))] += 1
        assert max(counts) >= 5 * max(1, min(counts))

    def test_deterministic(self):
        a = BurstyArrivals(1.0, 4.0, seed=2).generate(100.0)
        b = BurstyArrivals(1.0, 4.0, seed=2).generate(100.0)
        assert a == b


class TestDiurnalArrivals:
    def test_mean_rate_preserved(self):
        requests = DiurnalArrivals(4.0, period_s=50.0, seed=0).generate(2000.0)
        assert len(requests) / 2000.0 == pytest.approx(4.0, rel=0.1)

    def test_peak_and_trough_phases_differ(self):
        process = DiurnalArrivals(4.0, period_s=100.0, amplitude=0.9, seed=0)
        requests = process.generate(3000.0)
        peak = trough = 0
        for request in requests:
            phase = (request.arrival_s % 100.0) / 100.0
            if 0.15 <= phase <= 0.35:      # around sin's maximum
                peak += 1
            elif 0.65 <= phase <= 0.85:    # around sin's minimum
                trough += 1
        assert peak > 3 * trough

    def test_amplitude_bounds(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, amplitude=1.0)


class TestTraceArrivals:
    def test_replays_explicit_trace_in_order(self):
        template = RequestTemplate("resnet18", job_steps=5, slo_class="batch")
        trace = [(3.0, template), (1.0, template)]
        requests = TraceArrivals(trace).generate(10.0)
        assert [r.arrival_s for r in requests] == [1.0, 3.0]
        assert all(r.workload == "resnet18" and r.job_steps == 5
                   for r in requests)

    def test_bare_times_draw_from_mix(self):
        requests = TraceArrivals([0.5, 1.5, 2.5], seed=0).generate(10.0)
        assert len(requests) == 3
        assert all(r.workload in {t.workload for t in DEFAULT_MIX}
                   for r in requests)

    def test_horizon_truncates(self):
        requests = TraceArrivals([0.5, 5.0, 50.0]).generate(10.0)
        assert [r.arrival_s for r in requests] == [0.5, 5.0]

    def test_arrival_times_are_sorted_like_generate(self):
        """The base-class contract (increasing times) holds for replay."""
        process = TraceArrivals([3.0, 1.0, 2.0])
        assert process.arrival_times(10.0) == [1.0, 2.0, 3.0]


class TestRegistry:
    def test_named_kinds_build(self):
        for kind in ("poisson", "bursty", "diurnal"):
            process = make_arrivals(kind, 2.0, seed=0)
            assert process.generate(10.0)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            make_arrivals("lunar", 2.0)
