"""Determinism regression for the serving subsystem.

Same pattern as ``tests/test_determinism.py``: a reduced `serve`-shaped
sweep must produce byte-identical results whether the points run
serially, in process-pool workers, or twice in the same process. Serving
adds new determinism hazards — arrival generation, admission state,
dispatch order, streaming quantiles — so the guard covers the whole
:func:`~repro.serving.frontend.run_serving` path end to end.
"""

from __future__ import annotations

import json

from repro.experiments import common, serve
from repro.serving.arrivals import PoissonArrivals
from repro.serving.frontend import run_serving


def _serialize(results) -> bytes:
    return json.dumps(results, sort_keys=True).encode()


#: reduced serve-sweep grid: 1 epoch, two policy pairs, moderate load
ITEMS = (
    (2.0, "always", "least_loaded"),
    (2.0, "token_bucket", "edf"),
)


def _point(item):
    """One serving point; module-level so pool workers can unpickle it."""
    rate, admission, policy = item
    config = common.train_config(epochs=1)
    result = run_serving(
        config,
        PoissonArrivals(rate, seed=0),
        horizon_s=5.0,
        admission=admission,
        policy=policy,
        seed=0,
    )
    metrics = result.metrics
    return {
        "rate": rate,
        "admission": admission,
        "policy": policy,
        "training_time": result.training.total_time,
        "open_s": result.open_duration_s,
        "queueing": metrics.queueing.summary(),
        "completion": metrics.completion.summary(),
        "goodput": metrics.goodput_rps,
        "records": [record.summary() for record in result.records],
    }


def test_serial_rerun_is_byte_identical():
    first = _serialize(common.sweep(ITEMS, _point, max_workers=1))
    second = _serialize(common.sweep(ITEMS, _point, max_workers=1))
    assert first == second


def test_parallel_sweep_matches_serial_byte_for_byte():
    serial = _serialize(common.sweep(ITEMS, _point, max_workers=1))
    parallel = _serialize(common.sweep(ITEMS, _point, max_workers=2))
    assert serial == parallel


def test_full_serve_experiment_row_is_reproducible():
    """The registered experiment's own reduced sweep, run twice."""
    overrides = {
        "training.epochs": 1,
        "sweep.axes": {
            "arrivals.rate_per_s": [2.0],
            "policy.admission": ["backpressure"],
            "policy.assignment": ["edf"],
        },
    }
    spec = serve.default_spec().override(overrides)
    first = _serialize(serve.run_spec(spec)["rows"])
    second = _serialize(serve.run_spec(spec)["rows"])
    assert first == second
