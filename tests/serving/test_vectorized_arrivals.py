"""Vectorized-vs-scalar arrival equivalence, and stream edge cases.

The vectorized generators draw bit-identical uniforms (shared Mersenne
Twister state via ``RandomStreams.numpy_stream``), so template picks
are pinned bit-exact; arrival *times* may differ from the scalar path
in the last ulp (numpy's ``log``/``sin`` vs libm), so times are pinned
count-exact plus 1e-12-relative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.arrivals import (
    CHUNK_SIZE,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)

KINDS = ("poisson", "bursty", "diurnal")
SEEDS = (0, 1, 2)


def _pair(kind: str, seed: int, rate: float = 40.0):
    scalar = make_arrivals(kind, rate, seed=seed)
    vector = make_arrivals(kind, rate, seed=seed, vectorized=True)
    return scalar, vector


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_times_match_scalar_reference(self, kind, seed):
        scalar, vector = _pair(kind, seed)
        reference = scalar.arrival_times(30.0)
        times = vector.arrival_times(30.0)
        assert len(times) == len(reference)
        assert np.allclose(times, reference, rtol=1e-12, atol=0.0)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_workload_sequence_is_bit_exact(self, kind, seed):
        """Template selection shares the scalar uniforms exactly."""
        scalar, vector = _pair(kind, seed)
        reference = scalar.generate(30.0)
        requests = vector.generate(30.0)
        assert [r.workload for r in requests] == \
            [r.workload for r in reference]
        assert [r.slo_class for r in requests] == \
            [r.slo_class for r in reference]
        assert [r.request_id for r in requests] == \
            [r.request_id for r in reference]

    @pytest.mark.parametrize("kind", KINDS)
    def test_chunked_iteration_matches_full_list(self, kind):
        _scalar, vector = _pair(kind, seed=1)
        full = vector.arrival_times(30.0)
        chunked = []
        for chunk in vector.iter_time_chunks(30.0, chunk_size=64):
            assert chunk.size <= 64
            chunked.extend(chunk.tolist())
        assert chunked == full

    @pytest.mark.parametrize("kind", KINDS)
    def test_request_chunks_match_generate(self, kind):
        _scalar, vector = _pair(kind, seed=2)
        full = vector.generate(30.0)
        chunked = [request
                   for chunk in vector.iter_request_chunks(30.0, 128)
                   for request in chunk]
        assert chunked == full

    def test_scalar_iter_time_chunks_falls_back_to_slices(self):
        process = PoissonArrivals(40.0, seed=0)
        full = process.arrival_times(10.0)
        chunks = list(process.iter_time_chunks(10.0, chunk_size=32))
        assert all(isinstance(chunk, np.ndarray) for chunk in chunks)
        assert [t for chunk in chunks for t in chunk.tolist()] == full

    def test_vectorized_is_idempotent(self):
        vector = make_arrivals("bursty", 40.0, seed=5, vectorized=True)
        assert vector.generate(20.0) == vector.generate(20.0)


class TestArrivalEdgeCases:
    def test_zero_rate_poisson_is_rejected(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError, match="rate must be positive"):
            make_arrivals("poisson", 0.0, vectorized=True)

    @pytest.mark.parametrize("vectorized", (False, True))
    def test_zero_horizon_yields_no_requests(self, vectorized):
        process = make_arrivals("poisson", 10.0, seed=0,
                                vectorized=vectorized)
        assert process.generate(0.0) == []
        assert list(process.iter_time_chunks(0.0)) == []
        assert list(process.iter_request_chunks(0.0)) == []

    def test_diurnal_thinning_at_peak_keeps_every_candidate(self):
        """At the rate peak, ``uniform * peak < rate_at(t)`` holds for
        every uniform in [0, 1) — a candidate arriving exactly at peak
        rate can never be thinned away."""
        process = DiurnalArrivals(10.0, period_s=40.0, amplitude=0.5,
                                  seed=0)
        peak = process.mean_rate_per_s * (1.0 + process.amplitude)
        t_peak = process.period_s / 4.0  # sin(2*pi*t/period) == 1
        assert process.rate_at(t_peak) == pytest.approx(peak)
        # any uniform < 1.0 keeps the candidate
        assert 0.999999 * peak < process.rate_at(t_peak) or \
            process.rate_at(t_peak) == peak

    def test_diurnal_zero_amplitude_matches_constant_peak(self):
        """amplitude=0 makes thinning vacuous (rate_at == peak
        everywhere): every candidate is kept, in both paths."""
        scalar = DiurnalArrivals(8.0, amplitude=0.0, seed=3)
        vector = DiurnalArrivals(8.0, amplitude=0.0, seed=3,
                                 vectorized=True)
        reference = scalar.arrival_times(25.0)
        assert len(reference) > 0
        times = vector.arrival_times(25.0)
        assert len(times) == len(reference)
        assert np.allclose(times, reference, rtol=1e-12, atol=0.0)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("vectorized", (False, True))
    def test_horizon_boundary_is_exclusive(self, kind, vectorized):
        """Arrivals live in [0, horizon): an arrival at exactly
        ``horizon_s`` must be dropped, not emitted."""
        process = make_arrivals(kind, 50.0, seed=7, vectorized=vectorized)
        times = process.arrival_times(12.0)
        assert times, "expected a non-empty stream at rate 50/s"
        assert all(0.0 <= t < 12.0 for t in times)
        # Shrinking the horizon to exactly the last arrival's instant
        # must exclude that arrival (strict < comparison on both paths).
        last = times[-1]
        clipped = process.arrival_times(last)
        assert clipped == times[:-1] if not vectorized else \
            len(clipped) == len(times) - 1
