"""The scale-ladder harness: determinism, mode/queue invariance, CLI."""

from __future__ import annotations

import json

import pytest

from repro.serving.scale import main, peak_rss_bytes, run_scale

#: small enough for unit tests, large enough for stable quantiles
REQUESTS = 4000
RATE = 400.0


def _digest(**overrides) -> dict:
    kwargs = dict(requests=REQUESTS, rate_per_s=RATE, seed=1)
    kwargs.update(overrides)
    return run_scale(**kwargs).summary()


class TestRunScale:
    def test_deterministic_across_runs(self):
        assert _digest() == _digest()

    def test_heap_and_calendar_queues_agree(self):
        heap = _digest(queue="heap")
        calendar = _digest(queue="calendar")
        assert calendar["queue_kind"] == "calendar"
        heap.pop("queue_kind"), calendar.pop("queue_kind")
        assert calendar == heap

    def test_scalar_and_vectorized_arrivals_agree_on_counts(self):
        vector = _digest(vectorized=True)
        scalar = _digest(vectorized=False)
        assert scalar["offered"] == vector["offered"]
        assert scalar["completed"] == vector["completed"]

    def test_streaming_matches_records_counts_and_extremes(self):
        streaming = _digest(mode="streaming")
        records = _digest(mode="records")
        for field in ("offered", "completed", "rejected", "events"):
            assert streaming[field] == records[field]
        for stat in ("wait", "sojourn"):
            assert streaming[stat]["count"] == records[stat]["count"]
            assert streaming[stat]["mean"] == \
                pytest.approx(records[stat]["mean"], rel=1e-12)
            assert streaming[stat]["max"] == records[stat]["max"]
            # sketch quantiles track the exact fold (abs floor: the
            # exact wait p50 is 0.0 — most requests find a free server
            # — and the sketch interpolates a tiny positive height)
            for q in ("p50", "p95", "p99"):
                assert streaming[stat][q] == \
                    pytest.approx(records[stat][q], rel=0.10, abs=2e-3)

    def test_all_arrival_kinds_run(self):
        for kind in ("poisson", "bursty", "diurnal"):
            digest = _digest(kind=kind, requests=1000)
            assert digest["completed"] > 0

    def test_bounded_queue_rejects_at_overload(self):
        digest = _digest(servers=1, utilization=0.95, queue_capacity=4)
        assert digest["rejected"] > 0
        # whatever is neither completed nor rejected was still in
        # flight when the horizon drained: at most servers + queue
        in_flight = (digest["offered"] - digest["completed"]
                     - digest["rejected"])
        assert 0 <= in_flight <= 1 + 4

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="request count"):
            run_scale(requests=0)
        with pytest.raises(ValueError, match="utilization"):
            run_scale(requests=10, utilization=1.5)
        with pytest.raises(ValueError, match="mode"):
            run_scale(requests=10, mode="exact")

    def test_peak_rss_is_positive(self):
        assert peak_rss_bytes() > 0
        result = run_scale(requests=500, rate_per_s=RATE)
        assert result.peak_rss_bytes >= peak_rss_bytes() // 2
        assert result.wall_s > 0
        assert result.events_per_s > 0


class TestScaleCli:
    def test_json_output_round_trips(self, capsys):
        assert main(["--requests", "1000", "--rate", "400",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] > 0
        assert payload["peak_rss_bytes"] > 0
        assert payload["mode"] == "streaming"

    def test_human_output(self, capsys):
        assert main(["--requests", "1000", "--rate", "400"]) == 0
        out = capsys.readouterr().out
        assert "events/s" in out and "peak_rss" in out

    def test_cli_matches_api_digest(self, capsys):
        main(["--requests", "1000", "--rate", "400", "--seed", "3",
              "--json"])
        payload = json.loads(capsys.readouterr().out)
        reference = run_scale(requests=1000, rate_per_s=400.0,
                              seed=3).summary()
        assert {key: payload[key] for key in reference} == reference
