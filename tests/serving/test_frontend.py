"""Tests for admission control, the bounded queue, dispatch disciplines,
and per-request lifecycle tracking."""

from __future__ import annotations

import pytest

from repro.experiments import common
from repro.serving.arrivals import RequestTemplate, TaskRequest, TraceArrivals
from repro.serving.frontend import (
    AdmissionPolicy,
    QueueBackpressure,
    RequestRecord,
    TokenBucket,
    make_admission,
    run_serving,
)
from repro.serving.slo import (
    SLO_CLASSES,
    edf_discipline,
    fifo_discipline,
    met_slo,
    slo_class,
    starvation_aware_discipline,
)


def _request(request_id=0, arrival_s=0.0, workload="pagerank"):
    return TaskRequest(request_id=request_id, arrival_s=arrival_s,
                       workload=workload, job_steps=10)


class TestAdmissionPolicies:
    def test_token_bucket_admits_burst_then_rejects(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=2.0)
        assert bucket.admit(0.0, _request(), 0)[0]
        assert bucket.admit(0.0, _request(), 0)[0]
        admitted, reason = bucket.admit(0.0, _request(), 0)
        assert not admitted and "token" in reason

    def test_token_bucket_refills_over_time(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        assert bucket.admit(0.0, _request(), 0)[0]
        assert not bucket.admit(0.5, _request(), 0)[0]
        assert bucket.admit(2.0, _request(), 0)[0]

    def test_backpressure_thresholds_on_queue_length(self):
        policy = QueueBackpressure(max_queue=2)
        assert policy.admit(0.0, _request(), 1)[0]
        admitted, reason = policy.admit(0.0, _request(), 2)
        assert not admitted and "backpressure" in reason

    def test_make_admission_rejects_unknown(self):
        with pytest.raises(KeyError):
            make_admission("coin_flip")

    def test_make_admission_passes_instances_through(self):
        policy = QueueBackpressure(max_queue=3)
        assert make_admission(policy) is policy


class TestSloClasses:
    def test_classes_map_to_deadlines(self):
        assert SLO_CLASSES["interactive"].absolute_deadline(5.0) == 15.0
        assert SLO_CLASSES["batch"].absolute_deadline(5.0) is None

    def test_unknown_class_is_best_effort(self):
        assert slo_class("mystery").deadline_s is None

    def test_met_slo_rules(self):
        assert met_slo(10.0, 9.0)
        assert not met_slo(10.0, 11.0)
        assert met_slo(None, 100.0)       # best effort: completing counts
        assert not met_slo(None, None)    # never finished


class TestDisciplines:
    def _record(self, request_id, arrival_s, deadline_s):
        return RequestRecord(request=_request(request_id, arrival_s),
                             deadline_s=deadline_s)

    def test_fifo_picks_head(self):
        queue = [self._record(0, 0.0, 50.0), self._record(1, 1.0, 5.0)]
        assert fifo_discipline(queue, now=2.0) == 0

    def test_edf_picks_earliest_deadline(self):
        queue = [self._record(0, 0.0, 50.0), self._record(1, 1.0, 5.0),
                 self._record(2, 2.0, None)]
        assert edf_discipline(queue, now=2.0) == 1

    def test_edf_ties_stay_fifo(self):
        queue = [self._record(0, 0.0, 5.0), self._record(1, 1.0, 5.0)]
        assert edf_discipline(queue, now=2.0) == 0

    def test_starvation_aware_ages_best_effort_past_deadlines(self):
        # Best effort from t=0 (effective deadline 60); a fresh deadline
        # request lands at t=45 due at t=55. Plain EDF serves the fresh
        # one (55 < 60); with aging the best-effort's 45 s wait has
        # discounted it to 60 - 22.5 = 37.5, so it finally goes first.
        ancient = self._record(0, 0.0, None)
        fresh = self._record(1, 45.0, 55.0)
        queue = [ancient, fresh]
        assert edf_discipline(queue, now=45.0) == 1
        assert starvation_aware_discipline(queue, now=45.0) == 0

    def test_starvation_aware_keeps_edf_for_fresh_traffic(self):
        a = self._record(0, 0.0, 50.0)
        b = self._record(1, 0.0, 5.0)
        assert starvation_aware_discipline([a, b], now=1.0) == 1


# One reduced end-to-end run shared by the lifecycle tests below.
@pytest.fixture(scope="module")
def small_run():
    template = RequestTemplate("pagerank", job_steps=30,
                               slo_class="interactive")
    late = RequestTemplate("resnet18", job_steps=10, slo_class="standard")
    trace = [(0.5, template), (1.0, template), (2.0, template),
             (1e4, late)]  # far beyond training: arrives after close
    config = common.train_config(epochs=2)
    return run_serving(
        config,
        TraceArrivals(trace, seed=0),
        horizon_s=2e4,
        admission="always",
        policy="least_loaded",
        seed=0,
    )


class TestLifecycle:
    def test_lifecycle_timestamps_are_ordered(self, small_run):
        completed = [r for r in small_run.records if r.status == "completed"]
        assert completed
        for record in completed:
            assert record.request.arrival_s == record.admitted_at
            assert record.admitted_at <= record.assigned_at
            assert record.assigned_at <= record.first_progress_at
            assert record.first_progress_at < record.completed_at
            assert record.steps_done == record.request.job_steps
            assert record.stage is not None

    def test_interactive_jobs_meet_their_slo(self, small_run):
        completed = [r for r in small_run.records if r.status == "completed"]
        assert all(record.met_slo for record in completed)

    def test_post_close_arrival_is_not_offered(self, small_run):
        late = small_run.records[-1]
        assert late.status == "late"
        assert not late.offered
        assert late.reject_reason == "service closed"
        assert small_run.metrics.offered == 3

    def test_metrics_aggregate_the_records(self, small_run):
        metrics = small_run.metrics
        assert metrics.admitted == 3
        assert metrics.rejected == 0
        assert metrics.completed == metrics.slo_met == 3
        assert metrics.completion.count == 3
        assert metrics.goodput_rps > 0


class SpyAdmission(AdmissionPolicy):
    """Admits everything, counting how often it was consulted."""

    def __init__(self):
        self.calls = 0

    def admit(self, now, request, queue_length):
        self.calls += 1
        return True, None


class TestAdmissionQueueInteraction:
    def test_full_queue_rejects_without_consulting_policy(self):
        """A queue-full rejection must not consume admission state
        (e.g. token-bucket tokens)."""
        spy = SpyAdmission()
        template = RequestTemplate("resnet50", job_steps=500,
                                   slo_class="batch")
        trace = [(0.05 * i, template) for i in range(15)]
        config = common.train_config(epochs=2)
        result = run_serving(
            config,
            TraceArrivals(trace, seed=0),
            horizon_s=1e4,
            admission=spy,
            queue_capacity=2,
            seed=0,
        )
        overflow = [r for r in result.records if r.reject_reason
                    and r.reject_reason.startswith("admission queue full")]
        assert overflow  # the bounded queue did overflow
        assert spy.calls == result.metrics.offered - len(overflow)


class TestDispatchOrdering:
    def test_unfittable_head_does_not_block_smaller_requests(self):
        """No head-of-line blocking: a request too big for any worker is
        deferred while a later, smaller request dispatches."""
        big = RequestTemplate("resnet50", job_steps=500, slo_class="batch")
        huge = RequestTemplate("vgg19", job_steps=10, slo_class="batch")
        small = RequestTemplate("pagerank", job_steps=20,
                                slo_class="interactive")
        # Seven 6.2 GB jobs saturate the 10.65/18.3/25.95 GB workers
        # below vgg19's 11.5 GB while leaving pagerank-sized holes.
        trace = [(0.1 * (i + 1), big) for i in range(7)]
        trace += [(1.0, huge), (1.1, small)]
        config = common.train_config(epochs=2)
        result = run_serving(
            config,
            TraceArrivals(trace, seed=0),
            horizon_s=1e4,
            admission="always",
            discipline="fifo",
            seed=0,
        )
        by_workload = {}
        for record in result.records:
            by_workload.setdefault(record.request.workload, []).append(record)
        assert all(r.assigned_at is not None for r in by_workload["resnet50"])
        vgg = by_workload["vgg19"][0]
        pagerank = by_workload["pagerank"][0]
        assert vgg.assigned_at is None and vgg.status == "queued"
        assert pagerank.status == "completed"


class TestBoundedQueueAndBackpressure:
    def test_queue_capacity_rejects_overflow(self):
        template = RequestTemplate("resnet50", job_steps=200,
                                   slo_class="batch")
        # A burst far beyond what 2-epoch bubbles can drain.
        trace = [(0.1 * i, template) for i in range(40)]
        config = common.train_config(epochs=2)
        result = run_serving(
            config,
            TraceArrivals(trace, seed=0),
            horizon_s=1e4,
            admission="always",
            queue_capacity=4,
            seed=0,
        )
        reasons = {r.reject_reason for r in result.records
                   if r.status == "rejected"}
        assert any(reason.startswith("admission queue full")
                   for reason in reasons)
        # The enriched reason names the queue bound and admission policy.
        assert any("4; admission=always" in reason for reason in reasons)
        assert result.metrics.rejected > 0
        assert result.metrics.rejection_rate > 0

    def test_backpressure_rejects_before_queue_fills(self):
        template = RequestTemplate("resnet50", job_steps=200,
                                   slo_class="batch")
        trace = [(0.1 * i, template) for i in range(40)]
        config = common.train_config(epochs=2)
        result = run_serving(
            config,
            TraceArrivals(trace, seed=0),
            horizon_s=1e4,
            admission="backpressure",
            seed=0,
        )
        reasons = {r.reject_reason for r in result.records
                   if r.status == "rejected"}
        assert any(reason.startswith("backpressure") for reason in reasons)
