"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.device import SimGPU
from repro.gpu.kernel import Interference, Priority
from repro.gpu.process import GPUProcess
from repro.gpu.sharing import SharingMode
from repro.pipeline.ops import OpKind, dependencies
from repro.pipeline.schedule import stage_order
from repro.sim.engine import Engine


# ---------------------------------------------------------------------------
# Discrete-event engine
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                max_size=40))
def test_property_engine_time_is_monotone(delays):
    engine = Engine()
    observed: list[float] = []
    for delay in delays:
        timeout = engine.timeout(delay)
        timeout.callbacks.append(lambda _ev: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert engine.now == pytest.approx(max(delays))


@given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1,
                max_size=20))
def test_property_sequential_process_sums_delays(delays):
    engine = Engine()

    def body():
        for delay in delays:
            yield engine.timeout(delay)

    proc = engine.process(body())
    engine.run(until=proc)
    assert engine.now == pytest.approx(sum(delays))


@given(st.integers(min_value=1, max_value=20),
       st.floats(min_value=0.01, max_value=5.0))
def test_property_parallel_processes_take_max_not_sum(count, delay):
    engine = Engine()
    for _ in range(count):
        engine.process(iter_timeout(engine, delay))
    engine.run()
    assert engine.now == pytest.approx(delay)


def iter_timeout(engine, delay):
    yield engine.timeout(delay)


# ---------------------------------------------------------------------------
# GPU device
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1,
                max_size=12))
@settings(max_examples=40, deadline=None)
def test_property_same_process_kernels_preserve_total_work(works):
    """Kernels of one process never contend: total time == max finish,
    and with simultaneous launch at full speed that is max(works)."""
    engine = Engine()
    gpu = SimGPU(engine, "g", memory_gb=48.0)
    proc = GPUProcess(engine, gpu, "p")
    for work in works:
        proc.launch_kernel(work_s=work)
    engine.run()
    assert engine.now == pytest.approx(max(works))


@given(st.floats(min_value=0.1, max_value=3.0),
       st.floats(min_value=0.0, max_value=4.0))
@settings(max_examples=40, deadline=None)
def test_property_interference_stretch_is_exact(work, interference):
    """A training kernel fully overlapped by a side kernel stretches by
    exactly (1 + interference)."""
    engine = Engine()
    gpu = SimGPU(engine, "g", memory_gb=48.0, sharing=SharingMode.MPS)
    training = GPUProcess(engine, gpu, "t", priority=Priority.TRAINING)
    side = GPUProcess(
        engine, gpu, "s", priority=Priority.SIDE,
        interference=Interference(mps_on_higher=interference),
    )
    side.launch_kernel(work_s=1e6)  # never finishes within the test
    done = training.launch_kernel(work_s=work)
    engine.run(until=done)
    assert engine.now == pytest.approx(work * (1 + interference), rel=1e-6)


@given(st.lists(st.tuples(st.floats(min_value=0.1, max_value=10.0),
                          st.booleans()),
                min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_property_memory_ledger_never_negative_or_overcommitted(actions):
    engine = Engine()
    gpu = SimGPU(engine, "g", memory_gb=48.0)
    proc = GPUProcess(engine, gpu, "p")
    from repro.errors import GpuOutOfMemoryError, SimulationError
    for amount, is_alloc in actions:
        try:
            if is_alloc:
                proc.allocate(amount)
            else:
                proc.free(amount)
        except (GpuOutOfMemoryError, SimulationError):
            pass
        assert 0.0 <= gpu.used_gb <= gpu.memory_gb + 1e-9


# ---------------------------------------------------------------------------
# Pipeline schedule
# ---------------------------------------------------------------------------

@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=12))
def test_property_1f1b_schedule_is_complete_and_causal(stages, micro_batches):
    for stage in range(stages):
        order = stage_order("1f1b", stage, stages, micro_batches)
        assert len(order) == 2 * micro_batches
        seen_forward: set[int] = set()
        for op in order:
            if op.kind is OpKind.FORWARD:
                seen_forward.add(op.micro_batch)
            else:
                # BP(m) only after FP(m) on the same stage
                assert op.micro_batch in seen_forward


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=12))
def test_property_dependencies_form_a_dag(stages, micro_batches):
    """Toposort the full op set: the dependency relation must be acyclic
    and every dependency must reference a scheduled op."""
    all_ops = {
        op
        for stage in range(stages)
        for op in stage_order("1f1b", stage, stages, micro_batches)
    }
    indegree = {op: 0 for op in all_ops}
    dependents: dict = {op: [] for op in all_ops}
    for op in all_ops:
        for dep in dependencies(op, stages):
            assert dep in all_ops, f"{op} depends on unscheduled {dep}"
            indegree[op] += 1
            dependents[dep].append(op)
    frontier = [op for op, degree in indegree.items() if degree == 0]
    visited = 0
    while frontier:
        op = frontier.pop()
        visited += 1
        for dependent in dependents[op]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                frontier.append(dependent)
    assert visited == len(all_ops)  # acyclic


@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=15, deadline=None)
def test_property_pipeline_runs_for_any_shape(stages, micro_batches):
    """The engine completes and accounts every op for arbitrary S, M."""
    from repro.gpu.cluster import Server
    from repro.gpu.device import SimGPU as Device
    from repro.pipeline.config import TrainConfig, model_config
    from repro.pipeline.engine import PipelineEngine

    engine = Engine()
    gpus = [Device(engine, f"g{i}", memory_gb=2000.0) for i in range(stages)]
    server = Server(name="custom", engine=engine, gpus=gpus,
                    price_per_hour=1.0)
    config = TrainConfig(
        model=model_config("1.2B"),
        num_stages=stages,
        micro_batches=micro_batches,
        epochs=1,
        op_jitter=0.0,
    )
    result = PipelineEngine(engine, server, config).run()
    assert len(result.trace.ops) == 2 * stages * micro_batches
    # Analytic 1F1B epoch time: (M + S - 1)(tf + tb) + opt.
    from repro.pipeline.timing import TimingModel
    expected = TimingModel(config.model).ideal_epoch_time(stages, micro_batches)
    assert result.total_time == pytest.approx(expected, rel=1e-6)
