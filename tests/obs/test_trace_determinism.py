"""Tracing must never change a run — the tentpole's hard constraint.

Span emission only appends to a list and reads the clock: it schedules
no simulation events and consumes no RNG. These golden-hash tests pin
that down across the three serving-mode scenario families: every row a
sweep produces must be byte-identical with tracing on and off, and a
traced sweep must stay pool-vs-serial byte-identical (the fault suite's
guarantee, re-checked with tracing enabled).

Also here: the regression test for the per-run event-counter scope (the
old module-global counter never reset and double-counted under the
process-pool sweep).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import cluster, common, resilience, serve

#: reduced grids — one/two points per scenario keep the suite fast
SERVE_OVERRIDES = {
    "training.epochs": 1,
    "sweep.axes": {
        "arrivals.rate_per_s": [4.0],
        "policy.admission": ["always", "token_bucket"],
        "policy.assignment": ["least_loaded"],
    },
}
CLUSTER_OVERRIDES = {
    "training.epochs": 1,
    "sweep.axes": {"jobs": [2], "policy.assignment": ["least_loaded"]},
}
RESILIENCE_OVERRIDES = {
    "training.epochs": 1,
    "faults.crash_rate": 4.0,
    "faults.restart_after_s": 2.0,
    "sweep.axes": {
        "faults.crash_rate": [4.0],
        "faults.recovery": ["restart", "checkpoint"],
    },
}


def _serialize(rows) -> bytes:
    return json.dumps(rows, sort_keys=True).encode()


def _serve_points():
    spec = serve.default_spec().override(SERVE_OVERRIDES)
    t_no = common.baseline_time(spec.train_config())
    horizon_s = t_no * float(spec.param("open_fraction"))
    return spec.sweep_points({"params.horizon_s": horizon_s,
                              "params.t_no": t_no})


def _cluster_points():
    return cluster.default_spec().override(CLUSTER_OVERRIDES).sweep_points()


def _resilience_points():
    spec = resilience.default_spec().override(RESILIENCE_OVERRIDES)
    horizon_s = common.baseline_time(spec.train_config()) * float(
        spec.param("open_fraction")
    )
    return spec.sweep_points({"params.horizon_s": horizon_s})


SCENARIOS = {
    "serve": (_serve_points, serve._serve_point),
    "cluster": (_cluster_points, cluster._cluster_point),
    "resilience": (_resilience_points, resilience._resilience_point),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_rows_are_byte_identical_with_tracing_on_and_off(name):
    points_fn, point_fn = SCENARIOS[name]
    points = points_fn()
    assert points, name
    plain = [point_fn(point) for point in points]
    traced = [point_fn(point.override({"obs.trace": True}))
              for point in points]
    assert _serialize(plain) == _serialize(traced)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_traced_sweep_pool_matches_serial_byte_for_byte(name):
    points_fn, point_fn = SCENARIOS[name]
    points = [point.override({"obs.trace": True})
              for point in points_fn()]
    serial = common.sweep(points, point_fn, max_workers=1)
    pooled = common.sweep(points, point_fn, max_workers=2)
    assert _serialize(serial) == _serialize(pooled)


class TestEventCounterScope:
    """Satellite: the old module-global counter never reset per run."""

    def test_each_engine_scopes_its_own_count(self):
        from repro.sim.engine import Engine

        first = Engine()
        first.timeout(1.0)
        first.run()
        second = Engine()
        second.timeout(1.0)
        second.timeout(2.0)
        second.run()
        one = first.telemetry.counter("sim.events_processed").value
        two = second.telemetry.counter("sim.events_processed").value
        # per-run registries see only their own engine's events
        assert one == first.events_processed == 1
        assert two == second.events_processed == 2

    def test_process_counter_accumulates_across_runs(self):
        from repro.sim import engine as sim_engine
        from repro.sim.engine import Engine

        before = sim_engine.total_events_processed()
        sim = Engine()
        sim.timeout(1.0)
        sim.run()
        assert sim_engine.total_events_processed() == before + 1

    def test_pool_sweep_accounts_worker_events_exactly_once(self):
        from repro.sim import engine as sim_engine

        points = _cluster_points()
        before = sim_engine.total_events_processed()
        common.sweep(points, cluster._cluster_point, max_workers=2)
        pooled_delta = sim_engine.total_events_processed() - before

        before = sim_engine.total_events_processed()
        common.sweep(points, cluster._cluster_point, max_workers=1)
        serial_delta = sim_engine.total_events_processed() - before
        assert pooled_delta == serial_delta > 0
