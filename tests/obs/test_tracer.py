"""Unit tests for the span tracer, the telemetry registry, and export."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_RING_LIMIT,
    NULL_TRACER,
    SpanTracer,
    Telemetry,
    TraceResult,
    attach_tracer,
    chrome_trace,
    collect_trace,
    trace_jsonl,
)
from repro.sim.engine import Engine


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("x", 1.0)
        NULL_TRACER.complete("x", 1.0, 2.0)
        assert len(NULL_TRACER) == 0

    def test_engine_boots_with_null_tracer(self):
        sim = Engine()
        assert sim.trace is NULL_TRACER
        assert not sim.trace.enabled


class TestSpanTracer:
    def test_instant_and_complete(self):
        tracer = SpanTracer()
        tracer.instant("admit", 1.0, cat="serving.admission",
                       track=("tenants", "a"), args={"id": 1})
        tracer.complete("service", 2.0, 5.0, cat="serving.service")
        assert len(tracer) == 2
        ph, name, cat, track, ts, dur, args = tracer.events[0]
        assert (ph, name, cat, track, ts, dur) == (
            "i", "admit", "serving.admission", ("tenants", "a"), 1.0, None
        )
        assert args == {"id": 1}
        ph, name, _cat, _track, ts, dur, _args = tracer.events[1]
        assert (ph, ts, dur) == ("X", 2.0, 3.0)


class TestTelemetry:
    def test_counters_and_gauges(self):
        telemetry = Telemetry()
        counter = telemetry.counter("events")
        counter.add()
        counter.add(4)
        assert counter.value == 5
        gauge = telemetry.gauge("depth")
        gauge.set(3.0, now=1.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        snapshot = telemetry.snapshot()
        assert snapshot == {"counters": {"events": 5},
                            "gauges": {"depth": 1.0}}

    def test_timelines_are_bounded(self):
        telemetry = Telemetry(ring_limit=4)
        counter = telemetry.counter("c")
        for step in range(10):
            counter.add()
            counter.record(float(step))
        timelines = telemetry.timelines()
        assert len(timelines["c"]) == 4
        assert timelines["c"][-1] == (9.0, 10)

    def test_counter_identity_is_stable(self):
        telemetry = Telemetry()
        assert telemetry.counter("x") is telemetry.counter("x")

    def test_reset(self):
        telemetry = Telemetry()
        telemetry.counter("x").add(3)
        telemetry.reset()
        assert telemetry.snapshot() == {"counters": {}, "gauges": {}}

    def test_scoped_measures_delta(self):
        telemetry = Telemetry()
        telemetry.counter("n").add(10)
        with telemetry.scoped("n") as scope:
            telemetry.counter("n").add(7)
        assert scope.delta == 7


class TestAttachTracer:
    def test_none_spec_is_a_no_op(self):
        sim = Engine()
        assert attach_tracer(sim, None) is None
        assert sim.trace is NULL_TRACER

    def test_disabled_spec_is_a_no_op(self):
        class Obs:
            trace = False

        sim = Engine()
        assert attach_tracer(sim, Obs()) is None
        assert sim.trace is NULL_TRACER

    def test_enabled_spec_installs_a_span_tracer(self):
        class Obs:
            trace = True
            ring_limit = 8

        sim = Engine()
        tracer = attach_tracer(sim, Obs())
        assert sim.trace is tracer
        assert tracer.enabled
        assert sim.telemetry.ring_limit == 8

    def test_collect_trace_off_returns_none(self):
        assert collect_trace(Engine()) is None

    def test_collect_trace_on_returns_result(self):
        class Obs:
            trace = True
            ring_limit = DEFAULT_RING_LIMIT

        sim = Engine()
        tracer = attach_tracer(sim, Obs())
        tracer.instant("tick", 0.5)
        sim.telemetry.counter("n").add(2)
        result = collect_trace(sim)
        assert isinstance(result, TraceResult)
        assert result.span_count == 1
        assert result.telemetry["counters"]["n"] == 2


class TestChromeExport:
    def _tracer(self):
        tracer = SpanTracer()
        tracer.complete("service", 1.0, 3.0, cat="serving.service",
                        track=("workers", "stage0"), args={"id": 7})
        tracer.instant("crash", 2.0, cat="fault",
                       track=("faults", "stage1"))
        return tracer

    def test_chrome_trace_shape(self):
        data = chrome_trace(self._tracer().events)
        events = data["traceEvents"]
        # 2 span events + 2 process_name + 2 thread_name metadata
        assert len(events) == 6
        spans = [e for e in events if e["ph"] in ("X", "i")]
        complete = next(e for e in spans if e["ph"] == "X")
        # virtual seconds -> microseconds
        assert complete["ts"] == pytest.approx(1_000_000.0)
        assert complete["dur"] == pytest.approx(2_000_000.0)
        assert complete["args"] == {"id": 7}
        instant = next(e for e in spans if e["ph"] == "i")
        assert instant["s"] == "t"
        # distinct (process, thread) tracks get distinct pid/tid
        assert complete["pid"] != instant["pid"]
        assert json.dumps(data)  # serializable end to end

    def test_track_metadata_names_processes_and_threads(self):
        events = chrome_trace(self._tracer().events)["traceEvents"]
        names = {(e["name"], e["args"]["name"])
                 for e in events if e["ph"] == "M"}
        assert ("process_name", "workers") in names
        assert ("thread_name", "stage0") in names

    def test_counter_timelines_become_counter_events(self):
        telemetry = Telemetry()
        counter = telemetry.counter("queue_depth")
        counter.add(2)
        counter.record(1.0)
        data = chrome_trace(SpanTracer().events,
                            timelines=telemetry.timelines())
        counters = [e for e in data["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"value": 2}

    def test_jsonl_one_event_per_line(self):
        lines = trace_jsonl(self._tracer().events).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["ph"] == "X"
        assert first["ts_s"] == 1.0  # JSONL keeps virtual seconds
        assert first["dur_s"] == 2.0

    def test_trace_result_round_trip(self, tmp_path):
        tracer = self._tracer()
        result = TraceResult(events=tracer.events, telemetry={},
                             timelines={})
        chrome_path = tmp_path / "trace.json"
        result.write_chrome(chrome_path)
        data = json.loads(chrome_path.read_text())
        assert data["traceEvents"]
        assert result.span_count == 2
        assert [e for e in result.events_of(cat="fault")] == [
            tracer.events[1]
        ]
