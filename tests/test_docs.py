"""Fast docs-consistency guard (the tier-1 slice of scripts/check_docs.py).

Every registered scenario must be mentioned in API.md and README.md,
and every example script must be mentioned in at least one of the two
docs or another example — so code and documentation cannot silently
drift apart. The slow half (actually *running* every example) lives in
``scripts/check_docs.py``, wired into the registry-smoke CI job.
"""

from __future__ import annotations

import pathlib

from repro.api import registry

REPO = pathlib.Path(__file__).resolve().parents[1]


def test_every_scenario_is_documented():
    # Bare substring matching would be vacuous ("serve" is inside
    # "serving"): README must show the CLI invocation, API.md must name
    # the scenario as a code token. Same contract as
    # scripts/check_docs.py.
    for doc, pattern in (("README.md", "repro run {name}"),
                         ("API.md", "`{name}`")):
        text = (REPO / doc).read_text()
        missing = [name for name in registry.names()
                   if pattern.format(name=name) not in text]
        assert not missing, (
            f"{doc} does not document scenario(s) {missing} "
            f"(expected {pattern!r} for each)"
        )


def test_architecture_doc_covers_every_subsystem():
    text = (REPO / "ARCHITECTURE.md").read_text()
    packages = sorted(
        path.name for path in (REPO / "src" / "repro").iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )
    missing = [name for name in packages
               if f"repro/{name}/" not in text]
    assert not missing, (
        f"ARCHITECTURE.md does not cover subsystem(s) {missing}"
    )


def test_architecture_doc_is_linked():
    for doc in ("README.md", "API.md"):
        assert "ARCHITECTURE.md" in (REPO / doc).read_text(), (
            f"{doc} should link ARCHITECTURE.md"
        )
