"""The generator contract: every draw is a pure function of one seed,
valid by construction, and stable across processes."""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.spec import ScenarioSpec
from repro.errors import SpecError
from repro.fuzz import FUZZ_KINDS, draw_spec


def test_same_seed_same_spec():
    for seed in range(25):
        assert draw_spec(seed).to_json() == draw_spec(seed).to_json()


def test_different_seeds_differ():
    drawn = {draw_spec(seed).to_json() for seed in range(25)}
    assert len(drawn) > 20  # a few collisions would be astonishing


def test_draws_are_process_stable():
    """string-seeded random.Random hashes with SHA-512, so the stream
    must be identical in a fresh interpreter (no PYTHONHASHSEED drift)."""
    script = (
        "from repro.fuzz import draw_spec;"
        "print(draw_spec(7).to_json())"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    assert out == draw_spec(7).to_json().strip()


def test_every_kind_is_reachable():
    kinds = {draw_spec(seed).kind for seed in range(80)}
    assert kinds == set(FUZZ_KINDS)


def test_kind_restriction_is_honored():
    for seed in range(15):
        assert draw_spec(seed, kinds=("batch",)).kind == "batch"
        assert draw_spec(seed, kinds=("serving", "cluster")).kind in (
            "serving", "cluster")


def test_unknown_kind_rejected():
    with pytest.raises(SpecError, match="fuzz kinds"):
        draw_spec(0, kinds=("serving", "streaming"))
    with pytest.raises(SpecError, match="fuzz kinds"):
        draw_spec(0, kinds=())


def test_draws_round_trip_losslessly():
    for seed in range(40):
        spec = draw_spec(seed)
        assert ScenarioSpec.from_json(spec.to_json()).to_json() == (
            spec.to_json())


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_every_seed_draws_a_valid_spec(seed):
    """draw_spec must never raise for any seed: the generator only
    composes values the spec layer's own validation accepts."""
    spec = draw_spec(seed)
    assert spec.kind in FUZZ_KINDS
    # constructible <=> valid; exercise the dict path too
    ScenarioSpec.from_dict(spec.to_dict())
