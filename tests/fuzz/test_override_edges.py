"""Satellite: ``ScenarioSpec.override`` edge cases the generator leans
on — nested tuple fields and ``--set``-string coercion on typed knobs."""

from __future__ import annotations

import pytest

from repro.api.spec import (
    ArrivalSpec,
    MixEntrySpec,
    ScenarioSpec,
    TenantSpec,
    TrainingSpec,
    WorkloadSpec,
)
from repro.errors import SpecError


def _batch_spec() -> ScenarioSpec:
    return ScenarioSpec(
        kind="batch", training=TrainingSpec(epochs=1),
        workloads=(WorkloadSpec(name="pagerank"),
                   WorkloadSpec(name="resnet18", batch_size=64)),
    )


def _serving_spec() -> ScenarioSpec:
    return ScenarioSpec(
        kind="serving", training=TrainingSpec(epochs=1),
        arrivals=ArrivalSpec(
            rate_per_s=2.0,
            mix=(MixEntrySpec(workload="pagerank", job_steps=2),
                 MixEntrySpec(workload="resnet18", job_steps=3)),
        ),
    )


# -- nested tuple fields ------------------------------------------------

def test_override_indexes_into_workloads():
    spec = _batch_spec().override({"workloads.1.batch_size": 128})
    assert spec.workloads[1].batch_size == 128
    assert spec.workloads[0].batch_size == (
        _batch_spec().workloads[0].batch_size)


def test_override_indexes_into_arrival_mix():
    spec = _serving_spec().override({"arrivals.mix.0.weight": 5.0,
                                     "arrivals.mix.1.job_steps": 7})
    assert spec.arrivals.mix[0].weight == 5.0
    assert spec.arrivals.mix[1].job_steps == 7


def test_override_indexes_into_tenants():
    spec = ScenarioSpec(
        kind="serving", training=TrainingSpec(epochs=1),
        tenants=(TenantSpec(name="a"), TenantSpec(name="b")),
    ).override({"tenants.1.weight": 4.0})
    assert spec.tenants[1].weight == 4.0
    assert spec.tenants[0].weight == 1.0


def test_override_out_of_range_index_is_actionable():
    with pytest.raises(SpecError, match="workloads.5"):
        _batch_spec().override({"workloads.5.batch_size": 32})


def test_override_non_numeric_index_is_actionable():
    with pytest.raises(SpecError, match="workloads.first"):
        _batch_spec().override({"workloads.first.batch_size": 32})


# -- string coercion on typed knobs (--set strings) ---------------------

def test_bool_knob_accepts_set_strings():
    for text, value in (("true", True), ("yes", True), ("on", True),
                        ("1", True), ("false", False), ("no", False),
                        ("off", False), ("0", False), ("TRUE", True)):
        assert ScenarioSpec().override(
            {"obs.trace": text}).obs.trace is value


def test_bool_knob_rejects_garbage_strings():
    with pytest.raises(SpecError, match="boolean"):
        ScenarioSpec().override({"obs.trace": "maybe"})


def test_float_knob_accepts_numeric_strings_and_ints():
    spec = _serving_spec()
    assert spec.override(
        {"arrivals.rate_per_s": "3.5"}).arrivals.rate_per_s == 3.5
    overridden = spec.override({"arrivals.rate_per_s": 4})
    assert overridden.arrivals.rate_per_s == 4.0
    assert isinstance(overridden.arrivals.rate_per_s, float)


def test_float_knob_rejects_garbage_strings():
    with pytest.raises(SpecError, match="rate_per_s"):
        _serving_spec().override({"arrivals.rate_per_s": "fast"})


def test_int_knob_accepts_numeric_strings():
    assert ScenarioSpec().override(
        {"training.epochs": "4"}).training.epochs == 4


def test_int_knob_rejects_garbage_strings():
    with pytest.raises(SpecError, match="epochs"):
        ScenarioSpec().override({"training.epochs": "many"})


def test_coercion_applies_inside_tuple_entries():
    spec = _serving_spec().override({"arrivals.mix.0.weight": "2.5"})
    assert spec.arrivals.mix[0].weight == 2.5


def test_validation_still_runs_after_coercion():
    # coercion gets the string onto the knob; range checks still apply
    with pytest.raises(SpecError, match="epochs"):
        ScenarioSpec().override({"training.epochs": "0"})
