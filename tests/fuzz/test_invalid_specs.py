"""Satellite: fuzz-generated *invalid* specs must raise SpecError with
actionable messages — never crash, never slip through."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.spec import ArrivalSpec, ScenarioSpec, TenantSpec
from repro.errors import SpecError
from repro.fuzz import draw_invalid, invalid_case_names
from repro.fuzz.generator import _invalid_cases
import random


def test_case_inventory_is_substantial():
    names = invalid_case_names()
    assert len(names) >= 25
    # the satellite's named examples are all present
    assert "negative_arrival_rate" in names
    assert "tenants_on_batch" in names
    assert "unknown_override_path" in names


@pytest.mark.parametrize("name", invalid_case_names())
def test_every_invalid_case_raises_spec_error(name):
    thunk = _invalid_cases()[name]
    with pytest.raises(SpecError) as excinfo:
        thunk(random.Random(0))
    # actionable: the message says something concrete, not just a type
    assert len(str(excinfo.value)) > 10


def test_draw_invalid_is_deterministic():
    for seed in range(20):
        name_a, _ = draw_invalid(seed)
        name_b, _ = draw_invalid(seed)
        assert name_a == name_b


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_drawn_invalid_specs_never_crash(seed):
    _, thunk = draw_invalid(seed)
    with pytest.raises(SpecError):
        thunk()


def test_messages_name_the_offending_field():
    with pytest.raises(SpecError, match="rate_per_s"):
        ArrivalSpec(rate_per_s=-1.0)
    with pytest.raises(SpecError, match="tenants"):
        ScenarioSpec(kind="batch", tenants=2)
    with pytest.raises(SpecError, match="weight"):
        TenantSpec(weight=0.0)
    with pytest.raises(SpecError, match="epoch"):
        ScenarioSpec().override({"training.epoch": 2})
    with pytest.raises(SpecError, match="epochs"):
        ScenarioSpec().override({"training.epochs": 0})
