"""Equivalence frames: selection logic, green paths, and mismatch
reporting."""

from __future__ import annotations

import json

from repro.api.spec import (
    ArrivalSpec,
    MetricsSpec,
    ScenarioSpec,
    TrainingSpec,
    WorkloadSpec,
)
from repro.fuzz import FRAMES, check_frames, frames_for, run_and_digest
from repro.fuzz.digest import _strip_estimates


def _serving_spec(**kwargs) -> ScenarioSpec:
    kwargs.setdefault("params", {"horizon_s": 3.0})
    return ScenarioSpec(
        name="frames", kind="serving", seed=11,
        training=TrainingSpec(epochs=1),
        arrivals=ArrivalSpec(rate_per_s=4.0),
        **kwargs,
    )


def test_frame_names_cover_the_contract():
    assert [frame.name for frame in FRAMES] == [
        "json_roundtrip", "pool_vs_serial", "traced_vs_untraced",
        "heap_vs_calendar", "records_vs_streaming",
    ]


def test_streaming_frame_only_for_records_traffic():
    names = {f.name for f in frames_for(_serving_spec())}
    assert "records_vs_streaming" in names

    streaming = _serving_spec(metrics=MetricsSpec(mode="streaming"))
    assert "records_vs_streaming" not in {
        f.name for f in frames_for(streaming)}

    batch = ScenarioSpec(
        name="b", kind="batch", training=TrainingSpec(epochs=1),
        workloads=(WorkloadSpec(name="pagerank"),))
    assert "records_vs_streaming" not in {f.name for f in frames_for(batch)}


def test_traced_frame_skipped_when_already_tracing():
    traced = _serving_spec().override({"obs.trace": True})
    assert "traced_vs_untraced" not in {f.name for f in frames_for(traced)}


def test_all_frames_agree_on_a_serving_scenario():
    spec = _serving_spec()
    base = run_and_digest(spec)
    assert check_frames(spec, base) == []


def test_all_frames_agree_on_a_batch_scenario():
    spec = ScenarioSpec(
        name="b", kind="batch", seed=2, training=TrainingSpec(epochs=1),
        workloads=(WorkloadSpec(name="pagerank"),
                   WorkloadSpec(name="resnet18")))
    base = run_and_digest(spec)
    assert check_frames(spec, base) == []


def test_tampered_baseline_is_reported_with_paths():
    spec = _serving_spec()
    base = run_and_digest(spec)
    tampered = json.loads(json.dumps(base))
    tampered["serving"]["offered"] += 1
    frames = [f for f in FRAMES if f.name == "json_roundtrip"]
    mismatches = check_frames(spec, tampered, frames)
    assert len(mismatches) == 1
    assert mismatches[0].frame == "json_roundtrip"
    assert "serving.offered" in mismatches[0].paths
    assert "serving.offered" in str(mismatches[0])


def test_exact_digest_strips_quantiles_and_record_hash():
    spec = _serving_spec()
    base = run_and_digest(spec)
    exact = _strip_estimates(base)
    assert "p95" in base["serving"]["queueing"]
    assert "p95" not in exact["serving"]["queueing"]
    assert "records" in base["serving"]
    assert "records" not in exact["serving"]
    # the exact subset still pins the load-bearing counters
    assert exact["serving"]["offered"] == base["serving"]["offered"]
    assert exact["serving"]["queueing"]["count"] == (
        base["serving"]["queueing"]["count"])
