"""The shrinker, on synthetic failing predicates: minimal output,
termination, determinism."""

from __future__ import annotations

import pytest

from repro.fuzz import draw_spec, shrink
from repro.fuzz.shrink import baseline_spec


def _fault_spec():
    for seed in range(400):
        spec = draw_spec(seed)
        if (spec.kind == "serving" and spec.tenants
                and spec.faults is not None and spec.faults.crash_rate > 0):
            return spec
    raise AssertionError("no tenant+fault serving draw in 400 seeds")


def test_shrink_requires_a_failing_spec():
    with pytest.raises(ValueError, match="fails the predicate"):
        shrink(draw_spec(0), lambda spec: False)


def test_shrink_drops_everything_an_always_true_predicate_allows():
    spec = _fault_spec()
    small = shrink(spec, lambda s: s.kind == spec.kind, max_evals=200)
    assert small.faults is None
    assert not small.tenants


def test_shrink_keeps_exactly_what_the_predicate_needs():
    spec = _fault_spec()
    predicate = (
        lambda s: s.faults is not None and s.faults.crash_rate > 0)
    small = shrink(spec, predicate, max_evals=200)
    assert predicate(small)
    assert not small.tenants  # irrelevant section removed
    # within the surviving section, unrelated knobs reset to defaults
    defaults = type(small.faults)().to_dict()
    non_default = {
        key for key, value in small.faults.to_dict().items()
        if value != defaults[key]
    }
    assert non_default == {"crash_rate"}


def test_shrink_preserves_list_cardinality_constraints():
    spec = _fault_spec()
    predicate = (
        lambda s: not isinstance(s.tenants, int) and len(s.tenants) >= 2)
    small = shrink(spec, predicate, max_evals=200)
    assert len(small.tenants) == 2


def test_shrink_is_deterministic():
    spec = _fault_spec()
    predicate = lambda s: s.faults is not None
    first = shrink(spec, predicate, max_evals=150)
    second = shrink(spec, predicate, max_evals=150)
    assert first.to_json() == second.to_json()


def test_shrink_respects_the_eval_budget():
    spec = _fault_spec()
    calls = []

    def predicate(candidate):
        calls.append(candidate)
        return candidate.faults is not None

    shrink(spec, predicate, max_evals=10)
    # input check + at most max_evals move evaluations
    assert len(calls) <= 11


def test_shrink_result_is_always_constructible():
    for seed in (1, 5, 8):
        spec = draw_spec(seed)
        small = shrink(spec, lambda s: True, max_evals=120)
        # constructing from the dict re-runs all validation
        type(small).from_dict(small.to_dict())


def test_baseline_spec_matches_kind_and_is_minimal():
    for seed in range(30):
        spec = draw_spec(seed)
        base = baseline_spec(spec)
        assert base.kind == spec.kind
        assert base.faults is None
        assert not base.tenants
