"""The fuzz loop end-to-end, plus the tier-1 campaign slice.

``test_tier1_fuzz_slice`` is the CI gate the ISSUE asks for: 25 fixed
seeds, every invariant, one rotated equivalence frame per case. The
deeper all-frames campaign runs in the nightly workflow
(``.github/workflows/fuzz.yml``) and via ``repro fuzz``.
"""

from __future__ import annotations

import json

from repro.fuzz import (
    FUZZ_KINDS,
    INVARIANTS,
    draw_spec,
    fuzz_many,
    fuzz_one,
    run_case,
)
from repro.fuzz.harness import _rotated_frames
from repro.fuzz.invariants import invariant


def test_tier1_fuzz_slice():
    """25 seeded cases; every invariant; one equivalence frame each."""
    report = fuzz_many(0, 25, frame_budget=1)
    assert report.ok, report.render()
    assert len(report.cases) == 25
    # the rotation spreads frame coverage across the slice
    frames_seen = {name for case in report.cases
                   for name in case.frames_run}
    assert len(frames_seen) >= 4


def test_case_seeds_are_reproducible():
    first = fuzz_one(3, frame_budget=0)
    second = fuzz_one(3, frame_budget=0)
    assert first.spec.to_json() == second.spec.to_json()
    assert json.dumps(first.digest, sort_keys=True) == json.dumps(
        second.digest, sort_keys=True)


def test_frame_rotation_budget():
    spec = draw_spec(1)
    assert spec.kind == "serving"
    all_frames = [f.name for f in _rotated_frames(spec, 0, None)]
    assert len(all_frames) >= 4
    singles = [
        [f.name for f in _rotated_frames(spec, index, 1)]
        for index in range(len(all_frames))
    ]
    assert all(len(s) == 1 for s in singles)
    assert {s[0] for s in singles} == set(all_frames)
    assert _rotated_frames(spec, 0, 0) == []


def test_kind_restriction_flows_through():
    report = fuzz_many(0, 4, kinds=("batch",), frame_budget=0)
    assert report.ok
    assert {case.spec.kind for case in report.cases} == {"batch"}


def test_run_case_captures_crashes_as_findings():
    spec = draw_spec(2)

    class Boom(Exception):
        pass

    @invariant("exploding_check", "synthetic: always raises")
    def _explode(spec, outcome):
        raise Boom("kaboom")

    try:
        case = run_case(spec, frames=[])
    finally:
        del INVARIANTS["exploding_check"]
    assert not case.ok
    assert case.error is not None and "kaboom" in case.error
    assert "error:Boom" in case.signature()


def test_planted_failure_is_shrunk_and_written_to_corpus(tmp_path):
    """A deliberately-broken invariant must yield a shrunk minimal spec,
    a corpus file, and an exact repro command (the ISSUE's acceptance
    criterion)."""

    @invariant("planted_bug", "synthetic: any armed crash_rate fails")
    def _planted(spec, outcome):
        if spec.faults is not None and spec.faults.crash_rate > 0:
            yield "planted failure"

    try:
        report = fuzz_many(0, 20, corpus_dir=str(tmp_path), frame_budget=0)
    finally:
        del INVARIANTS["planted_bug"]

    assert not report.ok
    case = report.failures[0]
    assert case.shrunk is not None
    # minimized: the shrunk spec keeps the trigger and nothing optional
    assert case.shrunk.faults is not None
    assert case.shrunk.faults.crash_rate > 0
    assert len(case.shrunk.to_json()) <= len(case.spec.to_json())

    # corpus file: loadable, carries the minimized spec under "scenario"
    assert case.corpus_path is not None
    payload = json.loads(open(case.corpus_path).read())
    assert payload["scenario"] == case.shrunk.to_dict()
    assert payload["fuzz"]["failure"] == ["planted_bug"]
    assert payload["fuzz"]["case_seed"] == case.seed

    # the failure report names the repro command and inlines the spec
    text = case.describe_failure()
    assert f"repro run fuzzcase --spec {case.corpus_path}" in text
    assert '"crash_rate"' in text
    assert "[planted_bug]" in text

    # the report renders every failure
    assert "planted_bug" in report.render()


def test_invalid_draws_are_exercised_every_case():
    report = fuzz_many(0, 10, frame_budget=0)
    assert report.invalid_failures == []


def test_fuzz_kinds_constant_matches_generator():
    assert set(FUZZ_KINDS) == {"batch", "serving", "cluster", "pipeline"}
