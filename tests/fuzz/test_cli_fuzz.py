"""The ``repro fuzz`` verb and the ``fuzzcase`` replay experiment."""

from __future__ import annotations

import json

from repro.api import registry
from repro.cli import main
from repro.fuzz import draw_spec


def test_fuzz_verb_runs_and_reports(tmp_path, capsys):
    assert main(["fuzz", "--seed", "0", "--count", "3", "--frames", "1",
                 "--corpus", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "3 cases from seed 0" in out
    assert "OK" in out


def test_fuzz_verb_kind_filter(tmp_path, capsys):
    assert main(["fuzz", "--seed", "0", "--count", "2", "--frames", "0",
                 "--kind", "batch", "--corpus", str(tmp_path)]) == 0
    assert "batch=2" in capsys.readouterr().out


def test_fuzzcase_is_registered_and_any_kind():
    definition = registry.get("fuzzcase")
    assert definition.any_kind
    assert "fuzzcase" in registry.names()


def test_fuzzcase_default_run(capsys):
    assert main(["run", "fuzzcase"]) == 0
    out = capsys.readouterr().out
    assert "fuzzcase" in out
    assert "OK" in out


def test_fuzzcase_replays_any_kind_spec(tmp_path, capsys):
    """Corpus specs can be any kind; every other experiment would reject
    a kind-mismatched --spec file."""
    for seed, kind in ((0, "batch"), (1, "serving")):
        spec = draw_spec(seed, kinds=(kind,))
        path = tmp_path / f"{kind}.json"
        path.write_text(json.dumps({"scenario": spec.to_dict()}))
        assert main(["run", "fuzzcase", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"[{kind}]" in out
        assert "OK" in out


def test_other_experiments_still_reject_kind_mismatch(tmp_path, capsys):
    spec = draw_spec(0, kinds=("batch",))
    path = tmp_path / "batch.json"
    path.write_text(json.dumps({"scenario": spec.to_dict()}))
    assert main(["run", "serve", "--spec", str(path)]) == 2
    assert "kind" in capsys.readouterr().err
