"""The invariant registry: healthy runs pass, corrupted outcomes fail
with named, readable violations."""

from __future__ import annotations

import dataclasses

from repro.api.session import Session
from repro.api.spec import (
    ArrivalSpec,
    FaultSpec,
    ScenarioSpec,
    TrainingSpec,
    WorkloadSpec,
)
from repro.fuzz import INVARIANTS, RunOutcome, check_invariants
from repro.fuzz.harness import _execute


def _serving_spec(**kwargs) -> ScenarioSpec:
    kwargs.setdefault("params", {"horizon_s": 3.0})
    return ScenarioSpec(
        name="inv", kind="serving", seed=3,
        training=TrainingSpec(epochs=1),
        arrivals=ArrivalSpec(rate_per_s=4.0),
        **kwargs,
    )


def test_registry_names_the_expected_properties():
    for name in ("request_conservation", "counter_ordering",
                 "terminal_records", "latency_sanity", "retry_bounds",
                 "fairness_bounds", "resilience_bounds",
                 "no_faults_no_damage", "tasks_terminal",
                 "training_progress", "telemetry_consistency"):
        assert name in INVARIANTS
        assert INVARIANTS[name].description


def test_healthy_serving_run_passes_every_invariant():
    outcome, _ = _execute(_serving_spec())
    assert check_invariants(_serving_spec(), outcome) == []


def test_healthy_batch_run_passes_every_invariant():
    spec = ScenarioSpec(
        name="inv", kind="batch", seed=1, training=TrainingSpec(epochs=1),
        workloads=(WorkloadSpec(name="pagerank"),),
    )
    outcome, _ = _execute(spec)
    assert check_invariants(spec, outcome) == []


def test_faulted_run_passes_every_invariant():
    spec = _serving_spec(faults=FaultSpec(
        crash_rate=2.0, restart_after_s=1.0, recovery="checkpoint",
        retry_max_attempts=2))
    outcome, _ = _execute(spec)
    assert check_invariants(spec, outcome) == []


def test_corrupted_counters_are_caught():
    spec = _serving_spec()
    outcome, _ = _execute(spec)
    broken_metrics = dataclasses.replace(
        outcome.result.metrics, admitted=outcome.result.metrics.admitted + 1)
    broken = RunOutcome(
        result=dataclasses.replace(outcome.result, metrics=broken_metrics),
        telemetry=outcome.telemetry,
    )
    violated = {v.invariant for v in check_invariants(spec, broken)}
    assert "request_conservation" in violated
    assert "telemetry_consistency" in violated


def test_failed_requests_without_faults_are_damage():
    spec = _serving_spec()
    outcome, _ = _execute(spec)
    broken_metrics = dataclasses.replace(
        outcome.result.metrics,
        failed=1,
        unserved=outcome.result.metrics.unserved - 1,
    )
    broken = RunOutcome(
        result=dataclasses.replace(outcome.result, metrics=broken_metrics),
        telemetry=outcome.telemetry,
    )
    violated = {v.invariant for v in check_invariants(spec, broken)}
    assert "no_faults_no_damage" in violated


def test_violations_render_readably():
    spec = _serving_spec()
    outcome, _ = _execute(spec)
    broken_metrics = dataclasses.replace(outcome.result.metrics, offered=0)
    broken = RunOutcome(
        result=dataclasses.replace(outcome.result, metrics=broken_metrics),
        telemetry=outcome.telemetry,
    )
    violations = check_invariants(spec, broken)
    assert violations
    text = str(violations[0])
    assert text.startswith("[")  # "[invariant_name] message"
    assert "offered" in " ".join(str(v) for v in violations)


def test_named_subset_selection():
    spec = _serving_spec()
    outcome, _ = _execute(spec)
    assert check_invariants(spec, outcome,
                            names=["request_conservation"]) == []


def test_invariants_capture_the_telemetry_snapshot():
    outcome, _ = _execute(_serving_spec())
    assert outcome.telemetry is not None
    counters = outcome.telemetry["counters"]
    assert counters["serving.admitted"] == outcome.result.metrics.admitted


def test_session_run_matches_digest():
    spec = _serving_spec()
    _, digest = _execute(spec)
    result = Session(spec).run().results()
    assert digest["serving"]["offered"] == result.metrics.offered
