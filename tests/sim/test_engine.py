"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


def test_clock_starts_at_zero(engine: Engine):
    assert engine.now == 0.0


def test_timeout_advances_clock(engine: Engine):
    timeout = engine.timeout(2.5)
    engine.run(until=timeout)
    assert engine.now == pytest.approx(2.5)


def test_negative_timeout_rejected(engine: Engine):
    with pytest.raises(SimulationError):
        engine.timeout(-1.0)


def test_run_until_time_advances_clock_even_without_events(engine: Engine):
    engine.run(until=10.0)
    assert engine.now == 10.0


def test_run_until_past_time_rejected(engine: Engine):
    engine.run(until=5.0)
    with pytest.raises(SimulationError):
        engine.run(until=1.0)


def test_events_process_in_time_order(engine: Engine):
    order: list[str] = []
    for delay, label in [(3.0, "c"), (1.0, "a"), (2.0, "b")]:
        timeout = engine.timeout(delay)
        timeout.callbacks.append(lambda _ev, label=label: order.append(label))
    engine.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo(engine: Engine):
    order: list[int] = []
    for i in range(5):
        timeout = engine.timeout(1.0)
        timeout.callbacks.append(lambda _ev, i=i: order.append(i))
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_event_returns_value(engine: Engine):
    event = engine.event()
    engine.timeout(1.0).callbacks.append(lambda _ev: event.succeed("payload"))
    assert engine.run(until=event) == "payload"


def test_run_until_unreachable_event_raises(engine: Engine):
    event = engine.event()
    with pytest.raises(SimulationError):
        engine.run(until=event)


def test_step_on_empty_heap_raises(engine: Engine):
    with pytest.raises(SimulationError):
        engine.step()


def test_run_until_horizon_leaves_future_events(engine: Engine):
    fired: list[float] = []
    for delay in (1.0, 2.0, 3.0):
        engine.timeout(delay).callbacks.append(
            lambda _ev: fired.append(engine.now)
        )
    engine.run(until=2.0)
    assert fired == [1.0, 2.0]
    engine.run()
    assert fired == [1.0, 2.0, 3.0]


def test_peek_reports_next_event_time(engine: Engine):
    assert engine.peek() == float("inf")
    engine.timeout(4.0)
    assert engine.peek() == pytest.approx(4.0)
