"""CalendarQueue: ordering identical to the global heap, pinned golden.

The bucketed queue is only legitimate if it is *invisible*: the same
``(time, seq, event)`` tuples must come out in the same total order a
single ``heapq`` would produce, so a calendar-queue engine replays any
scenario byte-for-byte. These tests pin that equivalence directly on
the structure, on the engine, and on a full serving run digest.
"""

from __future__ import annotations

import heapq
import json
import random

import pytest

from repro.errors import SimulationError
from repro.sim.calqueue import CalendarQueue
from repro.sim.engine import Engine


def _random_items(seed: int, count: int = 2000):
    rng = random.Random(seed)
    return [(rng.uniform(0.0, 40.0), seq, object()) for seq in range(count)]


class TestCalendarQueueStructure:
    @pytest.mark.parametrize("seed", (0, 1, 2))
    @pytest.mark.parametrize("width", (0.05, 1.0, 100.0))
    def test_pop_order_matches_heap(self, seed, width):
        items = _random_items(seed)
        heap = []
        queue = CalendarQueue(bucket_width=width)
        for item in items:
            heapq.heappush(heap, item)
            queue.push(item)
        drained = [queue.pop() for _ in range(len(items))]
        reference = [heapq.heappop(heap) for _ in range(len(drained))]
        assert drained == reference
        assert len(queue) == 0 and not queue

    def test_interleaved_push_pop_matches_heap(self):
        """Buckets drain, go stale, and refill while time advances."""
        rng = random.Random(3)
        heap: list = []
        queue = CalendarQueue(bucket_width=0.5)
        now = 0.0
        seq = 0
        for _ in range(3000):
            if heap and rng.random() < 0.5:
                expect = heapq.heappop(heap)
                got = queue.pop()
                assert got == expect
                now = got[0]
            else:
                item = (now + rng.uniform(0.0, 2.0), seq, None)
                seq += 1
                heapq.heappush(heap, item)
                queue.push(item)
        while heap:
            assert queue.pop() == heapq.heappop(heap)

    def test_ties_break_by_sequence(self):
        queue = CalendarQueue()
        queue.push((1.0, 2, "b"))
        queue.push((1.0, 1, "a"))
        queue.push((1.0, 3, "c"))
        assert [queue.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_peek_time(self):
        queue = CalendarQueue()
        assert queue.peek_time() == float("inf")
        queue.push((2.5, 0, None))
        queue.push((1.25, 1, None))
        assert queue.peek_time() == 1.25
        queue.pop()
        assert queue.peek_time() == 2.5

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="width"):
            CalendarQueue(bucket_width=0.0)


def _digest(engine: Engine) -> list:
    """Run a mixed workload on an engine and record the event order."""
    log: list = []

    def ticker(name, period, count):
        for index in range(count):
            yield engine.timeout(period)
            log.append((round(engine.now, 9), name, index))

    engine.process(ticker("fast", 0.093, 40))
    engine.process(ticker("slow", 0.31, 12))
    engine.process(ticker("tied", 0.093, 40))  # same instants as "fast"
    engine.run(until=5.0)
    engine.run()
    return log


class TestCalendarEngine:
    def test_engine_event_order_is_byte_identical(self):
        reference = _digest(Engine(queue="heap"))
        calendar = _digest(Engine(queue="calendar"))
        assert json.dumps(calendar) == json.dumps(reference)

    def test_env_var_selects_queue(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_QUEUE", "calendar")
        assert Engine().queue_kind == "calendar"
        monkeypatch.delenv("REPRO_SIM_QUEUE")
        assert Engine().queue_kind == "heap"
        # an explicit argument wins over the environment
        monkeypatch.setenv("REPRO_SIM_QUEUE", "calendar")
        assert Engine(queue="heap").queue_kind == "heap"

    def test_unknown_queue_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown event queue"):
            Engine(queue="fibheap")

    def test_step_and_peek_on_calendar_engine(self):
        engine = Engine(queue="calendar")
        engine.timeout(1.0, value="a")
        engine.timeout(0.25, value="b")
        assert engine.peek() == 0.25
        engine.step()
        assert engine.now == 0.25
        assert engine.peek() == 1.0
        engine.step()
        assert engine.events_processed == 2
        with pytest.raises(SimulationError, match="empty"):
            engine.step()

    def test_run_until_event_on_calendar_engine(self):
        engine = Engine(queue="calendar")
        done = engine.timeout(0.5, value=42)
        engine.timeout(2.0)
        assert engine.run(until=done) == 42
        assert engine.now == 0.5

    def test_horizon_pushback_preserves_pending_event(self):
        """The first over-horizon event is popped, compared, and pushed
        back; it must still fire on the next run() call."""
        for queue in ("heap", "calendar"):
            engine = Engine(queue=queue)
            fired = []
            late = engine.timeout(3.0, value="late")
            late.callbacks.append(lambda ev: fired.append(ev.value))
            engine.run(until=1.0)
            assert engine.now == 1.0 and fired == []
            engine.run()
            assert fired == ["late"] and engine.now == 3.0
