"""Unit tests for generator-coroutine processes and interrupts."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import AllOf, Interrupt


def test_process_runs_and_returns_value(engine: Engine):
    def body():
        yield engine.timeout(1.0)
        yield engine.timeout(2.0)
        return "done"

    proc = engine.process(body())
    assert engine.run(until=proc) == "done"
    assert engine.now == pytest.approx(3.0)


def test_timeout_passes_value_through_yield(engine: Engine):
    seen: list[object] = []

    def body():
        value = yield engine.timeout(1.0, value="hello")
        seen.append(value)

    engine.process(body())
    engine.run()
    assert seen == ["hello"]


def test_process_failure_propagates_to_waiter(engine: Engine):
    def failing():
        yield engine.timeout(1.0)
        raise ValueError("inner")

    def waiter():
        try:
            yield failing_proc
        except ValueError as exc:
            return f"caught {exc}"
        return "missed"

    failing_proc = engine.process(failing())
    waiter_proc = engine.process(waiter())
    assert engine.run(until=waiter_proc) == "caught inner"


def test_yielding_non_event_fails_process(engine: Engine):
    def body():
        yield 42  # type: ignore[misc]

    proc = engine.process(body())
    engine.run()
    assert proc.processed and not proc.ok
    assert isinstance(proc.exception, SimulationError)


def test_process_requires_generator(engine: Engine):
    with pytest.raises(SimulationError):
        engine.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_wakes_process_immediately(engine: Engine):
    log: list[tuple[str, float]] = []

    def sleeper():
        try:
            yield engine.timeout(100.0)
            log.append(("completed", engine.now))
        except Interrupt as interrupt:
            log.append((f"interrupted:{interrupt.cause}", engine.now))

    proc = engine.process(sleeper())

    def interrupter():
        yield engine.timeout(2.0)
        proc.interrupt("pause")

    engine.process(interrupter())
    engine.run()
    assert log == [("interrupted:pause", 2.0)]


def test_interrupt_dead_process_is_noop(engine: Engine):
    def body():
        yield engine.timeout(1.0)

    proc = engine.process(body())
    engine.run()
    assert not proc.alive
    proc.interrupt("too late")  # must not raise
    engine.run()


def test_interrupted_process_can_wait_again(engine: Engine):
    def body():
        try:
            yield engine.timeout(50.0)
        except Interrupt:
            yield engine.timeout(1.0)
            return "recovered"
        return "never"

    proc = engine.process(body())

    def interrupter():
        yield engine.timeout(3.0)
        proc.interrupt()

    engine.process(interrupter())
    assert engine.run(until=proc) == "recovered"
    assert engine.now == pytest.approx(4.0)


def test_process_waits_on_already_processed_event(engine: Engine):
    done = engine.event()
    done.succeed("cached")
    engine.run()

    def body():
        value = yield done
        return value

    proc = engine.process(body())
    assert engine.run(until=proc) == "cached"


def test_two_processes_interleave(engine: Engine):
    log: list[str] = []

    def ticker(name: str, period: float):
        for _ in range(3):
            yield engine.timeout(period)
            log.append(f"{name}@{engine.now:g}")

    engine.process(ticker("a", 1.0))
    engine.process(ticker("b", 1.5))
    engine.run()
    assert log == ["a@1", "b@1.5", "a@2", "b@3", "a@3", "b@4.5"]


def test_process_waiting_on_allof(engine: Engine):
    def body():
        values = yield AllOf(
            engine, [engine.timeout(1.0, "x"), engine.timeout(2.0, "y")]
        )
        return values

    proc = engine.process(body())
    assert engine.run(until=proc) == ["x", "y"]
    assert engine.now == pytest.approx(2.0)
