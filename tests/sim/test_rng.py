"""Unit tests for deterministic named RNG streams."""

from __future__ import annotations

import pytest

from repro.sim.rng import RandomStreams


def test_same_seed_same_draws():
    first = RandomStreams(seed=42).stream("a")
    second = RandomStreams(seed=42).stream("a")
    assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(seed=42)
    a_alone = RandomStreams(seed=42)
    _ = streams.stream("b").random()  # perturb an unrelated stream
    assert streams.stream("a").random() == a_alone.stream("a").random()


def test_different_seeds_differ():
    assert RandomStreams(0).stream("x").random() != RandomStreams(1).stream("x").random()


def test_stream_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("s") is streams.stream("s")


def test_jitter_is_near_mean():
    streams = RandomStreams(seed=3)
    draws = [streams.jitter("k", mean=10.0, rel_sigma=0.02) for _ in range(200)]
    assert all(draw > 0 for draw in draws)
    assert 9.8 < sum(draws) / len(draws) < 10.2


def test_jitter_zero_sigma_is_exact():
    assert RandomStreams(0).jitter("k", mean=5.0, rel_sigma=0.0) == 5.0


def test_jitter_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        RandomStreams(0).jitter("k", mean=0.0)


def test_spawn_creates_independent_child():
    parent = RandomStreams(seed=9)
    child = parent.spawn("worker")
    assert child.stream("a").random() != parent.stream("a").random()
    # but spawning is itself deterministic
    again = RandomStreams(seed=9).spawn("worker")
    assert again.stream("a").random() == RandomStreams(seed=9).spawn("worker").stream("a").random()
