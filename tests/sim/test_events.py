"""Unit tests for events and composite conditions."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf


def test_event_value_before_trigger_raises(engine: Engine):
    event = engine.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_event_succeed_once_only(engine: Engine):
    event = engine.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("nope"))


def test_fail_requires_exception_instance(engine: Engine):
    event = engine.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_raises_on_value_access(engine: Engine):
    event = engine.event()
    event.fail(ValueError("boom"))
    engine.run()
    assert event.ok is False
    with pytest.raises(ValueError, match="boom"):
        _ = event.value


def test_allof_collects_values_in_declaration_order(engine: Engine):
    first, second = engine.event(), engine.event()
    both = AllOf(engine, [first, second])
    second.succeed("b")
    first.succeed("a", delay=1.0)
    engine.run(until=both)
    assert both.value == ["a", "b"]


def test_allof_empty_triggers_immediately(engine: Engine):
    both = AllOf(engine, [])
    engine.run(until=both)
    assert both.value == []


def test_allof_fails_fast_on_child_failure(engine: Engine):
    first, second = engine.event(), engine.event()
    both = AllOf(engine, [first, second])
    first.fail(RuntimeError("child failed"))
    engine.run()
    assert both.processed and not both.ok


def test_anyof_takes_first_value(engine: Engine):
    slow, fast = engine.event(), engine.event()
    either = AnyOf(engine, [slow, fast])
    slow.succeed("slow", delay=5.0)
    fast.succeed("fast", delay=1.0)
    engine.run(until=either)
    assert either.value == "fast"
    assert engine.now == pytest.approx(1.0)


def test_condition_rejects_foreign_events(engine: Engine):
    other = Engine()
    with pytest.raises(SimulationError):
        AllOf(engine, [engine.event(), other.event()])


def test_condition_with_already_processed_child(engine: Engine):
    done = engine.event()
    done.succeed("早い")
    engine.run()
    either = AnyOf(engine, [done, engine.event()])
    engine.run(until=either)
    assert either.value == "早い"
