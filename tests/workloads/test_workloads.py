"""The side tasks perform real, verifiable computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.adapters import ImperativeAdapter
from repro.workloads.graph_analytics import GraphSGDTask, PageRankTask
from repro.workloads.image_processing import (
    ImageTask,
    add_watermark,
    bilinear_resize,
)
from repro.workloads.model_training import make_resnet18, make_resnet50, make_vgg19
from repro.workloads.registry import WORKLOAD_NAMES, make_workload


def drive(task, steps):
    """Run a task's compute core directly (no simulator needed)."""
    task.create_side_task()
    for _ in range(steps):
        task.compute_step()


class TestModelTraining:
    def test_loss_decreases(self):
        task = make_resnet18()
        drive(task, 300)
        assert np.mean(task.losses[-10:]) < np.mean(task.losses[:10])

    def test_losses_are_finite(self):
        task = make_resnet50()
        drive(task, 100)
        assert np.all(np.isfinite(task.losses))

    def test_batch_size_rescales_profile(self):
        small = make_resnet18(batch_size=16)
        assert small.perf.units_per_step == 16
        assert small.perf.memory_gb < make_resnet18().perf.memory_gb

    def test_three_models_have_increasing_cost(self):
        r18, r50, vgg = make_resnet18(), make_resnet50(), make_vgg19()
        assert r18.perf.step_time_s < r50.perf.step_time_s < vgg.perf.step_time_s
        assert r18.perf.memory_gb < r50.perf.memory_gb < vgg.perf.memory_gb


class TestPageRank:
    def test_converges(self):
        task = PageRankTask(num_nodes=500)
        drive(task, 80)
        assert task.residuals[-1] < 1e-6
        assert task.residuals[0] > task.residuals[-1]

    def test_rank_is_a_probability_distribution(self):
        task = PageRankTask(num_nodes=500)
        drive(task, 60)
        rank = task.rank_vector
        assert rank.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(rank >= 0)

    def test_residuals_monotone_decreasing_eventually(self):
        task = PageRankTask(num_nodes=300)
        drive(task, 50)
        tail = task.residuals[10:]
        assert all(b <= a * 1.001 for a, b in zip(tail, tail[1:]))


class TestGraphSGD:
    def test_factorization_loss_decreases(self):
        task = GraphSGDTask()
        drive(task, 300)
        assert np.mean(task.losses[-20:]) < np.mean(task.losses[:20])

    def test_factors_stay_finite(self):
        task = GraphSGDTask()
        drive(task, 200)
        assert np.all(np.isfinite(task._user_factors))
        assert np.all(np.isfinite(task._item_factors))


class TestImageProcessing:
    def test_resize_shape_and_range(self):
        image = np.full((64, 48, 3), 128, dtype=np.uint8)
        out = bilinear_resize(image, 32, 24)
        assert out.shape == (32, 24, 3)
        assert out.dtype == np.uint8
        assert np.all(out == 128)  # constant image stays constant

    def test_resize_interpolates_gradient(self):
        gradient = np.linspace(0, 255, 64).astype(np.uint8)
        image = np.repeat(gradient[:, None], 16, axis=1)[..., None]
        out = bilinear_resize(image, 32, 8)
        column = out[:, 0, 0].astype(float)
        assert np.all(np.diff(column) >= 0)  # monotone preserved

    def test_watermark_blends_corner_only(self):
        image = np.zeros((64, 64, 3), dtype=np.uint8)
        mark = np.full((16, 16, 3), 255, dtype=np.uint8)
        out = add_watermark(image, mark, alpha=0.5)
        assert np.all(out[:48, :48] == 0)
        assert np.all(out[-16:, -16:] == 127)

    def test_task_processes_images(self):
        task = ImageTask(image_count=4)
        drive(task, 6)
        assert task.processed == 6
        assert task.last_output is not None
        assert task.last_output.shape == (128, 128, 3)

    def test_finite_task_reports_finished(self):
        task = ImageTask(total_images=3)
        drive(task, 3)
        assert task.is_finished


class TestRegistryAndAdapters:
    def test_registry_builds_all_six(self):
        for name in WORKLOAD_NAMES:
            task = make_workload(name)
            assert task.perf.name == name

    def test_registry_rejects_unknown(self):
        with pytest.raises(KeyError):
            make_workload("bitcoin-miner")
        with pytest.raises(ValueError):
            make_workload("resnet18", interface="declarative")

    def test_imperative_adapter_shares_compute_core(self):
        adapter = make_workload("pagerank", interface="imperative")
        assert isinstance(adapter, ImperativeAdapter)
        adapter.create_side_task()
        adapter.compute_step()
        assert adapter.inner.residuals  # the inner task really ran
