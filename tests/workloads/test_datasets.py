"""Unit and property tests for the synthetic datasets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.datasets import (
    SyntheticClassificationData,
    SyntheticImages,
    SyntheticRatings,
    synthetic_power_law_graph,
)


class TestGraph:
    def test_deterministic_for_seed(self):
        first = synthetic_power_law_graph(300, seed=3)
        second = synthetic_power_law_graph(300, seed=3)
        assert (first != second).nnz == 0

    def test_shape_and_connectivity(self):
        graph = synthetic_power_law_graph(500, edges_per_node=6)
        assert graph.shape == (500, 500)
        assert graph.nnz >= 500  # at least about one edge per node

    def test_degree_distribution_is_heavy_tailed(self):
        graph = synthetic_power_law_graph(2000, edges_per_node=8, seed=1)
        in_degree = np.asarray(graph.sum(axis=0)).ravel()
        # A power-law graph has hubs: the max in-degree dwarfs the median.
        assert in_degree.max() > 20 * max(np.median(in_degree), 1)

    def test_too_small_graph_rejected(self):
        with pytest.raises(ValueError):
            synthetic_power_law_graph(1)

    @given(st.integers(min_value=10, max_value=300),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_property_no_self_loops_needed_and_valid_indices(self, nodes, fanout):
        graph = synthetic_power_law_graph(nodes, fanout, seed=0)
        coo = graph.tocoo()
        assert np.all(coo.row < nodes) and np.all(coo.col < nodes)
        assert np.all(coo.data > 0)


class TestClassificationData:
    def test_shapes(self):
        data = SyntheticClassificationData.generate(samples=100, dimensions=8,
                                                    num_classes=3)
        assert data.features.shape == (100, 8)
        assert set(np.unique(data.labels)) <= {0, 1, 2}

    def test_batch_sampling(self):
        data = SyntheticClassificationData.generate(samples=50)
        rng = np.random.default_rng(0)
        features, labels = data.batch(16, rng)
        assert features.shape[0] == labels.shape[0] == 16


class TestRatings:
    def test_generation_bounds(self):
        ratings = SyntheticRatings.generate(num_users=20, num_items=30,
                                            num_ratings=200)
        assert ratings.users.max() < 20
        assert ratings.items.max() < 30
        assert len(ratings.ratings) == 200
        assert np.all(np.isfinite(ratings.ratings))


class TestImages:
    def test_pool_cycles(self):
        pool = SyntheticImages(count=3, height=8, width=8)
        first = pool.next_image()
        pool.next_image()
        pool.next_image()
        again = pool.next_image()
        assert np.array_equal(first, again)
        assert len(pool) == 3
