"""End-to-end fairness invariants over the serving stack.

Three properties of the tenancy layer, each exercised through a real
multi-tenant serving run (spec -> Session -> ServingFrontend -> shared
manager):

* **weighted-share convergence** — under saturating symmetric load, a
  10:1 weight ratio yields goodput shares within 10% of the 10:1 target
  (and exactly-equal weights split service evenly);
* **bucket isolation** — one misbehaving tenant cannot starve the
  others: with per-tenant token buckets, a 20x-flooding tenant leaves a
  polite tenant's admissions and completions untouched;
* **determinism** — the `fairness` sweep is byte-identical run-to-run
  and between the serial and process-pool executors.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ScenarioSpec, Session
from repro.experiments import common, fairness

#: batch-class mini-jobs: every completion counts toward goodput
_MIX = [{"workload": "pagerank", "job_steps": 80, "slo_class": "batch"}]
#: the heavy tenant's weight-implied target share at 10:1
_TEN_TO_ONE = 10.0 / 11.0
#: work-conserving ramp-up: until backlogs build, dispatch serves
#: whoever arrived (by design), so share measurements start here
_WARMUP_S = 4.0


def _ten_to_one_spec(discipline: str = "weighted") -> ScenarioSpec:
    return ScenarioSpec.from_dict({
        "name": "ten-to-one",
        "kind": "serving",
        "training": {"epochs": 4},
        "tenants": [
            {"name": "heavy", "weight": 10.0, "arrival_rate_per_s": 12.0,
             "mix": _MIX},
            {"name": "light", "weight": 1.0, "arrival_rate_per_s": 12.0,
             "mix": _MIX},
        ],
        "policy": {"admission": "always", "discipline": discipline,
                   "queue_capacity": 256},
    })


def _steady_state_share(result, tenant: str) -> float:
    """Share of completed goodput among requests dispatched after the
    ramp-up window."""
    done = {"heavy": 0, "light": 0}
    for record in result.records:
        if (record.assigned_at is not None
                and record.assigned_at >= _WARMUP_S
                and record.completed_at is not None):
            done[record.tenant] += 1
    total = sum(done.values())
    assert total > 30, f"expected a saturated run, got {total} completions"
    return done[tenant] / total


@pytest.fixture(scope="module")
def weighted_ten_to_one():
    """The saturating 10:1 weighted run, shared across assertions."""
    return Session(_ten_to_one_spec()).run().results()


def test_ten_to_one_weights_converge_within_ten_percent(weighted_ten_to_one):
    result = weighted_ten_to_one
    share = _steady_state_share(result, "heavy")
    assert abs(share / _TEN_TO_ONE - 1.0) <= 0.10
    # The whole-run accounting agrees on the direction and magnitude:
    # the heavy tenant holds a large supermajority of total goodput.
    heavy = result.fairness.tenant("heavy")
    assert heavy.share > 0.75
    assert heavy.target_share == _TEN_TO_ONE


def test_weighted_dispatch_beats_fifo_on_share_error(weighted_ten_to_one):
    weighted = weighted_ten_to_one
    fifo = Session(_ten_to_one_spec("fifo")).run().results()
    assert (weighted.fairness.max_share_error
            < fifo.fairness.max_share_error)
    assert weighted.fairness.jain_goodput >= fifo.fairness.jain_goodput


def test_equal_weights_split_service_evenly():
    spec = _ten_to_one_spec().override({
        "tenants.0.weight": 1.0, "training.epochs": 3,
    })
    result = Session(spec).run().results()
    fairness_metrics = result.fairness
    assert fairness_metrics.max_share_error <= 0.05
    assert fairness_metrics.jain_goodput >= 0.99


def _isolation_spec(include_flood: bool) -> ScenarioSpec:
    tenants = [
        {"name": "polite", "weight": 1.0, "rate_per_s": 4.0, "burst": 4.0,
         "arrival_rate_per_s": 1.0, "mix": _MIX},
    ]
    if include_flood:
        tenants.append(
            {"name": "flood", "weight": 1.0, "rate_per_s": 1.0,
             "burst": 4.0, "arrival_rate_per_s": 20.0, "mix": _MIX}
        )
    return ScenarioSpec.from_dict({
        "name": "isolation",
        "kind": "serving",
        "training": {"epochs": 2},
        "tenants": tenants,
        "policy": {"admission": "per_tenant_token_bucket",
                   "discipline": "weighted", "queue_capacity": 64},
    })


def test_misbehaving_tenant_cannot_starve_others():
    solo = Session(_isolation_spec(include_flood=False)).run().results()
    both = Session(_isolation_spec(include_flood=True)).run().results()
    polite_solo = solo.fairness.tenant("polite")
    polite = both.fairness.tenant("polite")
    flood = both.fairness.tenant("flood")
    # The polite tenant is untouched: nothing rejected, and it completes
    # exactly what it completed with the aggressor absent.
    assert polite.metrics.rejected == 0
    assert polite.metrics.completed == polite_solo.metrics.completed
    assert polite.metrics.completed > 0
    # The aggressor is clipped to its own bucket budget ...
    budget = 4.0 + 1.0 * both.open_duration_s  # burst + rate x open window
    assert flood.metrics.admitted <= budget + 1
    # ... and eats a flood of rejections for the rest.
    assert flood.metrics.rejected > 100


# ----------------------------------------------------------------------
# determinism: the fairness sweep, serial vs pool vs re-run
# ----------------------------------------------------------------------
def _reduced_fairness_spec() -> ScenarioSpec:
    return fairness.default_spec().override({
        "training.epochs": 1,
        "sweep.axes": {
            "tenants": [
                fairness._tenant_dicts(2),
                fairness._tenant_dicts(2, weight_ratio=4.0),
            ],
            "policy.discipline": ["weighted"],
        },
    })


def _serialize(rows) -> bytes:
    return json.dumps(rows, sort_keys=True).encode()


def test_fairness_sweep_is_pool_serial_identical():
    spec = _reduced_fairness_spec()
    points = spec.sweep_points({"params.horizon_s": 5.0})
    serial = common.sweep(points, fairness._fairness_point, max_workers=1)
    parallel = common.sweep(points, fairness._fairness_point, max_workers=2)
    assert _serialize(serial) == _serialize(parallel)


def test_fairness_run_spec_is_byte_identical_rerun():
    spec = _reduced_fairness_spec().override({"params.horizon_s": 5.0})
    first = _serialize(fairness.run_spec(spec)["rows"])
    second = _serialize(fairness.run_spec(spec)["rows"])
    assert first == second
