"""Unit tests for the stride weighted-fair dispatch discipline."""

from __future__ import annotations

from repro.serving.arrivals import TaskRequest
from repro.serving.frontend import RequestRecord, make_discipline
from repro.tenancy.scheduler import NAMED_FAIR_DISCIPLINES, StrideDiscipline
from repro.tenancy.tenants import TenantShare


def _record(request_id: int, tenant: str,
            deadline_s: "float | None" = None) -> RequestRecord:
    return RequestRecord(
        request=TaskRequest(
            request_id=request_id, arrival_s=float(request_id),
            workload="pagerank", job_steps=10, slo_class="batch",
            tenant=tenant,
        ),
        deadline_s=deadline_s,
    )


def _dispatch_counts(discipline, queue, rounds: int) -> "dict[str, int]":
    """Simulate ``rounds`` dispatches with every tenant permanently
    backlogged (records are never consumed)."""
    counts: "dict[str, int]" = {}
    for _ in range(rounds):
        record = queue[discipline(queue, now=0.0)]
        discipline.on_dispatch(record)
        tenant = record.request.tenant
        counts[tenant] = counts.get(tenant, 0) + 1
    return counts


def test_equal_weights_round_robin():
    discipline = StrideDiscipline([TenantShare("a"), TenantShare("b"),
                                   TenantShare("c")])
    queue = [_record(0, "a"), _record(1, "b"), _record(2, "c")]
    counts = _dispatch_counts(discipline, queue, 300)
    assert counts == {"a": 100, "b": 100, "c": 100}


def test_weighted_shares_are_exactly_proportional():
    discipline = StrideDiscipline([TenantShare("heavy", weight=3.0),
                                   TenantShare("light", weight=1.0)])
    queue = [_record(0, "heavy"), _record(1, "light")]
    counts = _dispatch_counts(discipline, queue, 400)
    assert counts == {"heavy": 300, "light": 100}


def test_ten_to_one_is_exact_under_permanent_backlog():
    discipline = StrideDiscipline([TenantShare("heavy", weight=10.0),
                                   TenantShare("light", weight=1.0)])
    queue = [_record(0, "heavy"), _record(1, "light")]
    counts = _dispatch_counts(discipline, queue, 440)
    assert counts == {"heavy": 400, "light": 40}


def test_idle_tenant_banks_no_credit():
    """A tenant that sat idle gets one catch-up dispatch, not a burst."""
    discipline = StrideDiscipline([TenantShare("a"), TenantShare("b")])
    only_a = [_record(0, "a")]
    for _ in range(10):
        discipline.on_dispatch(only_a[discipline(only_a, 0.0)])
    # b returns with an ancient pass: first pick goes to b (catch-up) ...
    queue = [_record(0, "a"), _record(1, "b")]
    first = queue[discipline(queue, 0.0)]
    assert first.request.tenant == "b"
    # ... then service alternates fairly instead of repaying b's absence.
    counts = _dispatch_counts(discipline, queue, 20)
    assert abs(counts["a"] - counts["b"]) <= 2


def test_undeclared_tenants_join_at_weight_one():
    discipline = StrideDiscipline([TenantShare("a", weight=2.0)])
    queue = [_record(0, "a"), _record(1, "mystery")]
    counts = _dispatch_counts(discipline, queue, 300)
    assert counts == {"a": 200, "mystery": 100}


def test_edf_order_within_a_tenant_lane():
    discipline = StrideDiscipline([TenantShare("a")])
    queue = [
        _record(0, "a", deadline_s=30.0),
        _record(1, "a", deadline_s=5.0),
        _record(2, "a", deadline_s=None),  # best effort sorts last
    ]
    assert discipline(queue, 0.0) == 1


def test_make_discipline_builds_fresh_instances():
    first = make_discipline("weighted", tenants=(TenantShare("a"),))
    second = make_discipline("weighted", tenants=(TenantShare("a"),))
    assert isinstance(first, StrideDiscipline)
    assert first is not second


def test_make_discipline_still_resolves_stateless_names():
    from repro.serving import slo

    assert make_discipline("edf") is slo.NAMED_DISCIPLINES["edf"]
    assert make_discipline("fifo") is slo.NAMED_DISCIPLINES["fifo"]


def test_make_discipline_rejects_unknown_names():
    import pytest

    with pytest.raises(KeyError, match="weighted"):
        make_discipline("wfq2")


def test_weighted_is_registered():
    assert "weighted" in NAMED_FAIR_DISCIPLINES
