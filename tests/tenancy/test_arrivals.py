"""Unit tests for the merged multi-tenant arrival stream."""

from __future__ import annotations

import pytest

from repro.serving.arrivals import PoissonArrivals
from repro.tenancy.arrivals import TenantArrivals


def _merged(horizon: float = 20.0) -> TenantArrivals:
    return TenantArrivals([
        ("a", PoissonArrivals(2.0, seed=1)),
        ("b", PoissonArrivals(1.0, seed=2)),
    ])


def test_requests_are_tagged_and_renumbered_in_arrival_order():
    requests = _merged().generate(20.0)
    assert requests, "expected traffic over a 20s horizon"
    assert [request.request_id for request in requests] == list(
        range(len(requests))
    )
    arrivals = [request.arrival_s for request in requests]
    assert arrivals == sorted(arrivals)
    assert {request.tenant for request in requests} == {"a", "b"}


def test_each_tenant_keeps_its_own_stream():
    """Per-tenant subsequences match the tenant's solo process."""
    requests = _merged().generate(20.0)
    solo_a = PoissonArrivals(2.0, seed=1).generate(20.0)
    merged_a = [request for request in requests if request.tenant == "a"]
    assert [request.arrival_s for request in merged_a] == [
        request.arrival_s for request in solo_a
    ]
    assert [request.workload for request in merged_a] == [
        request.workload for request in solo_a
    ]


def test_generate_is_idempotent():
    process = _merged()
    first = process.generate(15.0)
    second = process.generate(15.0)
    assert first == second


def test_arrival_times_match_generate():
    process = _merged()
    assert process.arrival_times(10.0) == [
        request.arrival_s for request in process.generate(10.0)
    ]


def test_empty_horizon_and_validation():
    assert _merged().generate(0.0) == []
    with pytest.raises(ValueError, match="at least one"):
        TenantArrivals([])
    with pytest.raises(ValueError, match="duplicate"):
        TenantArrivals([("a", PoissonArrivals(1.0)),
                        ("a", PoissonArrivals(1.0))])
