"""Unit tests for per-tenant token-bucket admission."""

from __future__ import annotations

import pytest

from repro.serving.arrivals import TaskRequest
from repro.serving.frontend import make_admission
from repro.tenancy.admission import PerTenantTokenBucket
from repro.tenancy.tenants import TenantShare, as_shares


def _request(request_id: int, tenant: str) -> TaskRequest:
    return TaskRequest(request_id=request_id, arrival_s=0.0,
                       workload="pagerank", job_steps=10, tenant=tenant)


def test_buckets_are_independent():
    """A flooding tenant drains only its own bucket."""
    policy = PerTenantTokenBucket([
        TenantShare("polite", rate_per_s=1.0, burst=4.0),
        TenantShare("flood", rate_per_s=1.0, burst=4.0),
    ])
    # The aggressor burns its whole burst ...
    verdicts = [policy.admit(0.0, _request(i, "flood"), 0)[0]
                for i in range(8)]
    assert verdicts == [True] * 4 + [False] * 4
    # ... and the polite tenant's budget is untouched.
    admitted, reason = policy.admit(0.0, _request(8, "polite"), 0)
    assert admitted and reason is None


def test_rejection_names_the_tenant():
    policy = PerTenantTokenBucket([TenantShare("t", rate_per_s=1.0,
                                               burst=1.0)])
    assert policy.admit(0.0, _request(0, "t"), 0) == (True, None)
    admitted, reason = policy.admit(0.0, _request(1, "t"), 0)
    assert not admitted
    assert "'t'" in reason


def test_refill_restores_tokens_per_tenant():
    policy = PerTenantTokenBucket([TenantShare("t", rate_per_s=2.0,
                                               burst=1.0)])
    assert policy.admit(0.0, _request(0, "t"), 0)[0]
    assert not policy.admit(0.0, _request(1, "t"), 0)[0]
    assert policy.admit(0.6, _request(2, "t"), 0)[0]  # 1.2 tokens accrued


def test_undeclared_tenants_get_a_default_bucket():
    policy = PerTenantTokenBucket([TenantShare("known")])
    admitted, _ = policy.admit(0.0, _request(0, "stranger"), 0)
    assert admitted
    assert "stranger" in policy.buckets


def test_make_admission_wires_tenant_shares():
    policy = make_admission("per_tenant_token_bucket",
                            tenants=(TenantShare("a", rate_per_s=3.0,
                                                 burst=2.0),))
    assert isinstance(policy, PerTenantTokenBucket)
    assert policy.buckets["a"].rate_per_s == 3.0


def test_share_validation():
    with pytest.raises(ValueError, match="weight"):
        TenantShare("t", weight=0.0)
    with pytest.raises(ValueError, match="refill"):
        TenantShare("t", rate_per_s=0.0)
    with pytest.raises(ValueError, match="burst"):
        TenantShare("t", burst=0.5)
    with pytest.raises(ValueError, match="duplicate"):
        as_shares([TenantShare("t"), TenantShare("t")])
