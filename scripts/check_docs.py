"""Docs-consistency check: the documentation must track the code.

Run by the registry-smoke CI job (see .github/workflows/tests.yml) and
fine to run locally::

    PYTHONPATH=src python scripts/check_docs.py [--skip-examples]

Two invariants:

1. every scenario in ``repro list`` is documented — its name appears in
   API.md and in README.md (a scenario nobody can discover from the
   docs is a regression);
2. every ``examples/*.py`` runs to completion under the tier-1
   interpreter (an example that crashes is worse than no example).

A fast name-presence subset also runs in the tier-1 suite
(``tests/test_docs.py``); this script adds the slow example-execution
sweep.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
#: how each document must reference a scenario — bare substring
#: matching would be vacuous (every doc contains "serve" inside
#: "serving"), so README must show the CLI invocation and API.md must
#: name the scenario as a code token
SCENARIO_DOCS = {
    "README.md": "repro run {name}",
    "API.md": "`{name}`",
}


def check_scenarios_documented() -> "list[str]":
    from repro.api import registry

    errors = []
    for doc, pattern in SCENARIO_DOCS.items():
        text = (REPO / doc).read_text()
        missing = [name for name in registry.names()
                   if pattern.format(name=name) not in text]
        if missing:
            errors.append(
                f"{doc} does not document scenario(s) {missing} "
                f"(expected {pattern!r} for each; repro list knows "
                "more than the docs)"
            )
    return errors


def check_examples_run() -> "list[str]":
    errors = []
    env_path = f"{REPO / 'src'}"
    for example in sorted((REPO / "examples").glob("*.py")):
        proc = subprocess.run(
            [sys.executable, str(example)],
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin",
                 "REPRO_SWEEP_WORKERS": "1"},
            capture_output=True, text=True, timeout=600, cwd=REPO,
        )
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.splitlines()[-5:])
            errors.append(
                f"examples/{example.name} exited {proc.returncode}:\n{tail}"
            )
        else:
            print(f"ok: examples/{example.name}")
    return errors


def main(argv: "list[str]") -> int:
    errors = check_scenarios_documented()
    if "--skip-examples" not in argv:
        errors += check_examples_run()
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        print("docs consistent: every scenario documented, "
              "every example runs")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
