"""CI smoke for the durable sweep control plane (the PR acceptance
drill, scripted).

The scenario the queue exists for: a sweep is running across worker
processes, the machine dies mid-sweep, and a second invocation later
must resume from the surviving rows and produce output byte-identical
to a serial run. This script:

1. enqueues an 8-point ``serve`` sweep on a queue database with a short
   visibility timeout, with one external ``repro worker`` draining it;
2. SIGKILLs both the worker and the client once at least two points are
   DONE (leaving an orphaned in-flight lease behind);
3. re-runs the identical ``repro sweep`` — it resumes the surviving
   rows, reaps the orphaned lease, and finishes with two fresh local
   workers;
4. runs the same sweep serially and byte-compares every exported
   artifact.

Exit status 0 means the whole drill held; any mismatch or hang fails.

Run with::

    PYTHONPATH=src python scripts/smoke_distrib.py
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys
import tempfile
import time

RATES = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
AXES_OVERRIDE = "sweep.axes=" + json.dumps({"arrivals.rate_per_s": RATES})


def repro(*args: str, **kwargs) -> subprocess.Popen:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args], env=env, **kwargs
    )


def sweep_args(db: str) -> "list[str]":
    return ["sweep", "serve", "--backend=queue", "--db", db,
            "--epochs", "1", "--set", AXES_OVERRIDE,
            "--lease-timeout", "5", "--poll", "0.1"]


def wait_for_done(db: str, minimum: int, timeout_s: float = 120.0) -> int:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        time.sleep(0.05)
        if not os.path.exists(db):
            continue
        try:
            conn = sqlite3.connect(db)
            done = conn.execute(
                "SELECT COUNT(*) FROM points WHERE state='DONE'"
            ).fetchone()[0]
            conn.close()
        except sqlite3.OperationalError:
            continue
        if done >= minimum:
            return done
    raise SystemExit(f"timed out waiting for {minimum} DONE points in {db}")


def states(db: str) -> dict:
    conn = sqlite3.connect(db)
    rows = dict(conn.execute(
        "SELECT state, COUNT(*) FROM points GROUP BY state"
    ).fetchall())
    conn.close()
    return rows


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        db = os.path.join(scratch, "queue.db")
        out_dir = os.path.join(scratch, "queue-artifacts")
        serial_dir = os.path.join(scratch, "serial-artifacts")

        # -- 1. sweep with one external worker ------------------------
        client = repro(*sweep_args(db), "--workers", "0",
                       "--export", out_dir)
        worker = repro("worker", db, "--poll", "0.1")

        # -- 2. SIGKILL both mid-sweep --------------------------------
        done = wait_for_done(db, minimum=2)
        worker.kill()
        client.kill()
        worker.wait()
        client.wait()
        mid = states(db)
        print(f"killed mid-sweep at {done} DONE; states now {mid}")
        if sum(mid.values()) != len(RATES) or mid.get("DONE", 0) >= len(RATES):
            raise SystemExit(f"kill happened too late to test resume: {mid}")

        # -- 3. identical re-run resumes and finishes -----------------
        resume = repro(*sweep_args(db), "--workers", "2",
                       "--export", out_dir, stderr=subprocess.PIPE,
                       text=True)
        _, stderr = resume.communicate(timeout=300)
        if resume.returncode != 0:
            sys.stderr.write(stderr)
            raise SystemExit(f"resume run failed: rc={resume.returncode}")
        if "resuming sweep" not in stderr:
            sys.stderr.write(stderr)
            raise SystemExit("resume run did not report resuming")
        final = states(db)
        print(f"resume finished; states {final}")
        if final != {"DONE": len(RATES)}:
            raise SystemExit(f"unexpected terminal states: {final}")

        # -- 4. byte-compare against a serial run ---------------------
        serial = repro("sweep", "serve", "--backend=serial",
                       "--epochs", "1", "--set", AXES_OVERRIDE,
                       "--export", serial_dir,
                       stdout=subprocess.DEVNULL)
        if serial.wait(timeout=300) != 0:
            raise SystemExit("serial reference run failed")
        for name in ("serve.json", "serve.csv", "serve.txt"):
            queue_bytes = open(os.path.join(out_dir, name), "rb").read()
            serial_bytes = open(os.path.join(serial_dir, name), "rb").read()
            if queue_bytes != serial_bytes:
                raise SystemExit(f"{name} differs between queue and serial")
        print(f"smoke ok: {len(RATES)}-point sweep killed at {done} DONE, "
              "resumed, byte-identical to serial")


if __name__ == "__main__":
    main()
