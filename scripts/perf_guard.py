#!/usr/bin/env python
"""Guard against performance regressions in the benchmark suite.

Compares the latest ``benchmarks/out/BENCH_*.json`` records (written by
``pytest benchmarks``) against the committed ``benchmarks/baseline.json``
and exits non-zero when any benchmark's wall time regressed by more than
the tolerance (default 20%), or its peak RSS by more than the memory
tolerance (default 30%) — memory is guarded only when both the record
and the baseline carry ``peak_rss_bytes``, so older baselines keep
working until refreshed.

Usage::

    PYTHONPATH=src python -m pytest benchmarks   # produce BENCH_*.json
    python scripts/perf_guard.py                 # compare vs baseline
    python scripts/perf_guard.py --update        # rewrite the baseline

Intended as an *opt-in* CI step (see .github/workflows/perf.yml): wall
times are machine-dependent, so the baseline should be refreshed with
``--update`` whenever the reference machine changes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
OUT_DIR = REPO / "benchmarks" / "out"
BASELINE = REPO / "benchmarks" / "baseline.json"
DEFAULT_TOLERANCE = 0.20
#: allowed relative peak-RSS growth. RSS is far less machine-variable
#: than wall time but is a lifetime high-water mark (so it depends on
#: which benchmarks ran before this one in the session) — 30% absorbs
#: ordering effects while still catching a leaked record list.
DEFAULT_RSS_TOLERANCE = 0.30

#: per-benchmark tolerance overrides, where the default is too loose.
#: bench_serve doubles as the disabled-tracing overhead guard (the
#: instrumentation seams run with tracing off on its hot path), so it
#: gets a tighter budget than machine-variance-dominated benchmarks.
BUDGETS: dict[str, float] = {
    "test_serve": 0.15,
    "test_obs_overhead": 0.25,
}


def load_records() -> dict[str, dict]:
    records = {}
    for path in sorted(OUT_DIR.glob("BENCH_*.json")):
        record = json.loads(path.read_text())
        records[record["benchmark"]] = record
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the latest records")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative wall-time regression "
                             f"(default {DEFAULT_TOLERANCE:.0%})")
    parser.add_argument("--rss-tolerance", type=float,
                        default=DEFAULT_RSS_TOLERANCE,
                        help="allowed relative peak-RSS growth "
                             f"(default {DEFAULT_RSS_TOLERANCE:.0%})")
    args = parser.parse_args(argv)

    records = load_records()
    if not records:
        print(f"perf_guard: no BENCH_*.json under {OUT_DIR}; "
              "run `python -m pytest benchmarks` first", file=sys.stderr)
        return 2

    if args.update:
        baseline = {}
        for name, record in records.items():
            entry = {"wall_s": record["wall_s"],
                     "events_per_s": record["events_per_s"]}
            if "peak_rss_bytes" in record:
                entry["peak_rss_bytes"] = record["peak_rss_bytes"]
            baseline[name] = entry
        BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(f"perf_guard: baseline updated with {len(baseline)} benchmarks")
        return 0

    if not BASELINE.exists():
        print(f"perf_guard: no baseline at {BASELINE}; "
              "run with --update to create one", file=sys.stderr)
        return 2

    baseline = json.loads(BASELINE.read_text())
    failures = []
    for name, record in sorted(records.items()):
        reference = baseline.get(name)
        if reference is None:
            print(f"  NEW   {name}: {record['wall_s']:.2f}s (no baseline)")
            continue
        if reference["wall_s"] <= 0:
            print(f"  SKIP  {name}: baseline wall time is zero; "
                  "too fast to compare — refresh with --update")
            continue
        ratio = record["wall_s"] / reference["wall_s"]
        tolerance = BUDGETS.get(name, args.tolerance)
        status = "OK"
        if ratio > 1.0 + tolerance:
            status = "FAIL"
            failures.append((name, ratio))
        print(f"  {status:<5} {name}: {record['wall_s']:.2f}s "
              f"vs baseline {reference['wall_s']:.2f}s ({ratio:.2f}x, "
              f"budget {tolerance:.0%})")
        rss = record.get("peak_rss_bytes")
        rss_reference = reference.get("peak_rss_bytes")
        if rss and rss_reference:
            rss_ratio = rss / rss_reference
            rss_status = "OK"
            if rss_ratio > 1.0 + args.rss_tolerance:
                rss_status = "FAIL"
                failures.append((f"{name} (rss)", rss_ratio))
            print(f"  {rss_status:<5} {name} rss: {rss / 1e6:.1f}MB "
                  f"vs baseline {rss_reference / 1e6:.1f}MB "
                  f"({rss_ratio:.2f}x, budget {args.rss_tolerance:.0%})")
    for name in sorted(set(baseline) - set(records)):
        print(f"  MISS  {name}: in baseline but not measured")

    if failures:
        print(f"perf_guard: {len(failures)} benchmark(s) regressed past "
              "their budget", file=sys.stderr)
        return 1
    print("perf_guard: all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
