"""The per-task checkpoint cost model.

Checkpointing trades steady-state overhead (pausing every
``interval_steps`` steps to persist a resume point) for bounded wasted
work after a crash: a preempted task restarts from its last snapshot
instead of from scratch. ``interval_steps = 0`` keeps the recovery
*seam* (the task is still preempted and restored rather than killed)
but never snapshots mid-run — restart-from-scratch semantics, the
baseline the resilience experiment compares against.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CheckpointPolicy:
    """When to checkpoint a side task and what each operation costs."""

    #: snapshot after this many steps of progress; 0 = never (restart
    #: from scratch on preemption)
    interval_steps: int = 4
    #: virtual seconds to persist one snapshot (D2H copy + serialisation)
    checkpoint_cost_s: float = 0.05
    #: virtual seconds to reload a snapshot on restore (before the
    #: ordinary H2D context upload)
    restore_cost_s: float = 0.1

    def __post_init__(self):
        if self.interval_steps < 0:
            raise ValueError(
                f"interval_steps must be >= 0, got {self.interval_steps}"
            )
        if self.checkpoint_cost_s < 0:
            raise ValueError(
                f"checkpoint_cost_s must be >= 0, got {self.checkpoint_cost_s}"
            )
        if self.restore_cost_s < 0:
            raise ValueError(
                f"restore_cost_s must be >= 0, got {self.restore_cost_s}"
            )
