"""Arms a :class:`FaultPlan` against a live side-task pool.

The injector does three things, all with fixed event times taken from
the plan so no other component's random stream is disturbed:

* schedules each :class:`WorkerCrash` as a simulation timeout that calls
  ``manager.crash_worker``;
* installs the plan's RPC drop windows on the manager's cast channel;
* hangs itself off every worker so runtimes can consult
  :meth:`step_fails` and :meth:`slowdown_factor` mid-step.

Step failures use a pure hash of ``(seed, task, attempt)`` rather than a
shared stream: whether *other* tasks' steps failed can never change
whether this one does, which keeps pool-vs-serial sweeps byte-identical.
"""

from __future__ import annotations

import random
import typing

from repro.faults.plan import FaultPlan
from repro.sim.rng import _derive_seed

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.middleware import SideTaskPool


class FaultInjector:
    """Schedules a plan's failures and answers runtimes' fault queries."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: per-task count of step attempts, the hash input for failures
        self._attempts: dict[str, int] = {}
        #: (time, stage) of every crash actually injected
        self.injected_crashes: list[tuple[float, int]] = []
        #: the armed pool's engine; observability events go through it
        self._sim = None

    def arm(self, pool: "SideTaskPool") -> None:
        """Install this plan on ``pool`` (call once, before running)."""
        sim = pool.sim
        self._sim = sim
        for worker in pool.workers:
            worker.injector = self
        if self.plan.rpc_drops:
            pool.manager.rpc.install_faults(
                self.plan.rpc_drops, self.plan.rpc_retry_delay_s
            )
        for crash in self.plan.crashes:
            if not 0 <= crash.stage < len(pool.workers):
                raise ValueError(
                    f"crash targets stage {crash.stage} but the pool has "
                    f"{len(pool.workers)} workers"
                )
            timeout = sim.timeout(max(0.0, crash.at_s - sim.now))
            timeout.callbacks.append(
                lambda _ev, c=crash: self._crash(pool, c)
            )

    def _crash(self, pool: "SideTaskPool", crash) -> None:
        sim = pool.sim
        self.injected_crashes.append((sim.now, crash.stage))
        sim.telemetry.counter("faults.crashes").add()
        if sim.trace.enabled:
            sim.trace.instant(
                "crash", sim.now, cat="fault",
                track=("faults", f"stage{crash.stage}"),
                args={"stage": crash.stage,
                      "restart_after_s": crash.restart_after_s},
            )
        pool.manager.crash_worker(
            crash.stage, restart_after_s=crash.restart_after_s
        )

    # ------------------------------------------------------------------
    # queries from runtimes
    # ------------------------------------------------------------------
    def step_fails(self, task_name: str) -> bool:
        """Decide (deterministically) whether this task's next step fails.

        Each call advances the task's attempt counter, so a failed step
        that re-runs gets a fresh draw.
        """
        rate = self.plan.step_failure_rate
        if rate <= 0.0:
            return False
        attempt = self._attempts.get(task_name, 0)
        self._attempts[task_name] = attempt + 1
        draw = random.Random(
            _derive_seed(
                self.plan.step_failure_seed, f"step:{task_name}:{attempt}"
            )
        ).random()
        failed = draw < rate
        if failed and self._sim is not None:
            self._sim.telemetry.counter("faults.step_failures").add()
            if self._sim.trace.enabled:
                self._sim.trace.instant(
                    "step_failure", self._sim.now, cat="fault",
                    track=("faults", "steps"),
                    args={"task": task_name, "attempt": attempt},
                )
        return failed

    def slowdown_factor(self, stage: int, now: float) -> float:
        """The straggler multiplier in effect on ``stage`` at ``now``."""
        factor = 1.0
        for window in self.plan.slowdowns:
            if window.stage == stage and window.start_s <= now < window.end_s:
                factor = max(factor, window.factor)
        return factor
