"""Retry with exponential backoff and seeded jitter.

A :class:`RetryPolicy` is pure configuration: it owns no random state.
Callers pass their own seeded stream to :meth:`RetryPolicy.delay_s`, so
two components retrying under the same policy never perturb each other's
draws — the same discipline the rest of the simulator follows.
"""

from __future__ import annotations

import dataclasses
import random


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed operation, and how patiently.

    ``attempt_timeout_s`` bounds a single attempt's wall-clock time (an
    attempt that outlives it is cancelled and counts as failed); ``None``
    disables the timeout.
    """

    max_attempts: int = 3
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.1
    attempt_timeout_s: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError(
                f"attempt_timeout_s must be positive, got "
                f"{self.attempt_timeout_s}"
            )

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry).

        Exponential in the attempt number, multiplied by a symmetric
        jitter factor in ``[1 - jitter, 1 + jitter]`` drawn from ``rng``.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = self.backoff_s * self.backoff_factor ** (attempt - 1)
        if self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
