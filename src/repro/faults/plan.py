"""Declarative fault plans.

A :class:`FaultPlan` is a frozen value describing every failure a run
will experience — crash times, straggler windows, drop windows, and the
seed for per-step failures. Because the plan is fixed *before* the
simulation starts, injecting it cannot perturb any other component's
random stream, and the same plan replayed against the same scenario
yields a byte-identical trace.

:func:`build_plan` draws a plan from an intensity (expected crashes per
worker) using the same named-stream discipline as the rest of the
simulator.
"""

from __future__ import annotations

import dataclasses

from repro.sim.rng import RandomStreams


@dataclasses.dataclass(frozen=True)
class WorkerCrash:
    """One worker process dying at a known virtual time.

    ``restart_after_s is None`` makes the crash permanent; otherwise the
    worker rejoins the pool that many seconds later (tasks it hosted are
    preempted or killed at crash time either way).
    """

    stage: int
    at_s: float
    restart_after_s: float | None = None

    def __post_init__(self):
        if self.stage < 0:
            raise ValueError(f"stage must be >= 0, got {self.stage}")
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.restart_after_s is not None and self.restart_after_s < 0:
            raise ValueError(
                f"restart_after_s must be >= 0, got {self.restart_after_s}"
            )


@dataclasses.dataclass(frozen=True)
class SlowdownWindow:
    """A straggler interval: steps on ``stage`` take ``factor``× longer."""

    stage: int
    start_s: float
    end_s: float
    factor: float = 2.0

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError(
                f"slowdown window must have end_s > start_s, got "
                f"[{self.start_s}, {self.end_s}]"
            )
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")


@dataclasses.dataclass(frozen=True)
class DropWindow:
    """An interval during which manager→runtime casts are dropped.

    Drops are transient: the channel retransmits once the window closes,
    so commands are delayed, never lost.
    """

    start_s: float
    end_s: float

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError(
                f"drop window must have end_s > start_s, got "
                f"[{self.start_s}, {self.end_s}]"
            )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one run."""

    crashes: tuple[WorkerCrash, ...] = ()
    slowdowns: tuple[SlowdownWindow, ...] = ()
    #: probability that any given side-task step fails and must re-run
    step_failure_rate: float = 0.0
    #: root seed of the hash deciding which (task, attempt) steps fail
    step_failure_seed: int = 0
    rpc_drops: tuple[DropWindow, ...] = ()
    #: delay between a drop window closing and the retransmission landing
    rpc_retry_delay_s: float = 0.05

    def __post_init__(self):
        if not 0.0 <= self.step_failure_rate < 1.0:
            raise ValueError(
                f"step_failure_rate must be in [0, 1), got "
                f"{self.step_failure_rate}"
            )
        if self.rpc_retry_delay_s < 0:
            raise ValueError(
                f"rpc_retry_delay_s must be >= 0, got {self.rpc_retry_delay_s}"
            )

    @property
    def empty(self) -> bool:
        return (
            not self.crashes
            and not self.slowdowns
            and self.step_failure_rate == 0.0
            and not self.rpc_drops
        )


def build_plan(
    seed: int,
    horizon_s: float,
    num_stages: int,
    crash_rate: float = 0.0,
    restart_after_s: float | None = 5.0,
    step_failure_rate: float = 0.0,
    slowdowns: tuple[SlowdownWindow, ...] = (),
    rpc_drops: tuple[DropWindow, ...] = (),
    rpc_retry_delay_s: float = 0.05,
) -> FaultPlan:
    """Draw a :class:`FaultPlan` from a seed and an intensity.

    ``crash_rate`` is the expected number of crashes per worker over the
    ``horizon_s`` window; each worker's crash count is Poisson with that
    mean and crash times are uniform over the window, drawn from
    per-stage named streams so stage counts are independent of each
    other and of every other stream in the run.
    """
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    if crash_rate < 0:
        raise ValueError(f"crash_rate must be >= 0, got {crash_rate}")
    rng = RandomStreams(seed).spawn("faults")
    crashes: list[WorkerCrash] = []
    for stage in range(num_stages):
        stream = rng.stream(f"crash{stage}")
        if crash_rate > 0:
            # Poisson via inversion: cheap and exact for small means.
            count, threshold, product = 0, 2.718281828459045 ** -crash_rate, 1.0
            while True:
                product *= stream.random()
                if product <= threshold:
                    break
                count += 1
            times = sorted(stream.uniform(0.0, horizon_s) for _ in range(count))
            crashes.extend(
                WorkerCrash(stage=stage, at_s=t, restart_after_s=restart_after_s)
                for t in times
            )
    crashes.sort(key=lambda crash: (crash.at_s, crash.stage))
    return FaultPlan(
        crashes=tuple(crashes),
        slowdowns=tuple(slowdowns),
        step_failure_rate=step_failure_rate,
        step_failure_seed=seed,
        rpc_drops=tuple(rpc_drops),
        rpc_retry_delay_s=rpc_retry_delay_s,
    )
