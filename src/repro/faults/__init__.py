"""Deterministic fault injection and the recovery machinery to survive it.

Failures are ordinary simulation events drawn from seeded streams, so a
faulted run is exactly as reproducible as a healthy one: the same
:class:`FaultPlan` replayed against the same scenario produces the same
trace, byte for byte, whether points of a sweep run pooled or serially.

The package splits into:

* :mod:`repro.faults.plan` — declarative, frozen descriptions of what
  goes wrong and when (worker crashes, step failures, RPC drop windows,
  slowdown/straggler windows) plus :func:`build_plan` to draw a plan
  from a seed and an intensity;
* :mod:`repro.faults.injector` — arms a plan against a live
  :class:`~repro.core.middleware.SideTaskPool`, scheduling the events;
* :mod:`repro.faults.checkpoint` — the per-task checkpoint cost model
  behind the CHECKPOINTED/PREEMPTED/RESUMED recovery states;
* :mod:`repro.faults.retry` — exponential backoff with seeded jitter for
  serving dispatch and cluster submission.
"""

from __future__ import annotations

from repro.faults.checkpoint import CheckpointPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DropWindow,
    FaultPlan,
    SlowdownWindow,
    WorkerCrash,
    build_plan,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "CheckpointPolicy",
    "DropWindow",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "SlowdownWindow",
    "WorkerCrash",
    "build_plan",
]
