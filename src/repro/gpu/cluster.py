"""Server definitions matching the paper's testbeds (section 6.1.1).

* **Server-I** — 4x RTX 6000 Ada (48 GB each), $3.96/hour: runs pipeline
  training and, during bubbles, the side tasks.
* **Server-II** — 1x RTX 3080 (10 GB), $0.18/hour: the dedicated lower-tier
  GPU the cost model prices side tasks against.
* **Server-CPU** — 8-core Xeon: the CPU comparison point of Table 1.
"""

from __future__ import annotations

import dataclasses
import typing

from repro import calibration
from repro.gpu.device import SimGPU
from repro.gpu.mps import MpsControl
from repro.gpu.sharing import SharingMode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


@dataclasses.dataclass
class Server:
    """A (possibly GPU-less) server with an hourly price."""

    name: str
    engine: "Engine"
    gpus: list[SimGPU]
    price_per_hour: float
    is_cpu_only: bool = False
    mps: MpsControl | None = None

    def gpu(self, index: int) -> SimGPU:
        return self.gpus[index]

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)


def make_server_i(engine: "Engine", sharing: SharingMode = SharingMode.MPS,
                  record_occupancy: bool = False) -> Server:
    """The 4x RTX 6000 Ada training server.

    ``record_occupancy`` enables the per-GPU SM-occupancy trace; only the
    experiments that plot it (Figures 1 and 8) should pay for it.
    """
    gpus = [
        SimGPU(
            engine,
            name=f"gpu{i}",
            memory_gb=calibration.SERVER_I_GPU_MEMORY_GB,
            sharing=sharing,
            record_occupancy=record_occupancy,
        )
        for i in range(calibration.SERVER_I_NUM_GPUS)
    ]
    return Server(
        name="server-i",
        engine=engine,
        gpus=gpus,
        price_per_hour=calibration.SERVER_I_PRICE_PER_HOUR,
        mps=MpsControl(gpus),
    )


def make_server_ii(engine: "Engine") -> Server:
    """The RTX 3080 server used to price dedicated side-task execution."""
    gpu = SimGPU(
        engine,
        name="rtx3080",
        memory_gb=calibration.SERVER_II_GPU_MEMORY_GB,
        sharing=SharingMode.EXCLUSIVE,
    )
    return Server(
        name="server-ii",
        engine=engine,
        gpus=[gpu],
        price_per_hour=calibration.SERVER_II_PRICE_PER_HOUR,
        mps=None,
    )


def make_server_cpu(engine: "Engine") -> Server:
    """The 8-core CPU server of Table 1 (no GPUs)."""
    return Server(
        name="server-cpu",
        engine=engine,
        gpus=[],
        price_per_hour=calibration.SERVER_CPU_PRICE_PER_HOUR,
        is_cpu_only=True,
    )
