"""Simulated multi-GPU server substrate.

The paper evaluates on real hardware (4x RTX 6000 Ada); this package
replaces the silicon with a discrete-event model that preserves what
FreeRide actually depends on:

* per-device **SM sharing** with three modes — exclusive, MPS-style
  concurrent kernels, and naive time-slicing — including the contention
  each mode imposes on co-located work;
* per-process **GPU memory accounting** with MPS-style limits whose
  violation kills only the offending process (never the training job);
* **asynchronous kernels**: stopping a process's host thread does not stop
  kernels already on the device — the exact effect that makes the paper's
  imperative interface more expensive than the iterative one;
* POSIX-like **signals** and Docker-like **containers** for isolation.
"""

from repro.gpu.cluster import Server, make_server_cpu, make_server_i, make_server_ii
from repro.gpu.container import Container
from repro.gpu.device import SimGPU
from repro.gpu.kernel import Interference, Kernel, Priority
from repro.gpu.mps import MpsControl
from repro.gpu.process import GPUProcess
from repro.gpu.sharing import SharingMode
from repro.gpu.stream import Stream

__all__ = [
    "Container",
    "GPUProcess",
    "Interference",
    "Kernel",
    "MpsControl",
    "Priority",
    "Server",
    "SharingMode",
    "SimGPU",
    "Stream",
    "make_server_cpu",
    "make_server_i",
    "make_server_ii",
]
