"""Simulated processes that own GPU memory and launch kernels.

A :class:`GPUProcess` models one OS process with a CUDA context:

* it allocates device memory against an optional **MPS memory limit**
  (exceeding the limit raises an OOM error for this process only);
* it launches **asynchronous kernels** — the host side can be stopped with
  ``SIGTSTP`` while kernels already on the device keep running, which is
  exactly why the paper's imperative interface costs more than the
  iterative one (section 5);
* ``SIGKILL`` tears the context down: in-flight kernels are cancelled and
  all device memory is released.
"""

from __future__ import annotations

import itertools
import typing

from repro.errors import GpuOutOfMemoryError, ProcessKilledError
from repro.gpu.kernel import Interference, Kernel, Priority
from repro.sim.signals import Signal, SignalDispatcher

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.device import SimGPU
    from repro.sim.engine import Engine
    from repro.sim.events import SimEvent
    from repro.sim.process import Process

_pids = itertools.count(1000)


class GPUProcess:
    """One simulated process bound to a device."""

    def __init__(
        self,
        engine: "Engine",
        device: "SimGPU",
        name: str,
        priority: Priority = Priority.SIDE,
        interference: Interference | None = None,
        memory_limit_gb: float | None = None,
    ):
        self.engine = engine
        self.device = device
        self.name = name
        self.pid = next(_pids)
        self.priority = priority
        self.interference = interference or Interference()
        self.memory_limit_gb = memory_limit_gb
        self.alive = True
        self.exit_reason: str | None = None
        self.stopped = False
        self._resume_event: "SimEvent" | None = None
        self.signals = SignalDispatcher(on_kill=self.kill)
        self.signals.register(Signal.SIGTSTP, lambda _s: self._stop())
        self.signals.register(Signal.SIGCONT, lambda _s: self._cont())
        #: simulation processes to interrupt when this OS process dies
        self._sim_procs: list["Process"] = []
        #: (time, held_gb) — per-process memory trace (Figure 8b)
        self.memory_trace: list[tuple[float, float]] = [(engine.now, 0.0)]

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    @property
    def memory_gb(self) -> float:
        return self.device.memory_held_by(self)

    def allocate(self, gb: float) -> None:
        """Allocate device memory, honouring the MPS limit.

        Mirrors paper section 4.5: "The side task process triggers an
        out-of-memory (OOM) error when its memory consumption exceeds the
        limit, but other processes remain unaffected."
        """
        self._check_alive()
        limit = self.memory_limit_gb
        if limit is not None and self.memory_gb + gb > limit + 1e-9:
            raise GpuOutOfMemoryError(
                f"{self.name}: MPS memory limit exceeded "
                f"({self.memory_gb:.2f} + {gb:.2f} > {limit:.2f} GB)",
                requested_gb=gb,
                limit_gb=limit,
            )
        self.device.allocate(self, gb)
        self.memory_trace.append((self.engine.now, self.memory_gb))

    def free(self, gb: float | None = None) -> None:
        self.device.free(self, gb)
        self.memory_trace.append((self.engine.now, self.memory_gb))

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def launch_kernel(
        self, work_s: float, sm_demand: float = 0.5, name: str = ""
    ) -> "SimEvent":
        """Launch an asynchronous kernel; returns its completion event."""
        self._check_alive()
        kernel = Kernel(
            proc=self,
            work_s=work_s,
            sm_demand=sm_demand,
            priority=self.priority,
            interference=self.interference,
            name=name or f"{self.name}:k",
        )
        return self.device.launch(kernel)

    # ------------------------------------------------------------------
    # lifecycle and signals
    # ------------------------------------------------------------------
    def attach(self, sim_proc: "Process") -> "Process":
        """Register a simulation coroutine as a thread of this process."""
        self._sim_procs.append(sim_proc)
        return sim_proc

    def send_signal(self, signal: Signal) -> None:
        if not self.alive:
            return
        self.signals.deliver(signal, self.engine.now)

    def _stop(self) -> None:
        self.stopped = True

    def _cont(self) -> None:
        if not self.stopped:
            return
        self.stopped = False
        if self._resume_event is not None and self._resume_event.pending:
            self._resume_event.succeed()
        self._resume_event = None

    def wait_if_stopped(self):
        """Generator helper: block (in virtual time) while SIGTSTP'd.

        Yield from this between host-side operations; it models the kernel
        scheduler withholding CPU from a stopped process.
        """
        while self.stopped and self.alive:
            if self._resume_event is None or self._resume_event.processed:
                self._resume_event = self.engine.event(name=f"{self.name}:resume")
            yield self._resume_event
        if not self.alive:
            raise ProcessKilledError(f"{self.name} was killed while stopped")

    def kill(self, reason: str = "SIGKILL") -> None:
        """Terminate: cancel kernels, free memory, interrupt threads."""
        if not self.alive:
            return
        self.alive = False
        self.exit_reason = reason
        self.device.cancel_kernels_of(self)
        if self.memory_gb > 0:
            self.device.free(self, None)
        self.memory_trace.append((self.engine.now, 0.0))
        for sim_proc in self._sim_procs:
            if sim_proc.alive:
                sim_proc.interrupt(ProcessKilledError(f"{self.name}: {reason}"))

    def _check_alive(self) -> None:
        if not self.alive:
            raise ProcessKilledError(f"{self.name} is dead ({self.exit_reason})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else f"dead({self.exit_reason})"
        return f"<GPUProcess {self.name} pid={self.pid} {state}>"
