"""The simulated GPU device.

A :class:`SimGPU` executes kernels in virtual time with a rate model:
every kernel runs at ``1 / slowdown`` speed, where the slowdown is one plus
the sum of interference imposed by concurrently-running kernels of *other*
processes (see :mod:`repro.gpu.kernel`). Whenever the active-kernel set
changes, remaining work is settled at the old rates and completions are
rescheduled at the new rates — the standard processor-sharing construction
for discrete-event simulators.

The device also keeps:

* a **memory ledger** (per-process allocations against device capacity),
* an **SM-occupancy trace** and a **memory trace**, from which Figures 1
  and 8 of the paper are regenerated.
"""

from __future__ import annotations

import typing

from repro.errors import GpuOutOfMemoryError, SimulationError
from repro.gpu.kernel import Kernel, Priority
from repro.gpu.sharing import SharingMode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.process import GPUProcess
    from repro.sim.engine import Engine


class _KernelRun:
    """Book-keeping for one in-flight kernel."""

    __slots__ = ("kernel", "remaining", "rate", "last_update", "version")

    def __init__(self, kernel: Kernel, now: float):
        self.kernel = kernel
        self.remaining = kernel.work_s
        self.rate = 1.0
        self.last_update = now
        self.version = 0


class SimGPU:
    """One simulated GPU: SM sharing, memory ledger, traces."""

    def __init__(
        self,
        engine: "Engine",
        name: str,
        memory_gb: float,
        sharing: SharingMode = SharingMode.MPS,
        speed_factor: float = 1.0,
        record_occupancy: bool = False,
    ):
        if memory_gb <= 0:
            raise ValueError(f"GPU memory must be positive, got {memory_gb}")
        if speed_factor <= 0:
            raise ValueError(f"speed factor must be positive, got {speed_factor}")
        self.engine = engine
        self.name = name
        self.memory_gb = memory_gb
        self.sharing = sharing
        self.speed_factor = speed_factor
        self._runs: dict[int, _KernelRun] = {}
        self._allocations: dict[int, float] = {}  # pid -> GB
        #: record the SM-occupancy trace? Off by default: only Figures 1
        #: and 8 read it, and on long serving runs the per-recompute
        #: appends dominate the device's bookkeeping cost.
        self.record_occupancy = record_occupancy
        #: (time, total_occupancy, training_occupancy, side_occupancy)
        self.occupancy_trace: list[tuple[float, float, float, float]] = []
        #: (time, used_gb)
        self.memory_trace: list[tuple[float, float]] = []
        #: cumulative busy seconds (any kernel active), for utilization stats
        self.busy_time: float = 0.0
        self._busy_since: float | None = None

    # ------------------------------------------------------------------
    # memory ledger
    # ------------------------------------------------------------------
    @property
    def used_gb(self) -> float:
        return sum(self._allocations.values())

    @property
    def available_gb(self) -> float:
        return self.memory_gb - self.used_gb

    def allocate(self, proc: "GPUProcess", gb: float) -> None:
        """Allocate ``gb`` of device memory to ``proc``.

        Raises :class:`GpuOutOfMemoryError` when the device is full. The
        caller (the process) layers its own MPS limit check on top.
        """
        if gb < 0:
            raise ValueError(f"cannot allocate negative memory: {gb}")
        if self.used_gb + gb > self.memory_gb + 1e-9:
            raise GpuOutOfMemoryError(
                f"{self.name}: device out of memory "
                f"({self.used_gb:.2f} + {gb:.2f} > {self.memory_gb:.2f} GB)",
                requested_gb=gb,
                limit_gb=self.memory_gb,
            )
        self._allocations[proc.pid] = self._allocations.get(proc.pid, 0.0) + gb
        self.memory_trace.append((self.engine.now, self.used_gb))

    def free(self, proc: "GPUProcess", gb: float | None = None) -> None:
        """Free ``gb`` (or all) of ``proc``'s memory on this device."""
        held = self._allocations.get(proc.pid, 0.0)
        if gb is None:
            gb = held
        if gb > held + 1e-9:
            raise SimulationError(
                f"{proc.name} freeing {gb:.2f} GB but holds {held:.2f} GB"
            )
        remaining = held - gb
        if remaining <= 1e-12:
            self._allocations.pop(proc.pid, None)
        else:
            self._allocations[proc.pid] = remaining
        self.memory_trace.append((self.engine.now, self.used_gb))

    def memory_held_by(self, proc: "GPUProcess") -> float:
        return self._allocations.get(proc.pid, 0.0)

    # ------------------------------------------------------------------
    # kernel execution
    # ------------------------------------------------------------------
    def launch(self, kernel: Kernel) -> "object":
        """Start executing ``kernel``; returns its completion event."""
        if kernel.done is not None:
            raise SimulationError(f"kernel {kernel.name} launched twice")
        if self.sharing is SharingMode.EXCLUSIVE:
            owners = {run.kernel.proc.pid for run in self._runs.values()}
            if owners and owners != {kernel.proc.pid}:
                raise SimulationError(
                    f"{self.name} is in EXCLUSIVE mode; "
                    f"{kernel.proc.name} cannot co-run kernels"
                )
        kernel.done = self.engine.event()
        run = _KernelRun(kernel, self.engine.now)
        run.remaining = kernel.work_s / self.speed_factor
        self._runs[kernel.kid] = run
        if kernel.work_s == 0:
            self._complete(run)
            return kernel.done
        self._recompute()
        return kernel.done

    def cancel_kernels_of(self, proc: "GPUProcess") -> int:
        """Drop all in-flight kernels of ``proc`` (CUDA context teardown).

        Their completion events fail so waiters observe the termination.
        Returns the number of kernels cancelled.
        """
        from repro.errors import ProcessKilledError

        doomed = [run for run in self._runs.values()
                  if run.kernel.proc.pid == proc.pid]
        for run in doomed:
            del self._runs[run.kernel.kid]
            if run.kernel.done is not None and run.kernel.done.pending:
                run.kernel.done.fail(
                    ProcessKilledError(f"{run.kernel.name} cancelled with {proc.name}")
                )
        if doomed:
            self._recompute()
        return len(doomed)

    def active_kernels(self) -> list[Kernel]:
        return [run.kernel for run in self._runs.values()]

    def has_kernels_of(self, proc: "GPUProcess") -> bool:
        return any(run.kernel.proc.pid == proc.pid for run in self._runs.values())

    # ------------------------------------------------------------------
    # rate model
    # ------------------------------------------------------------------
    def _slowdown(self, kernel: Kernel) -> float:
        slowdown = 1.0
        for run in self._runs.values():
            other = run.kernel
            if other.proc.pid == kernel.proc.pid:
                continue
            slowdown += other.interference.imposed_on(
                kernel.priority, other.priority, self.sharing
            )
        return slowdown

    def _recompute(self) -> None:
        """Settle progress at old rates, assign new rates, reschedule."""
        now = self.engine.now
        runs = self._runs
        training = 0.0
        side = 0.0
        for run in runs.values():
            run.remaining -= (now - run.last_update) * run.rate
            if run.remaining < 0:
                run.remaining = 0.0
            run.last_update = now
            kernel = run.kernel
            if kernel.priority >= Priority.TRAINING:
                training += kernel.sm_demand
            else:
                side += kernel.sm_demand
        self._record_point(now, training, side)
        for run in runs.values():
            run.rate = 1.0 / self._slowdown(run.kernel)
            run.version += 1
            self._schedule_completion(run)

    def _schedule_completion(self, run: _KernelRun) -> None:
        delay = run.remaining / run.rate
        version = run.version
        timeout = self.engine.timeout(delay)
        timeout.callbacks.append(
            lambda _ev, run=run, version=version: self._on_timer(run, version)
        )

    def _on_timer(self, run: _KernelRun, version: int) -> None:
        if run.version != version or run.kernel.kid not in self._runs:
            return  # stale timer from before a recompute
        self._complete(run)

    def _complete(self, run: _KernelRun) -> None:
        self._runs.pop(run.kernel.kid, None)
        self._record_occupancy(self.engine.now)
        run.kernel.done.succeed(run.kernel)
        if self._runs:
            self._recompute()

    # ------------------------------------------------------------------
    # traces
    # ------------------------------------------------------------------
    def _record_occupancy(self, now: float) -> None:
        training = 0.0
        side = 0.0
        if self.record_occupancy:
            for run in self._runs.values():
                kernel = run.kernel
                if kernel.priority >= Priority.TRAINING:
                    training += kernel.sm_demand
                else:
                    side += kernel.sm_demand
        self._record_point(now, training, side)

    def _record_point(self, now: float, training: float, side: float) -> None:
        if self.record_occupancy:
            total = min(1.0, training + side)
            point = (now, total, min(1.0, training), min(1.0, side))
            trace = self.occupancy_trace
            if trace and trace[-1][0] == now:
                trace[-1] = point
            else:
                trace.append(point)
        # busy-time accounting runs regardless of trace recording
        if self._runs and self._busy_since is None:
            self._busy_since = now
        elif not self._runs and self._busy_since is not None:
            self.busy_time += now - self._busy_since
            self._busy_since = None

    def utilization(self, until: float | None = None) -> float:
        """Fraction of [0, until] with at least one kernel resident."""
        horizon = self.engine.now if until is None else until
        busy = self.busy_time
        if self._busy_since is not None:
            busy += horizon - self._busy_since
        return busy / horizon if horizon > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimGPU {self.name} {self.used_gb:.1f}/{self.memory_gb:.0f} GB "
            f"kernels={len(self._runs)} mode={self.sharing.value}>"
        )
