"""Simulated CUDA MPS control daemon.

FreeRide "leverages MPS to impose GPU memory limit on side tasks"
(section 4.5) and relies on MPS for concurrent kernel execution across
processes (section 1). This module models the control daemon's contract:
per-client memory limits, per-device enablement, and priority bookkeeping.
"""

from __future__ import annotations

import typing

from repro.gpu.sharing import SharingMode

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.device import SimGPU
    from repro.gpu.process import GPUProcess


class MpsControl:
    """The MPS daemon for one server."""

    def __init__(self, devices: typing.Sequence["SimGPU"]):
        self.devices = list(devices)
        self._limits: dict[int, float] = {}

    def enable(self, device: "SimGPU") -> None:
        """Turn MPS on: kernels from different processes run concurrently."""
        self._require_managed(device)
        device.sharing = SharingMode.MPS

    def disable(self, device: "SimGPU") -> None:
        """Turn MPS off: contexts fall back to driver time-slicing."""
        self._require_managed(device)
        device.sharing = SharingMode.TIME_SLICE

    def set_memory_limit(self, proc: "GPUProcess", limit_gb: float) -> None:
        """Pin a client's device-memory limit (CUDA_MPS_PINNED_DEVICE_MEM_LIMIT)."""
        if limit_gb <= 0:
            raise ValueError(f"MPS memory limit must be positive, got {limit_gb}")
        self._limits[proc.pid] = limit_gb
        proc.memory_limit_gb = limit_gb

    def clear_memory_limit(self, proc: "GPUProcess") -> None:
        self._limits.pop(proc.pid, None)
        proc.memory_limit_gb = None

    def memory_limit_of(self, proc: "GPUProcess") -> float | None:
        return self._limits.get(proc.pid)

    def _require_managed(self, device: "SimGPU") -> None:
        if device not in self.devices:
            raise ValueError(f"{device.name} is not managed by this MPS daemon")
