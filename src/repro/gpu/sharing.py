"""GPU sharing modes and their contention semantics.

The paper compares three ways for two processes to share one GPU:

* ``EXCLUSIVE`` — one process at a time (no co-location);
* ``MPS`` — CUDA MPS merges contexts so kernels from different processes
  execute *concurrently*; compute-hungry side kernels then directly steal
  SM cycles from training kernels (this is how Graph SGD reaches a 231%
  time increase in Table 2);
* ``TIME_SLICE`` — the default driver behaviour without MPS ("naive
  co-location"): contexts are time-multiplexed, so overlapping work
  serializes and every process's wall time stretches.
"""

from __future__ import annotations

import enum


class SharingMode(enum.Enum):
    EXCLUSIVE = "exclusive"
    MPS = "mps"
    TIME_SLICE = "time_slice"
