"""Kernels: the unit of GPU work in the simulation.

A kernel carries ``work_s`` seconds of work (its duration when running
alone at full speed), an SM demand used for occupancy traces, a priority
class, and an :class:`Interference` spec describing how much it slows down
kernels of *other processes* that overlap with it under each sharing mode.

The interference coefficients for the evaluation's side tasks are fitted to
the paper's Table 2 (see :mod:`repro.calibration`); the device applies them
in :meth:`repro.gpu.device.SimGPU._slowdown`.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.process import GPUProcess
    from repro.sim.events import SimEvent


class Priority(enum.IntEnum):
    """Scheduling priority classes.

    The paper gives pipeline training the highest MPS priority and side
    tasks a lower one (section 6.1.2).
    """

    SIDE = 1
    TRAINING = 2


@dataclasses.dataclass(frozen=True)
class Interference:
    """Fractional slowdown this kernel imposes on overlapping kernels.

    ``mps_on_higher``
        imposed on higher-priority kernels under MPS (side task slowing
        training down despite MPS priorities — concurrency is not free);
    ``mps_on_lower``
        imposed on lower- or equal-priority kernels under MPS (training
        starving a side task of SMs);
    ``time_slice``
        imposed on any other process's kernels under naive time-slicing.
    """

    mps_on_higher: float = 0.0
    mps_on_lower: float = 0.0
    time_slice: float = 1.0

    def imposed_on(self, victim_priority: Priority, own_priority: Priority,
                   mode: "object") -> float:
        from repro.gpu.sharing import SharingMode

        if mode is SharingMode.TIME_SLICE:
            return self.time_slice
        if mode is SharingMode.MPS:
            if victim_priority > own_priority:
                return self.mps_on_higher
            return self.mps_on_lower
        return 0.0


#: Interference of a pipeline-training kernel: under MPS it dominates the
#: SMs a side task needs (halving side throughput); under time-slicing the
#: two contexts split the device.
TRAINING_INTERFERENCE = Interference(mps_on_higher=0.0, mps_on_lower=1.0,
                                     time_slice=1.0)

_kernel_ids = itertools.count()


class Kernel:
    """One launched unit of GPU work."""

    def __init__(
        self,
        proc: "GPUProcess",
        work_s: float,
        sm_demand: float,
        priority: Priority,
        interference: Interference,
        name: str = "",
    ):
        if work_s < 0:
            raise ValueError(f"kernel work must be >= 0, got {work_s}")
        if not 0.0 < sm_demand <= 1.0:
            raise ValueError(f"sm_demand must be in (0, 1], got {sm_demand}")
        self.kid = next(_kernel_ids)
        self.proc = proc
        self.work_s = work_s
        self.sm_demand = sm_demand
        self.priority = priority
        self.interference = interference
        self.name = name or f"kernel-{self.kid}"
        #: Completion event, set by the device at launch time.
        self.done: "SimEvent | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Kernel {self.name} proc={self.proc.name} work={self.work_s:.4g}s "
            f"sm={self.sm_demand:.2f} prio={self.priority.name}>"
        )
