"""Docker-like containers for isolating side-task processes.

The paper deploys each worker and its side tasks inside Docker containers
"for isolation" (sections 4.6 and 8): a side task crashing — illegal memory
access, OOM, SIGKILL — must never take the pipeline-training process down.
Here a container is a process group with collective teardown plus a record
of abnormal exits, which the fault-tolerance tests assert on.
"""

from __future__ import annotations

import typing

from repro.sim.signals import Signal

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.process import GPUProcess


class Container:
    """A group of processes with shared lifetime and fault isolation."""

    def __init__(self, name: str):
        self.name = name
        self.processes: list["GPUProcess"] = []
        self.running = True
        #: (process name, reason) for every abnormal member exit observed
        self.faults: list[tuple[str, str]] = []

    def adopt(self, proc: "GPUProcess") -> "GPUProcess":
        if not self.running:
            raise RuntimeError(f"container {self.name} is stopped")
        self.processes.append(proc)
        return proc

    def record_fault(self, proc: "GPUProcess", reason: str) -> None:
        """Note a member's abnormal exit; isolation means nothing else happens."""
        self.faults.append((proc.name, reason))

    def stop(self) -> None:
        """Tear the container down, SIGKILLing any members still alive."""
        self.running = False
        for proc in self.processes:
            if proc.alive:
                proc.send_signal(Signal.SIGKILL)

    @property
    def live_processes(self) -> list["GPUProcess"]:
        return [proc for proc in self.processes if proc.alive]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Container {self.name} procs={len(self.processes)} "
            f"running={self.running}>"
        )
