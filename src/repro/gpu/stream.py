"""CUDA-stream-like FIFO kernel ordering.

Kernels submitted to one stream execute in submission order even though
each is asynchronous with respect to the host. The pipeline engine uses a
stream per stage so FP/BP ops serialize on their GPU the way they do under
DeepSpeed, and side tasks use one so multi-kernel steps stay ordered.
"""

from __future__ import annotations

import collections
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.process import GPUProcess
    from repro.sim.events import SimEvent


class Stream:
    """An in-order kernel queue bound to one process."""

    def __init__(self, proc: "GPUProcess", name: str = ""):
        self.proc = proc
        self.name = name or f"{proc.name}:stream"
        self._pending: collections.deque[tuple[dict, "SimEvent"]] = collections.deque()
        self._inflight: "SimEvent | None" = None

    def submit(self, work_s: float, sm_demand: float = 0.5, name: str = "") -> "SimEvent":
        """Enqueue a kernel; returns an event for *its* completion."""
        done = self.proc.engine.event(name=f"{self.name}:done")
        self._pending.append(
            ({"work_s": work_s, "sm_demand": sm_demand, "name": name}, done)
        )
        self._pump()
        return done

    def _pump(self) -> None:
        if self._inflight is not None or not self._pending:
            return
        spec, done = self._pending.popleft()
        try:
            kernel_done = self.proc.launch_kernel(**spec)
        except Exception as exc:  # process died: fail this and the rest
            self._inflight = None
            if done.pending:
                done.fail(exc)
            self._fail_rest(exc)
            return
        self._inflight = kernel_done
        kernel_done.callbacks.append(
            lambda event, done=done: self._on_done(event, done)
        )

    def _on_done(self, event: "SimEvent", done: "SimEvent") -> None:
        self._inflight = None
        if done.pending:
            if event.exception is not None:
                done.fail(event.exception)
            else:
                done.succeed(event._value)
        if event.exception is not None:
            self._fail_rest(event.exception)
            return
        self._pump()

    def _fail_rest(self, exc: BaseException) -> None:
        while self._pending:
            _spec, waiting = self._pending.popleft()
            if waiting.pending:
                waiting.fail(exc)

    @property
    def depth(self) -> int:
        """Kernels queued or in flight."""
        return len(self._pending) + (1 if self._inflight is not None else 0)
