"""Shared runners and rendering helpers for the experiments."""

from __future__ import annotations

import functools

from repro.core.middleware import FreeRide, FreeRideResult
from repro.gpu.cluster import make_server_i
from repro.pipeline.config import TrainConfig, model_config
from repro.pipeline.engine import PipelineEngine, TrainingResult
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams

#: default epochs for experiments (the paper runs 128; epochs are
#: repetitive, so rates and ratios are unchanged)
DEFAULT_EPOCHS = 8
SEED = 0


def train_config(size: str = "3.6B", micro_batches: int = 4,
                 epochs: int = DEFAULT_EPOCHS, seed: int = SEED) -> TrainConfig:
    return TrainConfig(
        model=model_config(size),
        micro_batches=micro_batches,
        epochs=epochs,
        op_jitter=0.01,
        seed=seed,
    )


@functools.lru_cache(maxsize=32)
def _baseline_cached(params_billion: float, micro_batches: int, epochs: int,
                     seed: int) -> float:
    config = TrainConfig(
        model=model_config(params_billion),
        micro_batches=micro_batches,
        epochs=epochs,
        op_jitter=0.01,
        seed=seed,
    )
    sim = Engine()
    result = PipelineEngine(
        sim, make_server_i(sim), config,
        rng=RandomStreams(seed).spawn("pipeline"),
    ).run()
    return result.total_time


def baseline_time(config: TrainConfig) -> float:
    """T_noSideTask for this configuration (cached)."""
    return _baseline_cached(config.model.params_billion, config.micro_batches,
                            config.epochs, config.seed)


def run_freeride(config: TrainConfig, submissions, seed: int = SEED,
                 ) -> FreeRideResult:
    """Run FreeRide with ``submissions`` = [(factory, interface, replicate)].

    ``replicate=True`` places one copy on every worker with enough bubble
    memory (the paper's single-task deployments); ``False`` submits once.
    """
    freeride = FreeRide(config, seed=seed)
    for factory, interface, replicate in submissions:
        if replicate:
            freeride.submit_replicated(factory, interface)
        else:
            freeride.submit(factory, interface)
    return freeride.run()


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table, the shape the paper's tables print in."""
    widths = [
        max(len(str(headers[col])), *(len(str(row[col])) for row in rows))
        if rows else len(str(headers[col]))
        for col in range(len(headers))
    ]
    def fmt(cells):
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(cells, widths))
    lines = [title, fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{100 * value:.1f}%"
