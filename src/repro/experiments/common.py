"""Shared runners, the sweep executor, and rendering helpers."""

from __future__ import annotations

import concurrent.futures
import functools
import os
import pickle
import typing

from repro.core.middleware import FreeRide, FreeRideResult
from repro.gpu.cluster import make_server_i
from repro.pipeline.config import TrainConfig, model_config
from repro.pipeline.engine import PipelineEngine
from repro.sim import engine as sim_engine
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams

#: default epochs for experiments (the paper runs 128; epochs are
#: repetitive, so rates and ratios are unchanged)
DEFAULT_EPOCHS = 8
SEED = 0

#: set in pool workers so nested sweeps stay serial
_IN_SWEEP_WORKER = False


def _worker_init() -> None:
    global _IN_SWEEP_WORKER
    _IN_SWEEP_WORKER = True


def _sweep_call(fn, item):
    """Pool-side wrapper: run one point and report its event count."""
    from repro.obs.telemetry import PROCESS

    with PROCESS.scoped("sim.events_processed") as scope:
        result = fn(item)
    return result, scope.delta


def sweep_workers() -> int:
    """Worker count for :func:`sweep`: REPRO_SWEEP_WORKERS or the CPU count.

    Rejects garbage and non-positive values outright — a silently
    clamped or ignored setting runs the sweep at a parallelism the user
    did not ask for, which is far harder to notice than an error.
    """
    from repro.errors import SweepConfigError

    env = os.environ.get("REPRO_SWEEP_WORKERS", "").strip()
    if not env:
        return os.cpu_count() or 1
    try:
        workers = int(env)
    except ValueError:
        raise SweepConfigError(
            f"REPRO_SWEEP_WORKERS must be a positive integer, got {env!r}"
        ) from None
    if workers < 1:
        raise SweepConfigError(
            f"REPRO_SWEEP_WORKERS must be a positive integer, got {workers}"
        )
    return workers


def sweep(
    items: typing.Iterable,
    fn: typing.Callable,
    max_workers: int | None = None,
    backend=None,
) -> list:
    """Run ``fn(item)`` for every item and return the results in order.

    Every experiment point is an independent, fully seeded simulation, so
    the sweep fans them across a :class:`~concurrent.futures.
    ProcessPoolExecutor` when the machine has spare cores. Results are
    identical to the serial path *provided each point is self-contained*:
    ordering is preserved, and ``fn`` must derive all randomness from its
    arguments (explicit task names / seeds), never from process-global
    counters — a default :class:`~repro.core.task_spec.TaskSpec` name
    embeds one and would differ between pool workers and the parent.

    ``backend`` selects the executor: a
    :class:`~repro.distrib.executor.SweepBackend`, a backend name
    (``"serial"`` / ``"pool"`` / ``"queue"``), or ``None`` to resolve
    through the ambient :func:`~repro.distrib.executor.use_backend`
    context and the ``REPRO_SWEEP_BACKEND`` environment. The queue
    backend routes the points through the durable SQLite control plane
    in :mod:`repro.distrib`; its aggregation is byte-identical to the
    serial and pool paths.

    Falls back to running serially when parallelism cannot help or would
    misbehave: a single item, ``max_workers=1`` (or a 1-CPU host), inside
    a pytest-xdist worker, or nested inside another sweep (including a
    queue worker — the worker *is* the parallelism). ``fn`` and the items
    must be picklable (module-level functions / ``functools.partial``
    over them); a pickling failure also falls back to serial.
    """
    from repro.distrib import executor as distrib_executor

    items = list(items)
    if not items:
        return []
    if _IN_SWEEP_WORKER:
        return [fn(item) for item in items]
    config = distrib_executor.resolve(backend)
    if config.backend == "serial":
        return [fn(item) for item in items]
    if config.backend == "queue":
        return distrib_executor.queue_sweep(items, fn, config)
    if max_workers is None:
        max_workers = sweep_workers()
    max_workers = min(max_workers, len(items))
    if (
        max_workers <= 1
        or os.environ.get("PYTEST_XDIST_WORKER")
    ):
        return [fn(item) for item in items]
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers, initializer=_worker_init
        ) as pool:
            outcomes = list(pool.map(functools.partial(_sweep_call, fn), items))
    except (pickle.PicklingError, AttributeError,
            concurrent.futures.process.BrokenProcessPool):
        # Unpicklable fn/items or a torn-down pool: the work itself is
        # fine, only the transport failed — run the points serially.
        # Errors raised *by fn* propagate unchanged.
        return [fn(item) for item in items]
    results = []
    for result, events in outcomes:
        sim_engine.add_foreign_events(events)
        results.append(result)
    return results


def train_config(size: str = "3.6B", micro_batches: int = 4,
                 epochs: int = DEFAULT_EPOCHS, seed: int = SEED) -> TrainConfig:
    return TrainConfig(
        model=model_config(size),
        micro_batches=micro_batches,
        epochs=epochs,
        op_jitter=0.01,
        seed=seed,
    )


@functools.lru_cache(maxsize=32)
def _baseline_cached(params_billion: float, micro_batches: int, epochs: int,
                     seed: int) -> float:
    config = TrainConfig(
        model=model_config(params_billion),
        micro_batches=micro_batches,
        epochs=epochs,
        op_jitter=0.01,
        seed=seed,
    )
    sim = Engine()
    result = PipelineEngine(
        sim, make_server_i(sim), config,
        rng=RandomStreams(seed).spawn("pipeline"),
    ).run()
    return result.total_time


def baseline_time(config: TrainConfig) -> float:
    """T_noSideTask for this configuration (cached)."""
    return _baseline_cached(config.model.params_billion, config.micro_batches,
                            config.epochs, config.seed)


def run_freeride(config: TrainConfig, submissions, seed: int = SEED,
                 ) -> FreeRideResult:
    """Run FreeRide with ``submissions`` = [(factory, interface, replicate)].

    ``replicate=True`` places one copy on every worker with enough bubble
    memory (the paper's single-task deployments); ``False`` submits once.
    """
    freeride = FreeRide(config, seed=seed)
    for factory, interface, replicate in submissions:
        if replicate:
            freeride.submit_replicated(factory, interface)
        else:
            freeride.submit(factory, interface)
    return freeride.run()


@functools.lru_cache(maxsize=128)
def run_replicated(config: TrainConfig, name: str, batch_size: int = 64,
                   interface: str = "iterative") -> FreeRideResult:
    """The paper's standard deployment — one task replicated on every
    worker — as a cached run.

    Several sweeps revisit identical (config, task) points: the
    micro-batch sweep at 4 micro-batches repeats the model-size sweep's
    3.6B column, the batch sweep at batch 64 repeats the defaults, and
    Figure 9 / Tables 1-2 all start from the same deployments. Runs are
    deterministic, so the first result is the only result; callers treat
    it as read-only.
    """
    from repro.workloads.registry import workload_factory

    return run_freeride(
        config,
        [(workload_factory(name, batch_size=batch_size, interface=interface),
          interface, True)],
    )


def render_table(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table, the shape the paper's tables print in."""
    widths = [
        max(len(str(headers[col])), *(len(str(row[col])) for row in rows))
        if rows else len(str(headers[col]))
        for col in range(len(headers))
    ]
    def fmt(cells):
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(cells, widths))
    lines = [title, fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{100 * value:.1f}%"
