"""One module per table/figure of the paper's evaluation (plus the
serving capacity, multi-job cluster, and multi-tenant fairness sweeps).

Each module registers a declarative scenario with
:mod:`repro.api.registry`: a default :class:`~repro.api.spec.
ScenarioSpec`, a spec-driven ``run_spec``, a renderer, and typed result
rows. :mod:`repro.cli` and the ``benchmarks/`` harness drive the
registry; EXPERIMENTS.md records the outputs against the paper's
numbers.

The paper trains for 128 epochs; since epochs are repetitive and stable
(section 8), these experiments default to 8 epochs (4 for the large
Figure 7 sweep, 3 for the multi-job cluster sweep) and report rates and
ratios, which are epoch-count invariant.
"""

from repro.experiments import (  # noqa: F401  (registration side effect)
    ablations,
    cluster,
    common,
    fairness,
    fig1,
    fig2,
    fig7,
    fig8,
    fig9,
    fuzzcase,
    resilience,
    serve,
    table1,
    table2,
)

__all__ = [
    "ablations", "cluster", "common", "fairness", "fig1", "fig2", "fig7",
    "fig8", "fig9", "fuzzcase", "resilience", "serve", "table1", "table2",
]
