"""One module per table/figure of the paper's evaluation.

Each module registers a declarative scenario with
:mod:`repro.api.registry` (a default :class:`~repro.api.spec.
ScenarioSpec` plus a spec-driven ``run_spec``, a renderer, and typed
result rows) and keeps a thin legacy shim — ``run(...) -> dict`` with
the historical keyword arguments — for one release. ``repro.cli`` and
the ``benchmarks/`` harness drive the registry; EXPERIMENTS.md records
the outputs against the paper's numbers.

The paper trains for 128 epochs; since epochs are repetitive and stable
(section 8), these experiments default to 8 epochs (4 for the large
Figure 7 sweep) and report rates and ratios, which are epoch-count
invariant.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    common,
    fig1,
    fig2,
    fig7,
    fig8,
    fig9,
    serve,
    table1,
    table2,
)

#: legacy name -> module mapping (the registry in :mod:`repro.api.
#: registry` is the supported lookup; this stays for one release)
EXPERIMENTS = {
    "fig1": fig1,
    "fig2": fig2,
    "table1": table1,
    "table2": table2,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "ablations": ablations,
    "serve": serve,
}

__all__ = ["EXPERIMENTS", "common"] + sorted(EXPERIMENTS)
