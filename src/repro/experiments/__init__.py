"""One module per table/figure of the paper's evaluation.

Each module exposes ``run(...) -> dict`` (the data) and ``render(data) ->
str`` (the paper-like text table/series). ``repro.cli`` and the
``benchmarks/`` harness drive them; EXPERIMENTS.md records the outputs
against the paper's numbers.

The paper trains for 128 epochs; since epochs are repetitive and stable
(section 8), these experiments default to 8 epochs (4 for the large
Figure 7 sweep) and report rates and ratios, which are epoch-count
invariant.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    common,
    fig1,
    fig2,
    fig7,
    fig8,
    fig9,
    serve,
    table1,
    table2,
)

EXPERIMENTS = {
    "fig1": fig1,
    "fig2": fig2,
    "table1": table1,
    "table2": table2,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "ablations": ablations,
    "serve": serve,
}

__all__ = ["EXPERIMENTS", "common"] + sorted(EXPERIMENTS)
