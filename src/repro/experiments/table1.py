"""Table 1: side-task throughput on bubbles vs dedicated platforms.

"FreeRide harvests GPU resources that support a throughput of 1.06-2.82x
of a standalone lower-tier GPU, and 7-59.9x of the CPU" — the FreeRide
column is the aggregate across the standard deployment (the same task on
every worker with enough bubble memory), compared against the task alone
on one Server-II GPU and on the CPU server.
"""

from __future__ import annotations

import functools

from repro.baselines.dedicated import run_dedicated
from repro.experiments import common
from repro.metrics.throughput import throughput_row
from repro.workloads.registry import WORKLOAD_NAMES, make_workload, workload_factory


def _task_row(config, name: str):
    freeride = common.run_replicated(config, name)
    server_ii = run_dedicated(make_workload(name), "server_ii",
                              duration_s=30.0)
    cpu = run_dedicated(make_workload(name), "cpu", duration_s=30.0)
    return throughput_row(
        name,
        make_workload(name).perf,
        units_done=freeride.total_units,
        duration_s=freeride.training.total_time,
        server_ii_throughput=server_ii.throughput,
        cpu_throughput=cpu.throughput,
    )


def run(epochs: int = common.DEFAULT_EPOCHS, tasks=WORKLOAD_NAMES) -> dict:
    config = common.train_config(epochs=epochs)
    return {"rows": common.sweep(list(tasks),
                                 functools.partial(_task_row, config))}


def render(data: dict) -> str:
    rows = [
        [
            row.name,
            f"{row.freeride_iterative:.1f}",
            f"{row.server_ii:.1f}",
            f"{row.server_cpu:.1f}",
            f"{row.speedup_vs_server_ii:.2f}x",
            f"{row.speedup_vs_cpu:.1f}x",
        ]
        for row in data["rows"]
    ]
    return common.render_table(
        "Table 1: throughput (units/s) — FreeRide iterative vs dedicated",
        ["side task", "Iterative", "Server-II", "Server-CPU",
         "vs Server-II", "vs CPU"],
        rows,
    )
