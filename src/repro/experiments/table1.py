"""Table 1: side-task throughput on bubbles vs dedicated platforms.

"FreeRide harvests GPU resources that support a throughput of 1.06-2.82x
of a standalone lower-tier GPU, and 7-59.9x of the CPU" — the FreeRide
column is the aggregate across the standard deployment (the same task on
every worker with enough bubble memory), compared against the task alone
on one Server-II GPU and on the CPU server.

The per-task sweep is the scenario's grid: one ``batch``-kind point spec
per side task, each carrying the dedicated-baseline run length.
"""

from __future__ import annotations

from repro.api import registry
from repro.api.spec import ScenarioSpec, SweepSpec, TrainingSpec, WorkloadSpec
from repro.baselines.dedicated import run_dedicated
from repro.experiments import common
from repro.metrics.throughput import throughput_row
from repro.workloads.registry import WORKLOAD_NAMES, make_workload


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="table1",
        kind="batch",
        training=TrainingSpec(epochs=common.DEFAULT_EPOCHS),
        workloads=(WorkloadSpec(name="resnet18"),),
        sweep=SweepSpec(points=tuple(
            {"workloads.0.name": name} for name in WORKLOAD_NAMES
        )),
        params={"dedicated_duration_s": 30.0},
    )


def _task_row(spec: ScenarioSpec):
    """One task's row; module-level so pool workers can unpickle it."""
    name = spec.workloads[0].name
    duration_s = spec.param("dedicated_duration_s", 30.0)
    freeride = common.run_replicated(spec.train_config(), name)
    server_ii = run_dedicated(make_workload(name), "server_ii",
                              duration_s=duration_s)
    cpu = run_dedicated(make_workload(name), "cpu", duration_s=duration_s)
    return throughput_row(
        name,
        make_workload(name).perf,
        units_done=freeride.total_units,
        duration_s=freeride.training.total_time,
        server_ii_throughput=server_ii.throughput,
        cpu_throughput=cpu.throughput,
    )


def run_spec(spec: ScenarioSpec) -> dict:
    return {"rows": common.sweep(spec.sweep_points(), _task_row)}


def render(data: dict) -> str:
    rows = [
        [
            row.name,
            f"{row.freeride_iterative:.1f}",
            f"{row.server_ii:.1f}",
            f"{row.server_cpu:.1f}",
            f"{row.speedup_vs_server_ii:.2f}x",
            f"{row.speedup_vs_cpu:.1f}x",
        ]
        for row in data["rows"]
    ]
    return common.render_table(
        "Table 1: throughput (units/s) — FreeRide iterative vs dedicated",
        ["side task", "Iterative", "Server-II", "Server-CPU",
         "vs Server-II", "vs CPU"],
        rows,
    )


def rows(data: dict) -> list:
    return list(data["rows"])


registry.register(
    "table1",
    "Side-task throughput: FreeRide vs dedicated GPU vs CPU",
    default_spec, run_spec, render, rows,
)
