"""Figure 9: bubble time breakdown under the iterative interface.

For each side task (and the mixed workload): how much of the total bubble
time went to running steps, to FreeRide runtime, to tails too short for
another step, and to bubbles left unused because the task did not fit the
stage's memory ("No side task: OOM" — half the bubble time for VGG19 and
Image, which exceed the bubbles of stages 0 and 1).

The per-task sweep is the scenario's grid; the mixed row is a second,
non-replicated ``batch`` scenario (one task per stage) run through the
Session API.
"""

from __future__ import annotations

import dataclasses

from repro import calibration
from repro.api import registry
from repro.api.results import ResultRow
from repro.api.session import Session
from repro.api.spec import ScenarioSpec, SweepSpec, TrainingSpec, WorkloadSpec
from repro.experiments import common
from repro.metrics.breakdown import bubble_breakdown
from repro.workloads.registry import WORKLOAD_NAMES


@dataclasses.dataclass(frozen=True)
class BreakdownRow(ResultRow):
    """One task's bubble-time fractions."""

    task: str
    running: float
    freeride_runtime: float
    insufficient_time: float
    no_task_oom: float


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig9",
        kind="batch",
        training=TrainingSpec(epochs=common.DEFAULT_EPOCHS),
        workloads=(WorkloadSpec(name="resnet18"),),
        sweep=SweepSpec(points=tuple(
            {"workloads.0.name": name} for name in WORKLOAD_NAMES
        )),
        params={"include_mixed": True},
    )


def _task_row(spec: ScenarioSpec) -> dict:
    """One task's breakdown; module-level so pool workers unpickle it."""
    name = spec.workloads[0].name
    result = common.run_replicated(spec.train_config(), name)
    breakdown = bubble_breakdown(result)
    return {"task": name, **breakdown.fractions()}


def _mixed_row(spec: ScenarioSpec) -> dict:
    """The mixed workload (one task per stage), as a Session run."""
    mixed_spec = dataclasses.replace(
        spec,
        sweep=None,
        workloads=tuple(
            WorkloadSpec(name=name, replicate=False)
            for name in calibration.MIXED_WORKLOAD_BY_STAGE
        ),
    )
    result = Session(mixed_spec).run().results()
    return {"task": "mixed", **bubble_breakdown(result).fractions()}


def run_spec(spec: ScenarioSpec) -> dict:
    rows = common.sweep(spec.sweep_points(), _task_row)
    if spec.param("include_mixed", True):
        rows.append(_mixed_row(spec))
    return {"rows": rows}


def render(data: dict) -> str:
    rows = [
        [
            row["task"],
            common.pct(row["running"]),
            common.pct(row["freeride_runtime"]),
            common.pct(row["insufficient_time"]),
            common.pct(row["no_task_oom"]),
        ]
        for row in data["rows"]
    ]
    return common.render_table(
        "Figure 9: bubble time breakdown (fractions of total bubble time)",
        ["side task", "running", "FreeRide runtime", "insufficient time",
         "no task (OOM)"],
        rows,
    )


def rows(data: dict) -> list[BreakdownRow]:
    return [BreakdownRow(**row) for row in data["rows"]]


registry.register(
    "fig9",
    "Bubble-time breakdown (running / overhead / insufficient / OOM)",
    default_spec, run_spec, render, rows,
)
