"""Figure 9: bubble time breakdown under the iterative interface.

For each side task (and the mixed workload): how much of the total bubble
time went to running steps, to FreeRide runtime, to tails too short for
another step, and to bubbles left unused because the task did not fit the
stage's memory ("No side task: OOM" — half the bubble time for VGG19 and
Image, which exceed the bubbles of stages 0 and 1).
"""

from __future__ import annotations

import functools

from repro import calibration
from repro.core.middleware import FreeRide
from repro.experiments import common
from repro.metrics.breakdown import bubble_breakdown
from repro.workloads.registry import WORKLOAD_NAMES, workload_factory


def _task_row(config, name: str) -> dict:
    result = common.run_replicated(config, name)
    breakdown = bubble_breakdown(result)
    return {"task": name, **breakdown.fractions()}


def run(epochs: int = common.DEFAULT_EPOCHS, tasks=WORKLOAD_NAMES) -> dict:
    config = common.train_config(epochs=epochs)
    rows = common.sweep(list(tasks), functools.partial(_task_row, config))
    # mixed workload: one task per stage
    freeride = FreeRide(config)
    for name in calibration.MIXED_WORKLOAD_BY_STAGE:
        freeride.submit(workload_factory(name))
    breakdown = bubble_breakdown(freeride.run())
    rows.append({"task": "mixed", **breakdown.fractions()})
    return {"rows": rows}


def render(data: dict) -> str:
    rows = [
        [
            row["task"],
            common.pct(row["running"]),
            common.pct(row["freeride_runtime"]),
            common.pct(row["insufficient_time"]),
            common.pct(row["no_task_oom"]),
        ]
        for row in data["rows"]
    ]
    return common.render_table(
        "Figure 9: bubble time breakdown (fractions of total bubble time)",
        ["side task", "running", "FreeRide runtime", "insufficient time",
         "no task (OOM)"],
        rows,
    )
