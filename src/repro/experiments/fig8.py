"""Figure 8: demonstration of FreeRide's GPU resource limits.

(a) a side task that fails to pause at a bubble's end is SIGKILLed by the
framework-enforced mechanism after the grace period — without the limit
its kernels would keep occupying SMs into training time;
(b) a side task that keeps allocating past its 8 GB MPS memory limit is
OOM-killed, releasing its memory; without the limit it would grow until
it endangered the training process.

Both demonstrations are millisecond-scale staged scenarios (a hand-built
worker + manager, not a full training run); the spec's params carry the
stage knobs (memory cap, runaway kernel length, bubble lengths).
"""

from __future__ import annotations

from repro.api import registry
from repro.api.spec import ScenarioSpec
from repro.core.manager import SideTaskManager
from repro.core.profiler import profile_side_task
from repro.core.task_spec import TaskSpec
from repro.core.worker import ManagedBubble, SideTaskWorker
from repro.gpu.cluster import make_server_i
from repro.sim.engine import Engine
from repro.workloads.misbehaving import MemoryLeakTask, NonPausingTask

MEMORY_CAP_GB = 8.0


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig8",
        kind="batch",
        params={
            "memory_cap_gb": MEMORY_CAP_GB,
            "runaway_kernel_s": 6.0,
            "time_bubble_s": 0.65,
            "leak_bubble_s": 3.0,
            "horizon_s": 4.0,
        },
    )


def _stage(workload_factory, limit_gb, bubble_s, horizon_s, interface="iterative"):
    sim = Engine()
    # Figure 8(a) plots the SM-occupancy trace, so recording is opted in.
    server = make_server_i(sim, record_occupancy=True)
    worker = SideTaskWorker(sim, server.gpu(0), 0, side_task_memory_gb=20.0,
                            mps=server.mps)
    manager = SideTaskManager(sim, [worker])
    profile = profile_side_task(workload_factory(), interface=interface)
    workload = workload_factory()
    # Explicit name: the default embeds a process-global counter, and the
    # name seeds the task's jitter stream — without it this figure's
    # traces would depend on whatever ran earlier in the process.
    spec = TaskSpec(workload=workload, profile=profile,
                    memory_limit_gb=limit_gb, name=f"{workload.name}-fig8")
    manager.submit(spec, interface)
    runtime = worker.all_tasks[0]
    sim.run(until=sim.now + 1.0)
    bubble_start = sim.now
    manager.add_bubble(ManagedBubble(stage=0, start=sim.now,
                                     expected_end=sim.now + bubble_s,
                                     available_gb=20.0))
    sim.run(until=bubble_start + horizon_s)
    return sim, server, worker, runtime, bubble_start


def _time_limit_scenario(spec: ScenarioSpec) -> dict:
    """(a) execution-time limit: the task launches a runaway kernel inside
    the bubble and ignores the pause."""
    bubble_s = spec.param("time_bubble_s", 0.65)
    sim_a, server_a, worker_a, runtime_a, t0_a = _stage(
        lambda: NonPausingTask(actual_kernel_s=spec.param("runaway_kernel_s",
                                                          6.0)),
        limit_gb=20.0, bubble_s=bubble_s,
        horizon_s=spec.param("horizon_s", 4.0),
    )
    occupancy = [
        (t - t0_a, side)
        for t, _total, _hi, side in server_a.gpu(0).occupancy_trace
        if t >= t0_a - 0.5
    ]
    killed_at_a = next(
        (when - t0_a for when, state in runtime_a.machine.history
         if state.value == "STOPPED"), None,
    )
    return {
        "bubble_end_s": bubble_s,
        "grace_period_s": 0.5,
        "killed_at_s": killed_at_a,
        "kill_reason": runtime_a.failure,
        "occupancy": occupancy,
    }


def _memory_limit_scenario(spec: ScenarioSpec) -> dict:
    """(b) memory limit: the task leaks 1 GB per step against an 8 GB cap."""
    cap_gb = spec.param("memory_cap_gb", MEMORY_CAP_GB)
    sim_b, server_b, worker_b, runtime_b, t0_b = _stage(
        MemoryLeakTask, limit_gb=cap_gb,
        bubble_s=spec.param("leak_bubble_s", 3.0),
        horizon_s=spec.param("horizon_s", 4.0),
    )
    memory = [
        (t - t0_b, gb) for t, gb in runtime_b.proc.memory_trace
        if t >= t0_b - 0.5
    ]
    return {
        "cap_gb": cap_gb,
        "peak_gb": max(gb for _t, gb in runtime_b.proc.memory_trace),
        "killed": not runtime_b.proc.alive,
        "kill_reason": runtime_b.failure,
        "memory": memory,
    }


def run_spec(spec: ScenarioSpec) -> dict:
    # Both scenarios are millisecond-scale: running them inline is faster
    # than any pool could be.
    return {
        "time_limit": _time_limit_scenario(spec),
        "memory_limit": _memory_limit_scenario(spec),
    }


def render(data: dict) -> str:
    time_limit = data["time_limit"]
    memory_limit = data["memory_limit"]
    lines = [
        "Figure 8(a): framework-enforced time limit",
        f"  bubble ends at t+{time_limit['bubble_end_s']:.2f}s; "
        f"grace period {time_limit['grace_period_s']:.2f}s",
        f"  side task killed at t+{time_limit['killed_at_s']:.2f}s "
        f"({time_limit['kill_reason']})",
        "  side-task SM occupancy after the kill drops to 0 "
        "(with no limit it would keep running into training time)",
        "",
        "Figure 8(b): GPU memory limit",
        f"  cap {memory_limit['cap_gb']:.0f} GB; observed peak "
        f"{memory_limit['peak_gb']:.1f} GB; killed={memory_limit['killed']} "
        f"({memory_limit['kill_reason']})",
        "  memory trace (s, GB): "
        + " ".join(f"({t:.2f},{gb:.0f})" for t, gb in
                   memory_limit["memory"][:12]),
    ]
    return "\n".join(lines)


registry.register(
    "fig8",
    "GPU resource limits: framework-enforced kill + MPS memory cap",
    default_spec, run_spec, render,
)
