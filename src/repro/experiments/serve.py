"""The `serve` experiment: capacity and SLO behavior under open-loop load.

Beyond the paper's batch evaluation: FreeRide as an online service. A
seeded open-loop arrival stream (Poisson by default) offers side-task
requests at a swept rate; each (arrival rate x admission policy x
assignment policy) point is a self-contained ``serving``-kind
:class:`~repro.api.spec.ScenarioSpec` executed through the Session API,
and reports rejection rate, completion-latency percentiles, and goodput
(SLO-met completions per second). The table shows the capacity knee:
where always-admit lets queueing latency blow past the SLOs while
token-bucket and backpressure admission trade rejections for bounded
latency.
"""

from __future__ import annotations

import dataclasses

from repro.api import registry
from repro.api.results import ResultRow
from repro.api.session import DEFAULT_OPEN_FRACTION, Session
from repro.api.spec import ArrivalSpec, ScenarioSpec, SweepSpec, TrainingSpec
from repro.experiments import common
from repro.metrics.cost import time_increase

ARRIVAL_RATES = (1.0, 2.0, 4.0, 8.0)
ADMISSIONS = ("always", "token_bucket", "backpressure")
POLICIES = ("least_loaded", "edf")
SERVE_EPOCHS = 4
#: fraction of the no-side-task training time the service stays open
OPEN_FRACTION = DEFAULT_OPEN_FRACTION


@dataclasses.dataclass(frozen=True)
class ServeRow(ResultRow):
    """One capacity-table point."""

    rate: float
    admission: str
    policy: str
    offered: int
    rejection_rate: float
    completed: int
    slo_met: int
    queueing_p95: float
    completion_p50: float
    completion_p95: float
    completion_p99: float
    goodput_rps: float
    time_increase: float


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="serve",
        kind="serving",
        training=TrainingSpec(epochs=SERVE_EPOCHS),
        arrivals=ArrivalSpec(kind="poisson", rate_per_s=ARRIVAL_RATES[0]),
        sweep=SweepSpec(axes={
            "arrivals.rate_per_s": ARRIVAL_RATES,
            "policy.admission": ADMISSIONS,
            "policy.assignment": POLICIES,
        }),
        params={"open_fraction": OPEN_FRACTION},
    )


def _serve_point(spec: ScenarioSpec) -> dict:
    """One sweep point; module-level so pool workers can unpickle it."""
    with Session(spec) as session:
        result = session.run().results()
    metrics = result.metrics
    return {
        "rate": spec.arrivals.rate_per_s,
        "admission": spec.policy.admission,
        "policy": spec.policy.assignment,
        "offered": metrics.offered,
        "rejection_rate": metrics.rejection_rate,
        "completed": metrics.completed,
        "slo_met": metrics.slo_met,
        "queueing_p95": metrics.queueing.p95,
        "completion_p50": metrics.completion.p50,
        "completion_p95": metrics.completion.p95,
        "completion_p99": metrics.completion.p99,
        "goodput_rps": metrics.goodput_rps,
        "time_increase": time_increase(result.training.total_time,
                                       spec.param("t_no")),
    }


def run_spec(spec: ScenarioSpec) -> dict:
    config = spec.train_config()
    # Computed once here and baked into the point specs (pool workers
    # re-derive nothing): the service horizon and the baseline time the
    # training-slowdown column compares against.
    t_no = common.baseline_time(config)
    horizon_s = spec.param("horizon_s")
    if horizon_s is None:
        horizon_s = t_no * float(spec.param("open_fraction", OPEN_FRACTION))
    rows = common.sweep(
        spec.sweep_points({"params.horizon_s": horizon_s,
                           "params.t_no": t_no}),
        _serve_point,
    )
    return {
        "epochs": spec.training.epochs,
        "seed": spec.seed,
        "arrival_kind": spec.arrivals.kind,
        "horizon_s": horizon_s,
        "rows": rows,
    }


def render(data: dict) -> str:
    rows = [
        [
            f"{row['rate']:g}",
            row["admission"],
            row["policy"],
            str(row["offered"]),
            common.pct(row["rejection_rate"]),
            f"{row['completion_p50']:.2f}",
            f"{row['completion_p95']:.2f}",
            f"{row['completion_p99']:.2f}",
            f"{row['goodput_rps']:.2f}",
            f"{row['slo_met']}/{row['completed']}",
            common.pct(row["time_increase"]),
        ]
        for row in data["rows"]
    ]
    title = (
        f"Serve: open-loop {data['arrival_kind']} traffic over "
        f"{data['epochs']}-epoch training (seed {data['seed']}, "
        f"service open {data['horizon_s']:.1f}s)"
    )
    return common.render_table(
        title,
        ["rate (req/s)", "admission", "assignment", "offered", "rejected",
         "p50 (s)", "p95 (s)", "p99 (s)", "goodput (req/s)", "SLO met",
         "train +I"],
        rows,
    )


def rows(data: dict) -> list[ServeRow]:
    return [ServeRow(**row) for row in data["rows"]]


registry.register(
    "serve",
    "Online serving capacity: open-loop traffic x admission x assignment",
    default_spec, run_spec, render, rows,
)
