"""The `serve` experiment: capacity and SLO behavior under open-loop load.

Beyond the paper's batch evaluation: FreeRide as an online service. A
seeded open-loop arrival stream (Poisson by default) offers side-task
requests at a swept rate; each (arrival rate x admission policy x
assignment policy) point runs one full traffic-driven simulation via
:func:`repro.serving.frontend.run_serving` and reports rejection rate,
completion-latency percentiles, and goodput (SLO-met completions per
second). The table shows the capacity knee: where always-admit lets
queueing latency blow past the SLOs while token-bucket and backpressure
admission trade rejections for bounded latency.
"""

from __future__ import annotations

import functools

from repro.experiments import common
from repro.metrics.cost import time_increase
from repro.serving.arrivals import make_arrivals
from repro.serving.frontend import run_serving

ARRIVAL_RATES = (1.0, 2.0, 4.0, 8.0)
ADMISSIONS = ("always", "token_bucket", "backpressure")
POLICIES = ("least_loaded", "edf")
SERVE_EPOCHS = 4
#: fraction of the no-side-task training time the service stays open —
#: arrivals stop before teardown so late requests aren't counted offered
OPEN_FRACTION = 0.9


def _serve_point(config, horizon_s, t_no, arrival_kind, seed, item) -> dict:
    """One sweep point; module-level so pool workers can unpickle it."""
    rate, admission, policy = item
    result = run_serving(
        config,
        make_arrivals(arrival_kind, rate, seed=seed),
        horizon_s=horizon_s,
        admission=admission,
        policy=policy,
        seed=seed,
    )
    metrics = result.metrics
    return {
        "rate": rate,
        "admission": admission,
        "policy": policy,
        "offered": metrics.offered,
        "rejection_rate": metrics.rejection_rate,
        "completed": metrics.completed,
        "slo_met": metrics.slo_met,
        "queueing_p95": metrics.queueing.p95,
        "completion_p50": metrics.completion.p50,
        "completion_p95": metrics.completion.p95,
        "completion_p99": metrics.completion.p99,
        "goodput_rps": metrics.goodput_rps,
        "time_increase": time_increase(result.training.total_time, t_no),
    }


def run(epochs: int = SERVE_EPOCHS, seed: int = 0,
        arrival_kind: str = "poisson",
        rates=ARRIVAL_RATES, admissions=ADMISSIONS,
        policies=POLICIES) -> dict:
    config = common.train_config(epochs=epochs, seed=seed)
    t_no = common.baseline_time(config)  # computed once, shipped to workers
    horizon_s = t_no * OPEN_FRACTION
    items = [
        (rate, admission, policy)
        for rate in rates
        for admission in admissions
        for policy in policies
    ]
    rows = common.sweep(
        items,
        functools.partial(_serve_point, config, horizon_s, t_no,
                          arrival_kind, seed),
    )
    return {
        "epochs": epochs,
        "seed": seed,
        "arrival_kind": arrival_kind,
        "horizon_s": horizon_s,
        "rows": rows,
    }


def render(data: dict) -> str:
    rows = [
        [
            f"{row['rate']:g}",
            row["admission"],
            row["policy"],
            str(row["offered"]),
            common.pct(row["rejection_rate"]),
            f"{row['completion_p50']:.2f}",
            f"{row['completion_p95']:.2f}",
            f"{row['completion_p99']:.2f}",
            f"{row['goodput_rps']:.2f}",
            f"{row['slo_met']}/{row['completed']}",
            common.pct(row["time_increase"]),
        ]
        for row in data["rows"]
    ]
    title = (
        f"Serve: open-loop {data['arrival_kind']} traffic over "
        f"{data['epochs']}-epoch training (seed {data['seed']}, "
        f"service open {data['horizon_s']:.1f}s)"
    )
    return common.render_table(
        title,
        ["rate (req/s)", "admission", "assignment", "offered", "rejected",
         "p50 (s)", "p95 (s)", "p99 (s)", "goodput (req/s)", "SLO met",
         "train +I"],
        rows,
    )
