"""Ablations of FreeRide's design choices (beyond the paper's figures).

* **grace period** — shorter graces kill misbehaving tasks sooner (less
  training interference) but risk killing slow-but-honest pauses;
* **RPC latency** — the manager's reaction time bounds how much of each
  bubble is usable and how far steps overrun the end;
* **assignment policy** — Algorithm 1's least-loaded rule vs first-fit /
  best-fit / worst-fit on a heterogeneous task mix;
* **step granularity** — finer steps utilize bubble tails better but pay
  more interface overhead (the PageRank effect of Figure 9);
* **schedule** — 1F1B vs GPipe bubble structure.
"""

from __future__ import annotations

import dataclasses
import functools

from repro import calibration
from repro.core.middleware import FreeRide
from repro.core.policies import NAMED_POLICIES
from repro.experiments import common
from repro.gpu.cluster import make_server_i
from repro.metrics.cost import time_increase
from repro.pipeline.analysis import bubble_rate
from repro.pipeline.engine import PipelineEngine
from repro.sim.engine import Engine
from repro.workloads.model_training import ModelTrainingTask
from repro.workloads.registry import workload_factory

GRACE_PERIODS = (0.1, 0.25, 0.5, 1.0)
RPC_LATENCIES = (0.0001, 0.001, 0.005, 0.02)
STEP_SCALES = (0.3, 1.0, 3.0, 10.0)
#: the paper-era policies, pinned explicitly: the registry has since
#: grown deadline-aware serving policies, which degenerate to
#: least-loaded on this deadline-less batch workload and would only
#: duplicate rows here (the serve experiment compares them under load)
ABLATION_POLICIES = ("least_loaded", "first_fit", "best_fit", "worst_fit")


def _grace_row(grace: float) -> dict:
    from repro.core.manager import SideTaskManager
    from repro.core.profiler import profile_side_task
    from repro.core.task_spec import TaskSpec
    from repro.core.worker import ManagedBubble, SideTaskWorker
    from repro.workloads.misbehaving import NonPausingTask

    sim = Engine()
    server = make_server_i(sim)
    worker = SideTaskWorker(sim, server.gpu(0), 0,
                            side_task_memory_gb=20.0, mps=server.mps)
    manager = SideTaskManager(sim, [worker], grace_period_s=grace)
    profile = profile_side_task(NonPausingTask(), interface="iterative")
    # Explicit name: the default embeds a process-global counter, which
    # would make the row depend on whether it runs serially or in a pool
    # worker (the name seeds the task's jitter stream).
    manager.submit(TaskSpec(workload=NonPausingTask(), profile=profile,
                            name=f"nonpausing-grace{grace:g}"))
    runtime = worker.all_tasks[0]
    sim.run(until=sim.now + 1.0)
    bubble_end = sim.now + 0.65
    manager.add_bubble(ManagedBubble(stage=0, start=sim.now,
                                     expected_end=bubble_end,
                                     available_gb=20.0))
    sim.run(until=sim.now + 8.0)
    stopped = [when for when, state in runtime.machine.history
               if state.value == "STOPPED"]
    return {
        "grace_s": grace,
        "killed": not runtime.proc.alive,
        "trespass_s": (stopped[-1] - bubble_end) if stopped else None,
    }


def run_grace_period() -> list[dict]:
    """Kill latency of the framework-enforced limit vs the grace period.

    A longer grace tolerates slow-but-honest pauses; a shorter one bounds
    how long a runaway side task can trespass on training time.
    """
    return common.sweep(GRACE_PERIODS, _grace_row)


def _rpc_latency_row(config, t_no, latency: float) -> dict:
    freeride = FreeRide(config, rpc_latency_s=latency)
    freeride.submit_replicated(workload_factory("resnet18"))
    result = freeride.run()
    return {
        "rpc_latency_s": latency,
        "time_increase": time_increase(result.training.total_time, t_no),
        "units": result.total_units,
    }


def run_rpc_latency(epochs: int = 4) -> list[dict]:
    config = common.train_config(epochs=epochs)
    t_no = common.baseline_time(config)
    return common.sweep(RPC_LATENCIES,
                        functools.partial(_rpc_latency_row, config, t_no))


def _policy_row(config, name: str) -> dict:
    freeride = FreeRide(config, policy=NAMED_POLICIES[name])
    for task in ("pagerank", "resnet18", "resnet50", "pagerank"):
        freeride.submit(workload_factory(task))
    result = freeride.run()
    stages = sorted(report.stage for report in result.tasks)
    return {
        "policy": name,
        "placement": stages,
        "distinct_workers": len(set(stages)),
        "units": result.total_units,
    }


def run_policies(epochs: int = 4) -> list[dict]:
    config = common.train_config(epochs=epochs)
    return common.sweep(ABLATION_POLICIES,
                        functools.partial(_policy_row, config))


def _granularity_row(config, scale: float) -> dict:
    base = calibration.RESNET18
    perf = dataclasses.replace(
        base,
        step_time_s=base.step_time_s * scale,
        units_per_step=base.units_per_step * scale,
    )
    freeride = FreeRide(config)
    freeride.submit_replicated(lambda perf=perf: ModelTrainingTask(perf))
    result = freeride.run()
    running = sum(report.running_s for report in result.tasks)
    overhead = sum(report.overhead_s for report in result.tasks)
    insufficient = sum(report.insufficient_s for report in result.tasks)
    return {
        "step_s": perf.step_time_s,
        "units_per_s": result.total_units / result.training.total_time,
        "running_s": running,
        "overhead_s": overhead,
        "insufficient_s": insufficient,
    }


def run_step_granularity(epochs: int = 4) -> list[dict]:
    """Scale ResNet18's step size; measure utilization vs overhead."""
    config = common.train_config(epochs=epochs)
    return common.sweep(STEP_SCALES,
                        functools.partial(_granularity_row, config))


def _schedule_row(epochs: int, schedule: str) -> dict:
    config = dataclasses.replace(
        common.train_config(epochs=epochs), schedule=schedule
    )
    sim = Engine()
    result = PipelineEngine(sim, make_server_i(sim), config).run()
    return {
        "schedule": schedule,
        "epoch_time_s": result.trace.mean_epoch_time(),
        "bubble_rate": bubble_rate(result.trace),
    }


def run_schedules(epochs: int = 4) -> list[dict]:
    return common.sweep(("1f1b", "gpipe"),
                        functools.partial(_schedule_row, epochs))


def run(epochs: int = 4) -> dict:
    return {
        "grace_period": run_grace_period(),
        "rpc_latency": run_rpc_latency(epochs),
        "policies": run_policies(epochs),
        "step_granularity": run_step_granularity(epochs),
        "schedules": run_schedules(epochs),
    }


def render(data: dict) -> str:
    sections = []
    sections.append(common.render_table(
        "Ablation: grace period of the framework-enforced limit",
        ["grace (s)", "killed", "trespass beyond bubble end (s)"],
        [[f"{row['grace_s']:g}", str(row["killed"]),
          f"{row['trespass_s']:.2f}" if row["trespass_s"] is not None else "-"]
         for row in data["grace_period"]],
    ))
    sections.append(common.render_table(
        "Ablation: RPC latency",
        ["latency (s)", "time increase", "units"],
        [[f"{row['rpc_latency_s']:g}", common.pct(row["time_increase"]),
          f"{row['units']:.0f}"] for row in data["rpc_latency"]],
    ))
    sections.append(common.render_table(
        "Ablation: assignment policy (pagerank, resnet18, resnet50, pagerank)",
        ["policy", "placement (stages)", "distinct workers", "units"],
        [[row["policy"], str(row["placement"]),
          str(row["distinct_workers"]), f"{row['units']:.0f}"]
         for row in data["policies"]],
    ))
    sections.append(common.render_table(
        "Ablation: step granularity (ResNet18 variants)",
        ["step (s)", "units/s", "running (s)", "overhead (s)",
         "insufficient (s)"],
        [[f"{row['step_s']:.4f}", f"{row['units_per_s']:.0f}",
          f"{row['running_s']:.1f}", f"{row['overhead_s']:.2f}",
          f"{row['insufficient_s']:.1f}"]
         for row in data["step_granularity"]],
    ))
    sections.append(common.render_table(
        "Ablation: pipeline schedule",
        ["schedule", "epoch time (s)", "bubble rate"],
        [[row["schedule"], f"{row['epoch_time_s']:.2f}",
          common.pct(row["bubble_rate"])] for row in data["schedules"]],
    ))
    return "\n\n".join(sections)
