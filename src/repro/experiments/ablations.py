"""Ablations of FreeRide's design choices (beyond the paper's figures).

* **grace period** — shorter graces kill misbehaving tasks sooner (less
  training interference) but risk killing slow-but-honest pauses;
* **RPC latency** — the manager's reaction time bounds how much of each
  bubble is usable and how far steps overrun the end;
* **assignment policy** — Algorithm 1's least-loaded rule vs first-fit /
  best-fit / worst-fit on a heterogeneous task mix;
* **step granularity** — finer steps utilize bubble tails better but pay
  more interface overhead (the PageRank effect of Figure 9);
* **schedule** — 1F1B vs GPipe bubble structure.

Five sub-sweeps over one base scenario: each swept knob is a real spec
field (``policy.grace_period_s``, ``policy.rpc_latency_s``,
``policy.assignment``, ``training.schedule``) or a params entry
(``step_scale``), so every ablation point is a self-contained spec.
"""

from __future__ import annotations

import dataclasses

from repro import calibration
from repro.api import registry
from repro.api.session import Session
from repro.api.spec import ScenarioSpec, TrainingSpec, WorkloadSpec
from repro.experiments import common
from repro.gpu.cluster import make_server_i
from repro.metrics.cost import time_increase
from repro.pipeline.analysis import bubble_rate
from repro.sim.engine import Engine
from repro.workloads.model_training import ModelTrainingTask

GRACE_PERIODS = (0.1, 0.25, 0.5, 1.0)
RPC_LATENCIES = (0.0001, 0.001, 0.005, 0.02)
STEP_SCALES = (0.3, 1.0, 3.0, 10.0)
#: the paper-era policies, pinned explicitly: the registry has since
#: grown deadline-aware serving policies, which degenerate to
#: least-loaded on this deadline-less batch workload and would only
#: duplicate rows here (the serve experiment compares them under load)
ABLATION_POLICIES = ("least_loaded", "first_fit", "best_fit", "worst_fit")


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="ablations",
        kind="batch",
        training=TrainingSpec(epochs=4),
        workloads=(WorkloadSpec(name="resnet18"),),
        params={
            "grace_periods": list(GRACE_PERIODS),
            "rpc_latencies": list(RPC_LATENCIES),
            "policies": list(ABLATION_POLICIES),
            "step_scales": list(STEP_SCALES),
            "schedules": ["1f1b", "gpipe"],
            "policy_tasks": ["pagerank", "resnet18", "resnet50", "pagerank"],
        },
    )


def _grace_row(spec: ScenarioSpec) -> dict:
    from repro.core.manager import SideTaskManager
    from repro.core.profiler import profile_side_task
    from repro.core.task_spec import TaskSpec
    from repro.core.worker import ManagedBubble, SideTaskWorker
    from repro.workloads.misbehaving import NonPausingTask

    grace = spec.policy.grace_period_s
    sim = Engine()
    server = make_server_i(sim)
    worker = SideTaskWorker(sim, server.gpu(0), 0,
                            side_task_memory_gb=20.0, mps=server.mps)
    manager = SideTaskManager(sim, [worker], grace_period_s=grace)
    profile = profile_side_task(NonPausingTask(), interface="iterative")
    # Explicit name: the default embeds a process-global counter, which
    # would make the row depend on whether it runs serially or in a pool
    # worker (the name seeds the task's jitter stream).
    manager.submit(TaskSpec(workload=NonPausingTask(), profile=profile,
                            name=f"nonpausing-grace{grace:g}"))
    runtime = worker.all_tasks[0]
    sim.run(until=sim.now + 1.0)
    bubble_end = sim.now + 0.65
    manager.add_bubble(ManagedBubble(stage=0, start=sim.now,
                                     expected_end=bubble_end,
                                     available_gb=20.0))
    sim.run(until=sim.now + 8.0)
    stopped = [when for when, state in runtime.machine.history
               if state.value == "STOPPED"]
    return {
        "grace_s": grace,
        "killed": not runtime.proc.alive,
        "trespass_s": (stopped[-1] - bubble_end) if stopped else None,
    }


def grace_sweep(spec: ScenarioSpec) -> list[dict]:
    """Kill latency of the framework-enforced limit vs the grace period.

    A longer grace tolerates slow-but-honest pauses; a shorter one bounds
    how long a runaway side task can trespass on training time.
    """
    points = [{"policy.grace_period_s": grace}
              for grace in spec.param("grace_periods", GRACE_PERIODS)]
    return common.sweep(spec.with_points(points), _grace_row)


def _rpc_latency_row(spec: ScenarioSpec) -> dict:
    result = Session(spec).run().results()
    return {
        "rpc_latency_s": spec.policy.rpc_latency_s,
        "time_increase": time_increase(result.training.total_time,
                                       spec.param("t_no")),
        "units": result.total_units,
    }


def rpc_latency_sweep(spec: ScenarioSpec) -> list[dict]:
    t_no = common.baseline_time(spec.train_config())
    points = [{"policy.rpc_latency_s": latency, "params.t_no": t_no}
              for latency in spec.param("rpc_latencies", RPC_LATENCIES)]
    return common.sweep(spec.with_points(points), _rpc_latency_row)


def _policy_row(spec: ScenarioSpec) -> dict:
    session = Session(dataclasses.replace(spec, workloads=()))
    for task in spec.param("policy_tasks", ()):
        session.submit(WorkloadSpec(name=task, replicate=False))
    result = session.run().results()
    stages = sorted(report.stage for report in result.tasks)
    return {
        "policy": spec.policy.assignment,
        "placement": stages,
        "distinct_workers": len(set(stages)),
        "units": result.total_units,
    }


def policy_sweep(spec: ScenarioSpec) -> list[dict]:
    points = [{"policy.assignment": name}
              for name in spec.param("policies", ABLATION_POLICIES)]
    return common.sweep(spec.with_points(points), _policy_row)


def _granularity_row(spec: ScenarioSpec) -> dict:
    scale = spec.param("step_scale", 1.0)
    base = calibration.RESNET18
    perf = dataclasses.replace(
        base,
        step_time_s=base.step_time_s * scale,
        units_per_step=base.units_per_step * scale,
    )
    from repro.core.middleware import FreeRide

    # A scaled synthetic task has no registry name, so this row drives
    # FreeRide directly rather than through a WorkloadSpec.
    freeride = FreeRide(spec.train_config())
    freeride.submit_replicated(lambda perf=perf: ModelTrainingTask(perf))
    result = freeride.run()
    running = sum(report.running_s for report in result.tasks)
    overhead = sum(report.overhead_s for report in result.tasks)
    insufficient = sum(report.insufficient_s for report in result.tasks)
    return {
        "step_s": perf.step_time_s,
        "units_per_s": result.total_units / result.training.total_time,
        "running_s": running,
        "overhead_s": overhead,
        "insufficient_s": insufficient,
    }


def granularity_sweep(spec: ScenarioSpec) -> list[dict]:
    """Scale ResNet18's step size; measure utilization vs overhead."""
    points = [{"params.step_scale": scale}
              for scale in spec.param("step_scales", STEP_SCALES)]
    return common.sweep(spec.with_points(points), _granularity_row)


def _schedule_row(spec: ScenarioSpec) -> dict:
    result = Session(spec).run().results()
    return {
        "schedule": spec.training.schedule,
        "epoch_time_s": result.trace.mean_epoch_time(),
        "bubble_rate": bubble_rate(result.trace),
    }


def schedule_sweep(spec: ScenarioSpec) -> list[dict]:
    points = [{"kind": "pipeline", "training.schedule": schedule}
              for schedule in spec.param("schedules", ("1f1b", "gpipe"))]
    return common.sweep(spec.with_points(points), _schedule_row)


def run_spec(spec: ScenarioSpec) -> dict:
    return {
        "grace_period": grace_sweep(spec),
        "rpc_latency": rpc_latency_sweep(spec),
        "policies": policy_sweep(spec),
        "step_granularity": granularity_sweep(spec),
        "schedules": schedule_sweep(spec),
    }


def render(data: dict) -> str:
    sections = []
    sections.append(common.render_table(
        "Ablation: grace period of the framework-enforced limit",
        ["grace (s)", "killed", "trespass beyond bubble end (s)"],
        [[f"{row['grace_s']:g}", str(row["killed"]),
          f"{row['trespass_s']:.2f}" if row["trespass_s"] is not None else "-"]
         for row in data["grace_period"]],
    ))
    sections.append(common.render_table(
        "Ablation: RPC latency",
        ["latency (s)", "time increase", "units"],
        [[f"{row['rpc_latency_s']:g}", common.pct(row["time_increase"]),
          f"{row['units']:.0f}"] for row in data["rpc_latency"]],
    ))
    sections.append(common.render_table(
        "Ablation: assignment policy (pagerank, resnet18, resnet50, pagerank)",
        ["policy", "placement (stages)", "distinct workers", "units"],
        [[row["policy"], str(row["placement"]),
          str(row["distinct_workers"]), f"{row['units']:.0f}"]
         for row in data["policies"]],
    ))
    sections.append(common.render_table(
        "Ablation: step granularity (ResNet18 variants)",
        ["step (s)", "units/s", "running (s)", "overhead (s)",
         "insufficient (s)"],
        [[f"{row['step_s']:.4f}", f"{row['units_per_s']:.0f}",
          f"{row['running_s']:.1f}", f"{row['overhead_s']:.2f}",
          f"{row['insufficient_s']:.1f}"]
         for row in data["step_granularity"]],
    ))
    sections.append(common.render_table(
        "Ablation: pipeline schedule",
        ["schedule", "epoch time (s)", "bubble rate"],
        [[row["schedule"], f"{row['epoch_time_s']:.2f}",
          common.pct(row["bubble_rate"])] for row in data["schedules"]],
    ))
    return "\n\n".join(sections)


def rows(data: dict) -> list[dict]:
    return [
        {"section": section, **row}
        for section in ("grace_period", "rpc_latency", "policies",
                        "step_granularity", "schedules")
        for row in data[section]
    ]


registry.register(
    "ablations",
    "Grace period, RPC latency, assignment policy, step granularity, schedule",
    default_spec, run_spec, render, rows,
)
