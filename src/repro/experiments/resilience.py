"""The `resilience` experiment: serving under injected failures.

Beyond the paper's fault-free evaluation: how gracefully the middleware
degrades when workers crash. A seeded per-stage Poisson crash plan
knocks workers out mid-service at a swept intensity; each
(crash rate x recovery mode) point is a self-contained ``serving``-kind
:class:`~repro.api.spec.ScenarioSpec` with a ``faults`` section,
executed through the Session API. The serving frontend retries requests
whose worker died (exponential backoff, seeded jitter); the recovery
axis contrasts killing evicted work ("none"), restarting it from
scratch ("restart"), and resuming it from periodic checkpoints
("checkpoint"). The table reads degradation directly off the fault
axis: goodput under failure, requests lost, wasted side-task work, and
pool availability.
"""

from __future__ import annotations

import dataclasses

from repro.api import registry
from repro.api.results import ResultRow
from repro.api.session import DEFAULT_OPEN_FRACTION, Session
from repro.api.spec import (
    ArrivalSpec,
    FaultSpec,
    ScenarioSpec,
    SweepSpec,
    TrainingSpec,
)
from repro.experiments import common

#: expected crashes per worker over the open window
CRASH_RATES = (0.0, 1.0, 2.0)
RECOVERIES = ("none", "restart", "checkpoint")
RESILIENCE_EPOCHS = 4
ARRIVAL_RATE = 2.0
#: fraction of the no-side-task training time the service stays open
OPEN_FRACTION = DEFAULT_OPEN_FRACTION


@dataclasses.dataclass(frozen=True)
class ResilienceRow(ResultRow):
    """One degradation-table point."""

    crash_rate: float
    recovery: str
    offered: int
    completed: int
    failed: int
    retries: int
    crashes: int
    availability: float
    preemptions: int
    restores: int
    checkpoints: int
    wasted_s: float
    goodput_rps: float


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="resilience",
        kind="serving",
        training=TrainingSpec(epochs=RESILIENCE_EPOCHS),
        arrivals=ArrivalSpec(kind="poisson", rate_per_s=ARRIVAL_RATE),
        faults=FaultSpec(
            crash_rate=CRASH_RATES[0],
            restart_after_s=4.0,
            recovery=RECOVERIES[0],
            retry_max_attempts=3,
        ),
        sweep=SweepSpec(axes={
            "faults.crash_rate": CRASH_RATES,
            "faults.recovery": RECOVERIES,
        }),
        params={"open_fraction": OPEN_FRACTION},
    )


def _resilience_point(spec: ScenarioSpec) -> dict:
    """One sweep point; module-level so pool workers can unpickle it."""
    with Session(spec) as session:
        result = session.run().results()
    metrics = result.metrics
    resilience = result.resilience
    return {
        "crash_rate": spec.faults.crash_rate,
        "recovery": spec.faults.recovery,
        "offered": metrics.offered,
        "completed": metrics.completed,
        "failed": metrics.failed,
        "retries": resilience.retries,
        "crashes": resilience.crashes,
        "availability": resilience.availability,
        "preemptions": resilience.preemptions,
        "restores": resilience.restores,
        "checkpoints": resilience.checkpoints,
        "wasted_s": resilience.wasted_s,
        "goodput_rps": resilience.goodput_under_failure_rps,
    }


def run_spec(spec: ScenarioSpec) -> dict:
    config = spec.train_config()
    # Computed once here and baked into the point specs (pool workers
    # re-derive nothing): the service horizon every point shares.
    horizon_s = spec.param("horizon_s")
    if horizon_s is None:
        horizon_s = common.baseline_time(config) * float(
            spec.param("open_fraction", OPEN_FRACTION)
        )
    rows = common.sweep(
        spec.sweep_points({"params.horizon_s": horizon_s}),
        _resilience_point,
    )
    return {
        "epochs": spec.training.epochs,
        "seed": spec.seed,
        "arrival_rate": spec.arrivals.rate_per_s,
        "horizon_s": horizon_s,
        "rows": rows,
    }


def render(data: dict) -> str:
    rows = [
        [
            f"{row['crash_rate']:g}",
            row["recovery"],
            str(row["offered"]),
            str(row["completed"]),
            str(row["failed"]),
            str(row["retries"]),
            str(row["crashes"]),
            common.pct(row["availability"]),
            f"{row['preemptions']}/{row['restores']}",
            f"{row['wasted_s']:.2f}",
            f"{row['goodput_rps']:.2f}",
        ]
        for row in data["rows"]
    ]
    title = (
        f"Resilience: worker crashes under {data['arrival_rate']:g} req/s "
        f"over {data['epochs']}-epoch training (seed {data['seed']}, "
        f"service open {data['horizon_s']:.1f}s)"
    )
    return common.render_table(
        title,
        ["crash rate", "recovery", "offered", "completed", "failed",
         "retries", "crashes", "avail", "preempt/restore", "wasted (s)",
         "goodput (req/s)"],
        rows,
    )


def rows(data: dict) -> list[ResilienceRow]:
    return [ResilienceRow(**row) for row in data["rows"]]


registry.register(
    "resilience",
    "Degradation under injected faults: crash rate x recovery policy",
    default_spec, run_spec, render, rows,
)
