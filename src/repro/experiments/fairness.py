"""The `fairness` experiment: multi-tenant shares under shared bubbles.

PR 4 put many producers behind one shared placement loop; this sweep
measures what each *tenant* of that shared queue actually receives. Each
point is a ``serving``-kind scenario whose traffic is the superposition
of per-tenant open-loop streams (symmetric or skewed), dispatched either
tenant-blind (FIFO) or weighted-fair (stride scheduling over tenant
backlogs), and reports one row per tenant: offered/admitted/completed
counts, goodput, the measured share of total goodput against the
weight-implied target, plus the point-level Jain index and max share
error. Under saturating symmetric load the weighted rows converge to the
declared weight ratio; the FIFO rows show what happens without the
fairness layer.

The tenant mix is all batch-class mini-jobs so every completion counts
toward goodput — shares then measure *service received*, not deadline
luck.
"""

from __future__ import annotations

import dataclasses

from repro.api import registry
from repro.api.results import ResultRow
from repro.api.session import DEFAULT_OPEN_FRACTION, Session
from repro.api.spec import (
    MixEntrySpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TenantSpec,
    TrainingSpec,
)
from repro.experiments import common

FAIRNESS_EPOCHS = 3
#: per-tenant offered load (requests/second) — sized to saturate the
#: bubble capacity so dispatch order, not arrival order, decides shares
FAIRNESS_RATE = 8.0
#: batch-class mini-jobs: completion == goodput, regardless of latency
FAIRNESS_MIX = (
    MixEntrySpec(workload="pagerank", job_steps=60, slo_class="batch"),
)
DISPATCH = ("fifo", "weighted")
#: deep enough that the backlog, not the queue bound, shapes shares
FAIRNESS_QUEUE_CAPACITY = 256


def make_tenants(count: int, weight_ratio: float = 1.0,
                 rate_ratio: float = 1.0,
                 rate_per_s: float = FAIRNESS_RATE) -> "tuple[TenantSpec, ...]":
    """A tenant set for fairness studies: ``count`` tenants on the
    batch-class mix, with tenant 0 optionally up-weighted
    (``weight_ratio``) or offering more load (``rate_ratio``)."""
    return tuple(
        TenantSpec(
            name=f"tenant{index}",
            weight=weight_ratio if index == 0 else 1.0,
            arrival_kind="poisson",
            arrival_rate_per_s=(rate_per_s * rate_ratio if index == 0
                                else rate_per_s),
            mix=FAIRNESS_MIX,
        )
        for index in range(count)
    )


def _tenant_dicts(count: int, weight_ratio: float = 1.0,
                  rate_ratio: float = 1.0) -> "list[dict]":
    """JSON-shaped tenant-set axis values (sweep axes are plain data)."""
    return [tenant.to_dict()
            for tenant in make_tenants(count, weight_ratio, rate_ratio)]


#: the swept tenant sets: symmetric 2 and 3, a 4:1:1 weight skew under
#: symmetric load, and a 4x arrival skew under equal weights
TENANT_SETS = (
    _tenant_dicts(2),
    _tenant_dicts(3),
    _tenant_dicts(3, weight_ratio=4.0),
    _tenant_dicts(3, rate_ratio=4.0),
)


@dataclasses.dataclass(frozen=True)
class FairnessRow(ResultRow):
    """One tenant of one fairness-table point."""

    tenants: int
    weights: str
    rates: str
    discipline: str
    tenant: str
    weight: float
    offered: int
    admitted: int
    rejected: int
    completed: int
    goodput_rps: float
    share: float
    target_share: float
    #: point-level fairness indices (repeated on each tenant row)
    jain: float
    share_error: float


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="fairness",
        kind="serving",
        training=TrainingSpec(epochs=FAIRNESS_EPOCHS),
        tenants=make_tenants(3),
        policy=PolicySpec(
            admission="always",
            discipline="weighted",
            queue_capacity=FAIRNESS_QUEUE_CAPACITY,
        ),
        sweep=SweepSpec(axes={
            "tenants": TENANT_SETS,
            "policy.discipline": DISPATCH,
        }),
    )


def _ratio(values: "list[float]") -> str:
    return ":".join(f"{value:g}" for value in values)


def _fairness_point(spec: ScenarioSpec) -> "list[dict]":
    """One sweep point -> one row per tenant; module-level so pool
    workers can unpickle it."""
    with Session(spec) as session:
        result = session.run().results()
    fairness = result.fairness
    tenants = spec.tenant_specs()
    weights = _ratio([tenant.weight for tenant in tenants])
    rates = _ratio([tenant.arrival_rate_per_s for tenant in tenants])
    return [
        {
            "tenants": len(tenants),
            "weights": weights,
            "rates": rates,
            "discipline": spec.policy.discipline,
            "tenant": usage.name,
            "weight": usage.weight,
            "offered": usage.metrics.offered,
            "admitted": usage.metrics.admitted,
            "rejected": usage.metrics.rejected,
            "completed": usage.metrics.completed,
            "goodput_rps": usage.metrics.goodput_rps,
            "share": usage.share,
            "target_share": usage.target_share,
            "jain": fairness.jain_goodput,
            "share_error": fairness.max_share_error,
        }
        for usage in fairness.tenants
    ]


def run_spec(spec: ScenarioSpec) -> dict:
    config = spec.train_config()
    # Baked into the point specs so every point serves the same window
    # (and pool workers re-derive nothing).
    horizon_s = spec.param("horizon_s")
    if horizon_s is None:
        horizon_s = common.baseline_time(config) * float(
            spec.param("open_fraction", DEFAULT_OPEN_FRACTION)
        )
    points = common.sweep(
        spec.sweep_points({"params.horizon_s": horizon_s}),
        _fairness_point,
    )
    return {
        "epochs": spec.training.epochs,
        "seed": spec.seed,
        "horizon_s": horizon_s,
        "rows": [row for point in points for row in point],
    }


def render(data: dict) -> str:
    rows = [
        [
            f"{row['tenants']}x [{row['weights']}]",
            row["rates"],
            row["discipline"],
            row["tenant"],
            f"{row['weight']:g}",
            str(row["offered"]),
            f"{row['admitted']}/{row['rejected']}",
            str(row["completed"]),
            f"{row['goodput_rps']:.2f}",
            f"{row['share']:.3f}",
            f"{row['target_share']:.3f}",
            f"{row['jain']:.3f}",
            common.pct(row["share_error"]),
        ]
        for row in data["rows"]
    ]
    title = (
        "Fairness: per-tenant goodput shares over the shared queue "
        f"({data['epochs']}-epoch training, seed {data['seed']}, "
        f"service open {data['horizon_s']:.1f}s)"
    )
    return common.render_table(
        title,
        ["tenants [w]", "rates (req/s)", "dispatch", "tenant", "weight",
         "offered", "adm/rej", "done", "goodput (req/s)", "share",
         "target", "Jain", "share err"],
        rows,
    )


def rows(data: dict) -> "list[FairnessRow]":
    return [FairnessRow(**row) for row in data["rows"]]


registry.register(
    "fairness",
    "Multi-tenant fairness: tenant sets x dispatch -> per-tenant "
    "goodput shares",
    default_spec, run_spec, render, rows,
)
