"""Figure 7: sensitivity studies of FreeRide (iterative interface).

(a, b) side-task batch size 16-128 for the model-training tasks — time
increase stays around 1%, savings 3.4-7.5%, with OOM cells where
Server-II cannot hold the configuration;
(c, d) model size 1.2B / 3.6B / 6B for all six tasks;
(e, f) micro-batch number 4 / 6 / 8 — more micro-batches, fewer bubbles,
lower savings.
"""

from __future__ import annotations

import dataclasses
import functools

from repro import calibration
from repro.baselines.dedicated import run_dedicated
from repro.experiments import common
from repro.metrics.cost import cost_savings, dedicated_throughput, time_increase
from repro.workloads.registry import WORKLOAD_NAMES, make_workload, workload_factory

BATCH_SIZES = (16, 32, 64, 96, 128)
MODEL_SIZES = ("1.2B", "3.6B", "6B")
MICRO_BATCH_NUMBERS = (4, 6, 8)
MODEL_TASKS = ("resnet18", "resnet50", "vgg19")
SWEEP_EPOCHS = 4


@dataclasses.dataclass(frozen=True)
class Point:
    task: str
    x: object
    time_increase: float
    cost_savings: float | None  # None = OOM on Server-II
    oom: bool = False


def _measure(config, t_no, item) -> Point:
    """One batch-sweep point; runs in a sweep worker."""
    name, batch_size = item
    result = common.run_replicated(config, name, batch_size=batch_size)
    increase = time_increase(result.training.total_time, t_no)
    profile = make_workload(name, batch_size=batch_size).perf
    # The paper's base (batch-64) configurations all run on Server-II by
    # construction; its OOM cells appear only when the sweep grows the
    # batch beyond that, so the memory constraint binds only there.
    dedicated = run_dedicated(
        make_workload(name, batch_size=batch_size), "server_ii",
        duration_s=20.0, enforce_memory=batch_size > 64,
    )
    if dedicated.oom:
        # "the GPU in Server-II does not have enough GPU memory ... so the
        # cost savings cannot be calculated" (paper section 6.3).
        return Point(task=name, x=batch_size, time_increase=increase,
                     cost_savings=None, oom=True)
    savings = cost_savings(
        t_no, result.training.total_time, [(result.total_units, profile)]
    )
    return Point(task=name, x=batch_size, time_increase=increase,
                 cost_savings=savings)


def run_batch_sweep(epochs: int = SWEEP_EPOCHS) -> list[Point]:
    config = common.train_config(epochs=epochs)
    t_no = common.baseline_time(config)  # computed once, shipped to workers
    return common.sweep(
        [(name, batch_size)
         for name in MODEL_TASKS for batch_size in BATCH_SIZES],
        functools.partial(_measure, config, t_no),
    )


def _sized_point(epochs, baselines, item) -> Point:
    """One model-size / micro-batch point; runs in a sweep worker."""
    x, size, micro_batches, name = item
    config = common.train_config(size=size, micro_batches=micro_batches,
                                 epochs=epochs)
    t_no = baselines[(size, micro_batches)]
    result = common.run_replicated(config, name)
    profile = calibration.SIDE_TASK_PROFILES[name]
    return Point(
        task=name,
        x=x,
        time_increase=time_increase(result.training.total_time, t_no),
        cost_savings=cost_savings(
            t_no, result.training.total_time,
            [(result.total_units, profile)],
        ),
    )


def run_model_size_sweep(epochs: int = SWEEP_EPOCHS,
                         tasks=WORKLOAD_NAMES) -> list[Point]:
    # Baselines computed once in the parent and shipped to the workers —
    # no reliance on fork inheritance of the lru caches.
    baselines = {
        (size, 4): common.baseline_time(
            common.train_config(size=size, epochs=epochs))
        for size in MODEL_SIZES
    }
    return common.sweep(
        [(size, size, 4, name) for size in MODEL_SIZES for name in tasks],
        functools.partial(_sized_point, epochs, baselines),
    )


def run_micro_batch_sweep(epochs: int = SWEEP_EPOCHS,
                          tasks=WORKLOAD_NAMES) -> list[Point]:
    baselines = {
        ("3.6B", micro_batches): common.baseline_time(
            common.train_config(micro_batches=micro_batches, epochs=epochs))
        for micro_batches in MICRO_BATCH_NUMBERS
    }
    return common.sweep(
        [(micro_batches, "3.6B", micro_batches, name)
         for micro_batches in MICRO_BATCH_NUMBERS for name in tasks],
        functools.partial(_sized_point, epochs, baselines),
    )


def run(epochs: int = SWEEP_EPOCHS) -> dict:
    return {
        "batch_sweep": run_batch_sweep(epochs),
        "model_size_sweep": run_model_size_sweep(epochs),
        "micro_batch_sweep": run_micro_batch_sweep(epochs),
    }


def _sweep_table(title: str, points: list[Point], x_name: str) -> str:
    rows = [
        [
            point.task,
            str(point.x),
            common.pct(point.time_increase),
            "OOM" if point.oom else common.pct(point.cost_savings),
        ]
        for point in points
    ]
    return common.render_table(
        title, ["side task", x_name, "time increase I", "cost savings S"],
        rows,
    )


def render(data: dict) -> str:
    return "\n\n".join([
        _sweep_table("Figure 7(a,b): varying side-task batch size",
                     data["batch_sweep"], "batch"),
        _sweep_table("Figure 7(c,d): varying model size",
                     data["model_size_sweep"], "model"),
        _sweep_table("Figure 7(e,f): varying micro-batch number",
                     data["micro_batch_sweep"], "micro-batches"),
    ])
