"""Figure 7: sensitivity studies of FreeRide (iterative interface).

(a, b) side-task batch size 16-128 for the model-training tasks — time
increase stays around 1%, savings 3.4-7.5%, with OOM cells where
Server-II cannot hold the configuration;
(c, d) model size 1.2B / 3.6B / 6B for all six tasks;
(e, f) micro-batch number 4 / 6 / 8 — more micro-batches, fewer bubbles,
lower savings.

Three sweeps over one base scenario: each point is a self-contained
``batch``-kind spec (swept axis + precomputed baseline time baked into
``params``) shipped to the pool by the shared sweep executor.
"""

from __future__ import annotations

import dataclasses

from repro import calibration
from repro.api import registry
from repro.api.results import ResultRow
from repro.api.spec import ScenarioSpec, TrainingSpec, WorkloadSpec
from repro.baselines.dedicated import run_dedicated
from repro.experiments import common
from repro.metrics.cost import cost_savings, time_increase
from repro.workloads.registry import WORKLOAD_NAMES, make_workload

BATCH_SIZES = (16, 32, 64, 96, 128)
MODEL_SIZES = ("1.2B", "3.6B", "6B")
MICRO_BATCH_NUMBERS = (4, 6, 8)
MODEL_TASKS = ("resnet18", "resnet50", "vgg19")
SWEEP_EPOCHS = 4


@dataclasses.dataclass(frozen=True)
class Point(ResultRow):
    task: str
    x: object
    time_increase: float
    cost_savings: float | None  # None = OOM on Server-II
    oom: bool = False
    #: which of the three sweeps the point belongs to (set on export)
    sweep: str = ""


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig7",
        kind="batch",
        training=TrainingSpec(epochs=SWEEP_EPOCHS),
        workloads=(WorkloadSpec(name="resnet18"),),
        # Three sweeps share one base scenario, so the grids live in
        # params rather than the single `sweep` slot.
        params={
            "batch_sizes": list(BATCH_SIZES),
            "model_sizes": list(MODEL_SIZES),
            "micro_batch_numbers": list(MICRO_BATCH_NUMBERS),
            "model_tasks": list(MODEL_TASKS),
            "tasks": list(WORKLOAD_NAMES),
        },
    )


def _measure(spec: ScenarioSpec) -> Point:
    """One batch-sweep point; module-level so pool workers can unpickle it."""
    workload = spec.workloads[0]
    name, batch_size = workload.name, workload.batch_size
    t_no = spec.param("t_no")
    result = common.run_replicated(spec.train_config(), name,
                                   batch_size=batch_size)
    increase = time_increase(result.training.total_time, t_no)
    profile = make_workload(name, batch_size=batch_size).perf
    # The paper's base (batch-64) configurations all run on Server-II by
    # construction; its OOM cells appear only when the sweep grows the
    # batch beyond that, so the memory constraint binds only there.
    dedicated = run_dedicated(
        make_workload(name, batch_size=batch_size), "server_ii",
        duration_s=20.0, enforce_memory=batch_size > 64,
    )
    if dedicated.oom:
        # "the GPU in Server-II does not have enough GPU memory ... so the
        # cost savings cannot be calculated" (paper section 6.3).
        return Point(task=name, x=batch_size, time_increase=increase,
                     cost_savings=None, oom=True)
    savings = cost_savings(
        t_no, result.training.total_time, [(result.total_units, profile)]
    )
    return Point(task=name, x=batch_size, time_increase=increase,
                 cost_savings=savings)


def batch_sweep(spec: ScenarioSpec) -> list[Point]:
    t_no = common.baseline_time(spec.train_config())
    points = [
        {"workloads.0.name": name, "workloads.0.batch_size": batch_size,
         "params.t_no": t_no}
        for name in spec.param("model_tasks", MODEL_TASKS)
        for batch_size in spec.param("batch_sizes", BATCH_SIZES)
    ]
    return common.sweep(spec.with_points(points), _measure)


def _sized_point(spec: ScenarioSpec) -> Point:
    """One model-size / micro-batch point; runs in a sweep worker."""
    name = spec.workloads[0].name
    result = common.run_replicated(spec.train_config(), name)
    profile = calibration.SIDE_TASK_PROFILES[name]
    t_no = spec.param("t_no")
    return Point(
        task=name,
        x=spec.param("x"),
        time_increase=time_increase(result.training.total_time, t_no),
        cost_savings=cost_savings(
            t_no, result.training.total_time,
            [(result.total_units, profile)],
        ),
    )


def model_size_sweep(spec: ScenarioSpec) -> list[Point]:
    # Baselines computed once in the parent and baked into the point
    # specs — no reliance on fork inheritance of the lru caches.
    baselines = {
        size: common.baseline_time(
            spec.override({"training.model": size}).train_config())
        for size in spec.param("model_sizes", MODEL_SIZES)
    }
    points = [
        {"training.model": size, "workloads.0.name": name,
         "params.x": size, "params.t_no": baselines[size]}
        for size in spec.param("model_sizes", MODEL_SIZES)
        for name in spec.param("tasks", WORKLOAD_NAMES)
    ]
    return common.sweep(spec.with_points(points), _sized_point)


def micro_batch_sweep(spec: ScenarioSpec) -> list[Point]:
    baselines = {
        micro_batches: common.baseline_time(
            spec.override({"training.micro_batches": micro_batches})
            .train_config())
        for micro_batches in spec.param("micro_batch_numbers",
                                        MICRO_BATCH_NUMBERS)
    }
    points = [
        {"training.micro_batches": micro_batches, "workloads.0.name": name,
         "params.x": micro_batches, "params.t_no": baselines[micro_batches]}
        for micro_batches in spec.param("micro_batch_numbers",
                                        MICRO_BATCH_NUMBERS)
        for name in spec.param("tasks", WORKLOAD_NAMES)
    ]
    return common.sweep(spec.with_points(points), _sized_point)


def run_spec(spec: ScenarioSpec) -> dict:
    return {
        "batch_sweep": batch_sweep(spec),
        "model_size_sweep": model_size_sweep(spec),
        "micro_batch_sweep": micro_batch_sweep(spec),
    }


def _sweep_table(title: str, points: list[Point], x_name: str) -> str:
    rows = [
        [
            point.task,
            str(point.x),
            common.pct(point.time_increase),
            "OOM" if point.oom else common.pct(point.cost_savings),
        ]
        for point in points
    ]
    return common.render_table(
        title, ["side task", x_name, "time increase I", "cost savings S"],
        rows,
    )


def render(data: dict) -> str:
    return "\n\n".join([
        _sweep_table("Figure 7(a,b): varying side-task batch size",
                     data["batch_sweep"], "batch"),
        _sweep_table("Figure 7(c,d): varying model size",
                     data["model_size_sweep"], "model"),
        _sweep_table("Figure 7(e,f): varying micro-batch number",
                     data["micro_batch_sweep"], "micro-batches"),
    ])


def rows(data: dict) -> list[Point]:
    return [
        dataclasses.replace(point, sweep=sweep_name)
        for sweep_name in ("batch_sweep", "model_size_sweep",
                           "micro_batch_sweep")
        for point in data[sweep_name]
    ]


registry.register(
    "fig7",
    "Sensitivity sweeps: batch size, model size, micro-batch count",
    default_spec, run_spec, render, rows,
)
