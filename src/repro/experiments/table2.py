"""Table 2: time increase I and cost savings S per co-location method.

Four methods — FreeRide iterative, FreeRide imperative, raw Nvidia MPS,
and naive co-location — across the six side tasks plus the mixed workload
(PageRank, ResNet18, Image, VGG19 on the GPUs of stages 0-3).

The (task x method) product is the scenario's sweep grid; the baseline
training time is computed once and baked into the point specs.
"""

from __future__ import annotations

import dataclasses

from repro import calibration
from repro.api import registry
from repro.api.results import ResultRow
from repro.api.session import Session
from repro.api.spec import ScenarioSpec, SweepSpec, TrainingSpec, WorkloadSpec
from repro.baselines.colocation import run_colocation
from repro.experiments import common
from repro.metrics.cost import cost_savings, time_increase
from repro.workloads.registry import WORKLOAD_NAMES, workload_factory

METHODS = ("iterative", "imperative", "mps", "naive")


@dataclasses.dataclass(frozen=True)
class Cell(ResultRow):
    method: str
    task: str
    time_increase: float
    cost_savings: float


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="table2",
        kind="batch",
        training=TrainingSpec(epochs=common.DEFAULT_EPOCHS),
        workloads=(WorkloadSpec(name="resnet18"),),
        sweep=SweepSpec(axes={
            "workloads.0.name": WORKLOAD_NAMES,
            "params.method": METHODS,
        }),
        params={"include_mixed": True},
    )


def _method_cell(spec: ScenarioSpec) -> Cell:
    """One (task, method) cell; runs in a sweep worker."""
    name = spec.workloads[0].name
    method = spec.param("method")
    t_no = spec.param("t_no")
    config = spec.train_config()
    if method in ("iterative", "imperative"):
        result = common.run_replicated(config, name, interface=method)
    else:
        result = run_colocation(config, workload_factory(name), mode=method)
    profile = calibration.SIDE_TASK_PROFILES[name]
    return Cell(
        method=method,
        task=name,
        time_increase=time_increase(result.training.total_time, t_no),
        cost_savings=cost_savings(
            t_no, result.training.total_time,
            [(result.total_units, profile)],
        ),
    )


def _mixed_cells(spec: ScenarioSpec, t_no: float) -> list[Cell]:
    """The mixed workload: one task per stage (paper section 6.2)."""
    mixed = calibration.MIXED_WORKLOAD_BY_STAGE
    config = spec.train_config()
    cells = []
    for interface in ("iterative", "imperative"):
        mixed_spec = dataclasses.replace(
            spec,
            sweep=None,
            workloads=tuple(
                WorkloadSpec(name=name, interface=interface, replicate=False)
                for name in mixed
            ),
        )
        result = Session(mixed_spec).run().results()
        work = [
            (report.units_done,
             calibration.SIDE_TASK_PROFILES[mixed[report.stage]])
            for report in result.tasks
        ]
        cells.append(Cell(
            method=interface,
            task="mixed",
            time_increase=time_increase(result.training.total_time, t_no),
            cost_savings=cost_savings(t_no, result.training.total_time, work),
        ))
    for mode in ("mps", "naive"):
        placement = [
            (stage, workload_factory(name))
            for stage, name in enumerate(mixed)
        ]
        result = run_colocation(config, mode=mode, placement=placement)
        work = [
            (report.units_done, calibration.SIDE_TASK_PROFILES[report.name])
            for report in result.tasks
        ]
        cells.append(Cell(
            method=mode,
            task="mixed",
            time_increase=time_increase(result.training.total_time, t_no),
            cost_savings=cost_savings(t_no, result.training.total_time, work),
        ))
    return cells


def run_spec(spec: ScenarioSpec) -> dict:
    t_no = common.baseline_time(spec.train_config())
    cells: list[Cell] = common.sweep(
        spec.sweep_points({"params.t_no": t_no}), _method_cell
    )
    if spec.param("include_mixed", True):
        cells.extend(_mixed_cells(spec, t_no))
    return {"cells": cells, "baseline_time_s": t_no}


def render(data: dict) -> str:
    tasks = []
    for cell in data["cells"]:
        if cell.task not in tasks:
            tasks.append(cell.task)
    by_key = {(cell.task, cell.method): cell for cell in data["cells"]}
    rows = []
    for task in tasks:
        row = [task]
        for method in METHODS:
            cell = by_key.get((task, method))
            if cell is None:
                row.extend(["-", "-"])
            else:
                row.extend([common.pct(cell.time_increase),
                            common.pct(cell.cost_savings)])
        rows.append(row)
    return common.render_table(
        "Table 2: time increase I (lower better) / cost savings S "
        "(higher better)",
        ["side task",
         "iter I", "iter S",
         "imper I", "imper S",
         "MPS I", "MPS S",
         "naive I", "naive S"],
        rows,
    )


def rows(data: dict) -> list[Cell]:
    return list(data["cells"])


registry.register(
    "table2",
    "Time increase I and cost savings S for all tasks and baselines",
    default_spec, run_spec, render, rows,
)
