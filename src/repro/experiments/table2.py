"""Table 2: time increase I and cost savings S per co-location method.

Four methods — FreeRide iterative, FreeRide imperative, raw Nvidia MPS,
and naive co-location — across the six side tasks plus the mixed workload
(PageRank, ResNet18, Image, VGG19 on the GPUs of stages 0-3).
"""

from __future__ import annotations

import dataclasses
import functools

from repro import calibration
from repro.baselines.colocation import run_colocation
from repro.core.middleware import FreeRide
from repro.experiments import common
from repro.metrics.cost import cost_savings, time_increase
from repro.workloads.registry import WORKLOAD_NAMES, workload_factory

METHODS = ("iterative", "imperative", "mps", "naive")


@dataclasses.dataclass(frozen=True)
class Cell:
    method: str
    task: str
    time_increase: float
    cost_savings: float


def _freeride_cell(config, name, interface, t_no) -> Cell:
    result = common.run_replicated(config, name, interface=interface)
    profile = calibration.SIDE_TASK_PROFILES[name]
    return Cell(
        method=interface,
        task=name,
        time_increase=time_increase(result.training.total_time, t_no),
        cost_savings=cost_savings(
            t_no, result.training.total_time,
            [(result.total_units, profile)],
        ),
    )


def _baseline_cell(config, name, mode, t_no) -> Cell:
    result = run_colocation(config, workload_factory(name), mode=mode)
    profile = calibration.SIDE_TASK_PROFILES[name]
    return Cell(
        method=mode,
        task=name,
        time_increase=time_increase(result.training.total_time, t_no),
        cost_savings=cost_savings(
            t_no, result.training.total_time,
            [(result.total_units, profile)],
        ),
    )


def _mixed_cells(config, t_no) -> list[Cell]:
    """The mixed workload: one task per stage (paper section 6.2)."""
    mixed = calibration.MIXED_WORKLOAD_BY_STAGE
    cells = []
    for interface in ("iterative", "imperative"):
        freeride = FreeRide(config)
        for name in mixed:
            freeride.submit(workload_factory(name, interface=interface),
                            interface)
        result = freeride.run()
        work = [
            (report.units_done,
             calibration.SIDE_TASK_PROFILES[mixed[report.stage]])
            for report in result.tasks
        ]
        cells.append(Cell(
            method=interface,
            task="mixed",
            time_increase=time_increase(result.training.total_time, t_no),
            cost_savings=cost_savings(t_no, result.training.total_time, work),
        ))
    for mode in ("mps", "naive"):
        placement = [
            (stage, workload_factory(name))
            for stage, name in enumerate(mixed)
        ]
        result = run_colocation(config, mode=mode, placement=placement)
        work = [
            (report.units_done, calibration.SIDE_TASK_PROFILES[report.name])
            for report in result.tasks
        ]
        cells.append(Cell(
            method=mode,
            task="mixed",
            time_increase=time_increase(result.training.total_time, t_no),
            cost_savings=cost_savings(t_no, result.training.total_time, work),
        ))
    return cells


def _method_cell(config, t_no, item) -> Cell:
    """One (task, method) cell; runs in a sweep worker."""
    name, method = item
    if method in ("iterative", "imperative"):
        return _freeride_cell(config, name, method, t_no)
    return _baseline_cell(config, name, method, t_no)


def run(epochs: int = common.DEFAULT_EPOCHS, tasks=WORKLOAD_NAMES,
        include_mixed: bool = True) -> dict:
    config = common.train_config(epochs=epochs)
    t_no = common.baseline_time(config)
    cells: list[Cell] = common.sweep(
        [(name, method) for name in tasks for method in METHODS],
        functools.partial(_method_cell, config, t_no),
    )
    if include_mixed:
        cells.extend(_mixed_cells(config, t_no))
    return {"cells": cells, "baseline_time_s": t_no}


def render(data: dict) -> str:
    tasks = []
    for cell in data["cells"]:
        if cell.task not in tasks:
            tasks.append(cell.task)
    by_key = {(cell.task, cell.method): cell for cell in data["cells"]}
    rows = []
    for task in tasks:
        row = [task]
        for method in METHODS:
            cell = by_key.get((task, method))
            if cell is None:
                row.extend(["-", "-"])
            else:
                row.extend([common.pct(cell.time_increase),
                            common.pct(cell.cost_savings)])
        rows.append(row)
    return common.render_table(
        "Table 2: time increase I (lower better) / cost savings S "
        "(higher better)",
        ["side task",
         "iter I", "iter S",
         "imper I", "imper S",
         "MPS I", "MPS S",
         "naive I", "naive S"],
        rows,
    )
