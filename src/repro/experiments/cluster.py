"""The `cluster` experiment: multi-job deployments behind one manager.

The paper's section-8 extension, swept: each point builds a cluster of
N pipeline-training jobs whose bubbles all report to a single shared
side-task manager, places a shared workload mix across the *combined*
worker pool, and measures how much of the cluster's total bubble time
the side tasks actually harvested. The sweep crosses job count x
assignment policy x workload mix into a cluster-utilization table; each
point is a self-contained ``cluster``-kind
:class:`~repro.api.spec.ScenarioSpec` executed through the Session API
and shipped to the process pool by the shared sweep executor.
"""

from __future__ import annotations

import dataclasses

from repro.api import registry
from repro.api.results import ResultRow
from repro.api.session import Session
from repro.api.spec import ScenarioSpec, SweepSpec, TrainingSpec, WorkloadSpec
from repro.experiments import common
from repro.metrics.cost import time_increase

JOB_COUNTS = (1, 2, 3)
POLICIES = ("least_loaded", "first_fit")
#: workload mixes shared across the combined pool (axis values are
#: whole ``workloads`` subtrees, applied per sweep point; inner lists —
#: not tuples — so the spec round-trips JSON byte-exactly)
MIXES = (
    [{"name": "pagerank"}],
    [{"name": "pagerank"}, {"name": "resnet18"}],
)
CLUSTER_EPOCHS = 3


@dataclasses.dataclass(frozen=True)
class ClusterRow(ResultRow):
    """One cluster-utilization point."""

    jobs: int
    policy: str
    mix: str
    workers: int
    placed: int
    rejected: int
    total_units: float
    bubble_s: float
    harvested_s: float
    utilization: float
    mean_time_increase: float


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="cluster",
        kind="cluster",
        training=TrainingSpec(epochs=CLUSTER_EPOCHS),
        jobs=2,
        workloads=(WorkloadSpec(name="pagerank"),),
        sweep=SweepSpec(axes={
            "jobs": JOB_COUNTS,
            "policy.assignment": POLICIES,
            "workloads": MIXES,
        }),
    )


def _cluster_point(spec: ScenarioSpec) -> dict:
    """One sweep point; module-level so pool workers can unpickle it."""
    with Session(spec) as session:
        result = session.run().results()
    # Per-job no-side-task baselines (cached per worker process; fully
    # deterministic, so pool and serial paths agree byte for byte).
    increases = [
        time_increase(job.training.total_time, common.baseline_time(config))
        for job, config in zip(result.jobs, spec.job_configs())
    ]
    return {
        "jobs": spec.num_jobs,
        "policy": spec.policy.assignment,
        "mix": "+".join(workload.name for workload in spec.workloads),
        "workers": sum(job.num_stages for job in result.jobs),
        "placed": len(result.tasks),
        "rejected": len(result.rejections),
        "total_units": result.total_units,
        "bubble_s": result.total_bubble_s,
        "harvested_s": result.harvested_s,
        "utilization": result.utilization,
        "mean_time_increase": sum(increases) / len(increases),
    }


def run_spec(spec: ScenarioSpec) -> dict:
    rows = common.sweep(spec.sweep_points(), _cluster_point)
    return {
        "epochs": spec.training.epochs,
        "seed": spec.seed,
        "rows": rows,
    }


def render(data: dict) -> str:
    rows = [
        [
            str(row["jobs"]),
            row["policy"],
            row["mix"],
            str(row["workers"]),
            f"{row['placed']}/{row['placed'] + row['rejected']}",
            f"{row['total_units']:.0f}",
            f"{row['bubble_s']:.1f}",
            common.pct(row["utilization"]),
            common.pct(row["mean_time_increase"]),
        ]
        for row in data["rows"]
    ]
    title = (
        "Cluster: N training jobs, one shared side-task manager "
        f"({data['epochs']}-epoch training, seed {data['seed']})"
    )
    return common.render_table(
        title,
        ["jobs", "assignment", "mix", "workers", "placed", "units",
         "bubble (s)", "utilization", "train +I"],
        rows,
    )


def rows(data: dict) -> list[ClusterRow]:
    return [ClusterRow(**row) for row in data["rows"]]


registry.register(
    "cluster",
    "Multi-job cluster: jobs x assignment x mix over the combined pool",
    default_spec, run_spec, render, rows,
)
