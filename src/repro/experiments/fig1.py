"""Figure 1: one pipeline-training epoch in DeepSpeed.

(a) per-stage op timeline with SM occupancy — bubbles are the shaded
gaps, annotated with their Type (stage 0 reads "B C C C", stage 1
"A B C C A", ...); (b) per-stage GPU memory, utilized vs unutilized.
"""

from __future__ import annotations

from repro.experiments import common
from repro.gpu.cluster import make_server_i
from repro.pipeline.config import TrainConfig
from repro.pipeline.engine import PipelineEngine
from repro.sim.engine import Engine


def run(size: str = "3.6B", micro_batches: int = 4) -> dict:
    config = common.train_config(size, micro_batches, epochs=1)
    sim = Engine()
    # This figure plots the SM-occupancy trace, so recording is opted in.
    server = make_server_i(sim, record_occupancy=True)
    engine = PipelineEngine(sim, server, config)
    result = engine.run()
    trace = result.trace
    stages = []
    for stage in range(config.num_stages):
        ops = [
            {
                "op": str(record.op),
                "start": record.start,
                "end": record.end,
            }
            for record in sorted(trace.ops_of(stage), key=lambda r: r.start)
        ]
        bubbles = [
            {
                "type": bubble.btype.value,
                "start": bubble.start,
                "end": bubble.end,
                "duration": bubble.duration,
            }
            for bubble in sorted(trace.bubbles_of(stage=stage),
                                 key=lambda b: b.start)
        ]
        memory_row = engine.memory.per_stage_summary()[stage]
        stages.append(
            {
                "stage": stage,
                "ops": ops,
                "bubbles": bubbles,
                "pattern": " ".join(bubble["type"] for bubble in bubbles),
                "used_gb": memory_row["used_gb"],
                "available_gb": memory_row["available_gb"],
            }
        )
    return {
        "epoch_time": result.total_time,
        "stages": stages,
        "occupancy": {
            stage: server.gpu(stage).occupancy_trace
            for stage in range(config.num_stages)
        },
    }


def _gantt(stage_row: dict, epoch_time: float, width: int = 72) -> str:
    """ASCII rendering of one stage's timeline: ops filled, bubbles typed."""
    line = [" "] * width
    scale = width / epoch_time
    for op in stage_row["ops"]:
        kind = "F" if "FP" in op["op"] else "B"
        for col in range(int(op["start"] * scale), int(op["end"] * scale)):
            if 0 <= col < width:
                line[col] = kind if kind == "F" else "#"
    for bubble in stage_row["bubbles"]:
        mid = int((bubble["start"] + bubble["end"]) / 2 * scale)
        for col in range(int(bubble["start"] * scale),
                         int(bubble["end"] * scale)):
            if 0 <= col < width and line[col] == " ":
                line[col] = "."
        if 0 <= mid < width:
            line[mid] = bubble["type"].lower()
    return "".join(line)


def render(data: dict) -> str:
    lines = [
        "Figure 1(a): pipeline ops and bubbles "
        f"(epoch = {data['epoch_time']:.2f}s; F=forward, #=backward, "
        "dotted = bubble with type letter)",
    ]
    for row in data["stages"]:
        lines.append(
            f"  stage {row['stage']}: |{_gantt(row, data['epoch_time'])}|"
            f"  bubbles: {row['pattern']}"
        )
    lines.append("")
    lines.append("Figure 1(b): GPU memory utilization per stage")
    for row in data["stages"]:
        used = row["used_gb"]
        avail = row["available_gb"]
        bar = "#" * int(used / 48 * 40) + "." * int(avail / 48 * 40)
        lines.append(
            f"  stage {row['stage']}: [{bar:<40s}] "
            f"used {used:5.1f} GB / unutilized {avail:5.1f} GB"
        )
    return "\n".join(lines)
