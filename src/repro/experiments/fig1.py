"""Figure 1: one pipeline-training epoch in DeepSpeed.

(a) per-stage op timeline with SM occupancy — bubbles are the shaded
gaps, annotated with their Type (stage 0 reads "B C C C", stage 1
"A B C C A", ...); (b) per-stage GPU memory, utilized vs unutilized.

Registered as the ``fig1`` scenario; the spec-driven entry point is
:func:`run_spec`.
"""

from __future__ import annotations

import dataclasses

from repro.api import registry
from repro.api.results import ResultRow
from repro.api.session import Session
from repro.api.spec import ClusterSpec, ScenarioSpec, TrainingSpec


@dataclasses.dataclass(frozen=True)
class StageRow(ResultRow):
    """One stage's bubble pattern and memory split."""

    stage: int
    pattern: str
    bubble_count: int
    bubble_time_s: float
    used_gb: float
    available_gb: float


def default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="fig1",
        kind="pipeline",
        # This figure plots the SM-occupancy trace, so recording opts in.
        cluster=ClusterSpec(record_occupancy=True),
        training=TrainingSpec(epochs=1),
    )


def run_spec(spec: ScenarioSpec) -> dict:
    session = Session(spec).run()
    result = session.results()
    runner = session.runner
    trace = result.trace
    stages = []
    for stage in range(spec.training.num_stages):
        ops = [
            {
                "op": str(record.op),
                "start": record.start,
                "end": record.end,
            }
            for record in sorted(trace.ops_of(stage), key=lambda r: r.start)
        ]
        bubbles = [
            {
                "type": bubble.btype.value,
                "start": bubble.start,
                "end": bubble.end,
                "duration": bubble.duration,
            }
            for bubble in sorted(trace.bubbles_of(stage=stage),
                                 key=lambda b: b.start)
        ]
        memory_row = runner.engine.memory.per_stage_summary()[stage]
        stages.append(
            {
                "stage": stage,
                "ops": ops,
                "bubbles": bubbles,
                "pattern": " ".join(bubble["type"] for bubble in bubbles),
                "used_gb": memory_row["used_gb"],
                "available_gb": memory_row["available_gb"],
            }
        )
    return {
        "epoch_time": result.total_time,
        "stages": stages,
        "occupancy": {
            stage: runner.server.gpu(stage).occupancy_trace
            for stage in range(spec.training.num_stages)
        },
    }


def _gantt(stage_row: dict, epoch_time: float, width: int = 72) -> str:
    """ASCII rendering of one stage's timeline: ops filled, bubbles typed."""
    line = [" "] * width
    scale = width / epoch_time
    for op in stage_row["ops"]:
        kind = "F" if "FP" in op["op"] else "B"
        for col in range(int(op["start"] * scale), int(op["end"] * scale)):
            if 0 <= col < width:
                line[col] = kind if kind == "F" else "#"
    for bubble in stage_row["bubbles"]:
        mid = int((bubble["start"] + bubble["end"]) / 2 * scale)
        for col in range(int(bubble["start"] * scale),
                         int(bubble["end"] * scale)):
            if 0 <= col < width and line[col] == " ":
                line[col] = "."
        if 0 <= mid < width:
            line[mid] = bubble["type"].lower()
    return "".join(line)


def render(data: dict) -> str:
    lines = [
        "Figure 1(a): pipeline ops and bubbles "
        f"(epoch = {data['epoch_time']:.2f}s; F=forward, #=backward, "
        "dotted = bubble with type letter)",
    ]
    for row in data["stages"]:
        lines.append(
            f"  stage {row['stage']}: |{_gantt(row, data['epoch_time'])}|"
            f"  bubbles: {row['pattern']}"
        )
    lines.append("")
    lines.append("Figure 1(b): GPU memory utilization per stage")
    for row in data["stages"]:
        used = row["used_gb"]
        avail = row["available_gb"]
        bar = "#" * int(used / 48 * 40) + "." * int(avail / 48 * 40)
        lines.append(
            f"  stage {row['stage']}: [{bar:<40s}] "
            f"used {used:5.1f} GB / unutilized {avail:5.1f} GB"
        )
    return "\n".join(lines)


def rows(data: dict) -> list[StageRow]:
    return [
        StageRow(
            stage=row["stage"],
            pattern=row["pattern"],
            bubble_count=len(row["bubbles"]),
            bubble_time_s=sum(b["duration"] for b in row["bubbles"]),
            used_gb=row["used_gb"],
            available_gb=row["available_gb"],
        )
        for row in data["stages"]
    ]


registry.register(
    "fig1",
    "One pipeline epoch: per-stage op timeline, bubble types, memory split",
    default_spec, run_spec, render, rows,
)
