"""Figure 2: bubble statistics under different model sizes.

(a) the (duration, available-memory) distribution of bubbles for 1.2B,
3.6B and 6B models; (b) epoch time, per-stage bubble time and bubble rate
per model size — 42.4% falling to ~40.4% — plus the micro-batch-8 point
(26.2%).

The sweep grid (three model sizes at 4 micro-batches, plus the 3.6B /
8-micro-batch point) lives in the scenario spec; each point is a
self-contained ``pipeline``-kind spec run by the shared sweep executor.
"""

from __future__ import annotations

import dataclasses

from repro.api import registry
from repro.api.results import ResultRow
from repro.api.session import Session
from repro.api.spec import ScenarioSpec, SweepSpec, TrainingSpec
from repro.experiments import common
from repro.pipeline.analysis import bubble_rate, bubble_shape_stats

MODEL_SIZES = ("1.2B", "3.6B", "6B")


@dataclasses.dataclass(frozen=True)
class BubbleStatsRow(ResultRow):
    """One (model size, micro-batch) point of Figure 2(b)."""

    model: str
    micro_batches: int
    epoch_time_s: float
    bubble_time_s: float
    bubble_rate: float
    min_duration_s: float
    max_duration_s: float


def default_spec() -> ScenarioSpec:
    points = tuple(
        {"training.model": size, "training.micro_batches": 4}
        for size in MODEL_SIZES
    ) + ({"training.model": "3.6B", "training.micro_batches": 8},)
    return ScenarioSpec(
        name="fig2",
        kind="pipeline",
        training=TrainingSpec(epochs=4),
        sweep=SweepSpec(points=points),
    )


def _point(spec: ScenarioSpec) -> dict:
    """One sweep point; module-level so pool workers can unpickle it."""
    result = Session(spec).run().results()
    stats = bubble_shape_stats(result.trace)
    return {
        "model": spec.training.model,
        "micro_batches": spec.training.micro_batches,
        "epoch_time_s": result.trace.mean_epoch_time(),
        "bubble_time_s": result.trace.mean_stage_bubble_time(),
        "bubble_rate": bubble_rate(result.trace),
        "duration_range_s": (stats["min_s"], stats["max_s"]),
        "points": stats["points"],
        "per_stage": stats["per_stage"],
    }


def run_spec(spec: ScenarioSpec) -> dict:
    points = common.sweep(spec.sweep_points(), _point)
    return {"by_model": points[:-1], "micro_batch_8": points[-1]}


def render(data: dict) -> str:
    rows = [
        [
            row["model"],
            f"{row['epoch_time_s']:.2f}",
            f"{row['bubble_time_s']:.2f}",
            common.pct(row["bubble_rate"]),
            f"{row['duration_range_s'][0]:.2f}-{row['duration_range_s'][1]:.2f}",
        ]
        for row in data["by_model"]
    ]
    table = common.render_table(
        "Figure 2(b): bubbles under different model sizes",
        ["model", "epoch time (s)", "bubble time (s)", "bubble rate",
         "duration range (s)"],
        rows,
    )
    micro8 = data["micro_batch_8"]
    extra = (
        f"\nmicro-batches = 8 (3.6B): bubble rate "
        f"{common.pct(micro8['bubble_rate'])} (paper: 26.2%)"
    )
    scatter = ["", "Figure 2(a): bubble shapes (duration s x available GB),"
                   " one line per stage:"]
    for row in data["by_model"]:
        for stage_stats in row["per_stage"]:
            scatter.append(
                f"  {row['model']:>4s} stage {stage_stats['stage']}: "
                f"mean duration {stage_stats['mean_duration_s']:.2f}s, "
                f"available {stage_stats['available_gb']:.1f} GB, "
                f"{stage_stats['count']} bubbles"
            )
    return table + extra + "\n" + "\n".join(scatter)


def rows(data: dict) -> list[BubbleStatsRow]:
    return [
        BubbleStatsRow(
            model=row["model"],
            micro_batches=row["micro_batches"],
            epoch_time_s=row["epoch_time_s"],
            bubble_time_s=row["bubble_time_s"],
            bubble_rate=row["bubble_rate"],
            min_duration_s=row["duration_range_s"][0],
            max_duration_s=row["duration_range_s"][1],
        )
        for row in data["by_model"] + [data["micro_batch_8"]]
    ]


registry.register(
    "fig2",
    "Bubble characterization across model sizes (rate, shape, memory)",
    default_spec, run_spec, render, rows,
)
