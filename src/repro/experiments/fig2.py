"""Figure 2: bubble statistics under different model sizes.

(a) the (duration, available-memory) distribution of bubbles for 1.2B,
3.6B and 6B models; (b) epoch time, per-stage bubble time and bubble rate
per model size — 42.4% falling to ~40.4% — plus the micro-batch-8 point
(26.2%).
"""

from __future__ import annotations

import functools

from repro.experiments import common
from repro.gpu.cluster import make_server_i
from repro.pipeline.analysis import bubble_rate, bubble_shape_stats
from repro.pipeline.engine import PipelineEngine
from repro.sim.engine import Engine

MODEL_SIZES = ("1.2B", "3.6B", "6B")


def _point(epochs: int, item: tuple[str, int]) -> dict:
    size, micro_batches = item
    return _one(size, micro_batches, epochs)


def _one(size: str, micro_batches: int, epochs: int) -> dict:
    config = common.train_config(size, micro_batches, epochs)
    sim = Engine()
    result = PipelineEngine(sim, make_server_i(sim), config).run()
    stats = bubble_shape_stats(result.trace)
    return {
        "model": size,
        "micro_batches": micro_batches,
        "epoch_time_s": result.trace.mean_epoch_time(),
        "bubble_time_s": result.trace.mean_stage_bubble_time(),
        "bubble_rate": bubble_rate(result.trace),
        "duration_range_s": (stats["min_s"], stats["max_s"]),
        "points": stats["points"],
        "per_stage": stats["per_stage"],
    }


def run(epochs: int = 4) -> dict:
    points = common.sweep(
        [(size, 4) for size in MODEL_SIZES] + [("3.6B", 8)],
        functools.partial(_point, epochs),
    )
    return {"by_model": points[:-1], "micro_batch_8": points[-1]}


def render(data: dict) -> str:
    rows = [
        [
            row["model"],
            f"{row['epoch_time_s']:.2f}",
            f"{row['bubble_time_s']:.2f}",
            common.pct(row["bubble_rate"]),
            f"{row['duration_range_s'][0]:.2f}-{row['duration_range_s'][1]:.2f}",
        ]
        for row in data["by_model"]
    ]
    table = common.render_table(
        "Figure 2(b): bubbles under different model sizes",
        ["model", "epoch time (s)", "bubble time (s)", "bubble rate",
         "duration range (s)"],
        rows,
    )
    micro8 = data["micro_batch_8"]
    extra = (
        f"\nmicro-batches = 8 (3.6B): bubble rate "
        f"{common.pct(micro8['bubble_rate'])} (paper: 26.2%)"
    )
    scatter = ["", "Figure 2(a): bubble shapes (duration s x available GB),"
                   " one line per stage:"]
    for row in data["by_model"]:
        for stage_stats in row["per_stage"]:
            scatter.append(
                f"  {row['model']:>4s} stage {stage_stats['stage']}: "
                f"mean duration {stage_stats['mean_duration_s']:.2f}s, "
                f"available {stage_stats['available_gb']:.1f} GB, "
                f"{stage_stats['count']} bubbles"
            )
    return table + extra + "\n" + "\n".join(scatter)
