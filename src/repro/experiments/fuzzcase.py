"""``fuzzcase`` — replay one fuzz-corpus spec under the full check suite.

The fuzzer writes every shrunk failure to a corpus file whose
``"scenario"`` key holds the minimized spec; this experiment is the
replay side of that loop::

    repro run fuzzcase --spec artifacts/fuzz-corpus/case-81.json

runs the spec through a fresh session, checks every registered
invariant, re-runs it under every applicable equivalence frame, and
renders the verdict. It is registered ``any_kind`` — corpus specs can
be batch, serving, cluster, or pipeline, and all of them replay through
the same harness (every other experiment is bound to one spec kind).

The default spec is a small healthy serving scenario, so a bare
``repro run fuzzcase`` doubles as a one-case smoke test of the whole
invariant + frame machinery.
"""

from __future__ import annotations

import typing

from repro.api import registry

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.api.spec import ScenarioSpec


def _spec() -> "ScenarioSpec":
    from repro.api.spec import ArrivalSpec, ScenarioSpec, TrainingSpec

    return ScenarioSpec(
        name="fuzzcase",
        kind="serving",
        training=TrainingSpec(epochs=1),
        arrivals=ArrivalSpec(rate_per_s=2.0),
        params={"horizon_s": 3.0},
    )


def run_spec(spec: "ScenarioSpec") -> dict:
    from repro.fuzz import run_case

    case = run_case(spec)
    return {
        "kind": spec.kind,
        "name": spec.name,
        "ok": case.ok,
        "frames": list(case.frames_run),
        "violations": [str(violation) for violation in case.violations],
        "frame_mismatches": [str(mismatch) for mismatch in case.mismatches],
        "error": case.error,
        "digest": case.digest,
    }


def render(data: dict) -> str:
    lines = [
        f"fuzzcase {data['name']} [{data['kind']}]: "
        f"{'OK' if data['ok'] else 'FAILED'}",
        "frames checked: " + (", ".join(data["frames"]) or "none"),
    ]
    lines += [f"  {line}" for line in data["violations"]]
    lines += [f"  {line}" for line in data["frame_mismatches"]]
    if data["error"]:
        lines.append(f"  exception: {data['error']}")
    return "\n".join(lines)


registry.register(
    "fuzzcase",
    "replay one fuzz spec under every invariant and equivalence frame",
    spec=_spec,
    run_spec=run_spec,
    render=render,
    any_kind=True,
)
