"""Latency classes and SLO accounting for the serving layer.

A request carries a latency class; the class maps to a completion
deadline relative to the request's arrival. The frontend stamps the
resulting *absolute* deadline onto the :class:`~repro.core.task_spec.
TaskSpec` it submits, where the deadline-aware assignment policies
(:func:`repro.core.policies.edf_policy` and friends) and the goodput
metric read it back.

The module also provides the dispatch-order disciplines the frontend's
admission queue can use: FIFO, earliest-deadline-first, and a
starvation-aware EDF that ages long-waiting best-effort requests into
urgency instead of letting deadline traffic bury them forever.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.frontend import RequestRecord


@dataclasses.dataclass(frozen=True)
class SLOClass:
    """One latency class: a name and a relative completion deadline."""

    name: str
    #: seconds from arrival to the completion deadline; None = best effort
    deadline_s: float | None

    def absolute_deadline(self, arrival_s: float) -> float | None:
        if self.deadline_s is None:
            return None
        return arrival_s + self.deadline_s


#: The serving experiments' three classes. Deadlines are sized against
#: the simulated bubble capacity: an interactive PageRank job needs a
#: couple of bubbles; a batch job only has to finish within the run.
SLO_CLASSES: dict[str, SLOClass] = {
    "interactive": SLOClass("interactive", deadline_s=10.0),
    "standard": SLOClass("standard", deadline_s=30.0),
    "batch": SLOClass("batch", deadline_s=None),
}


def slo_class(name: str) -> SLOClass:
    """Look up a class; unknown names are treated as best effort."""
    return SLO_CLASSES.get(name, SLOClass(name or "best_effort", None))


def met_slo(deadline_s: float | None, completed_at: float | None) -> bool:
    """Did a completion at ``completed_at`` meet its deadline?

    Unfinished requests never meet an SLO; best-effort requests (no
    deadline) meet theirs by completing at all.
    """
    if completed_at is None:
        return False
    return deadline_s is None or completed_at <= deadline_s + 1e-9


# ----------------------------------------------------------------------
# dispatch-order disciplines for the admission queue
# ----------------------------------------------------------------------
#: Given the queued records and the current time, the index to dispatch.
QueueDiscipline = typing.Callable[["typing.Sequence[RequestRecord]", float], int]

#: Aging weight for the starvation-aware discipline: one second of
#: waiting buys this many seconds of effective deadline credit.
AGING_WEIGHT = 0.5

#: Ageable deadline assigned to best-effort requests (relative to
#: arrival) by the starvation-aware discipline only — plain EDF keeps
#: them at +inf. Finite (inf would never age) and sized to the
#: simulation's timescale — runs are tens of seconds, so a best-effort
#: request waiting a few tens of seconds starts undercutting fresh
#: deadline traffic.
BEST_EFFORT_DEADLINE_S = 60.0


def _ageable_deadline(record: "RequestRecord") -> float:
    """A finite deadline for aging: best-effort gets arrival + the
    best-effort horizon instead of EDF's +inf."""
    if record.deadline_s is None:
        return record.request.arrival_s + BEST_EFFORT_DEADLINE_S
    return record.deadline_s


def fifo_discipline(queue, now: float) -> int:
    """Dispatch in arrival order."""
    return 0


def edf_discipline(queue, now: float) -> int:
    """Dispatch the earliest absolute deadline; FIFO among equals.

    ``min`` returns the first of equal keys, and the queue is in arrival
    order, so ties (including all best-effort requests) stay FIFO.
    """
    return min(range(len(queue)),
               key=lambda i: (queue[i].effective_deadline, i))


def starvation_aware_discipline(queue, now: float) -> int:
    """EDF with aging: waiting time discounts the effective deadline.

    A best-effort request that has waited long enough eventually
    undercuts fresh deadline traffic, bounding its starvation; deadline
    requests keep their relative EDF order because aging applies equally
    to requests that arrived together.
    """
    def key(i: int):
        record = queue[i]
        waited = now - record.request.arrival_s
        return (_ageable_deadline(record) - AGING_WEIGHT * waited, i)

    return min(range(len(queue)), key=key)


NAMED_DISCIPLINES: dict[str, QueueDiscipline] = {
    "fifo": fifo_discipline,
    "edf": edf_discipline,
    "starvation_aware": starvation_aware_discipline,
}
