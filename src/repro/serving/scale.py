"""Scale-ladder harness: 10^5–10^7-request serving runs at flat RSS.

The full serving stack simulates every request's workload step by step —
right for fidelity, far too slow for 10^7 requests. This harness keeps
the three layers the scale ladder actually measures and swaps the
per-request workload simulation for a seeded G/G/c service model:

* **arrivals** come from the real :mod:`repro.serving.arrivals`
  processes, generated chunk-by-chunk (vectorized numpy path) through
  :meth:`~repro.serving.arrivals.ArrivalProcess.iter_time_chunks` and
  scheduled via a self-chaining driver timeout, so no more than one
  chunk of future arrivals is ever pending;
* **the event core** is the real :class:`~repro.sim.engine.Engine` —
  ``--queue calendar`` exercises the bucketed queue on the same run;
* **metrics** are the real constant-memory streaming accumulators
  (:class:`~repro.metrics.latency.StreamingLatencyStats`); ``--mode
  records`` retains per-request latency samples instead, which is the
  memory contrast the RSS column of the benchmark ladder demonstrates.

Each request occupies one of ``servers`` identical servers for an
exponentially distributed service time whose mean is derived from the
target ``utilization`` (``mean_service = servers * utilization /
rate``); a bounded FIFO queue in front rejects overflow, like the
frontend's admission queue. Everything is seeded, so the deterministic
half of :class:`ScaleResult` is byte-stable across runs, processes and
queue implementations.

Peak RSS is read from ``resource.getrusage`` — a *lifetime* high-water
mark, which is why the benchmark ladder (``benchmarks/bench_scale.py``)
runs each tier in a fresh subprocess via this module's CLI::

    python -m repro.serving.scale --requests 1000000 --json
"""

from __future__ import annotations

import argparse
import collections
import dataclasses
import json
import sys
import time
import typing

from repro.metrics.latency import StreamingLatencyStats, _interpolated_quantile
from repro.serving.arrivals import NAMED_ARRIVALS, make_arrivals
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams

#: Arrival rate the ladder runs at; tiers vary the request count, so the
#: horizon scales as ``requests / rate`` and queue dynamics stay alike.
DEFAULT_RATE_PER_S = 1000.0
DEFAULT_SERVERS = 8
DEFAULT_UTILIZATION = 0.8
#: Bound on the waiting line, like the frontend's admission queue — an
#: unbounded queue would make RSS a function of burst luck, not of the
#: metrics mode under test.
DEFAULT_QUEUE_CAPACITY = 256


def _exact_summary(samples: "list[float]") -> dict:
    """Exact digest over retained samples, same keys as the streaming
    one (a single end-of-run sort; ``LatencyStats``' insort-per-sample
    would be quadratic at 10^6+ observations)."""
    if not samples:
        return StreamingLatencyStats().summary()
    samples = sorted(samples)
    return {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "p50": _interpolated_quantile(samples, 0.50),
        "p95": _interpolated_quantile(samples, 0.95),
        "p99": _interpolated_quantile(samples, 0.99),
        "max": samples[-1],
    }


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak if sys.platform == "darwin" else peak * 1024)


@dataclasses.dataclass
class ScaleResult:
    """One scale-ladder run: a deterministic digest plus measurements.

    Everything in :meth:`summary` depends only on the seed and the run
    parameters; ``wall_s``/``events_per_s``/``peak_rss_bytes`` are
    measurements of this particular execution.
    """

    requests: int
    offered: int
    completed: int
    rejected: int
    horizon_s: float
    mode: str
    queue_kind: str
    #: events the engine processed during the run
    events: int
    #: waiting-time digest (arrival -> service start), seconds
    wait: dict
    #: sojourn-time digest (arrival -> completion), seconds
    sojourn: dict
    wall_s: float = 0.0
    events_per_s: float = 0.0
    peak_rss_bytes: int = 0

    def summary(self) -> dict:
        """The seed-deterministic half (what golden tests may pin)."""
        return {
            "requests": self.requests,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "horizon_s": self.horizon_s,
            "mode": self.mode,
            "queue_kind": self.queue_kind,
            "events": self.events,
            "wait": self.wait,
            "sojourn": self.sojourn,
        }

    def to_json(self) -> dict:
        digest = self.summary()
        digest.update(
            wall_s=self.wall_s,
            events_per_s=self.events_per_s,
            peak_rss_bytes=self.peak_rss_bytes,
        )
        return digest


def run_scale(
    requests: int = 100_000,
    rate_per_s: float = DEFAULT_RATE_PER_S,
    servers: int = DEFAULT_SERVERS,
    utilization: float = DEFAULT_UTILIZATION,
    kind: str = "poisson",
    seed: int = 0,
    mode: str = "streaming",
    queue: "str | None" = None,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    vectorized: bool = True,
) -> ScaleResult:
    """Run one rung of the scale ladder and return its digest."""
    if requests <= 0:
        raise ValueError(f"request count must be positive, got {requests}")
    if servers <= 0:
        raise ValueError(f"server count must be positive, got {servers}")
    if not 0.0 < utilization < 1.0:
        raise ValueError(
            f"utilization must be in (0, 1), got {utilization}")
    if mode not in ("records", "streaming"):
        raise ValueError(f"mode must be 'records' or 'streaming', got {mode!r}")

    horizon_s = requests / rate_per_s
    mean_service_s = servers * utilization / rate_per_s
    engine = Engine(queue=queue)
    process = make_arrivals(kind, rate_per_s, seed=seed,
                            vectorized=vectorized)
    service_rng = RandomStreams(seed).stream("scale:service")
    chunks = process.iter_time_chunks(horizon_s)

    streaming = mode == "streaming"
    if streaming:
        wait_stats = StreamingLatencyStats()
        sojourn_stats = StreamingLatencyStats()
        wait_samples = sojourn_samples = None
    else:
        wait_stats = sojourn_stats = None
        wait_samples: "list[float] | None" = []
        sojourn_samples: "list[float] | None" = []

    waiting: collections.deque = collections.deque()
    counts = {"offered": 0, "completed": 0, "rejected": 0, "free": servers}

    def observe(arrival_s: float, started_s: float, done_s: float) -> None:
        if streaming:
            wait_stats.observe(started_s - arrival_s)
            sojourn_stats.observe(done_s - arrival_s)
        else:
            wait_samples.append(started_s - arrival_s)
            sojourn_samples.append(done_s - arrival_s)

    def start_service(arrival_s: float) -> None:
        started_s = engine.now
        timeout = engine.timeout(service_rng.expovariate(1.0 / mean_service_s))
        timeout.callbacks.append(
            lambda _ev, a=arrival_s, s=started_s: complete(a, s))

    def complete(arrival_s: float, started_s: float) -> None:
        counts["completed"] += 1
        observe(arrival_s, started_s, engine.now)
        if waiting:
            start_service(waiting.popleft())
        else:
            counts["free"] += 1

    def on_arrival(arrival_s: float) -> None:
        counts["offered"] += 1
        if counts["free"] > 0:
            counts["free"] -= 1
            start_service(arrival_s)
        elif len(waiting) < queue_capacity:
            waiting.append(arrival_s)
        else:
            counts["rejected"] += 1

    def feed_next(_event=None) -> None:
        # Schedule one chunk of arrivals, then chain: when this chunk's
        # last arrival fires, the next chunk is generated and scheduled.
        # The chain timeout is created after the arrival timeout at the
        # same instant, so (time, seq) order runs the arrival first.
        times = next(chunks, None)
        while times is not None and times.size == 0:
            times = next(chunks, None)
        if times is None:
            return
        now = engine.now
        for arrival_s in times.tolist():
            timeout = engine.timeout(arrival_s - now)
            timeout.callbacks.append(
                lambda _ev, a=arrival_s: on_arrival(a))
        chain = engine.timeout(float(times[-1]) - now)
        chain.callbacks.append(feed_next)

    started = time.perf_counter()
    feed_next()
    engine.run()
    wall_s = time.perf_counter() - started

    if streaming:
        wait = wait_stats.summary()
        sojourn = sojourn_stats.summary()
    else:
        wait = _exact_summary(wait_samples)
        sojourn = _exact_summary(sojourn_samples)

    return ScaleResult(
        requests=requests,
        offered=counts["offered"],
        completed=counts["completed"],
        rejected=counts["rejected"],
        horizon_s=horizon_s,
        mode=mode,
        queue_kind=engine.queue_kind,
        events=engine.events_processed,
        wait=wait,
        sojourn=sojourn,
        wall_s=wall_s,
        events_per_s=engine.events_processed / wall_s if wall_s > 0 else 0.0,
        peak_rss_bytes=peak_rss_bytes(),
    )


def main(argv: "typing.Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.scale",
        description="Run one rung of the serving scale ladder.",
    )
    parser.add_argument("--requests", type=int, default=100_000,
                        help="offered-request target (default 10^5)")
    parser.add_argument("--rate", type=float, default=DEFAULT_RATE_PER_S,
                        help="mean arrival rate, requests/s")
    parser.add_argument("--servers", type=int, default=DEFAULT_SERVERS)
    parser.add_argument("--utilization", type=float,
                        default=DEFAULT_UTILIZATION,
                        help="target server utilization in (0, 1)")
    parser.add_argument("--kind", choices=NAMED_ARRIVALS, default="poisson")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mode", choices=("records", "streaming"),
                        default="streaming",
                        help="metrics mode (records keeps every sample)")
    parser.add_argument("--queue", choices=("heap", "calendar"), default=None,
                        help="event queue (default: REPRO_SIM_QUEUE or heap)")
    parser.add_argument("--scalar", action="store_true",
                        help="use the scalar arrival generators")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the result as one JSON object")
    args = parser.parse_args(argv)

    result = run_scale(
        requests=args.requests,
        rate_per_s=args.rate,
        servers=args.servers,
        utilization=args.utilization,
        kind=args.kind,
        seed=args.seed,
        mode=args.mode,
        queue=args.queue,
        vectorized=not args.scalar,
    )
    if args.as_json:
        print(json.dumps(result.to_json()))
    else:
        print(f"requests={result.offered} completed={result.completed} "
              f"rejected={result.rejected} events={result.events}")
        print(f"wall={result.wall_s:.3f}s "
              f"events/s={result.events_per_s:,.0f} "
              f"peak_rss={result.peak_rss_bytes / 1e6:.1f}MB")
        print(f"wait p50/p95/p99 = {result.wait['p50']:.4f}/"
              f"{result.wait['p95']:.4f}/{result.wait['p99']:.4f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
