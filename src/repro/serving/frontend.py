"""The serving frontend: admission control in front of ``FreeRide.submit``.

The batch harness hands the manager a fixed task set; the frontend turns
FreeRide into a *service*. Requests arrive on an open-loop schedule
(:mod:`repro.serving.arrivals`), pass an admission policy, wait in a
bounded queue, and are dispatched to the manager whenever a worker has
bubble memory for them — with the full lifecycle timestamped per request:

    arrival -> admit/reject -> assign -> first progress -> complete

Admission policies are pluggable (always-admit, token bucket, queue-length
backpressure); dispatch order comes from :mod:`repro.serving.slo` (FIFO,
EDF, starvation-aware EDF). :func:`run_serving` is the one-call
orchestration the `serve` experiment sweeps.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.middleware import FreeRide
from repro.core.policies import AssignmentPolicy
from repro.core.states import SideTaskState
from repro.core.task_spec import TaskProfile, TaskSpec
from repro.core.profiler import profile_side_task
from repro.pipeline.config import TrainConfig
from repro.pipeline.engine import TrainingResult
from repro.metrics.fairness import (
    FairnessMetrics,
    fairness_from_accumulators,
    fairness_metrics,
)
from repro.metrics.latency import (
    ServingAccumulator,
    ServingMetrics,
    serving_metrics,
)
from repro.metrics.resilience import RequestOutcomeCounts
from repro.metrics.resilience import ResilienceMetrics
from repro.serving import slo as slo_mod
from repro.serving.arrivals import ArrivalProcess, TaskRequest
from repro.workloads.adapters import FiniteJob, ImperativeAdapter
from repro.workloads.registry import make_workload

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import SideTaskRuntime
    from repro.faults.checkpoint import CheckpointPolicy
    from repro.faults.retry import RetryPolicy
    from repro.obs.export import TraceResult

#: default bound on the admission queue (requests, not bytes)
DEFAULT_QUEUE_CAPACITY = 64


# ----------------------------------------------------------------------
# admission policies
# ----------------------------------------------------------------------
class AdmissionPolicy:
    """Decides, per arrival, whether a request enters the queue."""

    name = "admission"

    def admit(self, now: float, request: TaskRequest,
              queue_length: int) -> tuple[bool, str | None]:
        """Return ``(admitted, reject_reason)``."""
        raise NotImplementedError


class AlwaysAdmit(AdmissionPolicy):
    """No admission control: every request enters the (bounded) queue."""

    name = "always"

    def admit(self, now, request, queue_length):
        return True, None


class TokenBucket(AdmissionPolicy):
    """Classic token bucket: sustained rate with bounded bursts."""

    name = "token_bucket"

    def __init__(self, rate_per_s: float, burst: float = 4.0):
        if rate_per_s <= 0:
            raise ValueError(f"refill rate must be positive, got {rate_per_s}")
        if burst < 1:
            raise ValueError(f"burst must allow at least one token, got {burst}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst
        self._last_refill = 0.0

    def refill(self, now: float) -> float:
        """Accrue tokens up to ``now``; returns the current balance."""
        elapsed = now - self._last_refill
        self._last_refill = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        return self._tokens

    def take(self) -> bool:
        """Spend one token if the balance allows."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def admit(self, now, request, queue_length):
        self.refill(now)
        if self.take():
            return True, None
        return False, "token bucket empty"


class PerJobTokenBucket(AdmissionPolicy):
    """Cluster admission: one token bucket per training job.

    The combined pool's serving capacity scales with the number of jobs
    feeding it bubbles, so admission does too: each job contributes an
    independently refilled bucket, and an arrival spends a token from
    the fullest one. With one job this degenerates to the plain
    :class:`TokenBucket`.
    """

    name = "per_job_token_bucket"

    def __init__(self, jobs: int = 1, rate_per_s: float = 1.5,
                 burst: float = 4.0):
        if jobs < 1:
            raise ValueError(f"need at least one job bucket, got {jobs}")
        self.buckets = [TokenBucket(rate_per_s, burst) for _ in range(jobs)]

    def admit(self, now, request, queue_length):
        fullest = max(self.buckets, key=lambda bucket: bucket.refill(now))
        if fullest.take():
            return True, None
        return False, f"per-job token buckets empty ({len(self.buckets)} jobs)"


class QueueBackpressure(AdmissionPolicy):
    """Reject when the admission queue is already deep.

    Bounding queue depth bounds queueing latency: beyond the threshold a
    request would wait longer than its deadline anyway, so rejecting it
    immediately is strictly kinder than accepting and missing.
    """

    name = "backpressure"

    def __init__(self, max_queue: int = 8):
        if max_queue < 1:
            raise ValueError(f"queue threshold must be >= 1, got {max_queue}")
        self.max_queue = max_queue

    def admit(self, now, request, queue_length):
        if queue_length >= self.max_queue:
            return False, f"backpressure: queue at {queue_length}"
        return True, None


def _per_tenant_bucket(tenants):
    # Imported lazily: repro.tenancy builds on this module's base classes.
    from repro.tenancy.admission import PerTenantTokenBucket

    return PerTenantTokenBucket(tenants)


#: per-name factories (admission policies are stateful, so each run
#: needs a fresh instance) at the `serve` experiment's standard
#: settings; every factory takes the deployment's job count and tenant
#: set, which only the job-/tenant-aware policies use
NAMED_ADMISSION: dict[str, typing.Callable[..., AdmissionPolicy]] = {
    "always": lambda jobs=1, tenants=(): AlwaysAdmit(),
    "token_bucket":
        lambda jobs=1, tenants=(): TokenBucket(rate_per_s=1.5, burst=4.0),
    "backpressure": lambda jobs=1, tenants=(): QueueBackpressure(max_queue=8),
    "per_job_token_bucket":
        lambda jobs=1, tenants=(): PerJobTokenBucket(jobs=jobs),
    "per_tenant_token_bucket":
        lambda jobs=1, tenants=(): _per_tenant_bucket(tenants),
}


def make_admission(kind: "str | AdmissionPolicy", jobs: int = 1,
                   tenants: typing.Sequence = ()) -> AdmissionPolicy:
    """Build an admission policy from a name or pass an instance through.

    ``jobs`` sizes the job-aware policies (the cluster frontend passes
    its job count); ``tenants`` — :class:`~repro.tenancy.tenants.
    TenantShare` descriptors — sizes the tenant-aware ones. Callers
    without jobs or tenants can ignore both.
    """
    if isinstance(kind, AdmissionPolicy):
        return kind
    try:
        factory = NAMED_ADMISSION[kind]
    except KeyError:
        raise KeyError(f"unknown admission policy {kind!r}; "
                       f"choose from {sorted(NAMED_ADMISSION)}") from None
    return factory(jobs=jobs, tenants=tenants)


def make_discipline(kind: "str | slo_mod.QueueDiscipline",
                    tenants: typing.Sequence = ()) -> "slo_mod.QueueDiscipline":
    """Resolve a dispatch discipline name or pass a callable through.

    The stateless disciplines come from :data:`~repro.serving.slo.
    NAMED_DISCIPLINES`; the tenant-aware weighted-fair disciplines
    (:data:`~repro.tenancy.scheduler.NAMED_FAIR_DISCIPLINES`) carry
    per-run state, so each run gets a fresh instance sized by the
    tenant set.
    """
    if not isinstance(kind, str):
        return kind
    # Imported lazily: repro.tenancy builds on this module's base classes.
    from repro.tenancy.scheduler import NAMED_FAIR_DISCIPLINES

    if kind in NAMED_FAIR_DISCIPLINES:
        return NAMED_FAIR_DISCIPLINES[kind](tenants)
    try:
        return slo_mod.NAMED_DISCIPLINES[kind]
    except KeyError:
        choices = sorted(set(slo_mod.NAMED_DISCIPLINES)
                         | set(NAMED_FAIR_DISCIPLINES))
        raise KeyError(f"unknown dispatch discipline {kind!r}; "
                       f"choose from {choices}") from None


# ----------------------------------------------------------------------
# request lifecycle
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RequestRecord:
    """One request's lifecycle, stamped as the simulation progresses."""

    request: TaskRequest
    #: absolute completion deadline (arrival + class deadline); None = BE
    deadline_s: float | None
    #: arrived while the service was open (post-close arrivals are not
    #: part of the offered load)
    offered: bool = True
    admitted_at: float | None = None
    rejected_at: float | None = None
    reject_reason: str | None = None
    assigned_at: float | None = None
    stage: int | None = None
    first_progress_at: float | None = None
    completed_at: float | None = None
    final_state: str | None = None
    steps_done: int = 0
    units_done: float = 0.0
    #: dispatch attempts made (> 1 means the request was retried)
    attempts: int = 0
    #: explicit terminal outcome: "completed", "failed" (the attempt died
    #: and no retries were configured), or "exhausted" (all retries
    #: failed); None while the request is still in flight or unserved
    outcome: str | None = None
    #: why the last attempt died, when one did
    failure: str | None = None
    spec: TaskSpec | None = dataclasses.field(default=None, repr=False)

    @property
    def effective_deadline(self) -> float:
        """Deadline for EDF ordering; best-effort sorts strictly last
        (matching :meth:`TaskSpec.effective_deadline`). The
        starvation-aware discipline maps best-effort to a finite,
        ageable deadline separately."""
        return self.deadline_s if self.deadline_s is not None else float("inf")

    @property
    def met_slo(self) -> bool:
        return slo_mod.met_slo(self.deadline_s, self.completed_at)

    @property
    def tenant(self) -> str:
        """Owning tenant ("" for untenanted traffic)."""
        return self.request.tenant

    @property
    def status(self) -> str:
        if not self.offered:
            return "late"
        if self.rejected_at is not None:
            return "rejected"
        if self.outcome is not None:
            return self.outcome
        if self.completed_at is not None:
            return "completed"
        if self.assigned_at is not None:
            return "assigned"
        if self.admitted_at is not None:
            return "queued"
        return "pending"

    def summary(self) -> dict:
        """JSON-safe digest (the determinism tests serialize these)."""
        return {
            "id": self.request.request_id,
            "workload": self.request.workload,
            "tenant": self.request.tenant,
            "slo_class": self.request.slo_class,
            "arrival_s": self.request.arrival_s,
            "status": self.status,
            "reject_reason": self.reject_reason,
            "admitted_at": self.admitted_at,
            "assigned_at": self.assigned_at,
            "stage": self.stage,
            "first_progress_at": self.first_progress_at,
            "completed_at": self.completed_at,
            "met_slo": self.met_slo,
            "steps_done": self.steps_done,
            "units_done": self.units_done,
            "attempts": self.attempts,
            "outcome": self.outcome,
            "failure": self.failure,
        }


# ----------------------------------------------------------------------
# the frontend
# ----------------------------------------------------------------------
class ServingFrontend:
    """Bounded admission queue + dispatcher in front of the manager.

    ``freeride`` is any backend exposing the submission surface —
    ``sim``/``manager``/``workers``/``submit``/``runtime_for``: a
    single-job :class:`~repro.core.middleware.FreeRide` or a multi-job
    :class:`~repro.cluster.builder.Cluster`, whose *combined* worker
    pool then serves the traffic. ``jobs`` sizes job-aware admission
    policies (``per_job_token_bucket``); ``tenants`` —
    :class:`~repro.tenancy.tenants.TenantShare` descriptors — sizes the
    tenant-aware admission policy (``per_tenant_token_bucket``) and the
    weighted-fair dispatch discipline (``weighted``).
    """

    def __init__(
        self,
        freeride: "FreeRide",
        requests: typing.Sequence[TaskRequest],
        admission: "str | AdmissionPolicy" = "always",
        discipline: "str | slo_mod.QueueDiscipline" = "edf",
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        jobs: int = 1,
        tenants: typing.Sequence = (),
        retry: "RetryPolicy | None" = None,
        checkpoint: "CheckpointPolicy | None" = None,
        metrics_mode: str = "records",
    ):
        if queue_capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {queue_capacity}")
        if metrics_mode not in ("records", "streaming"):
            raise ValueError(
                f"metrics_mode must be 'records' or 'streaming', "
                f"got {metrics_mode!r}")
        #: "records" retains every RequestRecord for post-run folds (the
        #: byte-identical default); "streaming" folds each record into
        #: constant-memory accumulators the moment it turns terminal and
        #: then drops it, so memory tracks *live* requests, not history
        self.metrics_mode = metrics_mode
        self.streaming = metrics_mode == "streaming"
        self.freeride = freeride
        self.sim = freeride.sim
        self.tenants = tuple(tenants)
        self.admission = make_admission(admission, jobs=jobs,
                                        tenants=self.tenants)
        self.discipline = make_discipline(discipline, tenants=self.tenants)
        self.queue_capacity = queue_capacity
        # Observability: the engine's tracer (the no-op singleton unless
        # a runner attached a live one before building this frontend)
        # and the run's named metrics. Counter/gauge updates touch no
        # RNG and schedule nothing, so they cannot perturb the run.
        self.trace = self.sim.trace
        telemetry = self.sim.telemetry
        self._m_admitted = telemetry.counter("serving.admitted")
        self._m_rejected = telemetry.counter("serving.rejected")
        self._m_dispatched = telemetry.counter("serving.dispatched")
        self._m_retries = telemetry.counter("serving.retries")
        self._m_queue_depth = telemetry.gauge("serving.queue_depth")
        #: trace-only bookkeeping, populated only when tracing is on:
        #: id(record) -> when it (re)entered the queue, and
        #: id(spec) -> (record, dispatch time, stage) for open attempts
        self._queued_since: dict[int, float] = {}
        self._open_service: dict[int, tuple[RequestRecord, float, int]] = {}
        if self.trace.enabled:
            attach = getattr(self.discipline, "attach_tracer", None)
            if attach is not None:
                attach(self.trace)
        self.queue: list[RequestRecord] = []
        self.closed_at: float | None = None
        #: retry/backoff for attempts that die mid-service; None = one shot
        self.retry = retry
        #: recovery policy stamped on every dispatched task spec
        self.checkpoint = checkpoint
        #: live dispatch ledger: id(spec) -> the record it serves
        self._by_spec: dict[int, RequestRecord] = {}
        # A dedicated named stream, so enabling retries never perturbs
        # any other component's draws.
        self._retry_rng = freeride.rng.stream("serving:retry")
        # Streaming mode keeps only the in-flight records (keyed by
        # request id, so the close-time leftovers fold in the same order
        # the records-mode list would) plus the accumulators; the
        # records list the callers see stays empty by design.
        if self.streaming:
            self.records: list[RequestRecord] = []
            self._live: "dict[int, RequestRecord] | None" = {}
            self._acc: "ServingAccumulator | None" = (
                ServingAccumulator(streaming=True))
            self._tenant_accs: "dict[str, ServingAccumulator] | None" = {}
        else:
            self.records = []
            self._live = None
            self._acc = None
            self._tenant_accs = None
        #: one profiling pass per distinct request shape, not per request
        self._profiles: dict[tuple, TaskProfile] = {}
        freeride.manager.terminal_listeners.append(self._on_terminal)
        # Restarted workers mean re-queued retries may fit again.
        freeride.manager.capacity_listeners.append(self._on_capacity)
        self.feed(requests)

    def feed(self, requests: typing.Iterable[TaskRequest]) -> None:
        """Register requests and schedule their arrival events.

        The constructor feeds the whole pre-generated stream; the scale
        harness calls this again per chunk (from
        :meth:`~repro.serving.arrivals.ArrivalProcess.iter_time_chunks`)
        so only one chunk of not-yet-arrived requests is ever pending —
        the piece that keeps frontend memory flat at 10^6+ requests.
        Arrivals must not be in the past; feeding chunk ``k+1`` when
        chunk ``k``'s last arrival fires satisfies this by construction.
        """
        for request in requests:
            record = RequestRecord(
                request=request,
                deadline_s=slo_mod.slo_class(request.slo_class)
                .absolute_deadline(request.arrival_s),
            )
            if self.streaming:
                self._live[request.request_id] = record
            else:
                self.records.append(record)
            delay = request.arrival_s - self.sim.now
            if delay < 0:
                raise ValueError(
                    f"request {request.request_id} arrives in the past "
                    f"({request.arrival_s} < {self.sim.now})"
                )
            timeout = self.sim.timeout(delay)
            timeout.callbacks.append(
                lambda _ev, record=record: self._on_arrival(record)
            )

    # -- workload assembly ---------------------------------------------
    @staticmethod
    def _build_workload(request: TaskRequest):
        job = FiniteJob(
            make_workload(request.workload, batch_size=request.batch_size),
            job_steps=request.job_steps,
        )
        if request.interface == "imperative":
            return ImperativeAdapter(job)
        return job

    def _profile_for(self, request: TaskRequest) -> TaskProfile:
        key = (request.workload, request.batch_size, request.interface)
        profile = self._profiles.get(key)
        if profile is None:
            probe = self._build_workload(request)
            profile = profile_side_task(probe, interface=request.interface)
            self._profiles[key] = profile
        return profile

    # -- observability seams --------------------------------------------
    def _tenant_track(self, record: RequestRecord) -> tuple[str, str]:
        return ("tenants", record.request.tenant or "default")

    def _trace_reject(self, record: RequestRecord) -> None:
        self._m_rejected.add()
        if self.trace.enabled:
            self.trace.instant(
                "reject", self.sim.now, cat="serving.admission",
                track=self._tenant_track(record),
                args={"id": record.request.request_id,
                      "reason": record.reject_reason},
            )

    def _trace_service_end(self, record: RequestRecord,
                           failure: "str | None") -> None:
        """Close the attempt's service span (no-op unless traced)."""
        entry = self._open_service.pop(id(record.spec), None)
        if entry is None:
            return
        _record, started, stage = entry
        self.trace.complete(
            "service", started, self.sim.now, cat="serving.service",
            track=("workers", f"stage{stage}"),
            args={"id": record.request.request_id,
                  "workload": record.request.workload,
                  "attempt": record.attempts,
                  "failure": failure},
        )

    # -- streaming accounting -------------------------------------------
    def _fold(self, record: RequestRecord) -> None:
        """Streaming mode: account a terminal record, then drop it."""
        if self._live.pop(record.request.request_id, None) is None:
            return  # already folded
        self._acc.add(record)
        self._tenant_accs[record.request.tenant].add(record)
        if record.spec is not None:
            self._by_spec.pop(id(record.spec), None)
            record.spec = None

    # -- lifecycle events ----------------------------------------------
    def _on_arrival(self, record: RequestRecord) -> None:
        now = self.sim.now
        if self.streaming:
            # Register the tenant at *arrival* so undeclared tenants
            # keep the records-mode first-seen ordering in the fairness
            # fold (arrival order is record order).
            tenant = record.request.tenant
            if tenant not in self._tenant_accs:
                self._tenant_accs[tenant] = ServingAccumulator(streaming=True)
        if self.closed_at is not None:
            record.offered = False
            record.rejected_at = now
            record.reject_reason = "service closed"
            if self.streaming:
                self._fold(record)
            return
        # Structural bound first: a full queue rejects without consulting
        # the admission policy, so stateful policies (the token bucket)
        # don't burn tokens on requests that could never be queued.
        if len(self.queue) >= self.queue_capacity:
            record.rejected_at = now
            record.reject_reason = (
                f"admission queue full ({len(self.queue)}/"
                f"{self.queue_capacity}; admission={self.admission.name})"
            )
            self._trace_reject(record)
            if self.streaming:
                self._fold(record)
            return
        admitted, reason = self.admission.admit(now, record.request,
                                                len(self.queue))
        if not admitted:
            record.rejected_at = now
            record.reject_reason = reason
            self._trace_reject(record)
            if self.streaming:
                self._fold(record)
            return
        record.admitted_at = now
        self.queue.append(record)
        self._m_admitted.add()
        self._m_queue_depth.set(len(self.queue), now)
        if self.trace.enabled:
            self._queued_since[id(record)] = now
            self.trace.instant(
                "admit", now, cat="serving.admission",
                track=self._tenant_track(record),
                args={"id": record.request.request_id,
                      "workload": record.request.workload,
                      "slo_class": record.request.slo_class},
            )
        self._dispatch()

    def _on_terminal(self, task: "SideTaskRuntime") -> None:
        """A task finished or died: settle its request, retry the queue."""
        record = self._by_spec.get(id(task.spec))
        if record is not None and record.spec is task.spec:
            self._settle_attempt(record, task)
        if self.closed_at is None:
            self._dispatch()

    def _on_capacity(self) -> None:
        """A crashed worker restarted: queued requests may fit again."""
        if self.closed_at is None:
            self._dispatch()

    def _settle_attempt(self, record: RequestRecord,
                        runtime: "SideTaskRuntime") -> None:
        """Decide a terminated attempt's fate: done, retry, or give up."""
        if self.trace.enabled:
            self._trace_service_end(record, runtime.failure)
        if record.outcome is not None or record.completed_at is not None:
            return
        workload = record.spec.workload
        if workload.is_finished and runtime.failure is None:
            record.outcome = "completed"
            record.completed_at = self.sim.now
            # Earlier attempts may have died; the request itself did not.
            record.failure = None
            if self.trace.enabled:
                self.trace.instant(
                    "complete", self.sim.now, cat="serving.lifecycle",
                    track=self._tenant_track(record),
                    args={"id": record.request.request_id,
                          "attempts": record.attempts},
                )
            if self.streaming:
                self._fold(record)
            return
        if self.closed_at is not None:
            # Teardown stops are not failures; finalize() sorts them out.
            return
        failure = runtime.failure or "task stopped before finishing"
        record.failure = failure
        retry = self.retry
        if retry is not None and record.attempts < retry.max_attempts:
            delay = retry.delay_s(record.attempts, self._retry_rng)
            self._m_retries.add()
            if self.trace.enabled:
                self.trace.instant(
                    "retry", self.sim.now, cat="serving.retry",
                    track=self._tenant_track(record),
                    args={"id": record.request.request_id,
                          "attempt": record.attempts,
                          "delay_s": delay,
                          "failure": failure},
                )
            timeout = self.sim.timeout(delay)
            timeout.callbacks.append(
                lambda _ev, record=record: self._requeue(record)
            )
            return
        if retry is not None and retry.max_attempts > 1:
            record.outcome = "exhausted"
            record.failure = (
                f"retries exhausted after {record.attempts} attempts; "
                f"last failure: {failure}"
            )
        else:
            record.outcome = "failed"
        if self.streaming:
            self._fold(record)

    def _requeue(self, record: RequestRecord) -> None:
        """Put a failed (admitted) request back in line for its retry.

        Re-admission is not re-adjudicated — the request already paid
        admission once — and the bounded queue does not apply: dropping
        an accepted request on retry would turn a transient fault into a
        silent loss.
        """
        if self.closed_at is not None or record.outcome is not None:
            return
        record.assigned_at = None
        record.stage = None
        record.spec = None
        self.queue.append(record)
        self._m_queue_depth.set(len(self.queue), self.sim.now)
        if self.trace.enabled:
            self._queued_since[id(record)] = self.sim.now
        self._dispatch()

    def _enforce_attempt_timeout(self, record: RequestRecord,
                                 spec: TaskSpec) -> None:
        """Kill an attempt that outlived the per-attempt timeout."""
        if record.spec is not spec or record.outcome is not None:
            return
        runtime = self.freeride.runtime_for(spec)
        if runtime.machine.terminated or spec.workload.is_finished:
            return
        reason = (
            f"attempt timeout after {self.retry.attempt_timeout_s}s"
        )
        if runtime.machine.resumable:
            runtime.abandon(reason)
        else:
            runtime.kill(reason)

    def _dispatch(self) -> None:
        """Hand queued requests to the manager while memory allows.

        Requests are tried in discipline order; one that no worker can
        fit right now is *blocked* for the rest of this round — hidden
        from the discipline's view but left in place in the queue — so
        it cannot head-of-line block smaller requests, tenant-aware
        disciplines keep seeing every tenant's full backlog, and the
        queue's arrival-order invariant (FIFO and EDF ties) is preserved
        for free. Blocked records are retried when a task terminates and
        returns its memory.
        """
        # Stateful weighted-fair disciplines are charged per *successful*
        # dispatch, so a pick blocked for lack of memory costs its
        # tenant nothing.
        charge = getattr(self.discipline, "on_dispatch", None)
        blocked: "set[int]" = set()
        while True:
            view = (self.queue if not blocked else
                    [record for record in self.queue
                     if id(record) not in blocked])
            if not view:
                break
            index = self.discipline(view, self.sim.now)
            record = view[index]
            request = record.request
            profile = self._profile_for(request)
            if not self.freeride.manager.eligible_workers(
                    profile.gpu_memory_gb):
                blocked.add(id(record))
                continue
            name = request.name
            if record.attempts > 0:
                # Stable, distinct task names per attempt keep every
                # derived RNG stream — and so the run — deterministic.
                name = f"{request.name}-a{record.attempts}"
            spec = self.freeride.submit(
                lambda request=request: self._build_workload(request),
                interface=request.interface,
                profile=profile,
                name=name,
                slo_class=request.slo_class,
                deadline_s=record.deadline_s,
                queue_depth=len(self.queue) - 1,
                checkpoint=self.checkpoint,
            )
            if spec is None:  # pragma: no cover - eligibility checked above
                blocked.add(id(record))
                continue
            self.queue.remove(record)
            record.assigned_at = self.sim.now
            record.spec = spec
            record.attempts += 1
            self._by_spec[id(spec)] = record
            self._m_dispatched.add()
            self._m_queue_depth.set(len(self.queue), self.sim.now)
            if self.trace.enabled:
                queued_from = self._queued_since.pop(
                    id(record), record.request.arrival_s
                )
                self.trace.complete(
                    "queued", queued_from, self.sim.now, cat="serving.queue",
                    track=self._tenant_track(record),
                    args={"id": request.request_id,
                          "attempt": record.attempts},
                )
                self._open_service[id(spec)] = (
                    record, self.sim.now,
                    self.freeride.runtime_for(spec).stage,
                )
            if charge is not None:
                charge(record)
            if (
                self.retry is not None
                and self.retry.attempt_timeout_s is not None
            ):
                timeout = self.sim.timeout(self.retry.attempt_timeout_s)
                timeout.callbacks.append(
                    lambda _ev, record=record, spec=spec:
                        self._enforce_attempt_timeout(record, spec)
                )

    def close(self) -> None:
        """Stop admitting (training over / service shutting down)."""
        if self.closed_at is None:
            self.closed_at = self.sim.now

    # -- post-run accounting -------------------------------------------
    def finalize(self) -> None:
        """Back-fill per-request outcomes from the runtimes' histories."""
        if self.trace.enabled:
            # Attempts still live at teardown never settled; close their
            # service spans at the drain's end so the track is complete.
            for record, started, stage in list(self._open_service.values()):
                self.trace.complete(
                    "service", started, self.sim.now, cat="serving.service",
                    track=("workers", f"stage{stage}"),
                    args={"id": record.request.request_id,
                          "workload": record.request.workload,
                          "attempt": record.attempts,
                          "failure": "open at teardown"},
                )
            self._open_service.clear()
        if self.streaming:
            # Only in-flight records remain; settle-time folds already
            # accounted for everything terminal. The dict preserves
            # request-id order, so leftovers fold in the same order the
            # records-mode list would visit them.
            leftovers = list(self._live.values())
            for record in leftovers:
                self._finalize_record(record)
            for record in leftovers:
                self._fold(record)
            return
        for record in self.records:
            self._finalize_record(record)

    def _finalize_record(self, record: RequestRecord) -> None:
        if record.spec is None:
            if record.failure is not None and record.outcome is None:
                # Admitted, failed at least once, and its retry never
                # found a worker before close: an explicit terminal
                # failure, not a silently unserved request.
                record.outcome = "failed"
            return
        runtime = self.freeride.runtime_for(record.spec)
        workload = record.spec.workload
        record.final_state = runtime.state.value
        record.steps_done = workload.steps_done
        record.units_done = workload.units_done
        for worker in self.freeride.workers:
            if runtime in worker.all_tasks:
                record.stage = worker.stage
                break
        history = runtime.machine.history
        record.first_progress_at = next(
            (when for when, state in history
             if state is SideTaskState.RUNNING), None,
        )
        if workload.is_finished and runtime.failure is None:
            record.completed_at = next(
                (when for when, state in reversed(history)
                 if state is SideTaskState.STOPPED), None,
            )
            if record.outcome is None:
                record.outcome = "completed"
        elif record.outcome is None and runtime.failure is not None:
            # The attempt died (worker crash, kill, OOM) and was
            # never settled as a retry: an explicit failure, not a
            # silently unserved request.
            record.outcome = "failed"
            record.failure = runtime.failure

    # -- metrics access -------------------------------------------------
    def metrics_for(self, duration_s: float) -> ServingMetrics:
        """The run's aggregate metrics, from whichever mode is active.

        Call after :meth:`finalize`; in streaming mode this reads the
        accumulators (no records survive), in records mode it folds the
        retained records exactly as before.
        """
        if self.streaming:
            return self._acc.metrics(duration_s)
        return serving_metrics(self.records, duration_s)

    def fairness_for(self, duration_s: float) -> FairnessMetrics:
        """Per-tenant fairness accounting, from whichever mode is active."""
        if self.streaming:
            return fairness_from_accumulators(
                self._tenant_accs, self.tenants, duration_s)
        return fairness_metrics(self.records, self.tenants, duration_s)

    @property
    def outcome_counts(self) -> "RequestOutcomeCounts | None":
        """Pre-folded retry/failure tallies (streaming mode only)."""
        if not self.streaming:
            return None
        return RequestOutcomeCounts(
            retries=self._acc.retries,
            failed=self._acc.failed_requests,
            exhausted=self._acc.exhausted_requests,
        )


# ----------------------------------------------------------------------
# one-call serving run
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ServingResult:
    """Outcome of one traffic-driven serving run."""

    training: TrainingResult
    records: list[RequestRecord]
    metrics: ServingMetrics
    #: seconds the service was open to traffic (rates normalize by this)
    open_duration_s: float
    #: per-tenant accounting; set when the scenario declared tenants
    fairness: FairnessMetrics | None = None
    #: failure/recovery accounting; set when the scenario declared faults
    resilience: "ResilienceMetrics | None" = None
    #: structured span trace; set when the scenario enabled ``obs.trace``
    trace: "TraceResult | None" = None

    def summaries(self) -> list[dict]:
        return [record.summary() for record in self.records]


def run_serving(
    config: TrainConfig,
    arrivals: ArrivalProcess,
    horizon_s: float,
    admission: "str | AdmissionPolicy" = "always",
    policy: "str | AssignmentPolicy" = "least_loaded",
    discipline: "str | slo_mod.QueueDiscipline" = "edf",
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    seed: int = 0,
    settle_s: float = 2.0,
) -> ServingResult:
    """Serve an open-loop request stream from one training job's bubbles.

    The one-call programmatic facade: builds the serving scenario ad hoc and
    delegates to :class:`repro.api.session.ServingRunner` — the same
    runner a declarative :class:`~repro.api.spec.ScenarioSpec` executes
    through. Policy/admission/discipline accept names or instances
    (instances bypass the spec vocabulary, e.g. a custom
    :class:`AdmissionPolicy` or a trace-replay arrival process).
    """
    # Imported here: the session layer sits above this module.
    from repro.api.session import ServingRunner
    from repro.api.spec import PolicySpec, ScenarioSpec

    policy_spec = PolicySpec(
        assignment=policy if isinstance(policy, str) else "least_loaded",
        admission=admission if isinstance(admission, str) else "always",
        discipline=discipline if isinstance(discipline, str) else "edf",
        queue_capacity=queue_capacity,
    )
    spec = ScenarioSpec(
        name="run_serving",
        kind="serving",
        seed=seed,
        policy=policy_spec,
        params={"horizon_s": horizon_s, "settle_s": settle_s},
    )
    runner = ServingRunner(
        spec,
        config=config,
        arrivals=arrivals,
        admission=None if isinstance(admission, str) else admission,
        policy=None if isinstance(policy, str) else policy,
        discipline=None if isinstance(discipline, str) else discipline,
    )
    return runner.run()
