"""Online serving on top of FreeRide: open-loop traffic, admission
control, and SLO-aware dispatch.

The batch experiments submit a fixed task set and wait; this subsystem
drives the middleware the way a multi-user service would — requests
arrive on their own clock, pass admission control, queue, and get
scheduled into pipeline bubbles against per-class latency SLOs.

* :mod:`repro.serving.arrivals` — seeded open-loop arrival processes
  (Poisson, bursty/MMPP, diurnal, trace replay) over a workload mix;
* :mod:`repro.serving.slo` — latency classes, deadlines, and the queue
  dispatch disciplines (FIFO / EDF / starvation-aware);
* :mod:`repro.serving.frontend` — admission policies, the bounded queue,
  per-request lifecycle tracking, and :func:`run_serving`;
* :mod:`repro.metrics.latency` — streaming latency quantiles, goodput,
  and rejection accounting.
"""

from repro.serving.arrivals import (
    DEFAULT_MIX,
    NAMED_ARRIVALS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    RequestTemplate,
    TaskRequest,
    TraceArrivals,
    make_arrivals,
)
from repro.serving.frontend import (
    NAMED_ADMISSION,
    AdmissionPolicy,
    AlwaysAdmit,
    PerJobTokenBucket,
    QueueBackpressure,
    RequestRecord,
    ServingFrontend,
    ServingResult,
    TokenBucket,
    make_admission,
    make_discipline,
    run_serving,
)
from repro.serving.slo import (
    NAMED_DISCIPLINES,
    SLO_CLASSES,
    SLOClass,
    met_slo,
    slo_class,
)

__all__ = [
    "DEFAULT_MIX",
    "NAMED_ADMISSION",
    "NAMED_ARRIVALS",
    "NAMED_DISCIPLINES",
    "SLO_CLASSES",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PerJobTokenBucket",
    "PoissonArrivals",
    "QueueBackpressure",
    "RequestRecord",
    "RequestTemplate",
    "SLOClass",
    "ServingFrontend",
    "ServingResult",
    "TaskRequest",
    "TokenBucket",
    "TraceArrivals",
    "make_admission",
    "make_arrivals",
    "make_discipline",
    "met_slo",
    "run_serving",
    "slo_class",
]
