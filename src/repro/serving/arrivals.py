"""Open-loop arrival processes for the online serving layer.

The batch experiments submit a fixed set of side tasks up front; a
multi-user service instead sees an *open-loop* request stream whose
arrival times do not depend on how fast the system drains them. This
module generates such streams — seeded Poisson, bursty (Markov-modulated
Poisson), diurnal (time-varying rate via thinning), and trace replay —
as plain lists of timestamped :class:`TaskRequest` records, which the
frontend schedules into the simulation before the run starts.

Pre-generating the whole stream is exactly what open-loop means (the
times are independent of system state) and keeps every run byte-for-byte
deterministic: all randomness derives from the generator's explicit seed,
never from process-global counters.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.sim.rng import RandomStreams


@dataclasses.dataclass(frozen=True)
class RequestTemplate:
    """One entry of a workload mix: what a request of this kind runs."""

    #: workload registry name (see :mod:`repro.workloads.registry`)
    workload: str
    #: steps after which the job is complete (finite jobs make completion
    #: latency meaningful; the batch experiments run endless tasks)
    job_steps: int
    #: latency class name (see :mod:`repro.serving.slo`)
    slo_class: str = "standard"
    batch_size: int = 64
    interface: str = "iterative"
    #: relative arrival frequency within the mix
    weight: float = 1.0


#: A small/medium/large job mix over the paper's side tasks: interactive
#: PageRank queries, standard ResNet18 fine-tunes, batch ResNet50 jobs.
DEFAULT_MIX: tuple[RequestTemplate, ...] = (
    RequestTemplate("pagerank", job_steps=100, slo_class="interactive",
                    weight=3.0),
    RequestTemplate("resnet18", job_steps=40, slo_class="standard",
                    weight=2.0),
    RequestTemplate("resnet50", job_steps=20, slo_class="batch", weight=1.0),
)


@dataclasses.dataclass(frozen=True)
class TaskRequest:
    """One timestamped request drawn from the workload mix."""

    request_id: int
    arrival_s: float
    workload: str
    job_steps: int
    slo_class: str = "standard"
    batch_size: int = 64
    interface: str = "iterative"
    #: owning tenant of a multi-tenant scenario ("" = untenanted traffic);
    #: per-tenant admission and weighted-fair dispatch key on this
    tenant: str = ""

    @property
    def name(self) -> str:
        """Stable per-request task name (seeds the task's RNG streams)."""
        return f"{self.workload}-r{self.request_id}"


class ArrivalProcess:
    """Base class: template mixing + request assembly over arrival times."""

    def __init__(self, mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0):
        if not mix:
            raise ValueError("arrival mix must contain at least one template")
        self.mix = tuple(mix)
        self.seed = seed

    # -- subclass API ---------------------------------------------------
    def arrival_times(self, horizon_s: float) -> list[float]:
        """Strictly increasing arrival instants in [0, horizon)."""
        raise NotImplementedError

    def _streams(self) -> RandomStreams:
        """A fresh stream factory, re-derived from the seed on every
        call: generation is idempotent — one process instance produces
        the same traffic no matter how often (or in what order) it is
        asked, so callers can reuse it across runs to compare policies
        on identical offered load."""
        return RandomStreams(self.seed)

    # -- shared assembly ------------------------------------------------
    def _assemble(
        self,
        entries: "typing.Iterable[tuple[float, RequestTemplate | None]]",
    ) -> list[TaskRequest]:
        """Stamp ``(arrival, template-or-None)`` pairs into requests;
        ``None`` templates are drawn from the mix by weight."""
        mix_stream = self._streams().stream("mix")
        weights = [template.weight for template in self.mix]
        requests = []
        for request_id, (arrival_s, template) in enumerate(entries):
            if template is None:
                template = mix_stream.choices(self.mix, weights=weights)[0]
            requests.append(TaskRequest(
                request_id=request_id,
                arrival_s=arrival_s,
                workload=template.workload,
                job_steps=template.job_steps,
                slo_class=template.slo_class,
                batch_size=template.batch_size,
                interface=template.interface,
            ))
        return requests

    def generate(self, horizon_s: float) -> list[TaskRequest]:
        """The full request stream for one run."""
        if horizon_s <= 0:
            return []
        return self._assemble(
            (arrival_s, None) for arrival_s in self.arrival_times(horizon_s)
        )


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson process at a constant rate (requests/second)."""

    def __init__(self, rate_per_s: float,
                 mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0):
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        super().__init__(mix, seed)
        self.rate_per_s = rate_per_s

    def arrival_times(self, horizon_s: float) -> list[float]:
        stream = self._streams().stream("gaps")
        times = []
        now = stream.expovariate(self.rate_per_s)
        while now < horizon_s:
            times.append(now)
            now += stream.expovariate(self.rate_per_s)
        return times


class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (quiet/burst).

    The process alternates between a low-rate and a high-rate state with
    exponentially distributed dwell times — the standard model for bursty
    request traffic.
    """

    def __init__(self, rate_low: float, rate_high: float,
                 mean_dwell_s: float = 10.0,
                 mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0):
        if rate_low <= 0 or rate_high <= 0:
            raise ValueError("both MMPP rates must be positive")
        if mean_dwell_s <= 0:
            raise ValueError("mean dwell time must be positive")
        super().__init__(mix, seed)
        self.rate_low = rate_low
        self.rate_high = rate_high
        self.mean_dwell_s = mean_dwell_s

    @property
    def mean_rate_per_s(self) -> float:
        """Long-run average rate (equal dwell in both states)."""
        return (self.rate_low + self.rate_high) / 2.0

    def arrival_times(self, horizon_s: float) -> list[float]:
        rng = self._streams()
        gaps = rng.stream("gaps")
        dwells = rng.stream("dwells")
        times = []
        now = 0.0
        high = False
        phase_end = dwells.expovariate(1.0 / self.mean_dwell_s)
        while now < horizon_s:
            rate = self.rate_high if high else self.rate_low
            gap = gaps.expovariate(rate)
            if now + gap >= phase_end:
                # No arrival before the phase switch. By memorylessness,
                # jumping to the switch and resampling at the new rate is
                # exact — carrying the old-rate gap across the boundary
                # would let quiet phases leap over entire bursts.
                now = phase_end
                high = not high
                phase_end = now + dwells.expovariate(1.0 / self.mean_dwell_s)
                continue
            now += gap
            if now < horizon_s:
                times.append(now)
        return times


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson process (a compressed day).

    ``rate(t) = mean * (1 + amplitude * sin(2πt / period))``, realized by
    thinning a Poisson process at the peak rate — the textbook generator
    for non-homogeneous Poisson streams.
    """

    def __init__(self, mean_rate_per_s: float, period_s: float = 60.0,
                 amplitude: float = 0.8,
                 mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0):
        if mean_rate_per_s <= 0:
            raise ValueError("mean arrival rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period_s <= 0:
            raise ValueError("period must be positive")
        super().__init__(mix, seed)
        self.mean_rate_per_s = mean_rate_per_s
        self.period_s = period_s
        self.amplitude = amplitude

    def rate_at(self, t: float) -> float:
        phase = math.sin(2.0 * math.pi * t / self.period_s)
        return self.mean_rate_per_s * (1.0 + self.amplitude * phase)

    def arrival_times(self, horizon_s: float) -> list[float]:
        peak = self.mean_rate_per_s * (1.0 + self.amplitude)
        rng = self._streams()
        gaps = rng.stream("gaps")
        keep = rng.stream("thinning")
        times = []
        now = 0.0
        while True:
            now += gaps.expovariate(peak)
            if now >= horizon_s:
                return times
            if keep.random() * peak < self.rate_at(now):
                times.append(now)


class TraceArrivals(ArrivalProcess):
    """Replay a recorded ``(arrival_s, template)`` trace.

    ``trace`` entries may be ``(arrival_s, RequestTemplate)`` pairs or
    bare floats (which draw from the mix like the synthetic processes).
    """

    def __init__(self, trace: typing.Sequence,
                 mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0):
        super().__init__(mix, seed)
        self.trace = tuple(trace)

    def _entries(self) -> "list[tuple[float, RequestTemplate | None]]":
        """The trace as sorted ``(arrival_s, template-or-None)`` pairs."""
        entries = []
        for entry in self.trace:
            if isinstance(entry, (int, float)):
                entries.append((float(entry), None))
            else:
                arrival_s, template = entry
                entries.append((float(arrival_s), template))
        entries.sort(key=lambda pair: pair[0])
        return entries

    def generate(self, horizon_s: float) -> list[TaskRequest]:
        return self._assemble(
            (arrival_s, template) for arrival_s, template in self._entries()
            if arrival_s < horizon_s
        )

    def arrival_times(self, horizon_s: float) -> list[float]:
        return [arrival for arrival, _template in self._entries()
                if arrival < horizon_s]


def make_arrivals(kind: str, rate_per_s: float, seed: int = 0,
                  mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                  ) -> ArrivalProcess:
    """Build a named arrival process at a target mean rate.

    ``bursty`` splits the mean across a quiet state at half the rate and
    a burst state at 1.5x; ``diurnal`` oscillates ±80% around the mean.
    """
    if kind == "poisson":
        return PoissonArrivals(rate_per_s, mix=mix, seed=seed)
    if kind == "bursty":
        return BurstyArrivals(rate_low=rate_per_s * 0.5,
                              rate_high=rate_per_s * 1.5,
                              mix=mix, seed=seed)
    if kind == "diurnal":
        return DiurnalArrivals(rate_per_s, mix=mix, seed=seed)
    raise KeyError(f"unknown arrival kind {kind!r}; "
                   "choose from ['bursty', 'diurnal', 'poisson'] "
                   "(trace replay is built directly via TraceArrivals)")


NAMED_ARRIVALS = ("poisson", "bursty", "diurnal")
