"""Open-loop arrival processes for the online serving layer.

The batch experiments submit a fixed set of side tasks up front; a
multi-user service instead sees an *open-loop* request stream whose
arrival times do not depend on how fast the system drains them. This
module generates such streams — seeded Poisson, bursty (Markov-modulated
Poisson), diurnal (time-varying rate via thinning), and trace replay —
as plain lists of timestamped :class:`TaskRequest` records, which the
frontend schedules into the simulation before the run starts.

Pre-generating the whole stream is exactly what open-loop means (the
times are independent of system state) and keeps every run byte-for-byte
deterministic: all randomness derives from the generator's explicit seed,
never from process-global counters.

Two generation paths share one seed discipline:

* the **scalar** path (default) draws one ``random.Random`` variate per
  event — the seeded reference every golden test pins;
* the **vectorized** path (``vectorized=True`` / spec knob
  ``arrivals.vectorized``) draws whole chunks of uniforms from a numpy
  ``RandomState`` carrying *the same Mersenne Twister state* as the
  scalar stream (:meth:`repro.sim.rng.RandomStreams.numpy_stream`), so
  the uniform sequence is bit-identical and template selection is
  bit-exact. Arrival *times* can differ from the scalar path in the
  last ulp (numpy's ``log``/``sin`` need not round like libm's), which
  is why the knob is an opt-in rather than a silent swap; equivalence
  is pinned by count-exact + 1e-12-relative tests and golden hashes.
  :meth:`ArrivalProcess.iter_time_chunks` exposes the stream as
  bounded-memory numpy chunks for 10^6–10^7-request scale runs.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
import typing

from repro.sim.rng import RandomStreams

#: default block size (uniform draws per numpy call) for the vectorized
#: generators — large enough to amortize per-call overhead, small enough
#: that a chunk is a few hundred KB
CHUNK_SIZE = 16384


@dataclasses.dataclass(frozen=True)
class RequestTemplate:
    """One entry of a workload mix: what a request of this kind runs."""

    #: workload registry name (see :mod:`repro.workloads.registry`)
    workload: str
    #: steps after which the job is complete (finite jobs make completion
    #: latency meaningful; the batch experiments run endless tasks)
    job_steps: int
    #: latency class name (see :mod:`repro.serving.slo`)
    slo_class: str = "standard"
    batch_size: int = 64
    interface: str = "iterative"
    #: relative arrival frequency within the mix
    weight: float = 1.0


#: A small/medium/large job mix over the paper's side tasks: interactive
#: PageRank queries, standard ResNet18 fine-tunes, batch ResNet50 jobs.
DEFAULT_MIX: tuple[RequestTemplate, ...] = (
    RequestTemplate("pagerank", job_steps=100, slo_class="interactive",
                    weight=3.0),
    RequestTemplate("resnet18", job_steps=40, slo_class="standard",
                    weight=2.0),
    RequestTemplate("resnet50", job_steps=20, slo_class="batch", weight=1.0),
)


@dataclasses.dataclass(frozen=True)
class TaskRequest:
    """One timestamped request drawn from the workload mix."""

    request_id: int
    arrival_s: float
    workload: str
    job_steps: int
    slo_class: str = "standard"
    batch_size: int = 64
    interface: str = "iterative"
    #: owning tenant of a multi-tenant scenario ("" = untenanted traffic);
    #: per-tenant admission and weighted-fair dispatch key on this
    tenant: str = ""

    @property
    def name(self) -> str:
        """Stable per-request task name (seeds the task's RNG streams)."""
        return f"{self.workload}-r{self.request_id}"


class _UnitExpChunks:
    """Chunked standard-exponential draws with carry-over.

    Pulls uniforms from a numpy stream in blocks and exposes them as
    unit-rate exponential variates ``-log(1 - u)`` — the same recipe as
    ``random.Random.expovariate`` — behind an index pointer, so a
    consumer (say, one MMPP phase) can take *exactly* as many draws as
    its scalar counterpart would and leave the rest, still valid, for
    the next consumer at a different rate. Uniform draws are
    rate-independent; only the final division by the rate is.
    """

    __slots__ = ("_stream", "_chunk", "_buf", "_pos")

    def __init__(self, stream, chunk_size: int):
        self._stream = stream
        self._chunk = max(1, int(chunk_size))
        self._buf = None
        self._pos = 0

    def peek(self):
        """The current block of unconsumed unit-exponential draws."""
        import numpy as np

        if self._buf is None or self._pos >= len(self._buf):
            self._buf = -np.log(1.0 - self._stream.random_sample(self._chunk))
            self._pos = 0
        return self._buf[self._pos:]

    def consume(self, n: int) -> None:
        self._pos += n


def _sequential_cumsum(base: float, gaps):
    """``base + gap_0``, ``base + gap_0 + gap_1``, … with the *same*
    left-to-right float-addition order as a scalar ``now += gap`` loop
    (numpy's 1-D cumsum accumulates sequentially, not pairwise)."""
    import numpy as np

    return np.cumsum(np.concatenate(([base], gaps)))[1:]


class ArrivalProcess:
    """Base class: template mixing + request assembly over arrival times."""

    def __init__(self, mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0, vectorized: bool = False):
        if not mix:
            raise ValueError("arrival mix must contain at least one template")
        self.mix = tuple(mix)
        self.seed = seed
        self.vectorized = bool(vectorized)

    # -- subclass API ---------------------------------------------------
    def arrival_times(self, horizon_s: float) -> list[float]:
        """Strictly increasing arrival instants in [0, horizon)."""
        if self.vectorized:
            times: list[float] = []
            for chunk in self.iter_time_chunks(horizon_s):
                times.extend(chunk.tolist())
            return times
        return self._scalar_times(horizon_s)

    def _scalar_times(self, horizon_s: float) -> list[float]:
        """The one-draw-per-event reference generator."""
        raise NotImplementedError

    def _vectorized_chunks(
        self, horizon_s: float, chunk_size: int,
    ) -> "typing.Iterator":
        """Yield arrival instants as numpy arrays (subclass hook)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no vectorized generator"
        )

    def iter_time_chunks(
        self, horizon_s: float, chunk_size: int = CHUNK_SIZE,
    ) -> "typing.Iterator":
        """Arrival instants in [0, horizon) as a stream of numpy arrays.

        Vectorized processes generate chunk-by-chunk, so memory stays
        bounded by ``chunk_size`` at any horizon — this is the interface
        the scale harness feeds from. Scalar processes fall back to
        slicing the fully materialized list (same values, no memory
        bound), keeping the two paths interchangeable for callers.
        """
        import numpy as np

        if horizon_s <= 0:
            return
        if self.vectorized:
            yield from self._vectorized_chunks(horizon_s, chunk_size)
            return
        times = self._scalar_times(horizon_s)
        for start in range(0, len(times), chunk_size):
            yield np.asarray(times[start:start + chunk_size], dtype=float)

    def _streams(self) -> RandomStreams:
        """A fresh stream factory, re-derived from the seed on every
        call: generation is idempotent — one process instance produces
        the same traffic no matter how often (or in what order) it is
        asked, so callers can reuse it across runs to compare policies
        on identical offered load."""
        return RandomStreams(self.seed)

    # -- shared assembly ------------------------------------------------
    def _assemble(
        self,
        entries: "typing.Iterable[tuple[float, RequestTemplate | None]]",
    ) -> list[TaskRequest]:
        """Stamp ``(arrival, template-or-None)`` pairs into requests;
        ``None`` templates are drawn from the mix by weight."""
        mix_stream = self._streams().stream("mix")
        weights = [template.weight for template in self.mix]
        requests = []
        for request_id, (arrival_s, template) in enumerate(entries):
            if template is None:
                template = mix_stream.choices(self.mix, weights=weights)[0]
            requests.append(TaskRequest(
                request_id=request_id,
                arrival_s=arrival_s,
                workload=template.workload,
                job_steps=template.job_steps,
                slo_class=template.slo_class,
                batch_size=template.batch_size,
                interface=template.interface,
            ))
        return requests

    def _pick_templates(self, count: int) -> list[RequestTemplate]:
        """Vectorized mix selection, bit-exact versus the scalar path.

        ``random.Random.choices`` draws one uniform per pick and bisects
        the cumulative weights; with bit-identical uniforms (shared MT
        state) the same products and the same bisection reproduce the
        scalar template sequence exactly — this half of the vectorized
        path needs no tolerance.
        """
        import numpy as np

        cum = list(itertools.accumulate(
            template.weight for template in self.mix))
        total = cum[-1] + 0.0
        uniforms = self._streams().numpy_stream("mix").random_sample(count)
        picks = np.searchsorted(
            np.asarray(cum[:-1]), uniforms * total, side="right")
        return [self.mix[index] for index in picks.tolist()]

    def generate(self, horizon_s: float) -> list[TaskRequest]:
        """The full request stream for one run."""
        if horizon_s <= 0:
            return []
        if self.vectorized:
            times = self.arrival_times(horizon_s)
            templates = self._pick_templates(len(times))
            return self._assemble(zip(times, templates))
        return self._assemble(
            (arrival_s, None) for arrival_s in self.arrival_times(horizon_s)
        )

    def iter_request_chunks(
        self, horizon_s: float, chunk_size: int = CHUNK_SIZE,
    ) -> "typing.Iterator[list[TaskRequest]]":
        """The request stream as bounded-memory chunks.

        Yields the exact requests :meth:`generate` would produce —
        request ids run across chunks and the mix stream persists
        between chunks, so chunked and one-shot generation pick the
        same templates — but (on the vectorized path) only ever holds
        one chunk in memory. The scale harness feeds the frontend from
        this, chunk by chunk, via
        :meth:`~repro.serving.frontend.ServingFrontend.feed`.
        """
        import numpy as np

        if horizon_s <= 0:
            return
        if not self.vectorized:
            requests = self.generate(horizon_s)
            for start in range(0, len(requests), chunk_size):
                yield requests[start:start + chunk_size]
            return
        mix_stream = self._streams().numpy_stream("mix")
        cum = list(itertools.accumulate(
            template.weight for template in self.mix))
        total = cum[-1] + 0.0
        boundaries = np.asarray(cum[:-1])
        request_id = 0
        for times in self.iter_time_chunks(horizon_s, chunk_size):
            picks = np.searchsorted(
                boundaries, mix_stream.random_sample(times.size) * total,
                side="right")
            chunk = []
            for arrival_s, pick in zip(times.tolist(), picks.tolist()):
                template = self.mix[pick]
                chunk.append(TaskRequest(
                    request_id=request_id,
                    arrival_s=arrival_s,
                    workload=template.workload,
                    job_steps=template.job_steps,
                    slo_class=template.slo_class,
                    batch_size=template.batch_size,
                    interface=template.interface,
                ))
                request_id += 1
            yield chunk


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson process at a constant rate (requests/second)."""

    def __init__(self, rate_per_s: float,
                 mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0, vectorized: bool = False):
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        super().__init__(mix, seed, vectorized)
        self.rate_per_s = rate_per_s

    def _scalar_times(self, horizon_s: float) -> list[float]:
        stream = self._streams().stream("gaps")
        times = []
        now = stream.expovariate(self.rate_per_s)
        while now < horizon_s:
            times.append(now)
            now += stream.expovariate(self.rate_per_s)
        return times

    def _vectorized_chunks(self, horizon_s, chunk_size):
        draws = _UnitExpChunks(
            self._streams().numpy_stream("gaps"), chunk_size)
        rate = self.rate_per_s
        base = 0.0
        while True:
            times = _sequential_cumsum(base, draws.peek() / rate)
            beyond = (times >= horizon_s).nonzero()[0]
            if beyond.size:
                cut = int(beyond[0])
                draws.consume(cut + 1)  # the crossing draw ends the stream
                if cut:
                    yield times[:cut]
                return
            draws.consume(times.size)
            base = float(times[-1])
            yield times


class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (quiet/burst).

    The process alternates between a low-rate and a high-rate state with
    exponentially distributed dwell times — the standard model for bursty
    request traffic.
    """

    def __init__(self, rate_low: float, rate_high: float,
                 mean_dwell_s: float = 10.0,
                 mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0, vectorized: bool = False):
        if rate_low <= 0 or rate_high <= 0:
            raise ValueError("both MMPP rates must be positive")
        if mean_dwell_s <= 0:
            raise ValueError("mean dwell time must be positive")
        super().__init__(mix, seed, vectorized)
        self.rate_low = rate_low
        self.rate_high = rate_high
        self.mean_dwell_s = mean_dwell_s

    @property
    def mean_rate_per_s(self) -> float:
        """Long-run average rate (equal dwell in both states)."""
        return (self.rate_low + self.rate_high) / 2.0

    def _scalar_times(self, horizon_s: float) -> list[float]:
        rng = self._streams()
        gaps = rng.stream("gaps")
        dwells = rng.stream("dwells")
        times = []
        now = 0.0
        high = False
        phase_end = dwells.expovariate(1.0 / self.mean_dwell_s)
        while now < horizon_s:
            rate = self.rate_high if high else self.rate_low
            gap = gaps.expovariate(rate)
            if now + gap >= phase_end:
                # No arrival before the phase switch. By memorylessness,
                # jumping to the switch and resampling at the new rate is
                # exact — carrying the old-rate gap across the boundary
                # would let quiet phases leap over entire bursts.
                now = phase_end
                high = not high
                phase_end = now + dwells.expovariate(1.0 / self.mean_dwell_s)
                continue
            now += gap
            if now < horizon_s:
                times.append(now)
        return times

    def _vectorized_chunks(self, horizon_s, chunk_size):
        import numpy as np

        rng = self._streams()
        draws = _UnitExpChunks(rng.numpy_stream("gaps"), chunk_size)
        dwells = rng.numpy_stream("dwells")
        lambd = 1.0 / self.mean_dwell_s

        def dwell() -> float:
            return float(-np.log(1.0 - dwells.random_sample()) / lambd)

        now = 0.0
        high = False
        phase_end = dwell()
        while now < horizon_s:
            rate = self.rate_high if high else self.rate_low
            # Consume gap draws at the phase rate until one crosses the
            # earlier of the phase switch and the horizon. The crossing
            # draw is consumed-and-discarded either way, mirroring the
            # scalar resample-at-the-boundary semantics, so both paths
            # take identical draw counts from each stream.
            stop = phase_end if phase_end < horizon_s else horizon_s
            crossing = None
            while crossing is None:
                times = _sequential_cumsum(now, draws.peek() / rate)
                hit = (times >= stop).nonzero()[0]
                if hit.size:
                    cut = int(hit[0])
                    draws.consume(cut + 1)
                    crossing = float(times[cut])
                    if cut:
                        yield times[:cut]
                else:
                    draws.consume(times.size)
                    now = float(times[-1])
                    yield times
            if crossing >= phase_end:
                now = phase_end
                high = not high
                phase_end = now + dwell()
            else:
                now = crossing  # crossed the horizon: outer loop exits


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson process (a compressed day).

    ``rate(t) = mean * (1 + amplitude * sin(2πt / period))``, realized by
    thinning a Poisson process at the peak rate — the textbook generator
    for non-homogeneous Poisson streams.
    """

    def __init__(self, mean_rate_per_s: float, period_s: float = 60.0,
                 amplitude: float = 0.8,
                 mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0, vectorized: bool = False):
        if mean_rate_per_s <= 0:
            raise ValueError("mean arrival rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period_s <= 0:
            raise ValueError("period must be positive")
        super().__init__(mix, seed, vectorized)
        self.mean_rate_per_s = mean_rate_per_s
        self.period_s = period_s
        self.amplitude = amplitude

    def rate_at(self, t: float) -> float:
        phase = math.sin(2.0 * math.pi * t / self.period_s)
        return self.mean_rate_per_s * (1.0 + self.amplitude * phase)

    def _scalar_times(self, horizon_s: float) -> list[float]:
        peak = self.mean_rate_per_s * (1.0 + self.amplitude)
        rng = self._streams()
        gaps = rng.stream("gaps")
        keep = rng.stream("thinning")
        times = []
        now = 0.0
        while True:
            now += gaps.expovariate(peak)
            if now >= horizon_s:
                return times
            if keep.random() * peak < self.rate_at(now):
                times.append(now)

    def _vectorized_chunks(self, horizon_s, chunk_size):
        import numpy as np

        peak = self.mean_rate_per_s * (1.0 + self.amplitude)
        rng = self._streams()
        draws = _UnitExpChunks(rng.numpy_stream("gaps"), chunk_size)
        keep = rng.numpy_stream("thinning")
        base = 0.0
        while True:
            times = _sequential_cumsum(base, draws.peek() / peak)
            beyond = (times >= horizon_s).nonzero()[0]
            if beyond.size:
                cut = int(beyond[0])
                draws.consume(cut + 1)
                candidates = times[:cut]
                done = True
            else:
                draws.consume(times.size)
                candidates = times
                base = float(times[-1])
                done = False
            if candidates.size:
                # One thinning draw per sub-horizon candidate, exactly
                # like the scalar loop (the horizon-crossing candidate
                # never reaches its thinning test there either).
                uniforms = keep.random_sample(candidates.size)
                rate = self.mean_rate_per_s * (1.0 + self.amplitude * np.sin(
                    2.0 * math.pi * candidates / self.period_s))
                kept = candidates[uniforms * peak < rate]
                if kept.size:
                    yield kept
            if done:
                return


class TraceArrivals(ArrivalProcess):
    """Replay a recorded ``(arrival_s, template)`` trace.

    ``trace`` entries may be ``(arrival_s, RequestTemplate)`` pairs or
    bare floats (which draw from the mix like the synthetic processes).
    """

    def __init__(self, trace: typing.Sequence,
                 mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                 seed: int = 0):
        super().__init__(mix, seed)
        self.trace = tuple(trace)

    def _entries(self) -> "list[tuple[float, RequestTemplate | None]]":
        """The trace as sorted ``(arrival_s, template-or-None)`` pairs."""
        entries = []
        for entry in self.trace:
            if isinstance(entry, (int, float)):
                entries.append((float(entry), None))
            else:
                arrival_s, template = entry
                entries.append((float(arrival_s), template))
        entries.sort(key=lambda pair: pair[0])
        return entries

    def generate(self, horizon_s: float) -> list[TaskRequest]:
        return self._assemble(
            (arrival_s, template) for arrival_s, template in self._entries()
            if arrival_s < horizon_s
        )

    def arrival_times(self, horizon_s: float) -> list[float]:
        return [arrival for arrival, _template in self._entries()
                if arrival < horizon_s]


def make_arrivals(kind: str, rate_per_s: float, seed: int = 0,
                  mix: typing.Sequence[RequestTemplate] = DEFAULT_MIX,
                  vectorized: bool = False) -> ArrivalProcess:
    """Build a named arrival process at a target mean rate.

    ``bursty`` splits the mean across a quiet state at half the rate and
    a burst state at 1.5x; ``diurnal`` oscillates ±80% around the mean.
    ``vectorized`` opts into chunked numpy generation (see module doc).
    """
    if kind == "poisson":
        return PoissonArrivals(rate_per_s, mix=mix, seed=seed,
                               vectorized=vectorized)
    if kind == "bursty":
        return BurstyArrivals(rate_low=rate_per_s * 0.5,
                              rate_high=rate_per_s * 1.5,
                              mix=mix, seed=seed, vectorized=vectorized)
    if kind == "diurnal":
        return DiurnalArrivals(rate_per_s, mix=mix, seed=seed,
                               vectorized=vectorized)
    raise KeyError(f"unknown arrival kind {kind!r}; "
                   "choose from ['bursty', 'diurnal', 'poisson'] "
                   "(trace replay is built directly via TraceArrivals)")


NAMED_ARRIVALS = ("poisson", "bursty", "diurnal")
