"""The declarative scenario language: everything a run is, as data.

A :class:`ScenarioSpec` describes one FreeRide scenario — the cluster,
the training job, the side-task workloads (batch) or the workload mix
and arrival process (serving), the policies, and an optional sweep grid
— as a frozen dataclass family that serializes losslessly to and from
plain dicts/JSON. Specs are the single currency of the system: the
experiment registry stores them, :class:`~repro.api.session.Session`
executes them, ``experiments/common.sweep`` fans them across the
process pool, and the CLI overrides them with ``--set key=value``.

The round-trip contract is strict: ``ScenarioSpec.from_dict(s.to_dict())
== s``, and re-running a re-hydrated spec reproduces the original run
byte for byte (every source of randomness derives from fields of the
spec). ``tests/api/test_spec.py`` pins both properties.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import json
import typing

from repro import calibration
from repro.errors import SpecError
from repro.faults.checkpoint import CheckpointPolicy
from repro.faults.plan import DropWindow, FaultPlan, SlowdownWindow, WorkerCrash
from repro.faults.plan import build_plan as _build_fault_plan
from repro.faults.retry import RetryPolicy
from repro.pipeline.config import MODEL_PRESETS, TrainConfig, model_config

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.cluster import Server
    from repro.serving.arrivals import ArrivalProcess, RequestTemplate
    from repro.sim.engine import Engine


# ----------------------------------------------------------------------
# dict codec helpers
# ----------------------------------------------------------------------
def _to_jsonable(value):
    """Recursively convert a spec value into JSON-shaped data (lists,
    dicts, scalars) — the exact structure ``json.loads`` hands back."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    return value


def _require_mapping(data, cls) -> dict:
    if not isinstance(data, dict):
        raise SpecError(
            f"{cls.__name__}.from_dict expects a mapping, got {type(data).__name__}"
        )
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise SpecError(
            f"unknown {cls.__name__} field(s) {sorted(unknown)}; "
            f"known fields: {sorted(known)}"
        )
    return data


class SpecBase:
    """Shared dict codec for the spec dataclasses.

    ``to_dict`` emits JSON-shaped data; ``from_dict`` validates field
    names (unknown keys are a :class:`SpecError`). Classes with nested
    spec fields override ``from_dict`` to coerce them first.
    """

    def to_dict(self) -> dict:
        return _to_jsonable(self)

    @classmethod
    def from_dict(cls, data: dict):
        return cls(**_require_mapping(data, cls))


# ----------------------------------------------------------------------
# the spec family
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ClusterSpec(SpecBase):
    """Which simulated server runs the scenario."""

    #: "server_i" (the 4-GPU training testbed), "server_ii", or "cpu"
    server: str = "server_i"
    #: record per-GPU SM occupancy traces (off by default: it is the
    #: single hottest allocation in long runs; Figures 1 and 8 opt in)
    record_occupancy: bool = False

    def factory(self) -> "typing.Callable[[Engine], Server]":
        from repro.gpu.cluster import make_server_cpu, make_server_i, make_server_ii

        if self.server == "server_i":
            if self.record_occupancy:
                return functools.partial(make_server_i, record_occupancy=True)
            return make_server_i
        if self.server == "server_ii":
            return make_server_ii
        if self.server == "cpu":
            return make_server_cpu
        raise SpecError(
            f"unknown server {self.server!r}; "
            "choose from ['cpu', 'server_i', 'server_ii']"
        )


@dataclasses.dataclass(frozen=True)
class TrainingSpec(SpecBase):
    """The pipeline-training job whose bubbles the scenario harvests.

    Mirrors :class:`~repro.pipeline.config.TrainConfig` field for field,
    minus the seed (the scenario's root ``seed`` feeds every stream).
    """

    #: model preset label ("1.2B" / "3.6B" / "6B") or a size in billions
    model: "str | float" = "3.6B"
    num_stages: int = calibration.NUM_STAGES
    micro_batches: int = calibration.DEFAULT_MICRO_BATCHES
    epochs: int = 8
    op_jitter: float = calibration.OP_TIME_REL_JITTER
    schedule: str = "1f1b"

    #: the supported pipeline schedules (see :mod:`repro.pipeline.schedule`)
    SCHEDULES = ("1f1b", "gpipe")

    def __post_init__(self):
        if isinstance(self.model, str):
            if self.model not in MODEL_PRESETS:
                raise SpecError(
                    f"unknown model preset {self.model!r}; choose from "
                    f"{sorted(MODEL_PRESETS)} or give a size in billions"
                )
        elif not self.model > 0:
            raise SpecError(
                f"model size must be positive billions, got {self.model}"
            )
        for field, minimum in (("num_stages", 1), ("micro_batches", 1),
                               ("epochs", 1)):
            value = getattr(self, field)
            if not isinstance(value, int) or value < minimum:
                raise SpecError(
                    f"training.{field} must be an integer >= {minimum}, "
                    f"got {value!r}"
                )
        if self.op_jitter < 0:
            raise SpecError(
                f"training.op_jitter must be >= 0, got {self.op_jitter}"
            )
        if self.schedule not in self.SCHEDULES:
            raise SpecError(
                f"unknown schedule {self.schedule!r}; "
                f"choose from {sorted(self.SCHEDULES)}"
            )

    def to_config(self, seed: int = 0) -> TrainConfig:
        return TrainConfig(
            model=model_config(self.model),
            num_stages=self.num_stages,
            micro_batches=self.micro_batches,
            epochs=self.epochs,
            seed=seed,
            op_jitter=self.op_jitter,
            schedule=self.schedule,
        )


@dataclasses.dataclass(frozen=True)
class WorkloadSpec(SpecBase):
    """One batch side-task submission (a row of the paper's deployments)."""

    #: workload registry name (see :mod:`repro.workloads.registry`)
    name: str = "resnet18"
    batch_size: int = 64
    interface: str = "iterative"
    #: one copy on every worker with enough bubble memory (the paper's
    #: standard deployment) vs a single submission
    replicate: bool = True
    #: cap on replicated copies (None = every eligible worker)
    copies: "int | None" = None

    def __post_init__(self):
        from repro.workloads.registry import WORKLOAD_NAMES

        if self.name not in WORKLOAD_NAMES:
            raise SpecError(
                f"unknown workload {self.name!r}; "
                f"choose from {sorted(WORKLOAD_NAMES)}"
            )
        if self.batch_size < 1:
            raise SpecError(
                f"workload batch_size must be >= 1, got {self.batch_size}"
            )
        if self.interface not in ("iterative", "imperative"):
            raise SpecError(
                f"unknown workload interface {self.interface!r}; "
                "choose from ['imperative', 'iterative']"
            )
        if self.copies is not None and self.copies < 1:
            raise SpecError(
                f"workload copies must be >= 1 (or None), got {self.copies}"
            )

    def factory(self):
        from repro.workloads.registry import workload_factory

        return workload_factory(self.name, batch_size=self.batch_size,
                                interface=self.interface)


@dataclasses.dataclass(frozen=True)
class JobSpec(SpecBase):
    """One training job of a ``kind="cluster"`` scenario.

    Pairs a per-job cluster (which server) with a per-job training
    config. The scenario's root ``seed`` still feeds every stream; job
    *i* trains with ``seed + i`` so identical job specs produce distinct
    (but fully deterministic) bubble patterns.
    """

    cluster: ClusterSpec = dataclasses.field(default_factory=ClusterSpec)
    training: TrainingSpec = dataclasses.field(default_factory=TrainingSpec)
    #: display label; empty = "job<index>"
    name: str = ""

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        data = dict(_require_mapping(data, cls))
        if "cluster" in data:
            data["cluster"] = ClusterSpec.from_dict(data["cluster"])
        if "training" in data:
            data["training"] = TrainingSpec.from_dict(data["training"])
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class MixEntrySpec(SpecBase):
    """One entry of a serving workload mix (request template)."""

    workload: str
    job_steps: int
    slo_class: str = "standard"
    batch_size: int = 64
    interface: str = "iterative"
    weight: float = 1.0

    def __post_init__(self):
        from repro.workloads.registry import WORKLOAD_NAMES

        if self.workload not in WORKLOAD_NAMES:
            raise SpecError(
                f"unknown mix workload {self.workload!r}; "
                f"choose from {sorted(WORKLOAD_NAMES)}"
            )
        if self.job_steps < 1:
            raise SpecError(
                f"mix job_steps must be >= 1, got {self.job_steps}"
            )
        if self.batch_size < 1:
            raise SpecError(
                f"mix batch_size must be >= 1, got {self.batch_size}"
            )
        if not self.weight > 0:
            raise SpecError(
                f"mix weight must be positive, got {self.weight}"
            )

    def to_template(self) -> "RequestTemplate":
        from repro.serving.arrivals import RequestTemplate

        return RequestTemplate(
            workload=self.workload,
            job_steps=self.job_steps,
            slo_class=self.slo_class,
            batch_size=self.batch_size,
            interface=self.interface,
            weight=self.weight,
        )


def default_mix() -> "tuple[MixEntrySpec, ...]":
    """The serving layer's standard mix, as spec entries."""
    from repro.serving.arrivals import DEFAULT_MIX

    return tuple(
        MixEntrySpec(
            workload=template.workload,
            job_steps=template.job_steps,
            slo_class=template.slo_class,
            batch_size=template.batch_size,
            interface=template.interface,
            weight=template.weight,
        )
        for template in DEFAULT_MIX
    )


@dataclasses.dataclass(frozen=True)
class ArrivalSpec(SpecBase):
    """The open-loop arrival process of a serving scenario."""

    #: "poisson", "bursty", or "diurnal" (trace replay is programmatic —
    #: build a TraceArrivals and hand it to the Session directly)
    kind: str = "poisson"
    rate_per_s: float = 2.0
    mix: "tuple[MixEntrySpec, ...]" = dataclasses.field(default_factory=default_mix)
    #: opt into chunked numpy stream generation (same seeds, bit-exact
    #: template picks, arrival times equal to the scalar reference
    #: within ulps — see :mod:`repro.serving.arrivals`); the scalar
    #: default keeps existing scenarios byte-identical
    vectorized: bool = False

    def __post_init__(self):
        from repro.serving.arrivals import NAMED_ARRIVALS

        if self.kind not in NAMED_ARRIVALS:
            raise SpecError(
                f"unknown arrival kind {self.kind!r}; "
                f"choose from {sorted(NAMED_ARRIVALS)} "
                "(trace replay is built programmatically)"
            )
        if not self.rate_per_s > 0:
            raise SpecError(
                f"arrivals.rate_per_s must be positive, "
                f"got {self.rate_per_s}"
            )
        if not self.mix:
            raise SpecError("arrivals need at least one mix entry")

    def build(self, seed: int = 0) -> "ArrivalProcess":
        from repro.serving.arrivals import make_arrivals

        return make_arrivals(
            self.kind, self.rate_per_s, seed=seed,
            mix=tuple(entry.to_template() for entry in self.mix),
            vectorized=self.vectorized,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalSpec":
        data = dict(_require_mapping(data, cls))
        if "mix" in data:
            data["mix"] = tuple(
                MixEntrySpec.from_dict(entry) for entry in data["mix"]
            )
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class TenantSpec(SpecBase):
    """One tenant of a multi-tenant serving/cluster scenario.

    A tenant is a named traffic source with a weighted-fair share of
    dispatch, its own admission token bucket, and its own open-loop
    arrival stream (rate, process kind, and SLO-class mix). Tenant *i*
    of a scenario draws its arrivals with ``seed + i`` — identical
    tenant entries still offer distinct, fully deterministic traffic.
    """

    name: str = "tenant"
    #: weighted-fair dispatch share (2.0 gets twice the service of 1.0
    #: whenever both tenants are backlogged)
    weight: float = 1.0
    #: per-tenant admission token bucket: sustained refill rate ...
    rate_per_s: float = 2.0
    #: ... and burst allowance
    burst: float = 4.0
    #: this tenant's arrival process ("poisson" / "bursty" / "diurnal")
    arrival_kind: str = "poisson"
    #: this tenant's offered load (requests/second)
    arrival_rate_per_s: float = 2.0
    #: this tenant's request-class mix (defaults to the standard mix)
    mix: "tuple[MixEntrySpec, ...]" = dataclasses.field(default_factory=default_mix)

    def __post_init__(self):
        from repro.serving.arrivals import NAMED_ARRIVALS

        if not self.weight > 0:
            raise SpecError(
                f"tenant {self.name!r} weight must be positive, "
                f"got {self.weight}"
            )
        if not self.rate_per_s > 0:
            raise SpecError(
                f"tenant {self.name!r} rate_per_s must be positive, "
                f"got {self.rate_per_s}"
            )
        if self.burst < 1:
            raise SpecError(
                f"tenant {self.name!r} burst must allow at least one "
                f"token, got {self.burst}"
            )
        if self.arrival_kind not in NAMED_ARRIVALS:
            raise SpecError(
                f"tenant {self.name!r} has unknown arrival kind "
                f"{self.arrival_kind!r}; choose from {sorted(NAMED_ARRIVALS)}"
            )
        if not self.arrival_rate_per_s > 0:
            raise SpecError(
                f"tenant {self.name!r} arrival_rate_per_s must be "
                f"positive, got {self.arrival_rate_per_s}"
            )
        if not self.mix:
            raise SpecError(
                f"tenant {self.name!r} needs at least one mix entry"
            )

    def share(self):
        """The runtime descriptor the fairness mechanisms consume."""
        from repro.tenancy.tenants import TenantShare

        return TenantShare(
            name=self.name, weight=self.weight,
            rate_per_s=self.rate_per_s, burst=self.burst,
        )

    def build_arrivals(self, seed: int = 0):
        """This tenant's own open-loop :class:`ArrivalProcess`."""
        from repro.serving.arrivals import make_arrivals

        return make_arrivals(
            self.arrival_kind, self.arrival_rate_per_s, seed=seed,
            mix=tuple(entry.to_template() for entry in self.mix),
        )

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        data = dict(_require_mapping(data, cls))
        if "mix" in data:
            data["mix"] = tuple(
                MixEntrySpec.from_dict(entry) for entry in data["mix"]
            )
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class PolicySpec(SpecBase):
    """Every pluggable policy decision of a scenario, by name."""

    #: worker assignment (Algorithm 1): a :data:`NAMED_POLICIES` key
    assignment: str = "least_loaded"
    #: serving admission policy: a :data:`NAMED_ADMISSION` key
    admission: str = "always"
    #: serving queue dispatch discipline: a :data:`NAMED_DISCIPLINES` key
    discipline: str = "edf"
    #: bound on the serving admission queue
    queue_capacity: int = 64
    #: framework-enforced grace period (None = calibrated default)
    grace_period_s: "float | None" = None
    #: manager RPC latency (None = calibrated default)
    rpc_latency_s: "float | None" = None

    def __post_init__(self):
        if self.queue_capacity < 1:
            raise SpecError(
                f"policy.queue_capacity must be >= 1, "
                f"got {self.queue_capacity}"
            )
        if self.grace_period_s is not None and not self.grace_period_s > 0:
            raise SpecError(
                f"policy.grace_period_s must be positive (or None), "
                f"got {self.grace_period_s}"
            )
        if self.rpc_latency_s is not None and self.rpc_latency_s < 0:
            raise SpecError(
                f"policy.rpc_latency_s must be >= 0 (or None), "
                f"got {self.rpc_latency_s}"
            )

    def assignment_policy(self):
        from repro.core.policies import NAMED_POLICIES

        try:
            return NAMED_POLICIES[self.assignment]
        except KeyError:
            raise SpecError(
                f"unknown assignment policy {self.assignment!r}; "
                f"choose from {sorted(NAMED_POLICIES)}"
            ) from None

    def freeride_kwargs(self) -> dict:
        """Keyword overrides for :class:`~repro.core.middleware.FreeRide`
        (only the fields that deviate from the calibrated defaults)."""
        kwargs: dict = {"policy": self.assignment_policy()}
        if self.grace_period_s is not None:
            kwargs["grace_period_s"] = self.grace_period_s
        if self.rpc_latency_s is not None:
            kwargs["rpc_latency_s"] = self.rpc_latency_s
        return kwargs


@dataclasses.dataclass(frozen=True)
class ObsSpec(SpecBase):
    """The scenario's observability controls (the ``obs`` section).

    Tracing is off by default and — by hard contract, pinned in
    ``tests/obs/test_trace_determinism.py`` — can never change a run:
    turning it on yields byte-identical scenario outputs plus a
    :class:`~repro.obs.export.TraceResult` attached as ``result.trace``.
    ``--set trace=true`` is registry sugar for ``obs.trace``.
    """

    #: record structured spans and attach ``result.trace``
    trace: bool = False
    #: also convert the pipeline trace (op/bubble/epoch intervals) into
    #: spans after the run — the densest tracks, so they can be opted out
    trace_pipeline: bool = True
    #: bound on each telemetry metric's ring-buffer timeline
    ring_limit: int = 1024

    def __post_init__(self):
        if self.ring_limit < 1:
            raise SpecError(
                f"ring_limit must be >= 1, got {self.ring_limit}"
            )


#: metrics accounting modes a :class:`MetricsSpec` can name
METRICS_MODES = ("records", "streaming")


@dataclasses.dataclass(frozen=True)
class MetricsSpec(SpecBase):
    """The scenario's metrics accounting (the ``metrics`` section).

    ``records`` (default) retains every request record and folds them
    after the run — exact quantiles, byte-identical to every scenario
    that predates this section. ``streaming`` folds each record into
    constant-memory accumulators (P² quantile sketches) the moment it
    turns terminal and then drops it — the scale path for 10^6–10^7
    request runs, still fully deterministic (serial and pool runs
    serialize byte-identically) but with approximate tracked quantiles
    and an empty ``result.records``. Always a section (never None) so
    ``--set metrics.mode=streaming`` has a path to land on.
    """

    mode: str = "records"

    def __post_init__(self):
        if self.mode not in METRICS_MODES:
            raise SpecError(
                f"unknown metrics mode {self.mode!r}; "
                f"choose from {sorted(METRICS_MODES)}"
            )


#: recovery modes a :class:`FaultSpec` can name
RECOVERY_MODES = ("none", "restart", "checkpoint")


@dataclasses.dataclass(frozen=True)
class FaultSpec(SpecBase):
    """The scenario's fault model: what breaks, and how the run recovers.

    Injection knobs (crashes, step failures, slowdowns, RPC drops) and
    recovery knobs (checkpointing, serving retries) live together so one
    ``--set faults.crash_rate=2.0 --set faults.recovery=checkpoint``
    names a complete resilience experiment point. Everything derives
    from the scenario's root seed — a faulted run is exactly as
    reproducible as a healthy one.
    """

    #: expected worker crashes per stage over the open horizon (a
    #: seeded per-stage Poisson plan; 0 = only the explicit ``crashes``)
    crash_rate: float = 0.0
    #: explicit scripted crashes, on top of any sampled ones
    crashes: "tuple[WorkerCrash, ...]" = ()
    #: sampled crashes restart after this long (None = permanent loss);
    #: explicit crashes carry their own restart delay
    restart_after_s: "float | None" = 5.0
    #: probability an individual side-task step fails (pure hash of
    #: (seed, task, attempt) — independent of every other stream)
    step_failure_rate: float = 0.0
    #: straggler windows: a stage runs ``factor`` times slower inside
    slowdowns: "tuple[SlowdownWindow, ...]" = ()
    #: manager-cast drop windows (commands delayed, never lost)
    rpc_drop_windows: "tuple[DropWindow, ...]" = ()
    rpc_retransmit_delay_s: float = 0.05
    #: "none" (evicted work is killed), "restart" (preempted tasks
    #: resume from scratch), or "checkpoint" (resume from the last
    #: periodic snapshot)
    recovery: str = "none"
    checkpoint_interval_steps: int = 4
    checkpoint_cost_s: float = 0.05
    restore_cost_s: float = 0.1
    #: serving dispatch attempts per request (1 = no retries)
    retry_max_attempts: int = 1
    retry_backoff_s: float = 0.5
    retry_backoff_factor: float = 2.0
    retry_jitter: float = 0.1
    #: per-attempt serving timeout (None = attempts never time out)
    attempt_timeout_s: "float | None" = None

    def __post_init__(self):
        if self.recovery not in RECOVERY_MODES:
            raise SpecError(
                f"unknown recovery mode {self.recovery!r}; "
                f"choose from {sorted(RECOVERY_MODES)}"
            )
        if self.crash_rate < 0:
            raise SpecError(
                f"crash_rate must be >= 0, got {self.crash_rate}"
            )
        if not 0.0 <= self.step_failure_rate < 1.0:
            raise SpecError(
                "step_failure_rate must be in [0, 1), got "
                f"{self.step_failure_rate}"
            )
        if self.retry_max_attempts < 1:
            raise SpecError(
                f"retry_max_attempts must be >= 1, got "
                f"{self.retry_max_attempts}"
            )

    @property
    def active(self) -> bool:
        """Whether the spec injects any fault at all (recovery knobs
        alone do not make a plan worth arming)."""
        return bool(
            self.crash_rate > 0
            or self.crashes
            or self.step_failure_rate > 0
            or self.slowdowns
            or self.rpc_drop_windows
        )

    def retry_policy(self) -> "RetryPolicy | None":
        """The serving-frontend retry policy (None = no retry layer)."""
        if self.retry_max_attempts <= 1 and self.attempt_timeout_s is None:
            return None
        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            backoff_s=self.retry_backoff_s,
            backoff_factor=self.retry_backoff_factor,
            jitter=self.retry_jitter,
            attempt_timeout_s=self.attempt_timeout_s,
        )

    def checkpoint_policy(self) -> "CheckpointPolicy | None":
        """The side-task recovery policy: None for ``recovery="none"``,
        interval 0 (snapshot only at birth — restart from scratch) for
        ``"restart"``, the full periodic policy for ``"checkpoint"``."""
        if self.recovery == "none":
            return None
        interval = (self.checkpoint_interval_steps
                    if self.recovery == "checkpoint" else 0)
        return CheckpointPolicy(
            interval_steps=interval,
            checkpoint_cost_s=self.checkpoint_cost_s,
            restore_cost_s=self.restore_cost_s,
        )

    def build_plan(self, seed: int, horizon_s: float,
                   num_stages: int) -> FaultPlan:
        """The concrete :class:`~repro.faults.plan.FaultPlan`: sampled
        crashes (from ``crash_rate``) merged with the scripted ones."""
        plan = _build_fault_plan(
            seed, horizon_s, num_stages,
            crash_rate=self.crash_rate,
            restart_after_s=self.restart_after_s,
            step_failure_rate=self.step_failure_rate,
            slowdowns=self.slowdowns,
            rpc_drops=self.rpc_drop_windows,
            rpc_retry_delay_s=self.rpc_retransmit_delay_s,
        )
        if self.crashes:
            merged = tuple(sorted(
                plan.crashes + self.crashes,
                key=lambda crash: (crash.at_s, crash.stage),
            ))
            plan = dataclasses.replace(plan, crashes=merged)
        return plan

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        data = dict(_require_mapping(data, cls))
        if "crashes" in data:
            data["crashes"] = tuple(
                WorkerCrash(**_require_mapping(entry, WorkerCrash))
                for entry in data["crashes"]
            )
        if "slowdowns" in data:
            data["slowdowns"] = tuple(
                SlowdownWindow(**_require_mapping(entry, SlowdownWindow))
                for entry in data["slowdowns"]
            )
        if "rpc_drop_windows" in data:
            data["rpc_drop_windows"] = tuple(
                DropWindow(**_require_mapping(entry, DropWindow))
                for entry in data["rpc_drop_windows"]
            )
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class SweepSpec(SpecBase):
    """The sweep grid: either a cartesian product of override axes, or an
    explicit list of override points (for zipped/irregular grids).

    Keys are dotted override paths into the scenario (see
    :meth:`ScenarioSpec.override`); the product iterates the *last* axis
    fastest, matching the nested-loop order the experiments print in.
    """

    #: {"arrivals.rate_per_s": (1.0, 2.0), "policy.admission": (...)}
    axes: "dict[str, tuple]" = dataclasses.field(default_factory=dict)
    #: explicit points, each a {dotted-path: value} mapping
    points: "tuple[dict, ...]" = ()

    def __post_init__(self):
        if self.axes and self.points:
            raise SpecError("a sweep is either axes or points, not both")

    def overrides(self) -> "list[dict]":
        """The per-point override mappings, in sweep order."""
        if self.points:
            return [dict(point) for point in self.points]
        keys = list(self.axes)
        return [
            dict(zip(keys, combo))
            for combo in itertools.product(*(self.axes[key] for key in keys))
        ]

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        data = dict(_require_mapping(data, cls))
        if "axes" in data:
            data["axes"] = {key: tuple(values)
                            for key, values in data["axes"].items()}
        if "points" in data:
            data["points"] = tuple(dict(point) for point in data["points"])
        return cls(**data)


def _coerce_leaf(current, value, full: str):
    """Coerce an override leaf toward the type of the value it replaces.

    ``--set`` values arrive JSON-parsed-or-raw-string, so ``--set
    obs.trace=True`` hands the spec the *string* ``"True"`` and ``--set
    arrivals.rate_per_s=2`` hands a float knob the *int* ``2``. Rather
    than silently storing a truthy string in a bool field (round-trips,
    but lies about its type), bool/float/int leaves coerce compatible
    values and reject nonsense with a :class:`SpecError`. Non-scalar
    leaves (whole-section replacement, params keys, None) pass through
    untouched.
    """
    if isinstance(current, bool):
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "yes", "on", "1"):
                return True
            if lowered in ("false", "no", "off", "0"):
                return False
        raise SpecError(
            f"cannot override {full!r}: expected a boolean "
            f"(true/false), got {value!r}"
        )
    if isinstance(value, bool):
        return value
    if isinstance(current, float):
        if isinstance(value, int):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                raise SpecError(
                    f"cannot override {full!r}: expected a number, "
                    f"got {value!r}"
                ) from None
    if isinstance(current, int) and isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            raise SpecError(
                f"cannot override {full!r}: expected an integer, "
                f"got {value!r}"
            ) from None
    return value


def _set_path(node, path: "list[str]", value, full: str) -> None:
    """Set ``value`` at a dotted ``path`` inside JSON-shaped ``node``."""
    head, rest = path[0], path[1:]
    if isinstance(node, list):
        try:
            index = int(head)
        except ValueError:
            raise SpecError(
                f"cannot override {full!r}: {head!r} is not a list index"
            ) from None
        if not 0 <= index < len(node):
            raise SpecError(
                f"cannot override {full!r}: index {index} out of range "
                f"(list has {len(node)} entries)"
            )
        if rest:
            _set_path(node[index], rest, value, full)
        else:
            node[index] = _coerce_leaf(node[index], value, full)
        return
    if not isinstance(node, dict):
        raise SpecError(
            f"cannot override {full!r}: {head!r} is not a settable field "
            f"of a {type(node).__name__}"
        )
    if rest:
        if head not in node or node[head] is None:
            raise SpecError(
                f"cannot override {full!r}: the scenario has no "
                f"{head!r} section"
            )
        _set_path(node[head], rest, value, full)
    else:
        node[head] = _coerce_leaf(node.get(head), value, full)


@dataclasses.dataclass(frozen=True)
class ScenarioSpec(SpecBase):
    """One declarative FreeRide scenario, sweep grid included."""

    name: str = "scenario"
    #: "batch" (FreeRide + fixed submissions), "serving" (open-loop
    #: traffic through the admission frontend), "pipeline" (training
    #: only, no side tasks), or "cluster" (several training jobs behind
    #: one shared manager)
    kind: str = "batch"
    #: root seed: feeds training jitter, worker RNG streams, and (for
    #: serving scenarios) the arrival process
    seed: int = 0
    cluster: ClusterSpec = dataclasses.field(default_factory=ClusterSpec)
    training: TrainingSpec = dataclasses.field(default_factory=TrainingSpec)
    #: batch submissions; for "cluster" scenarios this is the shared
    #: workload mix placed across the combined pool ("serving"/
    #: "pipeline" ignore it)
    workloads: "tuple[WorkloadSpec, ...]" = ()
    #: serving traffic (required for "serving" scenarios without
    #: tenants; optional for "cluster" — admits open-loop requests
    #: against the combined pool)
    arrivals: "ArrivalSpec | None" = None
    #: the scenario's tenants: an int (that many identically configured
    #: tenants — what ``--set tenants=4`` sets) or explicit per-tenant
    #: :class:`TenantSpec` entries; tenants bring their own arrival
    #: streams, so a tenant scenario has no ``arrivals`` section
    tenants: "int | tuple[TenantSpec, ...]" = ()
    policy: PolicySpec = dataclasses.field(default_factory=PolicySpec)
    #: the cluster's training jobs: an int (that many copies of the
    #: base ``cluster``+``training`` sections — what ``--set jobs=4``
    #: sets) or explicit per-job :class:`JobSpec` entries
    jobs: "int | tuple[JobSpec, ...]" = ()
    #: the scenario's fault model: injected failures plus recovery
    #: policy (serving/cluster kinds; None = nothing breaks)
    faults: "FaultSpec | None" = None
    #: observability controls; always a section (never None) so
    #: ``--set obs.trace=true`` has a path to land on
    obs: ObsSpec = dataclasses.field(default_factory=ObsSpec)
    #: metrics accounting; always a section so ``--set
    #: metrics.mode=streaming`` has a path to land on
    metrics: MetricsSpec = dataclasses.field(default_factory=MetricsSpec)
    sweep: "SweepSpec | None" = None
    #: free-form, JSON-safe experiment knobs (durations, method names,
    #: cached derived values such as a precomputed baseline time)
    params: dict = dataclasses.field(default_factory=dict)

    KINDS = ("batch", "serving", "pipeline", "cluster")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise SpecError(
                f"unknown scenario kind {self.kind!r}; "
                f"choose from {sorted(self.KINDS)}"
            )
        if isinstance(self.jobs, int):
            if self.jobs < 0:
                raise SpecError(f"jobs must be >= 0, got {self.jobs}")
        if self.kind == "cluster" and not self.jobs:
            raise SpecError(
                "cluster scenarios need jobs: an int (copies of the base "
                "training section) or a list of per-job specs"
            )
        if isinstance(self.tenants, int):
            if self.tenants < 0:
                raise SpecError(f"tenants must be >= 0, got {self.tenants}")
        else:
            names = [tenant.name for tenant in self.tenants]
            if len(set(names)) != len(names):
                raise SpecError(
                    f"tenant names must be unique, got {names}"
                )
        if self.tenants:
            if self.kind not in ("serving", "cluster"):
                raise SpecError(
                    f"tenants belong to serving/cluster scenarios, not "
                    f"kind {self.kind!r}"
                )
            if self.arrivals is not None:
                raise SpecError(
                    "a tenant scenario derives its traffic from the "
                    "tenants' own arrival streams; drop the arrivals "
                    "section"
                )
        if self.faults is not None and self.kind not in ("serving", "cluster"):
            raise SpecError(
                f"faults belong to serving/cluster scenarios, not kind "
                f"{self.kind!r}"
            )
        if (self.metrics.mode != "records"
                and self.kind not in ("serving", "cluster")):
            raise SpecError(
                f"streaming metrics belong to serving/cluster scenarios, "
                f"not kind {self.kind!r}"
            )

    # -- config assembly ------------------------------------------------
    def train_config(self) -> TrainConfig:
        return self.training.to_config(self.seed)

    def job_specs(self) -> "tuple[JobSpec, ...]":
        """The cluster's jobs, materialized.

        An int ``jobs`` expands to that many copies of the scenario's
        base ``cluster``/``training`` sections; an explicit tuple is
        returned as-is.
        """
        if isinstance(self.jobs, int):
            return tuple(
                JobSpec(cluster=self.cluster, training=self.training)
                for _ in range(self.jobs)
            )
        return self.jobs

    def job_configs(self) -> "list[TrainConfig]":
        """Per-job train configs; job *i* seeds with ``seed + i``."""
        return [
            job.training.to_config(self.seed + index)
            for index, job in enumerate(self.job_specs())
        ]

    @property
    def num_jobs(self) -> int:
        return len(self.job_specs())

    def tenant_specs(self) -> "tuple[TenantSpec, ...]":
        """The scenario's tenants, materialized.

        An int ``tenants`` expands to that many identically configured
        tenants named ``tenant0..tenantN-1``; an explicit tuple is
        returned as-is.
        """
        if isinstance(self.tenants, int):
            return tuple(
                TenantSpec(name=f"tenant{index}")
                for index in range(self.tenants)
            )
        return self.tenants

    @property
    def num_tenants(self) -> int:
        return len(self.tenant_specs())

    def tenant_shares(self) -> tuple:
        """Runtime :class:`~repro.tenancy.tenants.TenantShare` set."""
        return tuple(tenant.share() for tenant in self.tenant_specs())

    def tenant_arrivals(self):
        """The merged multi-tenant arrival stream (tenant *i* draws with
        ``seed + i``, mirroring how cluster job *i* trains)."""
        from repro.tenancy.arrivals import TenantArrivals

        return TenantArrivals([
            (tenant.name, tenant.build_arrivals(self.seed + index))
            for index, tenant in enumerate(self.tenant_specs())
        ])

    def param(self, key: str, default=None):
        return self.params.get(key, default)

    # -- dict / JSON codec ----------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = dict(_require_mapping(data, cls))
        if "cluster" in data:
            data["cluster"] = ClusterSpec.from_dict(data["cluster"])
        if "training" in data:
            data["training"] = TrainingSpec.from_dict(data["training"])
        if "workloads" in data:
            data["workloads"] = tuple(
                WorkloadSpec.from_dict(entry) for entry in data["workloads"]
            )
        if data.get("arrivals") is not None:
            data["arrivals"] = ArrivalSpec.from_dict(data["arrivals"])
        if "tenants" in data and not isinstance(data["tenants"], int):
            data["tenants"] = tuple(
                TenantSpec.from_dict(entry) for entry in data["tenants"]
            )
        if "policy" in data:
            if isinstance(data["policy"], str):
                # CLI sugar: --set policy=edf names the assignment policy.
                data["policy"] = PolicySpec(assignment=data["policy"])
            else:
                data["policy"] = PolicySpec.from_dict(data["policy"])
        if "jobs" in data and not isinstance(data["jobs"], int):
            data["jobs"] = tuple(
                JobSpec.from_dict(entry) for entry in data["jobs"]
            )
        if data.get("faults") is not None:
            data["faults"] = FaultSpec.from_dict(data["faults"])
        if "obs" in data:
            data["obs"] = ObsSpec.from_dict(data["obs"])
        if "metrics" in data:
            data["metrics"] = MetricsSpec.from_dict(data["metrics"])
        if data.get("sweep") is not None:
            data["sweep"] = SweepSpec.from_dict(data["sweep"])
        if "params" in data:
            data["params"] = dict(data["params"])
        return cls(**data)

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- overrides and sweep materialization ----------------------------
    def override(self, overrides: "typing.Mapping[str, object]") -> "ScenarioSpec":
        """A new spec with dotted-path overrides applied.

        Paths navigate nested sections ("training.epochs"), list entries
        ("workloads.0.batch_size"), and the free-form params dict
        ("params.method" — params keys may be created, spec fields must
        exist). Values replace whole subtrees: ``{"sweep.axes": {...}}``
        swaps the grid in one assignment.
        """
        if not overrides:
            return self
        data = self.to_dict()
        for path, value in overrides.items():
            _set_path(data, path.split("."), _to_jsonable(value), path)
        return type(self).from_dict(data)

    def sweep_points(
        self,
        extra: "typing.Mapping | typing.Callable[[dict], typing.Mapping] | None" = None,
    ) -> "list[ScenarioSpec]":
        """Materialize the sweep grid into self-contained point specs.

        Each point is this spec with one grid entry's overrides applied
        and the grid itself cleared (a point re-runs alone). ``extra``
        merges additional overrides into every point — either a constant
        mapping or a callable of the point's own overrides, which is how
        experiments bake derived context (e.g. a precomputed baseline
        time) into the specs they ship to pool workers.
        """
        grid = self.sweep.overrides() if self.sweep is not None else [{}]
        points = []
        for overrides in grid:
            merged = dict(overrides)
            if callable(extra):
                merged.update(extra(overrides))
            elif extra:
                merged.update(extra)
            merged["sweep"] = None
            points.append(self.override(merged))
        return points

    def with_points(
        self,
        points: "typing.Iterable[dict]",
        extra: "typing.Mapping | typing.Callable[[dict], typing.Mapping] | None" = None,
    ) -> "list[ScenarioSpec]":
        """:meth:`sweep_points` over an ad-hoc grid, ignoring any sweep
        already on the spec — how experiments with several sub-sweeps
        (fig7's three sensitivity axes, the ablations) materialize each
        one from the same base scenario."""
        swept = dataclasses.replace(self, sweep=SweepSpec(points=tuple(points)))
        return swept.sweep_points(extra)
