"""The experiment registry: every scenario the repo can (re)produce.

Each experiment module registers itself at import time with its default
:class:`~repro.api.spec.ScenarioSpec`, its spec-driven runner
(``run_spec``), its renderer, and a typed-row extractor. The CLI, the
artifact exporter, and the tests all go through this table — there is no
``inspect.signature`` probing anywhere: a scenario's parameters are its
spec's fields, overridable by dotted path (``--set training.epochs=16``,
``--seed 7``).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.api.results import ResultSet
from repro.api.spec import ScenarioSpec, SweepSpec
from repro.errors import SpecError


@dataclasses.dataclass(frozen=True)
class ExperimentDef:
    """One registered scenario."""

    name: str
    #: one-line description (``repro list``)
    title: str
    #: zero-argument default-spec factory (a fresh spec per call)
    spec: "typing.Callable[[], ScenarioSpec]"
    #: the spec-driven implementation: ``run_spec(spec) -> data``
    run_spec: "typing.Callable[[ScenarioSpec], object]"
    #: the paper-style renderer: ``render(data) -> str``
    render: "typing.Callable[[object], str]"
    #: typed-row extractor for CSV/JSON export (None = JSON/txt only)
    rows: "typing.Callable[[object], list] | None" = None
    #: accepts ``--spec`` files of *any* scenario kind (the ``fuzzcase``
    #: replayer — most experiments are bound to one kind)
    any_kind: bool = False


REGISTRY: "dict[str, ExperimentDef]" = {}


def register(
    name: str,
    title: str,
    spec: "typing.Callable[[], ScenarioSpec]",
    run_spec: "typing.Callable[[ScenarioSpec], object]",
    render: "typing.Callable[[object], str]",
    rows: "typing.Callable[[object], list] | None" = None,
    any_kind: bool = False,
) -> ExperimentDef:
    """Register one experiment (module import time); returns its def."""
    if name in REGISTRY:
        raise ValueError(f"experiment {name!r} is already registered")
    definition = ExperimentDef(
        name=name, title=title, spec=spec,
        run_spec=run_spec, render=render, rows=rows, any_kind=any_kind,
    )
    REGISTRY[name] = definition
    return definition


def _ensure_loaded() -> None:
    """Importing the experiments package populates the registry."""
    import repro.experiments  # noqa: F401  (registration side effect)


def names() -> "list[str]":
    _ensure_loaded()
    return sorted(REGISTRY)


def get(name: str) -> ExperimentDef:
    _ensure_loaded()
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {names()}"
        ) from None


def describe() -> "list[dict]":
    """JSON-safe listing (``repro list --json`` / the CI smoke step)."""
    return [
        {
            "name": definition.name,
            "title": definition.title,
            "kind": definition.spec().kind,
            "has_rows": definition.rows is not None,
        }
        for definition in (REGISTRY[name] for name in names())
    ]


#: top-level ``--set`` shorthands for the nested policy fields (the
#: spec-level ``--set policy=edf`` string sugar's dotted cousins)
_POLICY_SUGAR = ("assignment", "admission", "discipline")

#: top-level ``--set`` shorthands for the faults section (the resilience
#: experiment's vocabulary: ``--set crash_rate=2 --set recovery=checkpoint``)
_FAULT_SUGAR = {
    "crash_rate": "faults.crash_rate",
    "recovery": "faults.recovery",
}

#: top-level ``--set`` shorthand for the observability section
#: (``--set trace=true`` turns on span tracing for the run)
_OBS_SUGAR = {
    "trace": "obs.trace",
}


def expand_overrides(
    overrides: "typing.Mapping[str, object]",
) -> "dict[str, object]":
    """Normalize override shorthands to real dotted spec paths.

    ``assignment=edf`` / ``admission=backpressure`` / ``discipline=fifo``
    expand to the matching ``policy.*`` path, ``crash_rate=...`` /
    ``recovery=...`` to the matching ``faults.*`` path, and
    ``trace=true`` to ``obs.trace``. One special
    case: ``assignment=weighted`` (the fairness experiments' vocabulary)
    names the weighted-fair *dispatch* discipline — worker assignment
    proper stays as configured, since the weighting happens at the
    queue, not at worker choice — so it expands to ``policy.discipline``.

    Expansion happens before sweep-axis pinning, so a shorthand pins the
    same axis its dotted form would.
    """
    if not any(key in overrides
               for key in (*_POLICY_SUGAR, *_FAULT_SUGAR, *_OBS_SUGAR)):
        return dict(overrides)
    from repro.tenancy.scheduler import NAMED_FAIR_DISCIPLINES

    expanded: "dict[str, object]" = {}
    for key, value in overrides.items():
        if key in _POLICY_SUGAR:
            field = key
            if (key == "assignment" and isinstance(value, str)
                    and value in NAMED_FAIR_DISCIPLINES):
                field = "discipline"
            expanded[f"policy.{field}"] = value
        elif key in _FAULT_SUGAR:
            expanded[_FAULT_SUGAR[key]] = value
        elif key in _OBS_SUGAR:
            expanded[_OBS_SUGAR[key]] = value
        else:
            expanded[key] = value
    return expanded


def _pin_swept_fields(
    scenario: ScenarioSpec, overrides: "typing.Mapping[str, object]"
) -> ScenarioSpec:
    """An explicit override of a swept field *pins* that axis.

    Without this, ``--set policy.admission=backpressure`` on a scenario
    that sweeps ``policy.admission`` would be silently re-swept away at
    every point. Product axes are droppable one at a time; an explicit
    ``points`` grid is not, so colliding with one is an error rather
    than a silent no-op.
    """
    sweep = scenario.sweep
    if sweep is None:
        return scenario

    def _overridden(key: str) -> bool:
        # An override of the axis itself, of a parent subtree (--set
        # policy=edf replaces the whole policy section, so the
        # policy.assignment axis must not re-sweep it away), or of a
        # field *inside* a whole-subtree axis (--set
        # workloads.0.batch_size=32 against a swept 'workloads' axis
        # would otherwise be replaced wholesale at every point).
        return any(
            key == path
            or key.startswith(path + ".")
            or path.startswith(key + ".")
            for path in overrides
        )

    collisions = [
        key for point in sweep.points for key in point if _overridden(key)
    ]
    if collisions:
        raise SpecError(
            f"override(s) {sorted(set(collisions))} collide with the "
            "scenario's explicit sweep points and would be ignored; "
            "override 'sweep.points' itself instead"
        )
    pinned = [key for key in sweep.axes if _overridden(key)]
    if not pinned:
        return scenario
    axes = {key: values for key, values in sweep.axes.items()
            if key not in pinned}
    return dataclasses.replace(
        scenario, sweep=SweepSpec(axes=axes) if axes else None
    )


def resolve_scenario(
    name: str,
    overrides: "typing.Mapping[str, object] | None" = None,
    spec: "ScenarioSpec | None" = None,
) -> ScenarioSpec:
    """The scenario a ``run`` with these inputs would execute.

    ``spec`` replaces the experiment's default spec wholesale (e.g. one
    re-hydrated from an exported JSON artifact — its ``kind`` must match
    the experiment's); ``overrides`` then apply on top of whichever base
    is in play, pinning any sweep axis they name.
    """
    definition = get(name)
    if (spec is not None and not definition.any_kind
            and spec.kind != definition.spec().kind):
        raise SpecError(
            f"scenario {name!r} runs {definition.spec().kind!r}-kind specs; "
            f"the supplied spec is {spec.kind!r} (exported from a different "
            "experiment?)"
        )
    scenario = spec if spec is not None else definition.spec()
    if overrides:
        overrides = expand_overrides(overrides)
        scenario = _pin_swept_fields(scenario.override(overrides), overrides)
    return scenario


def run(
    name: str,
    overrides: "typing.Mapping[str, object] | None" = None,
    spec: "ScenarioSpec | None" = None,
    backend=None,
) -> ResultSet:
    """Run a registered scenario and wrap the outcome as a ResultSet
    (base-spec/override resolution in :func:`resolve_scenario`).

    ``backend`` scopes a sweep executor — a
    :class:`~repro.distrib.executor.SweepBackend` or a backend name —
    around the scenario's sweeps via
    :func:`~repro.distrib.executor.use_backend`; ``None`` keeps the
    ambient resolution (context, environment, default pool).
    """
    definition = get(name)
    scenario = resolve_scenario(name, overrides, spec)
    if backend is None:
        data = definition.run_spec(scenario)
    else:
        from repro.distrib.executor import use_backend

        with use_backend(backend):
            data = definition.run_spec(scenario)
    return ResultSet(
        experiment=name,
        scenario=scenario,
        data=data,
        _render=definition.render,
        _rows=definition.rows,
    )
