"""Deprecation plumbing for the pre-registry entry points.

The module-level ``run(...)`` functions in :mod:`repro.experiments` and
the positional ``freeride <experiment>`` CLI form remain supported for
one release; each delegates to the registry and announces itself here.
The warning text is stable (tests and the pytest filter match on the
``legacy entry point`` prefix).
"""

from __future__ import annotations

import warnings


def deprecated_entry(legacy: str, replacement: str) -> None:
    """Warn that a legacy entry point was used.

    The call still works (and produces byte-identical output to the
    replacement); the warning names where to migrate.
    """
    warnings.warn(
        f"legacy entry point {legacy} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )
