"""The ``Session`` lifecycle: one declarative spec, one managed run.

A :class:`Session` executes a :class:`~repro.api.spec.ScenarioSpec`
through the canonical lifecycle::

    configure -> submit -> run -> results

    with Session(spec) as session:
        result = session.run().results()

Behind the session sits a :class:`Runner` — the single protocol both of
the repo's front doors implement:

* :class:`BatchRunner` — the paper's batch path: build a
  :class:`~repro.core.middleware.FreeRide`, submit the spec's workloads
  (replicated or single), run training to completion, report a
  :class:`~repro.core.middleware.FreeRideResult`;
* :class:`ServingRunner` — the online path: generate the spec's arrival
  stream, put the admission frontend in front of ``FreeRide.submit``,
  and report a :class:`~repro.serving.frontend.ServingResult`;
* :class:`PipelineRunner` — training only (no side tasks), for bubble
  characterization scenarios; reports a
  :class:`~repro.pipeline.engine.TrainingResult`.

The legacy facades (`FreeRide(...)` driven by hand,
:func:`repro.serving.frontend.run_serving`) remain supported for one
release and delegate to / interoperate with these runners.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.api.spec import ScenarioSpec, WorkloadSpec
from repro.core.middleware import FreeRide, FreeRideResult
from repro.errors import SessionError, SpecError
from repro.pipeline.engine import PipelineEngine, TrainingResult
from repro.sim.engine import Engine

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.policies import AssignmentPolicy
    from repro.pipeline.config import TrainConfig
    from repro.serving.arrivals import ArrivalProcess
    from repro.serving.frontend import AdmissionPolicy, ServingResult
    from repro.serving.slo import QueueDiscipline

#: default post-training settle window before the final drain
DEFAULT_SETTLE_S = 2.0
#: default fraction of the no-side-task training time a serving
#: scenario stays open to traffic (the `serve` experiment re-exports
#: this as OPEN_FRACTION) — arrivals stop before teardown so late
#: requests are not counted as offered load
DEFAULT_OPEN_FRACTION = 0.9


class Runner(typing.Protocol):
    """What a scenario execution backend must provide."""

    #: the scenario kind this runner executes ("batch" / "serving" / ...)
    kind: str

    def prepare(self) -> None:
        """Build the simulation (idempotent; called by :meth:`run`)."""

    def run(self) -> object:
        """Execute to completion and return the result object."""


class BatchRunner:
    """The batch path: FreeRide + the spec's fixed submissions."""

    kind = "batch"

    def __init__(self, spec: ScenarioSpec, *,
                 config: "TrainConfig | None" = None):
        self.spec = spec
        self.config = config if config is not None else spec.train_config()
        self.freeride: "FreeRide | None" = None
        self.result: "FreeRideResult | None" = None

    def prepare(self) -> None:
        if self.freeride is not None:
            return
        self.freeride = FreeRide(
            self.config,
            server_factory=self.spec.cluster.factory(),
            seed=self.spec.seed,
            **self.spec.policy.freeride_kwargs(),
        )
        for workload in self.spec.workloads:
            self._place(workload)

    def submit(self, workload: WorkloadSpec) -> int:
        """Submit one extra workload; returns the number of copies placed."""
        self.prepare()
        return self._place(workload)

    def _place(self, workload: WorkloadSpec) -> int:
        if workload.replicate:
            return self.freeride.submit_replicated(
                workload.factory(), workload.interface, copies=workload.copies
            )
        accepted = self.freeride.submit(workload.factory(), workload.interface)
        return 0 if accepted is None else 1

    def run(self) -> FreeRideResult:
        self.prepare()
        settle_s = self.spec.param("settle_s", DEFAULT_SETTLE_S)
        self.result = self.freeride.run(settle_s=settle_s)
        return self.result


class PipelineRunner:
    """Training only: the bare pipeline engine, no middleware attached."""

    kind = "pipeline"

    def __init__(self, spec: ScenarioSpec, *,
                 config: "TrainConfig | None" = None):
        self.spec = spec
        self.config = config if config is not None else spec.train_config()
        self.sim: "Engine | None" = None
        self.server = None
        self.engine: "PipelineEngine | None" = None
        self.result: "TrainingResult | None" = None

    def prepare(self) -> None:
        if self.engine is not None:
            return
        self.sim = Engine()
        self.server = self.spec.cluster.factory()(self.sim)
        self.engine = PipelineEngine(self.sim, self.server, self.config)

    def run(self) -> TrainingResult:
        self.prepare()
        self.result = self.engine.run()
        return self.result


class ServingRunner:
    """The online path: arrivals -> admission frontend -> FreeRide.

    Construction is spec-driven; the keyword overrides exist for the
    legacy :func:`~repro.serving.frontend.run_serving` facade and for
    programmatic callers injecting policy *objects* or a trace-replay
    arrival process that a JSON spec cannot name.
    """

    kind = "serving"

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        config: "TrainConfig | None" = None,
        arrivals: "ArrivalProcess | None" = None,
        admission: "AdmissionPolicy | None" = None,
        policy: "AssignmentPolicy | None" = None,
        discipline: "QueueDiscipline | None" = None,
        horizon_s: "float | None" = None,
    ):
        self.spec = spec
        self.config = config if config is not None else spec.train_config()
        self._arrivals = arrivals
        self._admission = admission
        self._policy = policy
        self._discipline = discipline
        self._horizon_s = horizon_s
        self.freeride: "FreeRide | None" = None
        self.frontend = None
        self.result: "ServingResult | None" = None

    def horizon_s(self) -> float:
        """Seconds the service accepts traffic.

        Priority: constructor override, then ``params.horizon_s``, then
        ``params.open_fraction`` (default :data:`DEFAULT_OPEN_FRACTION`)
        of the no-side-task training time — arrivals stop before
        teardown so late requests are not counted as offered load.
        """
        if self._horizon_s is not None:
            return self._horizon_s
        horizon = self.spec.param("horizon_s")
        if horizon is not None:
            return float(horizon)
        from repro.experiments.common import baseline_time

        fraction = float(self.spec.param("open_fraction",
                                         DEFAULT_OPEN_FRACTION))
        return baseline_time(self.config) * fraction

    def prepare(self) -> None:
        if self.freeride is not None:
            return
        if self._arrivals is None and self.spec.arrivals is None:
            raise SpecError(
                f"serving scenario {self.spec.name!r} has no arrivals section"
            )
        from repro.serving.frontend import ServingFrontend

        kwargs = self.spec.policy.freeride_kwargs()
        if self._policy is not None:
            kwargs["policy"] = self._policy
        self.freeride = FreeRide(
            self.config,
            server_factory=self.spec.cluster.factory(),
            seed=self.spec.seed,
            **kwargs,
        )
        arrivals = (
            self._arrivals if self._arrivals is not None
            else self.spec.arrivals.build(self.spec.seed)
        )
        self._open_horizon = self.horizon_s()
        requests = arrivals.generate(self._open_horizon)
        self.frontend = ServingFrontend(
            self.freeride,
            requests,
            admission=(self._admission if self._admission is not None
                       else self.spec.policy.admission),
            discipline=(self._discipline if self._discipline is not None
                        else self.spec.policy.discipline),
            queue_capacity=self.spec.policy.queue_capacity,
        )

    def run(self) -> "ServingResult":
        from repro.metrics.latency import serving_metrics
        from repro.serving.frontend import ServingResult

        self.prepare()
        training = self.freeride.run_training()
        self.frontend.close()
        open_duration_s = min(self.frontend.closed_at, self._open_horizon)
        settle_s = self.spec.param("settle_s", DEFAULT_SETTLE_S)
        self.freeride.drain(settle_s)  # also fires (and refuses) late arrivals
        self.frontend.finalize()
        self.result = ServingResult(
            training=training,
            records=self.frontend.records,
            metrics=serving_metrics(self.frontend.records,
                                    duration_s=open_duration_s),
            open_duration_s=open_duration_s,
        )
        return self.result


_RUNNERS: "dict[str, type]" = {
    "batch": BatchRunner,
    "serving": ServingRunner,
    "pipeline": PipelineRunner,
}


def make_runner(spec: ScenarioSpec, **kwargs) -> Runner:
    """The runner class for ``spec.kind``, constructed over ``spec``."""
    try:
        runner_cls = _RUNNERS[spec.kind]
    except KeyError:
        raise SpecError(
            f"no runner for scenario kind {spec.kind!r}; "
            f"choose from {sorted(_RUNNERS)}"
        ) from None
    return runner_cls(spec, **kwargs)


class Session:
    """One scenario's lifecycle: ``configure -> submit -> run -> results``.

    The session owns spec mutation before the run (extra :meth:`submit`
    calls extend the spec's workload list) and freezes once the runner
    is built; :meth:`results` hands back the runner's result object
    after :meth:`run` completes. Usable as a context manager::

        with Session(spec) as session:
            session.submit(WorkloadSpec(name="pagerank"))
            report = session.run().results()
    """

    def __init__(self, spec: "ScenarioSpec | None" = None, **runner_kwargs):
        self._spec = spec
        self._runner_kwargs = runner_kwargs
        self._runner: "Runner | None" = None
        self._result: object = None

    # -- configure ------------------------------------------------------
    def configure(self, spec: ScenarioSpec) -> "Session":
        """Set (or replace) the scenario; only before the run starts."""
        if self._runner is not None:
            raise SessionError(
                "session already prepared its runner; configure() a new "
                "Session instead of reconfiguring this one"
            )
        self._spec = spec
        return self

    @property
    def spec(self) -> ScenarioSpec:
        if self._spec is None:
            raise SessionError("session has no scenario; call configure()")
        return self._spec

    @property
    def runner(self) -> Runner:
        """The backing runner (built on first access)."""
        if self._runner is None:
            self._runner = make_runner(self.spec, **self._runner_kwargs)
        return self._runner

    # -- submit ---------------------------------------------------------
    def submit(self, workload: "WorkloadSpec | str", **fields) -> "Session":
        """Add a batch workload (a :class:`WorkloadSpec`, or a registry
        name plus field overrides) on top of the spec's own list."""
        if self._result is not None:
            raise SessionError("session already ran; submit() comes first")
        if isinstance(workload, str):
            workload = WorkloadSpec(name=workload, **fields)
        elif fields:
            workload = dataclasses.replace(workload, **fields)
        if self.spec.kind != "batch":
            raise SessionError(
                f"submit() extends batch scenarios; {self.spec.kind!r} "
                "scenarios take their work from the spec (arrivals/mix)"
            )
        if self._runner is None:
            self._spec = dataclasses.replace(
                self._spec, workloads=self._spec.workloads + (workload,)
            )
        else:
            self._runner.submit(workload)
        return self

    # -- run / results --------------------------------------------------
    def run(self) -> "Session":
        """Execute the scenario to completion (idempotent)."""
        if self._result is None:
            self._result = self.runner.run()
        return self

    def results(self):
        """The runner's result object; raises until :meth:`run` finishes."""
        if self._result is None:
            raise SessionError("session has not run; call run() first")
        return self._result

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False
