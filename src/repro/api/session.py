"""The ``Session`` lifecycle: one declarative spec, one managed run.

A :class:`Session` executes a :class:`~repro.api.spec.ScenarioSpec`
through the canonical lifecycle::

    configure -> submit -> run -> results

    with Session(spec) as session:
        result = session.run().results()

Behind the session sits a :class:`Runner` — the single protocol both of
the repo's front doors implement:

* :class:`BatchRunner` — the paper's batch path: build a
  :class:`~repro.core.middleware.FreeRide`, submit the spec's workloads
  (replicated or single), run training to completion, report a
  :class:`~repro.core.middleware.FreeRideResult`;
* :class:`ServingRunner` — the online path: generate the spec's arrival
  stream, put the admission frontend in front of ``FreeRide.submit``,
  and report a :class:`~repro.serving.frontend.ServingResult`;
* :class:`PipelineRunner` — training only (no side tasks), for bubble
  characterization scenarios; reports a
  :class:`~repro.pipeline.engine.TrainingResult`;
* :class:`ClusterRunner` — several training jobs behind one shared
  manager (paper section 8): builds a
  :class:`~repro.cluster.builder.Cluster`, places the spec's shared
  workload mix across the combined pool (or, when the spec has an
  ``arrivals`` section, admits open-loop traffic against it), and
  reports a :class:`~repro.cluster.result.ClusterResult`.

The programmatic facades (`FreeRide(...)` driven by hand,
:func:`repro.serving.frontend.run_serving`, ``ClusterBuilder``) remain
supported and delegate to / interoperate with these runners.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.api.spec import ScenarioSpec, WorkloadSpec
from repro.core.middleware import FreeRide, FreeRideResult
from repro.errors import SessionError, SpecError
from repro.obs import attach_tracer
from repro.pipeline.engine import PipelineEngine, TrainingResult
from repro.sim.engine import Engine

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.policies import AssignmentPolicy
    from repro.obs.export import TraceResult
    from repro.pipeline.config import TrainConfig
    from repro.serving.arrivals import ArrivalProcess
    from repro.serving.frontend import AdmissionPolicy, ServingResult
    from repro.serving.slo import QueueDiscipline

#: default post-training settle window before the final drain
DEFAULT_SETTLE_S = 2.0
#: default fraction of the no-side-task training time a serving
#: scenario stays open to traffic (the `serve` experiment re-exports
#: this as OPEN_FRACTION) — arrivals stop before teardown so late
#: requests are not counted as offered load
DEFAULT_OPEN_FRACTION = 0.9


class Runner(typing.Protocol):
    """What a scenario execution backend must provide."""

    #: the scenario kind this runner executes ("batch" / "serving" / ...)
    kind: str

    def prepare(self) -> None:
        """Build the simulation (idempotent; called by :meth:`run`)."""

    def run(self) -> object:
        """Execute to completion and return the result object."""


class BatchRunner:
    """The batch path: FreeRide + the spec's fixed submissions."""

    kind = "batch"

    def __init__(self, spec: ScenarioSpec, *,
                 config: "TrainConfig | None" = None):
        self.spec = spec
        self.config = config if config is not None else spec.train_config()
        self.freeride: "FreeRide | None" = None
        self.result: "FreeRideResult | None" = None
        self.trace_result: "TraceResult | None" = None

    def prepare(self) -> None:
        if self.freeride is not None:
            return
        self.freeride = FreeRide(
            self.config,
            server_factory=self.spec.cluster.factory(),
            seed=self.spec.seed,
            **self.spec.policy.freeride_kwargs(),
        )
        # Attach before placing workloads so the runtimes' state
        # machines see tracing enabled at construction.
        attach_tracer(self.freeride.sim, self.spec.obs)
        for workload in self.spec.workloads:
            self._place(workload)

    def submit(self, workload: WorkloadSpec) -> int:
        """Submit one extra workload; returns the number of copies placed."""
        self.prepare()
        return self._place(workload)

    def _place(self, workload: WorkloadSpec) -> int:
        if workload.replicate:
            return self.freeride.submit_replicated(
                workload.factory(), workload.interface, copies=workload.copies
            )
        accepted = self.freeride.submit(workload.factory(), workload.interface)
        return 0 if accepted is None else 1

    def run(self) -> FreeRideResult:
        self.prepare()
        settle_s = self.spec.param("settle_s", DEFAULT_SETTLE_S)
        self.result = self.freeride.run(settle_s=settle_s)
        self.trace_result = _finish_trace(
            self.freeride.sim, self.spec,
            [("train", self.result.training.trace)],
        )
        self.result.trace = self.trace_result
        return self.result


class PipelineRunner:
    """Training only: the bare pipeline engine, no middleware attached."""

    kind = "pipeline"

    def __init__(self, spec: ScenarioSpec, *,
                 config: "TrainConfig | None" = None):
        self.spec = spec
        self.config = config if config is not None else spec.train_config()
        self.sim: "Engine | None" = None
        self.server = None
        self.engine: "PipelineEngine | None" = None
        self.result: "TrainingResult | None" = None
        #: the obs trace — a runner attribute here, NOT ``result.trace``:
        #: :class:`TrainingResult` already uses that name for its
        #: op/bubble record trace
        self.trace_result: "TraceResult | None" = None

    def prepare(self) -> None:
        if self.engine is not None:
            return
        self.sim = Engine()
        attach_tracer(self.sim, self.spec.obs)
        self.server = self.spec.cluster.factory()(self.sim)
        self.engine = PipelineEngine(self.sim, self.server, self.config)

    def run(self) -> TrainingResult:
        self.prepare()
        self.result = self.engine.run()
        self.trace_result = _finish_trace(
            self.sim, self.spec, [("train", self.result.trace)]
        )
        return self.result


def _open_horizon(spec: ScenarioSpec, explicit: "float | None",
                  default_baseline_s: "typing.Callable[[], float]") -> float:
    """Seconds a serving-mode runner accepts traffic.

    Priority: the runner's constructor override, then
    ``params.horizon_s``, then ``params.open_fraction`` (default
    :data:`DEFAULT_OPEN_FRACTION`) of ``default_baseline_s()`` — the
    runner's notion of the no-side-task training time.
    """
    if explicit is not None:
        return explicit
    horizon = spec.param("horizon_s")
    if horizon is not None:
        return float(horizon)
    fraction = float(spec.param("open_fraction", DEFAULT_OPEN_FRACTION))
    return default_baseline_s() * fraction


def _resolve_arrivals(spec: ScenarioSpec, explicit) -> "ArrivalProcess":
    """The arrival stream a serving-mode runner admits: the runner's
    constructor override, the merged per-tenant streams of a tenant
    scenario, or the spec's ``arrivals`` section."""
    if explicit is not None:
        return explicit
    if spec.tenants:
        return spec.tenant_arrivals()
    return spec.arrivals.build(spec.seed)


def _recovery_kwargs(spec: ScenarioSpec) -> dict:
    """The frontend's retry/checkpoint policies, from the faults section
    (empty when the scenario has none)."""
    if spec.faults is None:
        return {}
    return {
        "retry": spec.faults.retry_policy(),
        "checkpoint": spec.faults.checkpoint_policy(),
    }


def _arm_faults(spec: ScenarioSpec, pool, horizon_s: float):
    """Arm the spec's fault plan against ``pool``; returns the injector
    (None when the spec injects nothing)."""
    if spec.faults is None or not spec.faults.active:
        return None
    from repro.faults import FaultInjector

    plan = spec.faults.build_plan(spec.seed, horizon_s, len(pool.workers))
    injector = FaultInjector(plan)
    injector.arm(pool)
    return injector


def _finish_serving(frontend, drain, open_horizon: float,
                    settle_s: float) -> "tuple[float, object, object]":
    """The canonical serving teardown, shared by every serving-mode
    runner: close the frontend, account the open window, drain (which
    also fires — and refuses — late arrivals), back-fill the records.

    Returns ``(open_duration_s, metrics, fairness)`` — ``fairness`` is
    the per-tenant accounting when the frontend served tenants, else
    None. The folds go through the frontend, which answers from
    retained records (default) or from its streaming accumulators
    (``metrics.mode = streaming``) — identical counter semantics either
    way.
    """
    frontend.close()
    open_duration_s = min(frontend.closed_at, open_horizon)
    drain(settle_s)
    frontend.finalize()
    metrics = frontend.metrics_for(open_duration_s)
    fairness = None
    if frontend.tenants:
        fairness = frontend.fairness_for(open_duration_s)
    return open_duration_s, metrics, fairness


def _finish_trace(sim, spec: ScenarioSpec,
                  trainings=()) -> "TraceResult | None":
    """Collect the run's trace (None when tracing was off).

    The pipeline engine keeps its own op/bubble/epoch intervals, so its
    spans are replayed from the finished training traces here —
    ``trainings`` is ``(job_name, TrainingTrace)`` pairs — rather than
    instrumented live (gated by ``obs.trace_pipeline``).
    """
    if not sim.trace.enabled:
        return None
    from repro.obs import collect_trace

    if spec.obs.trace_pipeline:
        from repro.pipeline.instrumentation import emit_trace_spans

        for job, trace in trainings:
            emit_trace_spans(sim.trace, trace, job=job)
    return collect_trace(sim)


class ServingRunner:
    """The online path: arrivals -> admission frontend -> FreeRide.

    Construction is spec-driven; the keyword overrides exist for the
    :func:`~repro.serving.frontend.run_serving` facade and for
    programmatic callers injecting policy *objects* or a trace-replay
    arrival process that a JSON spec cannot name.
    """

    kind = "serving"

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        config: "TrainConfig | None" = None,
        arrivals: "ArrivalProcess | None" = None,
        admission: "AdmissionPolicy | None" = None,
        policy: "AssignmentPolicy | None" = None,
        discipline: "QueueDiscipline | None" = None,
        horizon_s: "float | None" = None,
    ):
        self.spec = spec
        self.config = config if config is not None else spec.train_config()
        self._arrivals = arrivals
        self._admission = admission
        self._policy = policy
        self._discipline = discipline
        self._horizon_s = horizon_s
        self.freeride: "FreeRide | None" = None
        self.frontend = None
        self.injector = None
        self.result: "ServingResult | None" = None
        self.trace_result: "TraceResult | None" = None

    def horizon_s(self) -> float:
        """Seconds the service accepts traffic — arrivals stop before
        teardown so late requests are not counted as offered load (see
        :func:`_open_horizon` for the resolution order)."""
        from repro.experiments.common import baseline_time

        return _open_horizon(self.spec, self._horizon_s,
                             lambda: baseline_time(self.config))

    def prepare(self) -> None:
        if self.freeride is not None:
            return
        if (self._arrivals is None and self.spec.arrivals is None
                and not self.spec.tenants):
            raise SpecError(
                f"serving scenario {self.spec.name!r} has no arrivals "
                "section and no tenants"
            )
        from repro.serving.frontend import ServingFrontend

        kwargs = self.spec.policy.freeride_kwargs()
        if self._policy is not None:
            kwargs["policy"] = self._policy
        self.freeride = FreeRide(
            self.config,
            server_factory=self.spec.cluster.factory(),
            seed=self.spec.seed,
            **kwargs,
        )
        # Attach before the frontend is built: it captures ``sim.trace``
        # (and installs the discipline's tracer) at construction.
        attach_tracer(self.freeride.sim, self.spec.obs)
        arrivals = _resolve_arrivals(self.spec, self._arrivals)
        self._open_horizon = self.horizon_s()
        requests = arrivals.generate(self._open_horizon)
        self.frontend = ServingFrontend(
            self.freeride,
            requests,
            admission=(self._admission if self._admission is not None
                       else self.spec.policy.admission),
            discipline=(self._discipline if self._discipline is not None
                        else self.spec.policy.discipline),
            queue_capacity=self.spec.policy.queue_capacity,
            tenants=self.spec.tenant_shares(),
            metrics_mode=self.spec.metrics.mode,
            **_recovery_kwargs(self.spec),
        )
        self.injector = _arm_faults(
            self.spec, self.freeride, self._open_horizon
        )

    def run(self) -> "ServingResult":
        from repro.serving.frontend import ServingResult

        self.prepare()
        training = self.freeride.run_training()
        open_duration_s, metrics, fairness = _finish_serving(
            self.frontend, self.freeride.drain, self._open_horizon,
            self.spec.param("settle_s", DEFAULT_SETTLE_S),
        )
        resilience = None
        if self.spec.faults is not None:
            from repro.metrics.resilience import resilience_metrics

            resilience = resilience_metrics(
                self.freeride, self.frontend.records,
                duration_s=open_duration_s,
                goodput_rps=metrics.goodput_rps,
                request_counts=self.frontend.outcome_counts,
            )
        self.trace_result = _finish_trace(
            self.freeride.sim, self.spec, [("train", training.trace)]
        )
        self.result = ServingResult(
            training=training,
            records=self.frontend.records,
            metrics=metrics,
            open_duration_s=open_duration_s,
            fairness=fairness,
            resilience=resilience,
            trace=self.trace_result,
        )
        return self.result


class ClusterRunner:
    """Several training jobs, one shared manager, the combined pool.

    Batch mode (no ``arrivals`` section): the spec's ``workloads`` are
    the shared mix, placed across the combined worker pool exactly like
    :class:`BatchRunner` places them on a single job. Serving mode
    (``arrivals`` present): the admission frontend sits in front of the
    cluster's manager and open-loop traffic is admitted against the
    combined pool, with job-aware admission (``per_job_token_bucket``)
    sized by the job count. Either way the result is a
    :class:`~repro.cluster.result.ClusterResult`.
    """

    kind = "cluster"

    def __init__(self, spec: ScenarioSpec, *,
                 arrivals: "ArrivalProcess | None" = None,
                 admission: "AdmissionPolicy | None" = None,
                 horizon_s: "float | None" = None):
        self.spec = spec
        self._arrivals = arrivals
        self._admission = admission
        self._horizon_s = horizon_s
        self.cluster = None
        self.frontend = None
        self.injector = None
        self.result = None
        self.trace_result: "TraceResult | None" = None

    def horizon_s(self) -> float:
        """Seconds the cluster accepts traffic (serving mode): the
        default baseline is the *longest* job's no-side-task training
        time, since the combined pool keeps producing bubbles until the
        last job finishes (resolution order in :func:`_open_horizon`)."""
        from repro.experiments.common import baseline_time

        return _open_horizon(
            self.spec, self._horizon_s,
            lambda: max(baseline_time(config)
                        for config in self.spec.job_configs()),
        )

    def prepare(self) -> None:
        if self.cluster is not None:
            return
        from repro.cluster import Cluster, ClusterJob

        jobs = [
            ClusterJob(
                config=config,
                server_factory=job.cluster.factory(),
                name=job.name or f"job{index}",
            )
            for index, (job, config) in enumerate(
                zip(self.spec.job_specs(), self.spec.job_configs())
            )
        ]
        self.cluster = Cluster(
            jobs,
            seed=self.spec.seed,
            **self.spec.policy.freeride_kwargs(),
        )
        attach_tracer(self.cluster.sim, self.spec.obs)
        if (self._arrivals is not None or self.spec.arrivals is not None
                or self.spec.tenants):
            from repro.serving.frontend import ServingFrontend

            arrivals = _resolve_arrivals(self.spec, self._arrivals)
            self._open_horizon = self.horizon_s()
            requests = arrivals.generate(self._open_horizon)
            self.frontend = ServingFrontend(
                self.cluster,
                requests,
                admission=(self._admission if self._admission is not None
                           else self.spec.policy.admission),
                discipline=self.spec.policy.discipline,
                queue_capacity=self.spec.policy.queue_capacity,
                jobs=self.cluster.num_jobs,
                tenants=self.spec.tenant_shares(),
                metrics_mode=self.spec.metrics.mode,
                **_recovery_kwargs(self.spec),
            )
            self.injector = _arm_faults(
                self.spec, self.cluster, self._open_horizon
            )
        else:
            for workload in self.spec.workloads:
                self._place(workload)
            if self.spec.faults is not None and self.spec.faults.active:
                self.injector = _arm_faults(
                    self.spec, self.cluster, self.horizon_s()
                )

    def submit(self, workload: WorkloadSpec) -> int:
        """Submit one extra shared workload; returns the copies placed."""
        self.prepare()
        if self.frontend is not None:
            raise SessionError(
                "cluster scenario serves open-loop traffic; its work "
                "comes from the arrivals section, not submit()"
            )
        return self._place(workload)

    def _place(self, workload: WorkloadSpec) -> int:
        if workload.replicate:
            return self.cluster.submit_replicated(
                workload.factory(), workload.interface, copies=workload.copies
            )
        accepted = self.cluster.submit(workload.factory(), workload.interface)
        return 0 if accepted is None else 1

    def run(self):
        self.prepare()
        settle_s = self.spec.param("settle_s", DEFAULT_SETTLE_S)
        if self.frontend is None:
            self.result = self.cluster.run(settle_s=settle_s)
            if self.spec.faults is not None:
                from repro.metrics.resilience import resilience_metrics

                self.result.resilience = resilience_metrics(
                    self.cluster, duration_s=self.cluster.sim.now,
                )
            self.trace_result = _finish_trace(
                self.cluster.sim, self.spec, self._job_traces(self.result)
            )
            self.result.trace = self.trace_result
            return self.result
        trainings = self.cluster.run_training()
        open_duration_s, metrics, fairness = _finish_serving(
            self.frontend, self.cluster.drain, self._open_horizon, settle_s,
        )
        self.result = self.cluster.result(trainings)
        self.result.records = self.frontend.records
        self.result.metrics = metrics
        self.result.open_duration_s = open_duration_s
        self.result.fairness = fairness
        if self.spec.faults is not None:
            from repro.metrics.resilience import resilience_metrics

            self.result.resilience = resilience_metrics(
                self.cluster, self.frontend.records,
                duration_s=open_duration_s,
                goodput_rps=metrics.goodput_rps,
                request_counts=self.frontend.outcome_counts,
            )
        self.trace_result = _finish_trace(
            self.cluster.sim, self.spec, self._job_traces(self.result)
        )
        self.result.trace = self.trace_result
        return self.result

    @staticmethod
    def _job_traces(result) -> "list[tuple[str, object]]":
        """One pipeline-span track group per job, keyed by job name."""
        return [(job.name, job.training.trace) for job in result.jobs]


_RUNNERS: "dict[str, type]" = {
    "batch": BatchRunner,
    "serving": ServingRunner,
    "pipeline": PipelineRunner,
    "cluster": ClusterRunner,
}


def make_runner(spec: ScenarioSpec, **kwargs) -> Runner:
    """The runner class for ``spec.kind``, constructed over ``spec``."""
    try:
        runner_cls = _RUNNERS[spec.kind]
    except KeyError:
        raise SpecError(
            f"no runner for scenario kind {spec.kind!r}; "
            f"choose from {sorted(_RUNNERS)}"
        ) from None
    return runner_cls(spec, **kwargs)


class Session:
    """One scenario's lifecycle: ``configure -> submit -> run -> results``.

    The session owns spec mutation before the run (extra :meth:`submit`
    calls extend the spec's workload list) and freezes once the runner
    is built; :meth:`results` hands back the runner's result object
    after :meth:`run` completes. Usable as a context manager::

        with Session(spec) as session:
            session.submit(WorkloadSpec(name="pagerank"))
            report = session.run().results()
    """

    def __init__(self, spec: "ScenarioSpec | None" = None, **runner_kwargs):
        self._spec = spec
        self._runner_kwargs = runner_kwargs
        self._runner: "Runner | None" = None
        self._result: object = None

    # -- configure ------------------------------------------------------
    def configure(self, spec: ScenarioSpec) -> "Session":
        """Set (or replace) the scenario; only before the run starts."""
        if self._runner is not None:
            raise SessionError(
                "session already prepared its runner; configure() a new "
                "Session instead of reconfiguring this one"
            )
        self._spec = spec
        return self

    @property
    def spec(self) -> ScenarioSpec:
        if self._spec is None:
            raise SessionError("session has no scenario; call configure()")
        return self._spec

    @property
    def runner(self) -> Runner:
        """The backing runner (built on first access)."""
        if self._runner is None:
            self._runner = make_runner(self.spec, **self._runner_kwargs)
        return self._runner

    # -- submit ---------------------------------------------------------
    def submit(self, workload: "WorkloadSpec | str", **fields) -> "Session":
        """Add a batch workload (a :class:`WorkloadSpec`, or a registry
        name plus field overrides) on top of the spec's own list."""
        if self._result is not None:
            raise SessionError("session already ran; submit() comes first")
        if isinstance(workload, str):
            workload = WorkloadSpec(name=workload, **fields)
        elif fields:
            workload = dataclasses.replace(workload, **fields)
        batch_like = self.spec.kind == "batch" or (
            self.spec.kind == "cluster"
            and self.spec.arrivals is None
            and not self.spec.tenants
            # an arrival process handed to the runner directly (e.g.
            # trace replay) puts the cluster in serving mode just as a
            # spec-level arrivals section would
            and self._runner_kwargs.get("arrivals") is None
        )
        if not batch_like:
            raise SessionError(
                f"submit() extends batch-style scenarios; {self.spec.kind!r} "
                "scenarios take their work from the spec (arrivals/mix)"
            )
        if self._runner is None:
            self._spec = dataclasses.replace(
                self._spec, workloads=self._spec.workloads + (workload,)
            )
        else:
            self._runner.submit(workload)
        return self

    # -- run / results --------------------------------------------------
    def run(self) -> "Session":
        """Execute the scenario to completion (idempotent)."""
        if self._result is None:
            self._result = self.runner.run()
        return self

    def results(self):
        """The runner's result object; raises until :meth:`run` finishes."""
        if self._result is None:
            raise SessionError("session has not run; call run() first")
        return self._result

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False
