"""The unified scenario/session API: one declarative front door.

Three layers, smallest surface first:

* :mod:`repro.api.spec` — :class:`ScenarioSpec` and friends: a scenario
  (cluster + training + workloads/mix + policies + sweep grid) as
  JSON-round-trippable data;
* :mod:`repro.api.session` — :class:`Session` and the :class:`Runner`
  protocol (``configure -> submit -> run -> results``) executing a spec
  through the batch, serving, pipeline, or cluster backend;
* :mod:`repro.api.registry` — the experiment registry behind
  ``repro run <scenario>``, with typed rows and uniform JSON/CSV/txt
  artifact export (:mod:`repro.api.results`).

Quickstart (see API.md for the full tour)::

    from repro.api import ScenarioSpec, Session

    spec = ScenarioSpec.from_dict({
        "name": "quickstart",
        "training": {"epochs": 4},
        "workloads": [{"name": "pagerank"}],
    })
    with Session(spec) as session:
        result = session.run().results()
    print(result.total_units)
"""

from repro.api import registry
from repro.api.results import ResultRow, ResultSet
from repro.api.session import (
    BatchRunner,
    ClusterRunner,
    PipelineRunner,
    Runner,
    ServingRunner,
    Session,
    make_runner,
)
from repro.api.spec import (
    ArrivalSpec,
    ClusterSpec,
    JobSpec,
    MixEntrySpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TenantSpec,
    TrainingSpec,
    WorkloadSpec,
    default_mix,
)

__all__ = [
    "ArrivalSpec",
    "BatchRunner",
    "ClusterRunner",
    "ClusterSpec",
    "JobSpec",
    "MixEntrySpec",
    "PipelineRunner",
    "PolicySpec",
    "ResultRow",
    "ResultSet",
    "Runner",
    "ScenarioSpec",
    "ServingRunner",
    "Session",
    "SweepSpec",
    "TenantSpec",
    "TrainingSpec",
    "WorkloadSpec",
    "default_mix",
    "make_runner",
    "registry",
]
