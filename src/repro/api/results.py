"""Typed result rows and uniform artifact export.

Every registered experiment reports its tabular output as
:class:`ResultRow` records — small frozen dataclasses whose fields (plus
any declared ``export_properties``) are JSON-safe scalars. A
:class:`ResultSet` bundles the scenario that produced the data with the
data itself and exports uniformly:

* ``<name>.json`` — ``{"experiment", "scenario", "rows"}``; the embedded
  scenario re-runs the exact result (``ScenarioSpec.from_dict`` +
  ``registry.run`` — the round-trip the determinism tests pin);
* ``<name>.csv`` — the rows, one column per field;
* ``<name>.txt`` — the rendered paper-style table.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import os
import typing

from repro.api.spec import ScenarioSpec
from repro.ioutil import atomic_write_text


class ResultRow:
    """Base class for typed experiment rows (subclasses are dataclasses).

    ``export_properties`` lists computed properties to include alongside
    the stored fields when exporting (e.g. Table 1's speedup ratios).
    """

    export_properties: "tuple[str, ...]" = ()

    def to_dict(self) -> dict:
        out = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }
        for name in self.export_properties:
            out[name] = getattr(self, name)
        return out


def row_dict(row) -> dict:
    """One row as a flat dict, whether typed or a plain mapping."""
    if isinstance(row, ResultRow):
        return row.to_dict()
    if isinstance(row, dict):
        return dict(row)
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    raise TypeError(f"cannot export row of type {type(row).__name__}")


def _json_safe(value):
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _json_safe(dataclasses.asdict(value))
    return value


@dataclasses.dataclass
class ResultSet:
    """One experiment run: the spec it ran from, its data, its exports."""

    experiment: str
    scenario: ScenarioSpec
    #: the experiment-shaped payload (``run_spec``'s return value)
    data: object
    _render: "typing.Callable[[object], str]"
    _rows: "typing.Callable[[object], list] | None" = None

    def render(self) -> str:
        """The paper-style text table/series for this data."""
        return self._render(self.data)

    def rows(self) -> list:
        """Typed rows (empty when the experiment has no tabular form)."""
        if self._rows is None:
            return []
        return list(self._rows(self.data))

    def row_dicts(self) -> "list[dict]":
        return [_json_safe(row_dict(row)) for row in self.rows()]

    # -- serialization --------------------------------------------------
    def to_json(self, indent: "int | None" = 2) -> str:
        payload = {
            "experiment": self.experiment,
            "scenario": self.scenario.to_dict(),
            "rows": self.row_dicts(),
        }
        return json.dumps(payload, indent=indent)

    def to_csv(self) -> str:
        rows = self.row_dicts()
        if not rows:
            return ""
        # Union of keys, in first-appearance order, so irregular rows
        # (e.g. OOM cells) still line up.
        headers: "list[str]" = []
        for row in rows:
            for key in row:
                if key not in headers:
                    headers.append(key)
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=headers, lineterminator="\n")
        writer.writeheader()
        for row in rows:
            writer.writerow({
                key: _csv_cell(row.get(key)) for key in headers
            })
        return out.getvalue()

    def write_artifacts(
        self,
        out_dir: str,
        formats: "typing.Sequence[str]" = ("json", "csv", "txt"),
    ) -> "list[str]":
        """Write ``<out_dir>/<experiment>.{json,csv,txt}``; returns paths.

        CSV is skipped (with no file) for experiments without tabular
        rows; JSON and txt always export.
        """
        os.makedirs(out_dir, exist_ok=True)
        written = []
        for fmt in formats:
            if fmt == "json":
                content = self.to_json()
            elif fmt == "csv":
                content = self.to_csv()
                if not content:
                    continue
            elif fmt == "txt":
                content = self.render() + "\n"
            else:
                raise ValueError(
                    f"unknown artifact format {fmt!r}; "
                    "choose from ['csv', 'json', 'txt']"
                )
            path = os.path.join(out_dir, f"{self.experiment}.{fmt}")
            atomic_write_text(path, content)
            written.append(path)
        return written


def _csv_cell(value):
    """Flatten containers into JSON text so CSV cells stay one-line."""
    if isinstance(value, (list, dict)):
        return json.dumps(value)
    return value
