"""Greedy spec shrinker: bisect a failing scenario toward a minimal repro.

Given a spec for which ``predicate(spec)`` is True (True = "still
fails"), :func:`shrink` searches for a smaller spec that still fails by
repeatedly trying *moves* and keeping any that preserve the failure:

1. **Section resets** — replace a whole top-level section (faults,
   tenants, policy, metrics, obs, arrivals, ...) with the value a
   minimal same-kind baseline scenario carries. One accepted reset can
   delete a dozen knobs at once.
2. **List shortening** — drop one element of any spec tuple (workloads,
   tenants, jobs, arrival/tenant mixes).
3. **Leaf resets** — walk the remaining nested dicts and try restoring
   each differing leaf (``training.epochs``, ``faults.crash_rate``,
   ...) to the baseline value individually.

Moves that produce an *invalid* spec (SpecError) are skipped, so the
result is always constructible; moves are retried to a fixpoint under
an evaluation budget (each evaluation is one full scenario run when the
predicate wraps the harness). The search is deterministic: move order
is a pure function of the spec dict.
"""

from __future__ import annotations

import json
import typing

from repro.api.spec import ScenarioSpec
from repro.errors import SpecError

if typing.TYPE_CHECKING:  # pragma: no cover
    Predicate = typing.Callable[[ScenarioSpec], bool]


def baseline_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """The minimal valid scenario of the same kind, the shrink target."""
    from repro.api.spec import ArrivalSpec, TrainingSpec, WorkloadSpec

    training = TrainingSpec(epochs=1)
    if spec.kind == "serving":
        return ScenarioSpec(
            name=spec.name, kind="serving", training=training,
            arrivals=ArrivalSpec(rate_per_s=2.0),
            params={"horizon_s": 2.0},
        )
    if spec.kind == "cluster":
        return ScenarioSpec(
            name=spec.name, kind="cluster", training=training, jobs=2,
            workloads=(WorkloadSpec(name="pagerank"),),
        )
    if spec.kind == "pipeline":
        return ScenarioSpec(name=spec.name, kind="pipeline",
                            training=training)
    return ScenarioSpec(
        name=spec.name, kind="batch", training=training,
        workloads=(WorkloadSpec(name="pagerank"),),
    )


def _leaf_paths(node, prefix=""):
    """Dotted paths of every scalar leaf under a JSON-safe tree."""
    if isinstance(node, dict):
        for key in sorted(node):
            yield from _leaf_paths(
                node[key], f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(node, list):
        for index, item in enumerate(node):
            yield from _leaf_paths(
                item, f"{prefix}.{index}" if prefix else str(index))
    else:
        yield prefix, node


def _get_path(tree, path: str):
    node = tree
    for part in path.split("."):
        if isinstance(node, list):
            index = int(part)
            if index >= len(node):
                return _MISSING
            node = node[index]
        elif isinstance(node, dict):
            if part not in node:
                return _MISSING
            node = node[part]
        else:
            return _MISSING
    return node


def _set_leaf(tree, path: str, value):
    parts = path.split(".")
    node = tree
    for part in parts[:-1]:
        node = node[int(part)] if isinstance(node, list) else node[part]
    last = parts[-1]
    if isinstance(node, list):
        node[int(last)] = value
    else:
        node[last] = value


_MISSING = object()


def _cost(current: dict, base: dict) -> "tuple[int, int]":
    """Shrink progress metric, lexicographic: (total leaves, leaves
    differing from the baseline). Every accepted move must strictly
    decrease it, which makes the greedy loop terminate — without this, a
    section-reset that *restores* baseline list entries and a list-drop
    that removes them again can oscillate forever. Leaf count dominates
    so deleting an optional section always beats resetting knobs inside
    it; the diff term then pulls the survivors toward default values."""
    ours = dict(_leaf_paths(current))
    theirs = dict(_leaf_paths(base))
    differing = sum(
        1 for path in set(ours) | set(theirs)
        if ours.get(path, _MISSING) != theirs.get(path, _MISSING)
    )
    return len(ours), differing


def _moves(current: dict, base: dict, leaf_base: "dict | None" = None):
    """Candidate shrinking moves for one iteration, biggest first.

    Each move is ``(description, transform)`` where ``transform`` maps a
    deep-copied spec dict to the shrunk candidate dict.
    """
    moves = []

    def reset_section(key, value):
        def apply(data):
            data[key] = value
            return data
        return apply

    def drop_item(path, index):
        def apply(data):
            node = _get_path(data, path)
            del node[index]
            return data
        return apply

    def reset_leaf(path, value):
        def apply(data):
            _set_leaf(data, path, value)
            return data
        return apply

    # 1. whole-section resets (skip identity/name/kind)
    for key in sorted(set(current) | set(base)):
        if key in ("name", "kind"):
            continue
        ours, theirs = current.get(key), base.get(key)
        if ours != theirs:
            moves.append((f"reset {key}", reset_section(key, theirs)))

    # 2. shorten every list with > 1 element (drop from the tail first
    #    so earlier indices — often referenced by name — survive)
    def find_lists(node, prefix=""):
        if isinstance(node, dict):
            for key in sorted(node):
                find_lists(node[key],
                           f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(node, list):
            if len(node) > 1:
                for index in reversed(range(len(node))):
                    moves.append((f"drop {prefix}[{index}]",
                                  drop_item(prefix, index)))
            for index, item in enumerate(node):
                find_lists(item, f"{prefix}.{index}" if prefix else str(index))

    find_lists(current)

    # 3. individual leaf resets toward the (enriched) baseline
    targets = base if leaf_base is None else leaf_base
    for path, value in _leaf_paths(current):
        head = path.split(".")[0]
        if head in ("name", "kind"):
            continue
        target = _get_path(targets, path)
        if target is not _MISSING and target != value:
            moves.append((f"reset {path}", reset_leaf(path, target)))

    return moves


def shrink(
    spec: ScenarioSpec,
    predicate: "Predicate",
    max_evals: int = 200,
) -> ScenarioSpec:
    """The smallest spec (under the move set) still failing ``predicate``.

    ``predicate(spec) -> True`` means the failure reproduces. The input
    spec must itself fail; each accepted move is re-derived from the
    shrunk spec until no move helps or ``max_evals`` predicate
    evaluations have been spent. Deterministic for a deterministic
    predicate.
    """
    if not predicate(spec):
        raise ValueError("shrink() needs a spec that fails the predicate")
    base = baseline_spec(spec).to_dict()
    current = spec.to_dict()
    # When the failing spec keeps a section the baseline lacks entirely
    # (faults, arrivals, ...), give the leaf resets a target anyway: the
    # section's *default-constructed* values. "reset faults" deletes the
    # whole section; these let crash_rate/recovery/... shrink toward
    # their defaults when the section itself must survive.
    leaf_base = json.loads(json.dumps(base))
    for key, value in current.items():
        if isinstance(value, dict) and base.get(key) is None:
            probe = json.loads(json.dumps(base))
            probe[key] = {}
            try:
                leaf_base[key] = ScenarioSpec.from_dict(probe).to_dict()[key]
            except SpecError:
                continue
    cost = _cost(current, leaf_base)
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for _, transform in _moves(current, base, leaf_base):
            if evals >= max_evals:
                break
            candidate = transform(json.loads(json.dumps(current)))
            if candidate == current:
                continue
            try:
                candidate_spec = ScenarioSpec.from_dict(candidate)
            except SpecError:
                continue
            candidate_dict = candidate_spec.to_dict()
            candidate_cost = _cost(candidate_dict, leaf_base)
            if candidate_cost >= cost:
                continue  # not actually smaller; skip without an eval
            evals += 1
            if predicate(candidate_spec):
                current, cost = candidate_dict, candidate_cost
                progress = True
                break  # re-derive moves against the smaller spec
    return ScenarioSpec.from_dict(current)
