"""Global invariants every valid scenario must satisfy.

Tempest-style correctness amplification: instead of pinning one
hand-written scenario per test, each invariant here states a property
that must hold for *every* spec the generator can draw — conservation
of requests across terminal outcomes, every task/request reaching a
terminal state, fairness indices inside their mathematical bounds,
availability in [0, 1], and fault accounting staying identically zero
when no faults are armed.

Each invariant is a named entry in :data:`INVARIANTS` whose ``check``
callable receives the spec and a :class:`RunOutcome` (result + the
engine's telemetry snapshot) and yields human-readable violation
messages; an empty yield means the invariant holds (or does not apply
to this scenario shape). :func:`check_invariants` folds the registry
into a list of :class:`Violation`.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.api.spec import ScenarioSpec

_EPS = 1e-9

#: every status RequestRecord.status can legally report
_RECORD_STATUSES = frozenset(
    ("pending", "queued", "assigned", "completed", "failed",
     "exhausted", "rejected", "late")
)
_TERMINAL_OUTCOMES = frozenset(("completed", "failed", "exhausted"))


@dataclasses.dataclass(frozen=True)
class RunOutcome:
    """What one executed scenario exposes to the invariant checks."""

    result: typing.Any
    #: ``sim.telemetry.snapshot()`` taken right after the run
    telemetry: "dict | None" = None


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant's failure against one run."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


@dataclasses.dataclass(frozen=True)
class Invariant:
    name: str
    description: str
    check: typing.Callable[..., typing.Iterable[str]]


#: name -> Invariant, in registration order
INVARIANTS: "dict[str, Invariant]" = {}


def invariant(name: str, description: str):
    """Register a checker: ``fn(spec, outcome) -> Iterable[str]``."""

    def register(fn):
        INVARIANTS[name] = Invariant(name, description, fn)
        return fn

    return register


def check_invariants(
    spec: "ScenarioSpec",
    outcome: RunOutcome,
    names: "typing.Sequence[str] | None" = None,
) -> "list[Violation]":
    """Run every registered invariant (or the named subset) against one
    outcome and collect the violations."""
    selected = INVARIANTS if names is None else {
        name: INVARIANTS[name] for name in names
    }
    violations = []
    for inv in selected.values():
        for message in inv.check(spec, outcome):
            violations.append(Violation(inv.name, message))
    return violations


# ---------------------------------------------------------------------------
# helpers

def _metrics(outcome: RunOutcome):
    return getattr(outcome.result, "metrics", None)


def _faults_armed(spec: "ScenarioSpec") -> bool:
    faults = spec.faults
    if faults is None:
        return False
    return bool(
        faults.crash_rate > 0
        or faults.crashes
        or faults.step_failure_rate > 0
        or faults.slowdowns
        or faults.rpc_drop_windows
    )


# ---------------------------------------------------------------------------
# serving-side invariants

@invariant(
    "request_conservation",
    "offered = admitted + rejected and admitted = completed + failed + "
    "unserved; no request is lost or double-counted",
)
def _request_conservation(spec, outcome):
    m = _metrics(outcome)
    if m is None:
        return
    for field in ("offered", "admitted", "rejected", "assigned",
                  "completed", "slo_met", "failed", "unserved"):
        if getattr(m, field) < 0:
            yield f"negative counter {field}={getattr(m, field)}"
    if m.offered != m.admitted + m.rejected:
        yield (f"offered ({m.offered}) != admitted ({m.admitted}) "
               f"+ rejected ({m.rejected})")
    if m.admitted != m.completed + m.failed + m.unserved:
        yield (f"admitted ({m.admitted}) != completed ({m.completed}) "
               f"+ failed ({m.failed}) + unserved ({m.unserved})")
    if m.queueing.count != m.assigned:
        yield (f"queueing latency count ({m.queueing.count}) != "
               f"assigned ({m.assigned})")
    if m.completion.count != m.completed:
        yield (f"completion latency count ({m.completion.count}) != "
               f"completed ({m.completed})")


@invariant(
    "counter_ordering",
    "slo_met <= completed <= assigned <= admitted <= offered",
)
def _counter_ordering(spec, outcome):
    m = _metrics(outcome)
    if m is None:
        return
    chain = [("slo_met", m.slo_met), ("completed", m.completed),
             ("assigned", m.assigned), ("admitted", m.admitted),
             ("offered", m.offered)]
    for (lo_name, lo), (hi_name, hi) in zip(chain, chain[1:]):
        if lo > hi:
            yield f"{lo_name} ({lo}) > {hi_name} ({hi})"


@invariant(
    "terminal_records",
    "every request record carries a recognized status, and terminal "
    "outcomes are consistent with their timestamps",
)
def _terminal_records(spec, outcome):
    records = getattr(outcome.result, "records", None)
    if records is None:
        return
    for record in records:
        status = record.status
        rid = record.request.request_id
        if status not in _RECORD_STATUSES:
            yield f"request {rid}: unknown status {status!r}"
        if record.outcome is not None:
            if record.outcome not in _TERMINAL_OUTCOMES:
                yield f"request {rid}: unknown outcome {record.outcome!r}"
            if record.admitted_at is None:
                yield (f"request {rid}: terminal outcome "
                       f"{record.outcome!r} without admission")
        if record.outcome == "completed" and record.completed_at is None:
            yield f"request {rid}: completed outcome without completed_at"
        if record.completed_at is not None and record.outcome != "completed":
            yield (f"request {rid}: completed_at set but outcome is "
                   f"{record.outcome!r}")
        if record.assigned_at is not None and record.admitted_at is None:
            yield f"request {rid}: assigned without admission"
        if record.attempts > 0 and record.assigned_at is None:
            yield f"request {rid}: {record.attempts} attempts, never assigned"


@invariant(
    "latency_sanity",
    "latency statistics are non-negative, means bounded by maxima, and "
    "(exact mode) quantiles monotone p50 <= p95 <= p99 <= max",
)
def _latency_sanity(spec, outcome):
    m = _metrics(outcome)
    if m is None:
        return
    exact = spec.metrics is None or spec.metrics.mode == "records"
    for label, stats in (("queueing", m.queueing),
                         ("completion", m.completion)):
        if stats.count == 0:
            continue
        if stats.mean < -_EPS:
            yield f"{label}.mean negative: {stats.mean}"
        if stats.max < -_EPS:
            yield f"{label}.max negative: {stats.max}"
        if stats.mean > stats.max + _EPS:
            yield f"{label}.mean ({stats.mean}) > max ({stats.max})"
        if exact:
            if not (stats.p50 <= stats.p95 + _EPS
                    and stats.p95 <= stats.p99 + _EPS
                    and stats.p99 <= stats.max + _EPS):
                yield (f"{label} quantiles not monotone: "
                       f"p50={stats.p50} p95={stats.p95} "
                       f"p99={stats.p99} max={stats.max}")


@invariant(
    "retry_bounds",
    "per-request attempts never exceed faults.retry_max_attempts",
)
def _retry_bounds(spec, outcome):
    records = getattr(outcome.result, "records", None)
    if records is None:
        return
    cap = 1 if spec.faults is None else spec.faults.retry_max_attempts
    for record in records:
        if record.attempts > cap:
            yield (f"request {record.request.request_id}: "
                   f"{record.attempts} attempts > cap {cap}")


# ---------------------------------------------------------------------------
# fairness

@invariant(
    "fairness_bounds",
    "Jain index in [1/n, 1], shares in [0, 1], share error in [0, 1], "
    "and per-tenant counters sum to the global ones",
)
def _fairness_bounds(spec, outcome):
    fairness = getattr(outcome.result, "fairness", None)
    if fairness is None:
        return
    n = max(len(fairness.tenants), 1)
    if not (1.0 / n - _EPS <= fairness.jain_goodput <= 1.0 + _EPS):
        yield (f"jain_goodput {fairness.jain_goodput} outside "
               f"[1/{n}, 1]")
    if not (-_EPS <= fairness.max_share_error <= 1.0 + _EPS):
        yield f"max_share_error {fairness.max_share_error} outside [0, 1]"
    share_sum = 0.0
    for usage in fairness.tenants:
        if not (-_EPS <= usage.share <= 1.0 + _EPS):
            yield f"tenant {usage.name}: share {usage.share} outside [0, 1]"
        share_sum += usage.share
    if share_sum > _EPS and abs(share_sum - 1.0) > 1e-6:
        yield f"tenant shares sum to {share_sum}, expected 1"
    m = _metrics(outcome)
    if m is not None:
        for field in ("offered", "admitted", "rejected", "completed"):
            total = sum(getattr(u.metrics, field) for u in fairness.tenants)
            if total != getattr(m, field):
                yield (f"per-tenant {field} sums to {total}, global is "
                       f"{getattr(m, field)}")


# ---------------------------------------------------------------------------
# faults / resilience

@invariant(
    "resilience_bounds",
    "availability in [0, 1]; wasted work, recovery counters and retry "
    "accounting are non-negative and internally consistent",
)
def _resilience_bounds(spec, outcome):
    r = getattr(outcome.result, "resilience", None)
    if r is None:
        return
    if not (-_EPS <= r.availability <= 1.0 + _EPS):
        yield f"availability {r.availability} outside [0, 1]"
    for field in ("crashes", "restarts", "preemptions", "restores",
                  "checkpoints", "wasted_steps", "step_failures",
                  "retries", "failed_requests", "exhausted_requests"):
        if getattr(r, field) < 0:
            yield f"negative {field}={getattr(r, field)}"
    for field in ("wasted_s", "checkpoint_overhead_s",
                  "restore_overhead_s"):
        if getattr(r, field) < -_EPS:
            yield f"negative {field}={getattr(r, field)}"
    if r.restarts > r.crashes:
        yield f"restarts ({r.restarts}) > crashes ({r.crashes})"
    cap = 1 if spec.faults is None else spec.faults.retry_max_attempts
    if cap <= 1 and r.retries > 0:
        yield f"{r.retries} retries recorded with retry_max_attempts <= 1"
    m = _metrics(outcome)
    if m is not None and r.failed_requests + r.exhausted_requests != m.failed:
        yield (f"failed_requests ({r.failed_requests}) + exhausted "
               f"({r.exhausted_requests}) != metrics.failed ({m.failed})")


@invariant(
    "no_faults_no_damage",
    "with no faults armed there are no crashes, no wasted work, no "
    "failed requests, and no task ever reports recovery activity",
)
def _no_faults_no_damage(spec, outcome):
    if _faults_armed(spec):
        return
    r = getattr(outcome.result, "resilience", None)
    if r is not None:
        for field in ("crashes", "restarts", "wasted_steps",
                      "step_failures", "failed_requests",
                      "exhausted_requests"):
            if getattr(r, field) != 0:
                yield f"healthy run reports {field}={getattr(r, field)}"
        if r.wasted_s > _EPS:
            yield f"healthy run reports wasted_s={r.wasted_s}"
    m = _metrics(outcome)
    if m is not None and m.failed != 0:
        yield f"healthy run reports {m.failed} failed requests"
    tasks = getattr(outcome.result, "tasks", None)
    for report in tasks or ():
        if report.wasted_steps or report.step_failures:
            yield (f"healthy run: task {report.name} reports "
                   f"wasted_steps={report.wasted_steps} "
                   f"step_failures={report.step_failures}")


# ---------------------------------------------------------------------------
# batch / cluster side tasks

@invariant(
    "tasks_terminal",
    "every submitted side task reaches the STOPPED terminal state with "
    "non-negative accounting",
)
def _tasks_terminal(spec, outcome):
    tasks = getattr(outcome.result, "tasks", None)
    if tasks is None:
        return
    for report in tasks:
        if report.final_state.value != "STOPPED":
            yield (f"task {report.name} ended {report.final_state.value}, "
                   f"not STOPPED")
        if report.steps_done < 0 or report.units_done < -_EPS:
            yield (f"task {report.name}: negative progress "
                   f"steps={report.steps_done} units={report.units_done}")
        if report.running_s < -_EPS or report.overhead_s < -_EPS:
            yield (f"task {report.name}: negative time "
                   f"running_s={report.running_s} "
                   f"overhead_s={report.overhead_s}")


@invariant(
    "training_progress",
    "every training run takes positive time and its trace is non-empty",
)
def _training_progress(spec, outcome):
    result = outcome.result
    trainings = []
    if hasattr(result, "total_time") and hasattr(result, "trace"):
        trainings.append(("train", result))
    training = getattr(result, "training", None)
    if training is not None:
        trainings.append(("train", training))
    for job in getattr(result, "jobs", None) or ():
        trainings.append((job.name, job.training))
    for name, tr in trainings:
        if not tr.total_time > 0:
            yield f"{name}: non-positive total_time {tr.total_time}"
        if not tr.trace.ops:
            yield f"{name}: empty op trace"


# ---------------------------------------------------------------------------
# telemetry cross-checks

@invariant(
    "telemetry_consistency",
    "engine telemetry counters agree with the metrics layer "
    "(serving.admitted/dispatched/rejected mirror the aggregates)",
)
def _telemetry_consistency(spec, outcome):
    snap = outcome.telemetry
    m = _metrics(outcome)
    if snap is None or m is None:
        return
    counters = snap.get("counters", {})
    retries = counters.get("serving.retries", 0)
    pairs = (("serving.admitted", m.admitted),
             # dispatch is per *attempt*: retries re-dispatch a request
             ("serving.dispatched", m.assigned + retries),
             ("serving.rejected", m.rejected))
    for name, expected in pairs:
        observed = counters.get(name, 0)
        if observed != expected:
            yield (f"telemetry {name}={observed} but metrics layer "
                   f"says {expected}")
    r = getattr(outcome.result, "resilience", None)
    if r is not None and retries != r.retries:
        yield (f"telemetry serving.retries={retries} but resilience "
               f"says {r.retries}")
