"""Deterministic, JSON-safe digests of run results.

The differential harness compares two runs of the "same" scenario by
digesting each result into a plain dict and serializing it with
``json.dumps(..., sort_keys=True)``. Two digests are equal iff the runs
agreed on every counter, latency statistic, per-record summary, and
fairness/resilience figure the digest covers — which is exactly the
byte-identical contract the determinism tests already pin for exports.

Two flavours:

- :func:`digest_result` — the full digest: counters, quantiles, a hash
  over every per-record summary, task reports, fairness/resilience
  summaries. Frames that promise *byte-identical* behaviour
  (JSON-round-trip, pool-vs-serial, traced-vs-untraced,
  heap-vs-calendar) compare these.
- :func:`exact_digest` — the full digest minus everything the streaming
  metrics mode only bounds rather than matches: quantile estimates
  (P² sketches vs exact sorted lists) and the per-record hash (the
  streaming accumulator drops records). Counts, means, extremes,
  fairness counters, and resilience accounting remain — those are exact
  in both modes, so records-vs-streaming compares this subset.
"""

from __future__ import annotations

import hashlib
import json
import re
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.api.spec import ScenarioSpec

#: dict keys that only exist as sketch-estimated quantiles in streaming
#: mode ("p50", "queueing_p95", ...) — stripped from the exact subset.
_QUANTILE_KEY = re.compile(r"(^|_)p\d{2}$")


def _round(value: float) -> float:
    """Stabilize float repr across json encoders (no-op for our runs,
    but keeps digests short and diff-friendly)."""
    return float(f"{value:.12g}")


def _latency(stats) -> dict:
    return {
        "count": stats.count,
        "mean": _round(stats.mean),
        "max": _round(stats.max),
        "p50": _round(stats.p50),
        "p95": _round(stats.p95),
        "p99": _round(stats.p99),
    }


def _records_hash(records) -> str:
    payload = json.dumps(
        [record.summary() for record in records], sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _serving(metrics, records) -> dict:
    out = {
        "offered": metrics.offered,
        "admitted": metrics.admitted,
        "rejected": metrics.rejected,
        "assigned": metrics.assigned,
        "completed": metrics.completed,
        "slo_met": metrics.slo_met,
        "failed": metrics.failed,
        "unserved": metrics.unserved,
        "duration_s": _round(metrics.duration_s),
        "queueing": _latency(metrics.queueing),
        "completion": _latency(metrics.completion),
    }
    if records is not None:
        out["records"] = _records_hash(records)
    return out


def _task(report) -> dict:
    return {
        "name": report.name,
        "interface": report.interface,
        "stage": report.stage,
        "final_state": report.final_state.value,
        "failure": report.failure,
        "steps_done": report.steps_done,
        "units_done": _round(report.units_done),
        "running_s": _round(report.running_s),
        "overhead_s": _round(report.overhead_s),
        "preemptions": report.preemptions,
        "restores": report.restores,
        "checkpoints": report.checkpoints,
        "wasted_steps": report.wasted_steps,
        "wasted_s": _round(report.wasted_s),
        "step_failures": report.step_failures,
    }


def _training(training) -> dict:
    return {
        "total_time": _round(training.total_time),
        "mean_epoch_time": _round(training.mean_epoch_time),
        "ops": len(training.trace.ops),
        "bubbles": len(training.trace.bubbles),
    }


def digest_result(spec: "ScenarioSpec", result) -> dict:
    """Digest any runner result (serving/batch/cluster/pipeline) into a
    JSON-safe dict; equal dicts == behaviourally identical runs."""
    digest: dict = {"kind": spec.kind}

    metrics = getattr(result, "metrics", None)
    if metrics is not None:
        digest["serving"] = _serving(metrics, getattr(result, "records", None))
    fairness = getattr(result, "fairness", None)
    if fairness is not None:
        digest["fairness"] = fairness.summary()
    resilience = getattr(result, "resilience", None)
    if resilience is not None:
        digest["resilience"] = {
            key: (_round(value) if isinstance(value, float) else value)
            for key, value in resilience.summary().items()
        }

    tasks = getattr(result, "tasks", None)
    if tasks is not None:
        digest["tasks"] = [_task(report) for report in tasks]
    rejections = getattr(result, "rejections", None)
    if rejections is not None:
        digest["rejections"] = [list(pair) for pair in rejections]

    jobs = getattr(result, "jobs", None)
    if jobs is not None:  # ClusterResult
        digest["jobs"] = [
            {
                "name": job.name,
                "training": _training(job.training),
                "bubble_s": _round(job.bubble_time_s),
                "harvested_s": _round(job.harvested_s),
            }
            for job in jobs
        ]
    training = getattr(result, "training", None)
    if training is not None:  # FreeRideResult / ServingResult
        digest["training"] = _training(training)
    if hasattr(result, "total_time"):  # bare TrainingResult (pipeline)
        digest["training"] = _training(result)
    return digest


def _strip_estimates(node):
    if isinstance(node, dict):
        return {
            key: _strip_estimates(value)
            for key, value in node.items()
            if not _QUANTILE_KEY.search(key) and key != "records"
        }
    if isinstance(node, list):
        return [_strip_estimates(item) for item in node]
    return node


def exact_digest(spec: "ScenarioSpec", result) -> dict:
    """The subset of :func:`digest_result` that is exact in *both*
    metrics modes: counts, means, extremes, fairness counters,
    resilience accounting — no quantile sketches, no per-record hash."""
    return _strip_estimates(digest_result(spec, result))
