"""The fuzz loop: draw -> run -> check invariants -> check frames -> shrink.

:func:`run_case` executes one spec and checks every registered
invariant plus the requested equivalence frames against it.
:func:`fuzz_one` does the same for the spec drawn from one seed.
:func:`fuzz_many` drives the whole campaign: ``count`` seeded cases
(each case seed is ``base_seed + index``), interleaved invalid-spec
draws (which must raise :class:`~repro.errors.SpecError`), shrinking of
every failure to a minimal repro, and a corpus file per failure whose
top-level ``"scenario"`` key makes it directly loadable by
``repro run fuzzcase --spec <file>``.

Frame budgeting: running all five frames quintuples each case's cost,
so the tier-1 slice rotates through the applicable frames
(``frame_budget=1`` runs a different single frame per case index);
``repro fuzz`` and the nightly job run them all.
"""

from __future__ import annotations

import dataclasses
import json
import os
import typing

from repro.api.spec import ScenarioSpec
from repro.errors import SpecError
from repro.fuzz.digest import digest_result
from repro.fuzz.frames import Frame, FrameMismatch, check_frames, frames_for
from repro.fuzz.generator import (
    FUZZ_KINDS,
    GENERATOR_VERSION,
    draw_invalid,
    draw_spec,
)
from repro.fuzz.invariants import RunOutcome, Violation, check_invariants
from repro.fuzz.shrink import shrink


def _telemetry_snapshot(runner) -> "dict | None":
    """The engine telemetry snapshot, wherever this runner keeps its sim."""
    for attr in ("freeride", "cluster"):
        holder = getattr(runner, attr, None)
        sim = getattr(holder, "sim", None)
        if sim is not None:
            return sim.telemetry.snapshot()
    sim = getattr(runner, "sim", None)
    if sim is not None:
        return sim.telemetry.snapshot()
    return None


def _execute(spec: ScenarioSpec) -> "tuple[RunOutcome, dict]":
    from repro.api.session import Session

    session = Session(spec)
    result = session.run().results()
    outcome = RunOutcome(
        result=result, telemetry=_telemetry_snapshot(session.runner)
    )
    return outcome, digest_result(spec, result)


@dataclasses.dataclass
class FuzzCase:
    """One fuzzed scenario's verdict."""

    seed: "int | None"
    spec: ScenarioSpec
    digest: "dict | None" = None
    violations: "list[Violation]" = dataclasses.field(default_factory=list)
    mismatches: "list[FrameMismatch]" = dataclasses.field(
        default_factory=list)
    frames_run: "tuple[str, ...]" = ()
    #: unexpected exception during the run, as "ExcType: message"
    error: "str | None" = None
    #: set for failures after shrinking
    shrunk: "ScenarioSpec | None" = None
    corpus_path: "str | None" = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.mismatches and (
            self.error is None
        )

    def signature(self) -> "frozenset[str]":
        """What failed — invariant names, frame names, exception type."""
        names = {v.invariant for v in self.violations}
        names |= {m.frame for m in self.mismatches}
        if self.error is not None:
            names.add("error:" + self.error.split(":", 1)[0])
        return frozenset(names)

    def describe_failure(self) -> str:
        """Human-readable failure block: what broke, the minimized spec
        JSON, and the exact command that reproduces it."""
        lines = [f"case seed={self.seed} kind={self.spec.kind}: FAILED"]
        lines += [f"  {violation}" for violation in self.violations]
        lines += [f"  {mismatch}" for mismatch in self.mismatches]
        if self.error is not None:
            lines.append(f"  [exception] {self.error}")
        minimal = self.shrunk if self.shrunk is not None else self.spec
        lines.append("  minimized spec:")
        lines += [
            "    " + line for line in minimal.to_json().splitlines()
        ]
        if self.corpus_path is not None:
            lines.append(
                f"  reproduce: repro run fuzzcase --spec {self.corpus_path}"
            )
        return "\n".join(lines)


def run_case(
    spec: ScenarioSpec,
    frames: "typing.Sequence[Frame] | None" = None,
    seed: "int | None" = None,
) -> FuzzCase:
    """Run one spec and check invariants + the given frames (default:
    every applicable frame)."""
    case = FuzzCase(seed=seed, spec=spec)
    try:
        outcome, case.digest = _execute(spec)
        case.violations = check_invariants(spec, outcome)
        selected = frames_for(spec) if frames is None else [
            frame for frame in frames if frame.applies(spec)
        ]
        case.frames_run = tuple(frame.name for frame in selected)
        case.mismatches = check_frames(spec, case.digest, selected)
    except Exception as error:  # a crash is a finding, not an abort
        case.error = f"{type(error).__name__}: {error}"
    return case


def _rotated_frames(spec: ScenarioSpec, index: int,
                    frame_budget: "int | None") -> "list[Frame]":
    applicable = frames_for(spec)
    if frame_budget is None or frame_budget >= len(applicable):
        return applicable
    if frame_budget <= 0 or not applicable:
        return []
    start = index % len(applicable)
    return [applicable[(start + offset) % len(applicable)]
            for offset in range(frame_budget)]


def fuzz_one(
    seed: int,
    kinds: "typing.Sequence[str]" = FUZZ_KINDS,
    frame_budget: "int | None" = None,
    index: int = 0,
) -> FuzzCase:
    """Draw the spec for ``seed`` and run it as one case."""
    spec = draw_spec(seed, kinds)
    return run_case(
        spec, frames=_rotated_frames(spec, index, frame_budget), seed=seed
    )


def _shrink_failure(case: FuzzCase, frames: "list[Frame]",
                    max_evals: int) -> ScenarioSpec:
    """Shrink toward the smallest spec reproducing any part of the
    original failure signature."""
    target = case.signature()

    def still_fails(candidate: ScenarioSpec) -> bool:
        rerun = run_case(candidate, frames=frames)
        return bool(rerun.signature() & target)

    try:
        return shrink(case.spec, still_fails, max_evals=max_evals)
    except ValueError:
        # flaky failure (did not reproduce on re-run): keep the original
        return case.spec


def _write_corpus(case: FuzzCase, corpus_dir: str, base_seed: int) -> str:
    os.makedirs(corpus_dir, exist_ok=True)
    minimal = case.shrunk if case.shrunk is not None else case.spec
    path = os.path.join(corpus_dir, f"case-{case.seed}.json")
    payload = {
        # loadable by `repro run fuzzcase --spec <path>` (the CLI digs
        # the spec out of the "scenario" key, like any export artifact)
        "scenario": minimal.to_dict(),
        "fuzz": {
            "generator_version": GENERATOR_VERSION,
            "base_seed": base_seed,
            "case_seed": case.seed,
            "failure": sorted(case.signature()),
            "violations": [str(v) for v in case.violations],
            "frame_mismatches": [str(m) for m in case.mismatches],
            "error": case.error,
            "original_scenario": case.spec.to_dict(),
        },
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    base_seed: int
    count: int
    kinds: "tuple[str, ...]"
    cases: "list[FuzzCase]"
    #: invalid-draw regressions: case names whose construction did NOT
    #: raise SpecError (or crashed with something else)
    invalid_failures: "list[str]" = dataclasses.field(default_factory=list)

    @property
    def failures(self) -> "list[FuzzCase]":
        return [case for case in self.cases if not case.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.invalid_failures

    def render(self) -> str:
        kind_counts: "dict[str, int]" = {}
        frame_counts: "dict[str, int]" = {}
        for case in self.cases:
            kind_counts[case.spec.kind] = kind_counts.get(
                case.spec.kind, 0) + 1
            for name in case.frames_run:
                frame_counts[name] = frame_counts.get(name, 0) + 1
        lines = [
            f"fuzz: {len(self.cases)} cases from seed {self.base_seed} "
            f"({', '.join(f'{kind}={n}' for kind, n in sorted(kind_counts.items()))})",
            "frames: " + (", ".join(
                f"{name}={n}" for name, n in sorted(frame_counts.items())
            ) or "none"),
        ]
        for case in self.failures:
            lines.append(case.describe_failure())
        for name in self.invalid_failures:
            lines.append(
                f"invalid-spec case {name!r}: did NOT raise SpecError"
            )
        lines.append(
            "FAILED" if not self.ok else
            f"OK: all {len(self.cases)} cases passed every invariant "
            f"and frame"
        )
        return "\n".join(lines)


def _check_invalid_draw(seed: int) -> "str | None":
    """Returns the case name when an invalid draw fails to SpecError."""
    name, thunk = draw_invalid(seed)
    try:
        thunk()
    except SpecError:
        return None
    except Exception:
        return name  # crashed with the wrong exception type
    return name  # silently accepted


def fuzz_many(
    seed: int,
    count: int,
    kinds: "typing.Sequence[str]" = FUZZ_KINDS,
    corpus_dir: "str | None" = None,
    frame_budget: "int | None" = None,
    shrink_failures: bool = True,
    max_shrink_evals: int = 60,
    progress: "typing.Callable[[int, FuzzCase], None] | None" = None,
) -> FuzzReport:
    """Run a fuzz campaign: ``count`` cases seeded ``seed .. seed+count-1``.

    Each case draws one spec, runs it, checks every invariant and the
    (budgeted) equivalence frames, and — on failure — shrinks the spec
    to a minimal repro and writes it to ``corpus_dir``. Every case also
    exercises one seeded *invalid* construction, which must raise
    SpecError.
    """
    report = FuzzReport(
        base_seed=seed, count=count, kinds=tuple(kinds), cases=[]
    )
    for index in range(count):
        case_seed = seed + index
        bad = _check_invalid_draw(case_seed)
        if bad is not None and bad not in report.invalid_failures:
            report.invalid_failures.append(bad)
        case = fuzz_one(case_seed, kinds, frame_budget, index)
        if not case.ok:
            frames = _rotated_frames(case.spec, index, frame_budget)
            if shrink_failures:
                case.shrunk = _shrink_failure(
                    case, frames, max_shrink_evals)
            if corpus_dir is not None:
                case.corpus_path = _write_corpus(case, corpus_dir, seed)
        report.cases.append(case)
        if progress is not None:
            progress(index, case)
    return report
