"""Equivalence frames: ways of re-running a spec that must not change it.

A *frame* is a transformation of either the spec or the execution
environment that the system promises is behaviour-preserving:

- ``json_roundtrip`` — serialize the spec to JSON and re-run the parsed
  copy (the export/import contract).
- ``pool_vs_serial`` — run the scenario through the process-pool sweep
  path (``experiments.common.sweep``) and compare against the in-process
  run (the determinism-across-executors contract from PR 1/8).
- ``traced_vs_untraced`` — re-run with ``obs.trace=true``; tracing is
  pinned to consume no RNG, so everything except the attached trace is
  byte-identical (PR 7 contract).
- ``heap_vs_calendar`` — re-run with ``REPRO_SIM_QUEUE=calendar``; the
  calendar queue is pinned bit-exact against the heap (PR 9 contract).
- ``records_vs_streaming`` — re-run with ``metrics.mode=streaming`` and
  compare the *exact* digest subset (counts, means, extremes, fairness
  counters, resilience accounting); quantile sketches are only bounded,
  so they are excluded (PR 9 documented bound).

Every frame's check reduces to digest equality: byte-identical
``json.dumps(digest, sort_keys=True)`` for the full-fidelity frames,
equality of :func:`~repro.fuzz.digest.exact_digest` for the streaming
frame.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import typing

from repro.fuzz.digest import digest_result, exact_digest

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.api.spec import ScenarioSpec


# ---------------------------------------------------------------------------
# running a spec to a digest (module-level so the pool can pickle it)

@contextlib.contextmanager
def _env(pairs: "tuple[tuple[str, str], ...]"):
    saved = {key: os.environ.get(key) for key, _ in pairs}
    try:
        for key, value in pairs:
            os.environ[key] = value
        yield
    finally:
        for key, previous in saved.items():
            if previous is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = previous


def run_and_digest(
    spec: "ScenarioSpec",
    env: "tuple[tuple[str, str], ...]" = (),
    exact_only: bool = False,
) -> dict:
    """Run one spec through a fresh Session and digest the result."""
    from repro.api.session import Session

    with _env(env):
        result = Session(spec).run().results()
    if exact_only:
        return exact_digest(spec, result)
    return digest_result(spec, result)


def _pool_point(spec_json: str) -> dict:
    """Picklable sweep point: JSON spec in, digest out."""
    from repro.api.spec import ScenarioSpec

    return run_and_digest(ScenarioSpec.from_json(spec_json))


# ---------------------------------------------------------------------------
# the frames

def _streaming_variant(spec: "ScenarioSpec") -> "ScenarioSpec":
    return spec.override({"metrics.mode": "streaming"})


def _traced_variant(spec: "ScenarioSpec") -> "ScenarioSpec":
    return spec.override({"obs.trace": True})


def _roundtrip_variant(spec: "ScenarioSpec") -> "ScenarioSpec":
    return type(spec).from_json(spec.to_json())


def _has_traffic(spec: "ScenarioSpec") -> bool:
    return spec.kind == "serving" or (
        spec.kind == "cluster"
        and (spec.arrivals is not None or bool(spec.tenants))
    )


@dataclasses.dataclass(frozen=True)
class Frame:
    """One behaviour-preserving re-execution of a scenario."""

    name: str
    description: str
    #: spec rewrite applied before the re-run (identity when None)
    transform: "typing.Callable | None" = None
    #: environment overrides active during the re-run
    env: "tuple[tuple[str, str], ...]" = ()
    #: route the re-run through the process-pool sweep path
    pooled: bool = False
    #: compare :func:`exact_digest` instead of the full digest
    exact_only: bool = False
    #: spec predicate gating applicability (always applies when None)
    predicate: "typing.Callable | None" = None

    def applies(self, spec: "ScenarioSpec") -> bool:
        return self.predicate is None or self.predicate(spec)

    def variant(self, spec: "ScenarioSpec") -> "ScenarioSpec":
        return spec if self.transform is None else self.transform(spec)

    def run(self, spec: "ScenarioSpec") -> dict:
        """Execute this frame's variant of ``spec`` and digest it."""
        variant = self.variant(spec)
        if self.pooled:
            from repro.experiments.common import sweep

            # two identical points so sweep() actually engages the pool
            # (it runs a single item serially); both must agree.
            digests = sweep(
                [spec.to_json(), spec.to_json()], _pool_point, max_workers=2
            )
            if json.dumps(digests[0], sort_keys=True) != json.dumps(
                digests[1], sort_keys=True
            ):
                raise AssertionError(
                    "pool produced two different digests for one spec"
                )
            return digests[0]
        return run_and_digest(variant, env=self.env,
                              exact_only=self.exact_only)


FRAMES: "tuple[Frame, ...]" = (
    Frame(
        "json_roundtrip",
        "to_json -> from_json -> re-run is byte-identical",
        transform=_roundtrip_variant,
    ),
    Frame(
        "pool_vs_serial",
        "process-pool sweep path matches the in-process run",
        pooled=True,
    ),
    Frame(
        "traced_vs_untraced",
        "obs.trace=true consumes no RNG; results are byte-identical",
        transform=_traced_variant,
        predicate=lambda spec: not spec.obs.trace,
    ),
    Frame(
        "heap_vs_calendar",
        "calendar event queue is bit-exact against the heap",
        env=(("REPRO_SIM_QUEUE", "calendar"),),
        predicate=lambda spec: os.environ.get("REPRO_SIM_QUEUE", "heap")
        == "heap",
    ),
    Frame(
        "records_vs_streaming",
        "streaming metrics match exactly on counts/means/extremes",
        transform=_streaming_variant,
        exact_only=True,
        predicate=lambda spec: spec.metrics.mode == "records"
        and _has_traffic(spec),
    ),
)


def frames_for(spec: "ScenarioSpec") -> "list[Frame]":
    """The frames applicable to this spec, in canonical order."""
    return [frame for frame in FRAMES if frame.applies(spec)]


# ---------------------------------------------------------------------------
# checking

@dataclasses.dataclass(frozen=True)
class FrameMismatch:
    """One frame whose re-run disagreed with the baseline."""

    frame: str
    #: dotted digest paths that differ (bounded sample)
    paths: "tuple[str, ...]"

    def __str__(self) -> str:
        return f"[{self.frame}] digests differ at: " + ", ".join(self.paths)


def _diff_paths(a, b, prefix="", limit=6):
    """Dotted paths where two JSON-safe trees disagree (first few)."""
    out = []

    def walk(x, y, path):
        if len(out) >= limit:
            return
        if isinstance(x, dict) and isinstance(y, dict):
            for key in sorted(set(x) | set(y)):
                walk(x.get(key), y.get(key),
                     f"{path}.{key}" if path else str(key))
            return
        if isinstance(x, list) and isinstance(y, list) and len(x) == len(y):
            for index, (xi, yi) in enumerate(zip(x, y)):
                walk(xi, yi, f"{path}.{index}" if path else str(index))
            return
        if x != y:
            out.append(path or "<root>")

    walk(a, b, prefix)
    return tuple(out)


def check_frames(
    spec: "ScenarioSpec",
    base: dict,
    frames: "typing.Sequence[Frame] | None" = None,
) -> "list[FrameMismatch]":
    """Re-run ``spec`` under each applicable frame and compare digests.

    ``base`` is the full digest of the plain in-process run; exact-only
    frames compare against its quantile-stripped subset.
    """
    from repro.fuzz.digest import _strip_estimates

    mismatches = []
    for frame in frames if frames is not None else frames_for(spec):
        if not frame.applies(spec):
            continue
        theirs = frame.run(spec)
        ours = _strip_estimates(base) if frame.exact_only else base
        if json.dumps(ours, sort_keys=True) != json.dumps(
            theirs, sort_keys=True
        ):
            mismatches.append(
                FrameMismatch(frame.name, _diff_paths(ours, theirs))
            )
    return mismatches
