"""Seeded scenario fuzzing: the spec language as a correctness amplifier.

Every existing test pins one hand-written scenario; this package turns
the declarative spec language itself into a test generator. A seeded,
pure-function-of-one-integer generator draws random-but-reproducible
:class:`~repro.api.spec.ScenarioSpec`s across every scenario kind and
interacting knob (tenants x faults x retries x streaming metrics x
vectorized arrivals x calendar queue x tracing); an invariant registry
asserts global properties that must hold for *every* valid scenario
(conservation of requests, terminal states, fairness bounds,
availability, wasted-work accounting); a differential harness re-runs
each spec under equivalence frames (JSON-round-trip, pool-vs-serial,
traced-vs-untraced, heap-vs-calendar-queue, records-vs-streaming) and
demands byte-identical digests (or the documented streaming bound); and
a shrinker bisects any failing spec toward a minimal repro written to a
corpus directory.

Entry points: ``repro fuzz --seed S --count N`` (CLI), the registered
``fuzzcase`` scenario (``repro run fuzzcase --spec corpus/case.json``
replays one minimized spec), and :func:`fuzz_many` programmatically.
"""

from repro.fuzz.digest import digest_result, exact_digest
from repro.fuzz.frames import (
    FRAMES,
    Frame,
    FrameMismatch,
    check_frames,
    frames_for,
    run_and_digest,
)
from repro.fuzz.generator import (
    FUZZ_KINDS,
    GENERATOR_VERSION,
    draw_invalid,
    draw_spec,
    invalid_case_names,
)
from repro.fuzz.harness import (
    FuzzCase,
    FuzzReport,
    fuzz_many,
    fuzz_one,
    run_case,
)
from repro.fuzz.invariants import (
    INVARIANTS,
    Invariant,
    RunOutcome,
    Violation,
    check_invariants,
    invariant,
)
from repro.fuzz.shrink import baseline_spec, shrink

__all__ = [
    "FRAMES",
    "FUZZ_KINDS",
    "Frame",
    "FrameMismatch",
    "FuzzCase",
    "FuzzReport",
    "GENERATOR_VERSION",
    "INVARIANTS",
    "Invariant",
    "RunOutcome",
    "Violation",
    "baseline_spec",
    "check_frames",
    "check_invariants",
    "digest_result",
    "draw_invalid",
    "draw_spec",
    "exact_digest",
    "frames_for",
    "fuzz_many",
    "fuzz_one",
    "invalid_case_names",
    "invariant",
    "run_and_digest",
    "run_case",
    "shrink",
]
