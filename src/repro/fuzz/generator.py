"""Seeded :class:`~repro.api.spec.ScenarioSpec` generator.

Every draw is a pure function of one integer seed: the RNG is seeded
with a version-tagged string (which Python hashes with SHA-512, so the
stream is identical across processes and interpreter runs — unlike
``hash()``-seeded streams), and no draw consults anything but that RNG.
The contract, pinned by ``tests/fuzz/test_generator.py``::

    draw_spec(seed).to_json() == draw_spec(seed).to_json()   # always,
                                                 # across processes too

Knob ranges come from the canonical vocabularies the spec layer itself
validates against (:data:`~repro.api.spec.ScenarioSpec.KINDS`,
:data:`~repro.serving.arrivals.NAMED_ARRIVALS`,
:data:`~repro.core.policies.NAMED_POLICIES`, the admission/discipline
registries, :data:`~repro.api.spec.RECOVERY_MODES`,
:data:`~repro.api.spec.METRICS_MODES`), so a new named policy is fuzzed
the day it is registered. Sizes are deliberately small — one fuzz case
must run in fractions of a second so hundreds fit in a CI slice.

:func:`draw_invalid` is the mirror image: seeded *invalid* spec
constructions that must raise :class:`~repro.errors.SpecError` with an
actionable message (never crash mid-run, never slip through).
"""

from __future__ import annotations

import random
import typing

from repro.api.spec import (
    METRICS_MODES,
    RECOVERY_MODES,
    ArrivalSpec,
    FaultSpec,
    JobSpec,
    MetricsSpec,
    MixEntrySpec,
    PolicySpec,
    ScenarioSpec,
    TenantSpec,
    TrainingSpec,
    WorkloadSpec,
)
from repro.errors import SpecError

#: bump when draw logic changes; part of the RNG seed so "same seed,
#: same spec" is scoped to one generator version
GENERATOR_VERSION = 1

#: kinds the fuzzer draws, with weights biased toward the kinds with
#: the most interacting knobs
FUZZ_KINDS = ("batch", "serving", "cluster", "pipeline")
_KIND_WEIGHTS = {"batch": 4, "serving": 8, "cluster": 4, "pipeline": 1}

#: SLO classes the serving mix can name (repro.serving.slo vocabulary)
_SLO_CLASSES = ("interactive", "standard", "best_effort")


def _rng(seed: int, salt: str = "") -> random.Random:
    """A process-stable RNG for ``seed`` (string seeds use SHA-512)."""
    return random.Random(f"repro.fuzz/v{GENERATOR_VERSION}/{salt}/{seed}")


def _round(value: float, digits: int = 3) -> float:
    """Keep drawn floats short so spec JSON stays readable in corpora."""
    return round(value, digits)


def _draw_training(rng: random.Random) -> TrainingSpec:
    return TrainingSpec(
        model=rng.choice(["1.2B", "3.6B", 2.0]),
        epochs=rng.choice([1, 1, 1, 2]),
        micro_batches=rng.choice([4, 4, 6, 8]),
        op_jitter=rng.choice([0.01, 0.01, 0.0, 0.03]),
        schedule=rng.choice(["1f1b", "1f1b", "gpipe"]),
    )


def _draw_arrivals(rng: random.Random) -> ArrivalSpec:
    from repro.serving.arrivals import NAMED_ARRIVALS

    kwargs: dict = {}
    if rng.random() < 0.5:
        kwargs["mix"] = _draw_mix_entries(rng)
    return ArrivalSpec(
        kind=rng.choice(sorted(NAMED_ARRIVALS)),
        rate_per_s=_round(rng.uniform(0.5, 6.0)),
        vectorized=rng.random() < 0.25,
        **kwargs,
    )


def _draw_mix_entries(rng: random.Random) -> "tuple[MixEntrySpec, ...]":
    from repro.workloads.registry import WORKLOAD_NAMES

    return tuple(
        MixEntrySpec(
            workload=rng.choice(sorted(WORKLOAD_NAMES)),
            job_steps=rng.randint(1, 4),
            slo_class=rng.choice(_SLO_CLASSES),
            batch_size=rng.choice([32, 64]),
            weight=_round(rng.uniform(0.5, 2.0)),
        )
        for _ in range(rng.randint(1, 3))
    )


def _draw_tenants(rng: random.Random) -> "tuple[TenantSpec, ...]":
    from repro.serving.arrivals import NAMED_ARRIVALS

    count = rng.randint(2, 3)
    tenants = []
    for index in range(count):
        kwargs: dict = {}
        if rng.random() < 0.3:
            kwargs["mix"] = _draw_mix_entries(rng)
        tenants.append(TenantSpec(
            name=f"tenant{index}",
            weight=rng.choice([1.0, 1.0, 2.0, 4.0]),
            rate_per_s=_round(rng.uniform(1.0, 4.0)),
            burst=rng.choice([2.0, 4.0, 8.0]),
            arrival_kind=rng.choice(sorted(NAMED_ARRIVALS)),
            arrival_rate_per_s=_round(rng.uniform(0.5, 3.0)),
            **kwargs,
        ))
    return tuple(tenants)


def _draw_policy(rng: random.Random, *, kind: str,
                 tenanted: bool) -> PolicySpec:
    from repro.core.policies import NAMED_POLICIES
    from repro.serving.frontend import NAMED_ADMISSION
    from repro.serving.slo import NAMED_DISCIPLINES
    from repro.tenancy.scheduler import NAMED_FAIR_DISCIPLINES

    admissions = sorted(NAMED_ADMISSION)
    if not tenanted:
        admissions.remove("per_tenant_token_bucket")
    if kind != "cluster":
        admissions.remove("per_job_token_bucket")
    disciplines = sorted(NAMED_DISCIPLINES)
    if tenanted:
        disciplines += sorted(NAMED_FAIR_DISCIPLINES)
    return PolicySpec(
        assignment=rng.choice(sorted(NAMED_POLICIES)),
        admission=rng.choice(admissions),
        discipline=rng.choice(disciplines),
        queue_capacity=rng.choice([4, 8, 16, 64]),
    )


def _draw_workloads(rng: random.Random) -> "tuple[WorkloadSpec, ...]":
    from repro.workloads.registry import WORKLOAD_NAMES

    return tuple(
        WorkloadSpec(
            name=rng.choice(sorted(WORKLOAD_NAMES)),
            batch_size=rng.choice([32, 64, 128]),
            interface=rng.choice(["iterative", "iterative", "imperative"]),
            replicate=rng.random() < 0.7,
            copies=rng.choice([None, None, 1, 2]),
        )
        for _ in range(rng.randint(1, 3))
    )


def _draw_faults(rng: random.Random) -> "FaultSpec | None":
    if rng.random() < 0.6:
        return None
    retry_max = rng.choice([1, 1, 2, 3])
    return FaultSpec(
        crash_rate=rng.choice([0.0, 0.5, 1.0, 2.0]),
        restart_after_s=rng.choice([1.0, 2.0, None]),
        step_failure_rate=rng.choice([0.0, 0.02, 0.05]),
        recovery=rng.choice(sorted(RECOVERY_MODES)),
        checkpoint_interval_steps=rng.choice([2, 4]),
        retry_max_attempts=retry_max,
        retry_backoff_s=0.2,
    )


def draw_spec(seed: int,
              kinds: "typing.Sequence[str]" = FUZZ_KINDS) -> ScenarioSpec:
    """One random-but-reproducible scenario: a pure function of ``seed``.

    ``kinds`` restricts the drawn scenario kinds (the CLI's ``--kind``);
    the draw stream is still a pure function of ``(seed, kinds)``.
    """
    unknown = sorted(set(kinds) - set(FUZZ_KINDS))
    if not kinds or unknown:
        raise SpecError(
            f"fuzz kinds must be a non-empty subset of "
            f"{sorted(FUZZ_KINDS)}, got {sorted(kinds) or '[]'}"
        )
    rng = _rng(seed)
    kind = rng.choices(
        list(kinds), weights=[_KIND_WEIGHTS[k] for k in kinds])[0]
    training = _draw_training(rng)
    policy_kwargs: dict = {}
    params: dict = {"settle_s": 2.0}
    kwargs: dict = {}

    serving_mode = False
    if kind == "serving":
        serving_mode = True
        if rng.random() < 0.3:
            kwargs["tenants"] = _draw_tenants(rng)
        else:
            kwargs["arrivals"] = _draw_arrivals(rng)
    elif kind == "cluster":
        kwargs["jobs"] = rng.choice([2, 2, 3])
        traffic = rng.choice(["workloads", "workloads", "arrivals",
                              "tenants"])
        if traffic == "arrivals":
            serving_mode = True
            kwargs["arrivals"] = _draw_arrivals(rng)
        elif traffic == "tenants":
            serving_mode = True
            kwargs["tenants"] = _draw_tenants(rng)
        else:
            kwargs["workloads"] = _draw_workloads(rng)
    elif kind == "batch":
        kwargs["workloads"] = _draw_workloads(rng)

    if kind in ("serving", "cluster"):
        kwargs["faults"] = _draw_faults(rng)
        if serving_mode and rng.random() < 0.25:
            kwargs["metrics"] = MetricsSpec(
                mode=rng.choice(sorted(METRICS_MODES)))
    if serving_mode:
        # A fixed small open window keeps every fuzz case sub-second and
        # makes the horizon independent of the drawn training length.
        params["horizon_s"] = _round(rng.uniform(2.0, 5.0), 2)

    if kind != "pipeline":
        policy_kwargs["policy"] = _draw_policy(
            rng, kind=kind, tenanted=bool(kwargs.get("tenants")))

    return ScenarioSpec(
        name=f"fuzz-{seed}",
        kind=kind,
        seed=rng.randrange(1_000_000),
        training=training,
        params=params,
        **policy_kwargs,
        **kwargs,
    )


# ----------------------------------------------------------------------
# invalid draws: every one of these MUST raise SpecError
# ----------------------------------------------------------------------
def _invalid_cases() -> "dict[str, typing.Callable[[random.Random], object]]":
    """Constructors of *invalid* specs, name -> thunk(rng).

    Each thunk performs the invalid construction (raising is the
    expected outcome); the harness asserts :class:`SpecError` — never a
    bare ``TypeError``/``ValueError``/crash — and that the message names
    the offending field.
    """
    base = ScenarioSpec()

    def negative_arrival_rate(rng):
        return ArrivalSpec(rate_per_s=-rng.uniform(0.1, 5.0))

    def zero_arrival_rate(rng):
        return ArrivalSpec(rate_per_s=0.0)

    def unknown_arrival_kind(rng):
        return ArrivalSpec(kind=rng.choice(["pareto", "weibull", "trace"]))

    def tenants_on_batch(rng):
        return ScenarioSpec(kind="batch", tenants=2)

    def tenants_and_arrivals(rng):
        return ScenarioSpec(kind="serving", tenants=2,
                            arrivals=ArrivalSpec())

    def negative_tenant_weight(rng):
        return TenantSpec(weight=-rng.uniform(0.1, 2.0))

    def duplicate_tenant_names(rng):
        return ScenarioSpec(kind="serving", tenants=(
            TenantSpec(name="dup"), TenantSpec(name="dup")))

    def faults_on_pipeline(rng):
        return ScenarioSpec(kind="pipeline", faults=FaultSpec())

    def unknown_recovery(rng):
        return FaultSpec(recovery=rng.choice(["magic", "redo", "rewind"]))

    def negative_crash_rate(rng):
        return FaultSpec(crash_rate=-rng.uniform(0.1, 3.0))

    def step_failure_rate_out_of_range(rng):
        return FaultSpec(step_failure_rate=rng.uniform(1.0, 2.0))

    def zero_queue_capacity(rng):
        return PolicySpec(queue_capacity=0)

    def zero_epochs(rng):
        return TrainingSpec(epochs=0)

    def unknown_model_preset(rng):
        return TrainingSpec(model=rng.choice(["9B", "120B", "tiny"]))

    def unknown_schedule(rng):
        return TrainingSpec(schedule="interleaved")

    def unknown_workload(rng):
        return WorkloadSpec(name=rng.choice(["bert", "llama", "dlrm"]))

    def zero_mix_weight(rng):
        return MixEntrySpec(workload="resnet18", job_steps=1, weight=0.0)

    def cluster_without_jobs(rng):
        return ScenarioSpec(kind="cluster")

    def unknown_kind(rng):
        return ScenarioSpec(kind=rng.choice(["stream", "offline", "svc"]))

    def streaming_metrics_on_batch(rng):
        return ScenarioSpec(kind="batch",
                            metrics=MetricsSpec(mode="streaming"))

    def unknown_metrics_mode(rng):
        return MetricsSpec(mode="sampled")

    def unknown_override_path(rng):
        return base.override({"training.epoch": 2})

    def unknown_override_section(rng):
        return base.override({"policies.admission": "always"})

    def override_missing_section(rng):
        return base.override({"faults.crash_rate": 1.0})

    def override_bad_list_index(rng):
        spec = ScenarioSpec(kind="batch",
                            workloads=(WorkloadSpec(name="resnet18"),))
        return spec.override({"workloads.5.batch_size": 32})

    def override_non_numeric_index(rng):
        spec = ScenarioSpec(kind="batch",
                            workloads=(WorkloadSpec(name="resnet18"),))
        return spec.override({"workloads.first.batch_size": 32})

    def override_bool_garbage(rng):
        return base.override({"obs.trace": "maybe"})

    def override_float_garbage(rng):
        return ScenarioSpec(kind="serving", arrivals=ArrivalSpec()).override(
            {"arrivals.rate_per_s": "fast"})

    def sweep_axes_and_points(rng):
        from repro.api.spec import SweepSpec

        return SweepSpec(axes={"seed": (1, 2)}, points=({"seed": 3},))

    def unknown_section_field(rng):
        return ScenarioSpec.from_dict(
            {"kind": "batch", "training": {"epochz": 2}})

    return {
        name: fn for name, fn in sorted(locals().items())
        if callable(fn) and not name.startswith("_") and name != "base"
    }


_INVALID_CASES = None


def invalid_case_names() -> "list[str]":
    """Every named invalid construction, in deterministic order."""
    global _INVALID_CASES
    if _INVALID_CASES is None:
        _INVALID_CASES = _invalid_cases()
    return sorted(_INVALID_CASES)


def draw_invalid(seed: int) -> "tuple[str, typing.Callable[[], object]]":
    """One seeded invalid construction: ``(case_name, thunk)``.

    Calling the thunk must raise :class:`~repro.errors.SpecError`;
    anything else (a crash, a silently accepted spec) is a fuzz failure.
    """
    names = invalid_case_names()
    rng = _rng(seed, salt="invalid")
    name = rng.choice(names)
    fn = _INVALID_CASES[name]
    return name, lambda: fn(rng)
