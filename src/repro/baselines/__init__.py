"""The paper's comparison points (section 6.1.2).

* :mod:`repro.baselines.colocation` — **Nvidia MPS** co-location (training
  at the highest priority, side tasks lower, kernels run concurrently) and
  **naive** co-location (no MPS: the driver time-slices contexts). Both run
  side tasks continuously, bubbles or not — they are not bubble-aware,
  which is why Table 2 shows them with large time increases and negative
  savings.
* :mod:`repro.baselines.dedicated` — the side task alone on Server-II
  (RTX 3080) or Server-CPU; the denominators of Table 1 and the pricing
  basis of the cost model.
"""

from repro.baselines.colocation import ColocationResult, run_colocation
from repro.baselines.dedicated import DedicatedResult, run_dedicated

__all__ = [
    "ColocationResult",
    "DedicatedResult",
    "run_colocation",
    "run_dedicated",
]
