"""MPS and naive co-location baselines (paper section 6.1.2).

Both baselines place the side task on the training GPU and let it run
*continuously* — they have no notion of bubbles. Under MPS the side task's
kernels execute concurrently with training kernels and steal SM cycles
(catastrophically so for compute-dense tasks like Graph SGD); without MPS
the driver time-slices the two contexts and training stalls whenever the
side task holds the device.

Placement follows the same memory rule FreeRide uses: a copy of the task
goes to every stage whose spare GPU memory fits it. The side tasks run as
low-priority processes; everything else about training is untouched
(no instrumentation, no hook costs — this is stock DeepSpeed).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.interfaces import SideTaskContext
from repro.gpu.cluster import make_server_i
from repro.gpu.kernel import Interference, Priority
from repro.gpu.process import GPUProcess
from repro.gpu.sharing import SharingMode
from repro.pipeline.config import TrainConfig
from repro.pipeline.engine import PipelineEngine, TrainingResult
from repro.sim.engine import Engine
from repro.sim.events import Interrupt
from repro.sim.rng import RandomStreams

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.interfaces import ImperativeSideTask, IterativeSideTask

WorkloadFactory = typing.Callable[[], "IterativeSideTask | ImperativeSideTask"]


@dataclasses.dataclass
class ColocationTaskReport:
    name: str
    stage: int
    steps_done: int
    units_done: float


@dataclasses.dataclass
class ColocationResult:
    mode: str
    training: TrainingResult
    tasks: list[ColocationTaskReport]

    @property
    def total_units(self) -> float:
        return sum(report.units_done for report in self.tasks)


def run_colocation(
    train_config: TrainConfig,
    workload_factory: WorkloadFactory | None = None,
    mode: str = "mps",
    seed: int = 0,
    copies: int | None = None,
    placement: list[tuple[int, WorkloadFactory]] | None = None,
) -> ColocationResult:
    """Run training with side tasks continuously co-located.

    ``mode`` is "mps" (concurrent kernels, training prioritized) or
    "naive" (driver time-slicing). Either pass one ``workload_factory``
    (a copy lands on every stage with enough spare memory, as in Table 2's
    single-task rows) or an explicit ``placement`` of (stage, factory)
    pairs (the mixed workload).
    """
    if mode not in ("mps", "naive"):
        raise ValueError(f"unknown co-location mode {mode!r}")
    if (workload_factory is None) == (placement is None):
        raise ValueError("pass exactly one of workload_factory or placement")
    sharing = SharingMode.MPS if mode == "mps" else SharingMode.TIME_SLICE
    sim = Engine()
    server = make_server_i(sim, sharing=sharing)
    rng = RandomStreams(seed)
    pipeline = PipelineEngine(
        sim, server, train_config, rng=rng.spawn("pipeline")
    )
    memory = pipeline.memory
    if placement is None:
        eligible_stages = [
            stage
            for stage in range(train_config.num_stages)
            if memory.available_gb(stage) >= workload_factory().perf.memory_gb
        ]
        if copies is not None:
            eligible_stages = eligible_stages[:copies]
        placement = [(stage, workload_factory) for stage in eligible_stages]

    workloads = []
    side_procs = []
    for stage, factory in placement:
        workload = factory()
        perf = workload.perf
        proc = GPUProcess(
            sim,
            server.gpu(stage),
            name=f"colo-{workload.name}-s{stage}",
            priority=Priority.SIDE,
            interference=Interference(
                mps_on_higher=perf.mps_interference,
                mps_on_lower=0.3,
                time_slice=perf.naive_interference,
            ),
        )
        ctx = SideTaskContext(sim, proc, rng.spawn(f"colo{stage}"),
                              task_name=workload.name)
        workload.create_side_task()
        workload.init_side_task(ctx)
        proc.attach(sim.process(_continuous_loop(workload, ctx),
                                name=f"colo-loop-s{stage}"))
        workloads.append((workload, stage))
        side_procs.append(proc)

    training_result = sim.run(until=pipeline.start())
    for proc in side_procs:
        proc.kill("training finished")
    sim.run()
    reports = [
        ColocationTaskReport(
            name=workload.name,
            stage=stage,
            steps_done=workload.steps_done,
            units_done=workload.units_done,
        )
        for workload, stage in workloads
    ]
    return ColocationResult(mode=mode, training=training_result, tasks=reports)


def _continuous_loop(workload, ctx: SideTaskContext):
    """The side task's own main loop: step after step, no bubble awareness."""
    try:
        while not workload.is_finished:
            host_s = workload.perf.step_time_s * (1.0 - workload.perf.gpu_duty)
            if host_s > 0:
                yield ctx.engine.timeout(ctx.jitter(host_s))
            workload.compute_step()
            yield ctx.proc.launch_kernel(
                work_s=ctx.jitter(
                    workload.perf.step_time_s * workload.perf.gpu_duty
                ),
                sm_demand=workload.perf.sm_demand,
                name=f"{workload.name}:colo-step",
            )
            workload._account_step()
    except Interrupt:
        return
