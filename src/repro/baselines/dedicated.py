"""Dedicated side-task execution on Server-II and Server-CPU (Table 1).

Runs the side task alone on the lower-tier platform: the per-step duration
scales by the task's calibrated platform speed factor (an RTX 3080 or an
8-core Xeon delivering a task-dependent fraction of Server-I throughput).
These are the throughput denominators of Table 1 and the pricing basis of
the cost-savings metric.

``enforce_memory=True`` makes Server-II's 10 GB a hard constraint — used
by the Figure 7(a,b) batch-size sweep, where the paper marks OOM cells
because "the GPU in Server-II does not have enough GPU memory for the
configuration, so the cost savings cannot be calculated".
"""

from __future__ import annotations

import dataclasses

from repro.core.interfaces import IterativeSideTask, SideTaskContext
from repro.errors import GpuOutOfMemoryError
from repro.gpu.cluster import Server, make_server_cpu, make_server_ii
from repro.gpu.device import SimGPU
from repro.gpu.kernel import Priority
from repro.gpu.process import GPUProcess
from repro.gpu.sharing import SharingMode
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


@dataclasses.dataclass
class DedicatedResult:
    platform: str
    steps_done: int
    units_done: float
    duration_s: float
    oom: bool = False

    @property
    def throughput(self) -> float:
        """Units per second; 0 when the configuration OOMed."""
        if self.oom or self.duration_s <= 0:
            return 0.0
        return self.units_done / self.duration_s


def run_dedicated(
    workload: IterativeSideTask,
    platform: str = "server_ii",
    duration_s: float = 60.0,
    seed: int = 0,
    enforce_memory: bool = False,
) -> DedicatedResult:
    """Run ``workload`` alone on the chosen platform for ``duration_s``."""
    speeds = {
        "server_ii": workload.perf.speed_server_ii,
        "cpu": workload.perf.speed_cpu,
    }
    if platform not in speeds:
        raise ValueError(
            f"unknown platform {platform!r}; choose from {sorted(speeds)}"
        )
    sim = Engine()
    server = _make_platform_server(sim, platform, speed=1.0)
    gpu = server.gpus[0]
    # The platform's speed scales the whole step (host and kernel alike:
    # a slower machine is slower end to end), keeping the simulated
    # throughput consistent with the analytic cost model.
    workload.perf = dataclasses.replace(
        workload.perf, step_time_s=workload.perf.step_time_s / speeds[platform]
    )
    if workload.perf.memory_gb > gpu.memory_gb:
        if enforce_memory:
            return DedicatedResult(
                platform=platform, steps_done=0, units_done=0.0,
                duration_s=duration_s, oom=True,
            )
        # The paper's Table 1 runs every task on Server-II, including ones
        # whose Server-I profile exceeds 10 GB (a dedicated deployment can
        # shrink its working set); model that by sizing the device to fit.
        gpu.memory_gb = workload.perf.memory_gb * 1.2
    proc = GPUProcess(sim, gpu, name=f"dedicated:{workload.name}",
                      priority=Priority.SIDE)
    ctx = SideTaskContext(sim, proc, RandomStreams(seed), workload.name)
    workload.create_side_task()
    try:
        workload.init_side_task(ctx)
    except GpuOutOfMemoryError:
        return DedicatedResult(
            platform=platform, steps_done=0, units_done=0.0,
            duration_s=duration_s, oom=True,
        )

    def loop():
        while not workload.is_finished and sim.now < duration_s:
            yield from workload.run_next_step(ctx)

    start_units = workload.units_done
    start_steps = workload.steps_done
    sim.run(until=sim.process(loop(), name="dedicated-loop"))
    elapsed = min(sim.now, duration_s) or sim.now
    return DedicatedResult(
        platform=platform,
        steps_done=workload.steps_done - start_steps,
        units_done=workload.units_done - start_units,
        duration_s=elapsed if elapsed > 0 else duration_s,
    )


def _make_platform_server(sim: Engine, platform: str, speed: float) -> Server:
    if platform == "server_ii":
        server = make_server_ii(sim)
        server.gpus[0].speed_factor = speed
        return server
    server = make_server_cpu(sim)
    # The CPU "device": system RAM is the capacity, the speed factor the
    # task's calibrated CPU throughput fraction.
    cpu_device = SimGPU(
        sim, name="cpu0", memory_gb=64.0,
        sharing=SharingMode.EXCLUSIVE, speed_factor=speed,
    )
    server.gpus.append(cpu_device)
    return server
