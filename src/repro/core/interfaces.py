"""Side-task programming interfaces (paper sections 4.2 and 5).

**Iterative** (preferred): the programmer expresses the workload as
repeated small steps, overriding four hooks that mirror Figure 6 —
``create_side_task`` (host context), ``init_side_task`` (GPU context),
``run_next_step`` (one step), ``stop_side_task`` (cleanup). FreeRide
handles pausing/resuming and all state transitions; the programmer never
sees a bubble.

**Imperative** (fallback): the programmer provides one
``run_gpu_workload`` body; FreeRide pauses/resumes the process with
SIGTSTP/SIGCONT. More versatile, but CUDA kernels already in flight when
the stop signal lands keep running and overlap with training — the source
of this interface's higher overhead.

Each side task carries a :class:`~repro.calibration.SideTaskProfile`
describing how it behaves on the simulated hardware (step duration, GPU
memory, SM demand). The middleware never reads it — the automated
profiler *measures* these quantities, exactly as in the paper.
"""

from __future__ import annotations

import abc
import dataclasses
import typing

from repro.calibration import SideTaskProfile
from repro.sim.rng import RandomStreams

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.process import GPUProcess
    from repro.sim.engine import Engine


@dataclasses.dataclass
class SideTaskContext:
    """Execution context handed to side-task hooks."""

    engine: "Engine"
    proc: "GPUProcess"
    rng: RandomStreams
    task_name: str
    #: the task's jitter stream, resolved once — jitter() runs per step
    _stream: typing.Any = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def now(self) -> float:
        return self.engine.now

    def jitter(self, mean: float, rel_sigma: float = 0.02) -> float:
        if mean <= 0:
            return 0.0
        if rel_sigma <= 0:
            return mean
        stream = self._stream
        if stream is None:
            stream = self._stream = self.rng.stream(f"task:{self.task_name}")
        return stream.lognormvariate(0.0, rel_sigma) * mean


class SideTaskBase(abc.ABC):
    """Hooks and accounting shared by both interfaces."""

    def __init__(self, perf: SideTaskProfile, name: str = ""):
        self.perf = perf
        self.name = name or perf.name
        self.steps_done = 0
        self.units_done = 0.0
        self.host_loaded = False
        self.gpu_loaded = False

    # -- life-cycle hooks (override freely) -----------------------------
    def create_side_task(self) -> None:
        """CREATED: build the host-side context (dataset, model, ...)."""
        self.host_loaded = True

    def init_side_task(self, ctx: SideTaskContext) -> None:
        """CREATED -> PAUSED: move the context into GPU memory."""
        ctx.proc.allocate(self.perf.memory_gb)
        self.gpu_loaded = True

    def stop_side_task(self, ctx: SideTaskContext) -> None:
        """* -> STOPPED: release whatever is still held."""
        if self.gpu_loaded and ctx.proc.alive and ctx.proc.memory_gb > 0:
            ctx.proc.free()
        self.gpu_loaded = False

    # -- checkpoint/restore (fault-tolerance layer) ----------------------
    def checkpoint_state(self) -> dict:
        """Snapshot the resumable progress of this task.

        The default covers the base accounting; workloads with extra
        mutable progress extend the dict (and mirror it in
        :meth:`restore_state`).
        """
        return {"steps_done": self.steps_done, "units_done": self.units_done}

    def restore_state(self, snapshot: dict) -> None:
        """Roll progress back to ``snapshot`` (inverse of checkpoint)."""
        self.steps_done = snapshot["steps_done"]
        self.units_done = snapshot["units_done"]

    # -- completion ------------------------------------------------------
    @property
    def is_finished(self) -> bool:
        """Override for finite tasks; endless tasks return False."""
        return False

    def _account_step(self) -> None:
        self.steps_done += 1
        self.units_done += self.perf.units_per_step


class IterativeSideTask(SideTaskBase):
    """Step-wise side task for the iterative interface."""

    def run_next_step(self, ctx: SideTaskContext):
        """One step: host phase, real computation, then the GPU kernel.

        A generator so the middleware can interleave it with virtual time;
        the default body realizes the profiled step duration with the
        profiled host/GPU split. Override for custom step structure.
        """
        host_s = self.perf.step_time_s * (1.0 - self.perf.gpu_duty)
        kernel_s = self.perf.step_time_s * self.perf.gpu_duty
        if host_s > 0:
            yield ctx.engine.timeout(ctx.jitter(host_s))
        self.compute_step()
        yield ctx.proc.launch_kernel(
            work_s=ctx.jitter(kernel_s),
            sm_demand=self.perf.sm_demand,
            name=self.name,
        )
        self._account_step()

    @abc.abstractmethod
    def compute_step(self) -> None:
        """The real (host-executed) computation of one step."""


class ImperativeSideTask(SideTaskBase):
    """Monolithic side task for the imperative interface."""

    def run_gpu_workload(self, ctx: SideTaskContext):
        """The whole workload as one loop; paused via SIGTSTP/SIGCONT.

        ``wait_if_stopped`` marks the host-side preemption points; kernels
        already launched continue regardless — asynchronous CUDA semantics.
        """
        while not self.is_finished:
            yield from ctx.proc.wait_if_stopped()
            host_s = self.perf.step_time_s * (1.0 - self.perf.gpu_duty)
            if host_s > 0:
                yield ctx.engine.timeout(ctx.jitter(host_s))
            yield from ctx.proc.wait_if_stopped()
            self.compute_step()
            kernel = ctx.proc.launch_kernel(
                work_s=ctx.jitter(self.perf.step_time_s * self.perf.gpu_duty),
                sm_demand=self.perf.sm_demand,
                name=self.name,
            )
            yield kernel
            self._account_step()

    @abc.abstractmethod
    def compute_step(self) -> None:
        """The real (host-executed) computation of one step."""
