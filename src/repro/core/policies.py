"""Worker-assignment policies for the side-task manager.

Algorithm 1 of the paper filters workers by available GPU memory and picks
the one serving the fewest tasks (:func:`least_loaded_policy`). The paper's
discussion section anticipates "more sophisticated management" strategies;
we provide three more as drop-in policies and compare them in the
ablation benchmarks.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.worker import SideTaskWorker

#: Given the memory-eligible workers, pick one (or None to reject).
AssignmentPolicy = typing.Callable[
    ["list[SideTaskWorker]"], "SideTaskWorker | None"
]


def least_loaded_policy(eligible: "list[SideTaskWorker]"):
    """Paper Algorithm 1, lines 6-9: fewest tasks wins; ties go to the
    first worker in iteration order."""
    best = None
    min_tasks = float("inf")
    for worker in eligible:
        num_tasks = worker.get_task_num()
        if num_tasks < min_tasks:
            min_tasks = num_tasks
            best = worker
    return best


def first_fit_policy(eligible: "list[SideTaskWorker]"):
    """Take the first memory-eligible worker."""
    return eligible[0] if eligible else None


def best_fit_policy(eligible: "list[SideTaskWorker]"):
    """Tightest memory fit: keeps big-memory workers free for big tasks."""
    return min(eligible, key=lambda worker: worker.available_gb, default=None)


def worst_fit_policy(eligible: "list[SideTaskWorker]"):
    """Loosest fit: maximizes each task's memory headroom."""
    return max(eligible, key=lambda worker: worker.available_gb, default=None)


NAMED_POLICIES: dict[str, AssignmentPolicy] = {
    "least_loaded": least_loaded_policy,
    "first_fit": first_fit_policy,
    "best_fit": best_fit_policy,
    "worst_fit": worst_fit_policy,
}
