"""Worker-assignment policies for the side-task manager.

Algorithm 1 of the paper filters workers by available GPU memory and picks
the one serving the fewest tasks (:func:`least_loaded_policy`). The paper's
discussion section anticipates "more sophisticated management" strategies;
we provide several more as drop-in policies and compare them in the
ablation benchmarks and the online serving experiment.

Every policy takes the memory-eligible workers plus (optionally) the
:class:`~repro.core.task_spec.TaskSpec` being placed, so deadline-aware
policies can read the request's SLO metadata. Policies that ignore the
spec simply accept and discard it.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.task_spec import TaskSpec
    from repro.core.worker import SideTaskWorker

#: Given the memory-eligible workers and the spec being placed, pick a
#: worker (or None to reject).
AssignmentPolicy = typing.Callable[
    ["list[SideTaskWorker]", "TaskSpec | None"], "SideTaskWorker | None"
]


def least_loaded_policy(eligible: "list[SideTaskWorker]",
                        spec: "TaskSpec | None" = None):
    """Paper Algorithm 1, lines 6-9: fewest tasks wins; ties go to the
    first worker in iteration order."""
    best = None
    min_tasks = float("inf")
    for worker in eligible:
        num_tasks = worker.get_task_num()
        if num_tasks < min_tasks:
            min_tasks = num_tasks
            best = worker
    return best


def first_fit_policy(eligible: "list[SideTaskWorker]",
                     spec: "TaskSpec | None" = None):
    """Take the first memory-eligible worker."""
    return eligible[0] if eligible else None


def best_fit_policy(eligible: "list[SideTaskWorker]",
                    spec: "TaskSpec | None" = None):
    """Tightest memory fit: keeps big-memory workers free for big tasks.

    Ties (equal ``available_gb``) go to the first worker in iteration
    order — ``min`` keeps the earliest of equal keys."""
    return min(eligible, key=lambda worker: worker.available_gb, default=None)


def worst_fit_policy(eligible: "list[SideTaskWorker]",
                     spec: "TaskSpec | None" = None):
    """Loosest fit: maximizes each task's memory headroom.

    Ties go to the first worker in iteration order."""
    return max(eligible, key=lambda worker: worker.available_gb, default=None)


def _live_tasks(worker: "SideTaskWorker"):
    return (task for task in worker.all_tasks if not task.machine.terminated)


def edf_policy(eligible: "list[SideTaskWorker]",
               spec: "TaskSpec | None" = None):
    """Earliest-deadline-first placement for SLO-tagged requests.

    Place the request on the worker where it would be served soonest
    under per-worker deadline order: the worker with the fewest live
    tasks due at or before this request's deadline. Best-effort tasks
    (no deadline) sort after every deadline, so they never delay an
    SLO-tagged request's position. Ties fall back to least-loaded, then
    iteration order.
    """
    deadline = spec.effective_deadline if spec is not None else float("inf")

    def key(worker: "SideTaskWorker"):
        ahead = sum(
            1 for task in _live_tasks(worker)
            if task.spec.effective_deadline <= deadline
        )
        return (ahead, worker.get_task_num())

    return min(eligible, key=key, default=None)


def starvation_aware_policy(eligible: "list[SideTaskWorker]",
                            spec: "TaskSpec | None" = None):
    """Steer new work away from workers with long-waiting backlogs.

    A worker whose oldest live task has been waiting longest is the one
    closest to starving it; stacking more work there buries it further.
    Pick the eligible worker whose longest-waiting live task is youngest,
    falling back to least-loaded on ties.
    """
    def key(worker: "SideTaskWorker"):
        now = worker.sim.now
        longest_wait = max(
            (now - task.spec.submitted_at for task in _live_tasks(worker)),
            default=0.0,
        )
        return (longest_wait, worker.get_task_num())

    return min(eligible, key=key, default=None)


NAMED_POLICIES: dict[str, AssignmentPolicy] = {
    "least_loaded": least_loaded_policy,
    "first_fit": first_fit_policy,
    "best_fit": best_fit_policy,
    "worst_fit": worst_fit_policy,
    "edf": edf_policy,
    "starvation_aware": starvation_aware_policy,
}
