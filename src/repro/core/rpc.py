"""Virtual-time RPC channels (the gRPC stand-in).

The paper wires its components — instrumented DeepSpeed, the side-task
manager, workers, and task processes — with gRPC (section 4.6). What the
middleware's behaviour depends on is delivery latency: a pause RPC issued
at a bubble's end lands on the task about one latency later, and any
kernels the task launched in between overlap with training. This module
provides one-way casts and request/response calls with that latency.
"""

from __future__ import annotations

import typing

from repro import calibration
from repro.errors import RpcError
from repro.sim.engine import Engine
from repro.sim.events import SimEvent


class RpcChannel:
    """A named endpoint pair with symmetric one-way latency."""

    def __init__(self, engine: Engine, name: str,
                 latency_s: float = calibration.RPC_LATENCY_S):
        if latency_s < 0:
            raise RpcError(f"RPC latency must be >= 0, got {latency_s}")
        self.engine = engine
        self.name = name
        self.latency_s = latency_s
        self.casts_sent = 0
        self.calls_sent = 0

    def cast(self, handler: typing.Callable, *args, **kwargs) -> None:
        """Fire-and-forget: run ``handler`` one latency from now."""
        self.casts_sent += 1
        timeout = self.engine.timeout(self.latency_s)
        timeout.callbacks.append(lambda _ev: handler(*args, **kwargs))

    def call(self, handler: typing.Callable, *args, **kwargs) -> SimEvent:
        """Request/response: the returned event carries the handler's
        result after a full round trip (2x latency)."""
        self.calls_sent += 1
        reply = self.engine.event(name=f"{self.name}:reply")

        def _invoke(_ev):
            try:
                result = handler(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - deliver to caller
                reply.fail(RpcError(f"{self.name}: handler raised {exc!r}"),
                           delay=self.latency_s)
                return
            reply.succeed(result, delay=self.latency_s)

        timeout = self.engine.timeout(self.latency_s)
        timeout.callbacks.append(_invoke)
        return reply
