"""Virtual-time RPC channels (the gRPC stand-in).

The paper wires its components — instrumented DeepSpeed, the side-task
manager, workers, and task processes — with gRPC (section 4.6). What the
middleware's behaviour depends on is delivery latency: a pause RPC issued
at a bubble's end lands on the task about one latency later, and any
kernels the task launched in between overlap with training. This module
provides one-way casts and request/response calls with that latency.
"""

from __future__ import annotations

import typing

from repro import calibration
from repro.errors import RpcError
from repro.sim.engine import Engine
from repro.sim.events import SimEvent


class _CastBatch:
    """Same-instant casts sharing one heap event (see ``cast``)."""

    __slots__ = ("due", "seq_guard", "handlers")

    def __init__(self, due: float):
        self.due = due
        self.seq_guard = -1
        self.handlers: list[tuple] = []


class RpcChannel:
    """A named endpoint pair with symmetric one-way latency."""

    def __init__(self, engine: Engine, name: str,
                 latency_s: float = calibration.RPC_LATENCY_S):
        if latency_s < 0:
            raise RpcError(f"RPC latency must be >= 0, got {latency_s}")
        self.engine = engine
        self.name = name
        self.latency_s = latency_s
        self.casts_sent = 0
        self.calls_sent = 0
        #: fault-injection drop windows; empty = the fast path untouched
        self.drop_windows: tuple = ()
        self.retransmit_delay_s = 0.0
        self.drops = 0
        self._batch: _CastBatch | None = None

    def install_faults(self, windows, retransmit_delay_s: float) -> None:
        """Drop casts sent inside ``windows``; retransmit after each
        window closes (commands are delayed, never lost)."""
        self.drop_windows = tuple(windows)
        self.retransmit_delay_s = retransmit_delay_s

    def _dropped_until(self, now: float) -> float | None:
        for window in self.drop_windows:
            if window.start_s <= now < window.end_s:
                return window.end_s
        return None

    def cast(self, handler: typing.Callable, *args, **kwargs) -> None:
        """Fire-and-forget: run ``handler`` one latency from now.

        Same-instant casts coalesce into a single heap event. The batch
        is joinable only while nothing else has been scheduled on the
        engine since it was created (``seq_guard``): joined casts would
        have occupied consecutive heap slots at the same timestamp
        anyway, so running their handlers back to back inside one event
        preserves the exact global execution order — the coalescing is
        observable only in the event count, never in the simulation.
        """
        self.casts_sent += 1
        engine = self.engine
        if self.drop_windows:
            window_end = self._dropped_until(engine._now)
            if window_end is not None:
                # Dropped: the sender's retry lands one retransmit delay
                # after the window closes (and is re-checked then, in
                # case windows overlap).
                self.drops += 1
                retry_at = window_end - engine._now + self.retransmit_delay_s
                timeout = engine.timeout(retry_at)
                timeout.callbacks.append(
                    lambda _ev: self.cast(handler, *args, **kwargs)
                )
                return
        due = engine._now + self.latency_s
        batch = self._batch
        if (
            batch is not None
            and batch.due == due
            and batch.seq_guard == engine._sequence
        ):
            batch.handlers.append((handler, args, kwargs))
            return
        batch = _CastBatch(due)
        batch.handlers.append((handler, args, kwargs))
        timeout = engine.timeout(self.latency_s)
        timeout.callbacks.append(
            lambda _ev, batch=batch: self._deliver(batch)
        )
        batch.seq_guard = engine._sequence
        self._batch = batch

    def _deliver(self, batch: _CastBatch) -> None:
        # A handler may cast again on this channel; those casts belong
        # to a fresh event (scheduled after this one), not this batch.
        if self._batch is batch:
            self._batch = None
        for handler, args, kwargs in batch.handlers:
            handler(*args, **kwargs)

    def call(self, handler: typing.Callable, *args, **kwargs) -> SimEvent:
        """Request/response: the returned event carries the handler's
        result after a full round trip (2x latency)."""
        self.calls_sent += 1
        reply = self.engine.event(name=f"{self.name}:reply")

        def _invoke(_ev):
            try:
                result = handler(*args, **kwargs)
            except Exception as exc:  # noqa: BLE001 - deliver to caller
                reply.fail(RpcError(f"{self.name}: handler raised {exc!r}"),
                           delay=self.latency_s)
                return
            reply.succeed(result, delay=self.latency_s)

        timeout = self.engine.timeout(self.latency_s)
        timeout.callbacks.append(_invoke)
        return reply
