"""The FreeRide facade: Figure 3 of the paper, end to end.

``FreeRide`` wires together

1. an **offline bubble profile** of the training job (section 4.3),
2. the **instrumented pipeline engine**, whose bubble reports travel to
   the manager over RPC (step 5 of Figure 3),
3. one **side-task worker per GPU** sized by its stage's bubble memory,
4. the **side-task manager** running Algorithms 1 and 2.

``FreeRide`` remains the supported programmatic facade; declarative
code drives it through the session API (:mod:`repro.api`), which
wraps this class behind the ``Runner`` protocol::

    from repro.api import ScenarioSpec, Session

    spec = ScenarioSpec.from_dict({
        "training": {"epochs": 8},
        "workloads": [{"name": "pagerank", "replicate": False}],
    })
    with Session(spec) as session:
        result = session.run().results()
    print(result.tasks[0].units_done, result.training.total_time)

Direct use — still exercised by the unit tests::

    freeride = FreeRide(train_config)
    freeride.submit(lambda: PageRankTask(), interface="iterative")
    result = freeride.run()
"""

from __future__ import annotations

import dataclasses
import typing

from repro import calibration
from repro.core.manager import SideTaskManager
from repro.core.policies import AssignmentPolicy, least_loaded_policy
from repro.core.profiler import profile_side_task
from repro.core.rpc import RpcChannel
from repro.core.runtime import SideTaskRuntime
from repro.core.states import SideTaskState
from repro.core.task_spec import TaskProfile, TaskSpec
from repro.core.worker import ManagedBubble, SideTaskWorker
from repro.errors import TaskRejectedError
from repro.gpu.cluster import Server, make_server_i
from repro.pipeline.config import TrainConfig
from repro.pipeline.engine import PipelineEngine, TrainingResult, profile_bubbles
from repro.pipeline.instrumentation import (
    BubbleListener,
    BubbleProfile,
    BubbleStart,
)
from repro.pipeline.memory_model import MemoryModel
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.interfaces import ImperativeSideTask, IterativeSideTask
    from repro.faults.checkpoint import CheckpointPolicy
    from repro.obs.export import TraceResult

WorkloadFactory = typing.Callable[[], "IterativeSideTask | ImperativeSideTask"]


class _ManagerListener(BubbleListener):
    """Forwards instrumentation reports to the manager over RPC."""

    def __init__(self, sim: Engine, manager: SideTaskManager,
                 memory: MemoryModel, hook_cost_s: float,
                 rpc_latency_s: float):
        self.hook_cost_s = hook_cost_s
        self.manager = manager
        self.memory = memory
        self.rpc = RpcChannel(sim, "instrumentation", latency_s=rpc_latency_s)

    def on_bubble_start(self, report: BubbleStart) -> None:
        bubble = ManagedBubble(
            stage=report.stage,
            start=report.start,
            expected_end=report.expected_end,
            available_gb=report.available_gb,
        )
        self.rpc.cast(self.manager.add_bubble, bubble)

    def on_bubble_end(self, stage: int, now: float) -> None:
        self.rpc.cast(self.manager.bubble_ended, stage, now)


@dataclasses.dataclass
class TaskReport:
    """Final accounting for one submitted side task."""

    name: str
    interface: str
    stage: int
    final_state: SideTaskState
    failure: str | None
    steps_done: int
    units_done: float
    running_s: float
    overhead_s: float
    insufficient_s: float
    init_s: float
    gpu_memory_gb: float
    # recovery accounting (all zero in healthy runs)
    preemptions: int = 0
    restores: int = 0
    checkpoints: int = 0
    checkpoint_s: float = 0.0
    restore_s: float = 0.0
    wasted_steps: int = 0
    wasted_s: float = 0.0
    step_failures: int = 0


@dataclasses.dataclass
class FreeRideResult:
    """Outcome of one FreeRide serving run."""

    training: TrainingResult
    tasks: list[TaskReport]
    rejections: list[tuple[str, str]]
    bubble_profile: BubbleProfile
    #: structured span trace; set when the scenario enabled ``obs.trace``
    trace: "TraceResult | None" = None

    def task(self, name: str) -> TaskReport:
        for report in self.tasks:
            if report.name == name:
                return report
        raise KeyError(name)

    @property
    def total_units(self) -> float:
        return sum(report.units_done for report in self.tasks)

    @property
    def total_steps(self) -> int:
        return sum(report.steps_done for report in self.tasks)


class SideTaskPool:
    """Shared submission/teardown surface over a managed worker pool.

    Everything that only needs ``sim``/``manager``/``workers`` and the
    ``_submissions`` ledger lives here, so the single-job
    :class:`FreeRide` and the multi-job
    :class:`~repro.cluster.builder.Cluster` stay byte-for-byte
    identical in how they name, place, account, and tear down side
    tasks (the serving frontend relies on exactly this surface).
    """

    sim: Engine
    manager: SideTaskManager
    workers: list[SideTaskWorker]
    _submissions: list[tuple[TaskSpec, str, int]]

    # ------------------------------------------------------------------
    def submit(
        self,
        workload_factory: WorkloadFactory,
        interface: str = "iterative",
        profile: TaskProfile | None = None,
        name: str = "",
        memory_limit_gb: float | None = None,
        slo_class: str = "",
        deadline_s: float | None = None,
        queue_depth: int = 0,
        checkpoint: "CheckpointPolicy | None" = None,
    ) -> TaskSpec | None:
        """Profile (if needed) and submit one side task.

        Returns the accepted :class:`TaskSpec`, or None when Algorithm 1
        rejected the task for lack of bubble memory (the manager's
        ``rejections`` list records the full context: policy, eligible
        workers, and the caller-supplied ``queue_depth``). ``slo_class``
        and ``deadline_s`` (absolute sim time) tag the task for
        SLO-aware policies and the serving layer's goodput accounting.
        """
        if profile is None:
            probe = workload_factory()
            profile = profile_side_task(probe, interface=interface)
        workload = workload_factory()
        if not name:
            # Stable per-run names keep the derived RNG streams — and so
            # the whole simulation — deterministic for a given seed.
            name = f"{workload.name}-{len(self._submissions)}"
        spec = TaskSpec(
            workload=workload,
            profile=profile,
            name=name,
            memory_limit_gb=memory_limit_gb,
            submitted_at=self.sim.now,
            slo_class=slo_class,
            deadline_s=deadline_s,
            checkpoint=checkpoint,
        )
        try:
            worker = self.manager.submit(spec, interface,
                                         queue_depth=queue_depth)
        except TaskRejectedError:
            return None
        self._submissions.append((spec, interface, worker.stage))
        return spec

    def submit_replicated(
        self,
        workload_factory: WorkloadFactory,
        interface: str = "iterative",
        copies: int | None = None,
    ) -> int:
        """Paper section 6.2: "we run the same side task in all workers if
        they have enough GPU memory" — submit up to one copy per worker,
        stopping at the first rejection. Returns the number accepted."""
        probe = workload_factory()
        profile = profile_side_task(probe, interface=interface)
        eligible = len(self.manager.eligible_workers(profile.gpu_memory_gb))
        limit = min(copies if copies is not None else eligible, eligible)
        accepted = 0
        for _ in range(limit):
            if self.submit(workload_factory, interface, profile=profile) is None:
                break
            accepted += 1
        return accepted

    # ------------------------------------------------------------------
    def drain(self, settle_s: float = 2.0) -> None:
        """Stop live side tasks, let them settle, drain remaining events.

        The canonical end-of-run teardown, shared by the ``run``
        methods and the serving layer (which interposes its frontend
        close in between).
        """
        # Parked PREEMPTED tasks first: they have no process to stop and
        # must not be re-placed during the settle window.
        for task in list(self.manager.preempted):
            task.abandon("preempted at teardown (never restored)")
        for task in self.manager.live_tasks():
            self.manager.stop_task(task)
        self.sim.run(until=self.sim.now + settle_s)
        self.sim.run()  # drain any remaining teardown events

    def _report(self, spec: TaskSpec, interface: str, stage: int) -> TaskReport:
        runtime = self.runtime_for(spec)
        workload = spec.workload
        return TaskReport(
            name=spec.name,
            interface=interface,
            stage=stage,
            final_state=runtime.state,
            failure=runtime.failure,
            steps_done=workload.steps_done,
            units_done=workload.units_done,
            running_s=runtime.running_s,
            overhead_s=runtime.overhead_s,
            insufficient_s=runtime.insufficient_s,
            init_s=runtime.init_s,
            gpu_memory_gb=spec.profile.gpu_memory_gb,
            preemptions=runtime.preemptions,
            restores=runtime.restores,
            checkpoints=runtime.checkpoints,
            checkpoint_s=runtime.checkpoint_s,
            restore_s=runtime.restore_s,
            wasted_steps=runtime.wasted_steps,
            wasted_s=runtime.wasted_s,
            step_failures=runtime.step_failures,
        )

    def runtime_for(self, spec: TaskSpec) -> SideTaskRuntime:
        """The runtime serving ``spec`` (raises KeyError if unknown)."""
        for worker in self.workers:
            for runtime in worker.all_tasks:
                if runtime.spec is spec:
                    return runtime
        raise KeyError(spec.name)


class FreeRide(SideTaskPool):
    """The middleware: instrumented training + managed side tasks."""

    def __init__(
        self,
        train_config: TrainConfig,
        server_factory: typing.Callable[[Engine], Server] = make_server_i,
        sim: Engine | None = None,
        seed: int = 0,
        policy: AssignmentPolicy = least_loaded_policy,
        profiling_epochs: int = 3,
        hook_cost_s: float = calibration.INSTRUMENTATION_OVERHEAD_S,
        rpc_latency_s: float = calibration.RPC_LATENCY_S,
        grace_period_s: float = calibration.GRACE_PERIOD_S,
    ):
        self.sim = sim or Engine()
        self.server = server_factory(self.sim)
        self.config = train_config
        self.rng = RandomStreams(seed)
        # Offline profiling: once per model + schedule (paper section 4.3).
        self.bubble_profile = profile_bubbles(
            server_factory, train_config, profiling_epochs
        )
        self.memory = MemoryModel(
            train_config.model,
            train_config.num_stages,
            train_config.micro_batches,
            gpu_memory_gb=self.server.gpu(0).memory_gb,
        )
        self.workers = [
            SideTaskWorker(
                self.sim,
                self.server.gpu(stage),
                stage,
                side_task_memory_gb=self.memory.available_gb(stage),
                mps=self.server.mps,
                rng=self.rng.spawn(f"worker{stage}"),
            )
            for stage in range(train_config.num_stages)
        ]
        self.manager = SideTaskManager(
            self.sim,
            self.workers,
            policy=policy,
            rpc_latency_s=rpc_latency_s,
            grace_period_s=grace_period_s,
        )
        listener = _ManagerListener(
            self.sim, self.manager, self.memory, hook_cost_s, rpc_latency_s
        )
        self.pipeline = PipelineEngine(
            self.sim,
            self.server,
            train_config,
            rng=self.rng.spawn("pipeline"),
            listener=listener,
            profile=self.bubble_profile,
        )
        self._submissions: list[tuple[TaskSpec, str, int]] = []

    # ------------------------------------------------------------------
    def run_training(self) -> TrainingResult:
        """Start the pipeline and run the simulation until it completes."""
        training_proc = self.pipeline.start()
        return self.sim.run(until=training_proc)

    def run(self, settle_s: float = 2.0) -> FreeRideResult:
        """Run training to completion, then stop side tasks and report."""
        training_result = self.run_training()
        self.drain(settle_s)
        reports = [
            self._report(spec, interface, stage)
            for spec, interface, stage in self._submissions
        ]
        return FreeRideResult(
            training=training_result,
            tasks=reports,
            rejections=list(self.manager.rejections),
            bubble_profile=self.bubble_profile,
        )
