"""Side-task runtimes: the state machine made executable.

A runtime owns one side task's process and drives its workload through
the Figure 4(a) life cycle. The manager initiates transitions through
RPCs; the runtime applies them at the granularity its interface allows:

* :class:`IterativeRuntime` checks for pending transition RPCs between
  steps and enforces the **program-directed** time limit — a step only
  runs when the bubble's remaining time covers the profiled step duration
  plus a safety margin (section 4.5);
* :class:`ImperativeRuntime` maps pause/resume onto SIGTSTP/SIGCONT; the
  stop signal cannot recall kernels already on the device, so those
  overlap with training (section 5).

Both maintain ``last_paused_at``, the timestamp the framework-enforced
mechanism inspects after its grace period.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing

from repro import calibration
from repro.core.interfaces import ImperativeSideTask, IterativeSideTask, SideTaskContext
from repro.core.rpc import RpcChannel
from repro.core.states import SideTaskState, StateMachine, Transition
from repro.core.task_spec import TaskSpec
from repro.errors import GpuOutOfMemoryError, ProcessKilledError
from repro.sim.events import Interrupt
from repro.sim.rng import RandomStreams
from repro.sim.signals import Signal

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.container import Container
    from repro.gpu.process import GPUProcess
    from repro.sim.engine import Engine


class CommandKind(enum.Enum):
    INIT = "InitSideTask"
    START = "StartSideTask"
    PAUSE = "PauseSideTask"
    STOP = "StopSideTask"


@dataclasses.dataclass(frozen=True)
class Command:
    kind: CommandKind
    #: for START: when the manager expects the current bubble to end
    bubble_end: float | None = None


class SideTaskRuntime:
    """State, accounting, and command plumbing shared by both interfaces."""

    def __init__(
        self,
        sim: "Engine",
        spec: TaskSpec,
        proc: "GPUProcess",
        container: "Container",
        rng: RandomStreams,
        on_terminal: typing.Callable[["SideTaskRuntime"], None] | None = None,
    ):
        self.sim = sim
        self.spec = spec
        self.workload = spec.workload
        self.proc = proc
        self.container = container
        self.machine = StateMachine(task_id=spec.name)
        self.rpc = RpcChannel(sim, name=f"rpc:{spec.name}")
        self.ctx = SideTaskContext(sim, proc, rng, task_name=spec.name)
        self.on_terminal = on_terminal
        #: called after externally visible transitions (wired to the manager)
        self.notify: typing.Callable[["SideTaskRuntime"], None] | None = None
        #: set once the worker returned this task's memory reservation
        self.released = False
        #: last time a pause took effect — read by the framework-enforced limit
        self.last_paused_at = float("-inf")
        self.failure: str | None = None
        # bubble-time accounting (Figure 9)
        self.running_s = 0.0
        self.overhead_s = 0.0
        self.insufficient_s = 0.0
        self.init_s = 0.0
        # fault-tolerance plumbing (set by the worker; inert when None)
        self.injector = None
        self.stage = -1
        #: the worker currently holding this task's memory reservation
        self.reserved_worker = None
        # recovery accounting
        self.checkpoint_s = 0.0
        self.restore_s = 0.0
        self.slowdown_s = 0.0
        self.wasted_steps = 0
        self.wasted_s = 0.0
        self.step_failures = 0
        self.checkpoints = 0
        self.preemptions = 0
        self.restores = 0
        self._snapshot: dict | None = None
        self._preempting = False
        self._commands: collections.deque[Command] = collections.deque()
        self._command_event = None
        self._main = None
        # Observability: only a traced run pays for the transition
        # observer (emission appends to a list; it never touches the
        # event heap or any RNG stream, so traced runs stay byte-
        # identical to untraced ones).
        self._trace_running_since: float | None = None
        if sim.trace.enabled:
            self.machine.observer = self._trace_transition

    def _trace_transition(self, now: float, state: SideTaskState) -> None:
        """Span-tracer seam: one instant per transition, plus a complete
        span covering each contiguous RUNNING interval."""
        trace = self.sim.trace
        track = ("tasks", self.spec.name)
        if state is SideTaskState.RUNNING:
            # Entering RUNNING (START/RESUME) opens the interval; the
            # RUN_NEXT_STEP self-loop keeps landing here and is elided.
            if self._trace_running_since is None:
                self._trace_running_since = now
                trace.instant(state.value, now, cat="task.state",
                              track=track)
            return
        if self._trace_running_since is not None:
            trace.complete("RUNNING", self._trace_running_since, now,
                           cat="task.state", track=track)
            self._trace_running_since = None
        trace.instant(state.value, now, cat="task.state", track=track)

    # ------------------------------------------------------------------
    # life cycle driven by the worker/manager
    # ------------------------------------------------------------------
    @property
    def state(self) -> SideTaskState:
        return self.machine.state

    @property
    def alive(self) -> bool:
        return self.proc.alive and not self.machine.terminated

    def create(self) -> None:
        """CreateSideTask: load host context, spawn the interface loop."""
        self.workload.create_side_task()
        self.machine.apply(Transition.CREATE, self.sim.now)
        # The birth snapshot: preemption before any checkpoint rolls the
        # task all the way back (restart-from-scratch semantics).
        self._snapshot = self.workload.checkpoint_state()
        self._main = self.proc.attach(
            self.sim.process(
                self._guarded(self._main_loop()), name=f"task:{self.spec.name}"
            )
        )

    def deliver(self, command: Command) -> None:
        """RPC arrival point (already delayed by the channel)."""
        if not self.alive:
            return
        self._commands.append(command)
        if self._command_event is not None and self._command_event.pending:
            self._command_event.succeed()

    def kill(self, reason: str) -> None:
        """SIGKILL path (framework-enforced limit, OOM, teardown)."""
        self.failure = reason
        self.container.record_fault(self.proc, reason)
        self.proc.kill(reason)
        self._terminal()

    def preempt(self, reason: str) -> None:
        """Take the task's process away but keep the task resumable.

        The crash path for checkpointed tasks: progress rolls back to the
        last snapshot (wasted-work accounting records the difference),
        the process dies, and the task parks in PREEMPTED until a worker
        restores it. Tasks that cannot legally preempt are killed.
        """
        if self.spec.checkpoint is None or not self.machine.can_apply(
            Transition.PREEMPT
        ):
            self.kill(reason)
            return
        snapshot_steps = (self._snapshot or {}).get("steps_done", 0)
        lost = max(0, self.workload.steps_done - snapshot_steps)
        self.wasted_steps += lost
        step_time = self.spec.profile.step_time_s or 0.0
        self.wasted_s += lost * step_time
        self.preemptions += 1
        telemetry = self.sim.telemetry
        telemetry.counter("tasks.preemptions").add()
        if lost:
            telemetry.counter("tasks.wasted_steps").add(lost)
        self.machine.apply(Transition.PREEMPT, self.sim.now)
        # The interrupt lands in the guarded loop a beat later; the flag
        # tells it this death is a preemption, not a terminal stop.
        self._preempting = True
        self.proc.kill(reason)
        if self._snapshot is not None:
            self.workload.restore_state(self._snapshot)
        self.workload.gpu_loaded = False
        self._notify()

    def restore_on(self, proc: "GPUProcess", stage: int | None = None) -> None:
        """Resume a PREEMPTED task on a fresh process (worker-side seam)."""
        self.proc = proc
        if stage is not None:
            self.stage = stage
        # Same RandomStreams, so the task's jitter stream continues where
        # it left off — restore never forks the randomness.
        self.ctx = SideTaskContext(
            self.sim, proc, self.ctx.rng, task_name=self.spec.name
        )
        self.released = False
        self.restores += 1
        self.machine.apply(Transition.RESTORE, self.sim.now)
        self._commands.clear()
        self._command_event = None
        self._main = self.proc.attach(
            self.sim.process(
                self._guarded(self._restore_loop()),
                name=f"task:{self.spec.name}:r{self.restores}",
            )
        )
        self._notify()

    def abandon(self, reason: str) -> None:
        """Give up on a parked PREEMPTED task (teardown, no capacity)."""
        if self.machine.terminated:
            return
        if self.failure is None:
            self.failure = reason
        self._terminal()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _guarded(self, body):
        try:
            yield from body
        except Interrupt:
            pass  # killed: terminal handling below
        except GpuOutOfMemoryError as exc:
            # MPS kills the offending process only (paper section 4.5).
            self.failure = f"OOM: {exc}"
            self.container.record_fault(self.proc, self.failure)
            self.proc.kill("OOM")
        except ProcessKilledError:
            pass
        if self._preempting:
            # Preemption killed the process, not the task: the PREEMPTED
            # machine state survives for a later restore.
            self._preempting = False
            return
        self._terminal()

    def _restore_loop(self):
        """Reload the GPU context from the snapshot, then rejoin the loop."""
        policy = self.spec.checkpoint
        start = self.sim.now
        self.workload.init_side_task(self.ctx)  # may raise OOM
        reload_s = (policy.restore_cost_s if policy is not None else 0.0) + (
            self.spec.profile.gpu_memory_gb / calibration.H2D_BANDWIDTH_GB_S
        )
        if reload_s > 0:
            yield self.sim.timeout(reload_s)
        self.restore_s += self.sim.now - start
        self.last_paused_at = self.sim.now
        self._notify()
        yield from self._main_loop()

    def _main_loop(self):  # pragma: no cover - overridden
        raise NotImplementedError
        yield  # make this a generator

    def _terminal(self) -> None:
        if self.machine.can_apply(Transition.STOP):
            self.machine.apply(Transition.STOP, self.sim.now)
        if self.on_terminal is not None:
            callback, self.on_terminal = self.on_terminal, None
            callback(self)

    def _notify(self) -> None:
        if self.notify is not None:
            self.notify(self)

    def _next_command(self):
        while not self._commands:
            if self._command_event is None or self._command_event.processed:
                self._command_event = self.sim.event(
                    name=f"{self.spec.name}:cmd"
                )
            yield self._command_event
        return self._commands.popleft()

    def _do_init(self):
        """InitSideTask: allocate and upload the GPU context."""
        start = self.sim.now
        self.workload.init_side_task(self.ctx)  # may raise OOM
        transfer_s = (
            self.spec.profile.gpu_memory_gb / calibration.H2D_BANDWIDTH_GB_S
        )
        if transfer_s > 0:
            yield self.sim.timeout(transfer_s)
        self.machine.apply(Transition.INIT, self.sim.now)
        self.last_paused_at = self.sim.now
        self.init_s += self.sim.now - start
        self._notify()

    def _stop_cleanly(self):
        self.workload.stop_side_task(self.ctx)
        if self.machine.can_apply(Transition.STOP):
            self.machine.apply(Transition.STOP, self.sim.now)


class IterativeRuntime(SideTaskRuntime):
    """The iterative interface: step loop with the program-directed gate."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if not isinstance(self.workload, IterativeSideTask):
            raise TypeError(
                f"{self.workload.name} is not an IterativeSideTask"
            )

    def _main_loop(self):
        while True:
            command = yield from self._next_command()
            if command.kind is CommandKind.INIT:
                if self.machine.can_apply(Transition.INIT):
                    yield from self._do_init()
            elif command.kind is CommandKind.START:
                if self.machine.can_apply(Transition.START):
                    self.machine.apply(Transition.START, self.sim.now)
                    # Interface dispatch + CUDA context reactivation before
                    # the first step of this bubble can launch.
                    resume = calibration.TASK_RESUME_LATENCY_S
                    if resume > 0:
                        yield self.sim.timeout(resume)
                        self.overhead_s += resume
                    stop = yield from self._running_loop(command.bubble_end)
                    if stop:
                        break
            elif command.kind is CommandKind.PAUSE:
                # Already paused (e.g. duplicate RPC): refresh the timestamp.
                self.last_paused_at = self.sim.now
            elif command.kind is CommandKind.STOP:
                break
        self._stop_cleanly()

    def _running_loop(self, bubble_end: float | None):
        """Run steps while RUNNING; returns True when STOP arrived."""
        step_time = self.spec.profile.step_time_s
        margin = 1.0 + calibration.STEP_FIT_SAFETY_MARGIN
        while self.machine.state is SideTaskState.RUNNING:
            if self._commands:
                command = self._commands.popleft()
                if command.kind is CommandKind.PAUSE:
                    self.machine.apply(Transition.PAUSE, self.sim.now)
                    self.last_paused_at = self.sim.now
                    self._notify()
                    return False
                if command.kind is CommandKind.STOP:
                    return True
                if command.kind is CommandKind.START:
                    bubble_end = command.bubble_end  # refreshed window
                continue
            fits = True
            if bubble_end is not None and step_time is not None:
                fits = self.sim.now + step_time * margin <= bubble_end
            if not fits:
                # Program-directed limit: idle out the bubble's tail.
                wait_start = self.sim.now
                yield from self._wait_for_command_event()
                idle_end = min(self.sim.now, max(bubble_end, wait_start))
                self.insufficient_s += max(0.0, idle_end - wait_start)
                continue
            overhead = calibration.ITERATIVE_STEP_OVERHEAD_S
            if overhead > 0:
                yield self.sim.timeout(overhead)
                self.overhead_s += overhead
            if self.injector is not None and self.injector.step_fails(
                self.spec.name
            ):
                # The step ran but its result is lost; the loop re-runs it.
                fail_start = self.sim.now
                if step_time is not None and step_time > 0:
                    yield self.sim.timeout(step_time)
                self.step_failures += 1
                self.wasted_s += self.sim.now - fail_start
                continue
            self.machine.apply(Transition.RUN_NEXT_STEP, self.sim.now)
            step_start = self.sim.now
            yield from self.workload.run_next_step(self.ctx)
            if self.injector is not None:
                # Straggler window: the step takes factor× its normal time.
                factor = self.injector.slowdown_factor(self.stage, step_start)
                if factor > 1.0:
                    extra = (self.sim.now - step_start) * (factor - 1.0)
                    if extra > 0:
                        yield self.sim.timeout(extra)
                        self.slowdown_s += extra
            self.running_s += self.sim.now - step_start
            if self.workload.is_finished:
                return True
            if self._should_checkpoint():
                yield from self._take_checkpoint()
        return False

    def _should_checkpoint(self) -> bool:
        policy = self.spec.checkpoint
        if policy is None or policy.interval_steps <= 0:
            return False
        if self.machine.state is not SideTaskState.RUNNING:
            return False
        done = self.workload.steps_done - (self._snapshot or {}).get(
            "steps_done", 0
        )
        return done >= policy.interval_steps

    def _take_checkpoint(self):
        policy = self.spec.checkpoint
        self.machine.apply(Transition.CHECKPOINT, self.sim.now)
        start = self.sim.now
        if policy.checkpoint_cost_s > 0:
            yield self.sim.timeout(policy.checkpoint_cost_s)
        self.checkpoint_s += self.sim.now - start
        self._snapshot = self.workload.checkpoint_state()
        self.checkpoints += 1
        # A kill mid-checkpoint lands the machine in STOPPED before this
        # generator resumes; only a still-checkpointing task resumes.
        if self.machine.state is SideTaskState.CHECKPOINTED:
            self.machine.apply(Transition.RESUME, self.sim.now)

    def _wait_for_command_event(self):
        while not self._commands:
            if self._command_event is None or self._command_event.processed:
                self._command_event = self.sim.event(
                    name=f"{self.spec.name}:cmd"
                )
            yield self._command_event


class ImperativeRuntime(SideTaskRuntime):
    """The imperative interface: signals around ``run_gpu_workload``."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if not isinstance(self.workload, ImperativeSideTask):
            raise TypeError(
                f"{self.workload.name} is not an ImperativeSideTask"
            )
        self._body = None

    def restore_on(self, proc, stage: int | None = None) -> None:
        # The old body died with the old process; START attaches a new one.
        self._body = None
        super().restore_on(proc, stage)

    def _main_loop(self):
        while True:
            command = yield from self._next_command()
            if command.kind is CommandKind.INIT:
                if self.machine.can_apply(Transition.INIT):
                    yield from self._do_init()
                    # Hold the process stopped until the first bubble.
                    self.proc.send_signal(Signal.SIGTSTP)
            elif command.kind is CommandKind.START:
                if not self.machine.can_apply(Transition.START):
                    continue
                # SIGCONT handler performs StartSideTask (paper section 4.2).
                yield self.sim.timeout(calibration.SIGNAL_PAUSE_LATENCY_S)
                self.machine.apply(Transition.START, self.sim.now)
                self.proc.send_signal(Signal.SIGCONT)
                if self._body is None:
                    self._body = self.proc.attach(
                        self.sim.process(
                            self._run_body(), name=f"{self.spec.name}:body"
                        )
                    )
            elif command.kind is CommandKind.PAUSE:
                if self.machine.state is SideTaskState.RUNNING:
                    # Signal delivery plus handler latency; in-flight
                    # kernels keep running — the imperative overhead.
                    yield self.sim.timeout(calibration.SIGNAL_PAUSE_LATENCY_S)
                    if self.machine.state is SideTaskState.RUNNING:
                        self.machine.apply(Transition.PAUSE, self.sim.now)
                        self.last_paused_at = self.sim.now
                        self.proc.send_signal(Signal.SIGTSTP)
                        self._notify()
            elif command.kind is CommandKind.STOP:
                break
        if self._body is not None and self._body.alive:
            self.proc.kill("stopped")
        else:
            self._stop_cleanly()

    def _run_body(self):
        try:
            yield from self.workload.run_gpu_workload(self.ctx)
        except (Interrupt, ProcessKilledError):
            return
        except GpuOutOfMemoryError as exc:
            self.failure = f"OOM: {exc}"
            self.container.record_fault(self.proc, self.failure)
            self.proc.kill("OOM")
            self._terminal()
