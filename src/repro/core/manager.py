"""The side-task manager: Algorithms 1 and 2 of the paper.

**Algorithm 1** (``submit``): filter workers by available GPU memory, pick
the least-loaded, otherwise reject the task.

**Algorithm 2** (``_sweep``): for every worker — if its current bubble has
ended, pause the current task and clear the bubble; adopt a newly reported
bubble; if no current task, take the oldest from the queue; initiate
``InitSideTask`` for CREATED tasks and ``StartSideTask`` (with the bubble's
expected end time, feeding the program-directed limit) for PAUSED ones.

The paper's manager runs this as a polling loop; polling a 2 ms loop in a
discrete-event simulation would add millions of no-op events, so the sweep
here is *event-driven*: it runs whenever something it reads changes (a
bubble report, a bubble's expected end, a task transition, a submission),
plus a coarse heartbeat. The decisions taken are identical.

The manager also schedules the **framework-enforced** checks: after
initiating a pause it waits the grace period and, if the task's
``last_paused_at`` was not refreshed, instructs the worker to SIGKILL the
process (section 4.5). ``InitSideTask`` is protected the same way.
"""

from __future__ import annotations

import typing

from repro import calibration
from repro.core.policies import AssignmentPolicy, least_loaded_policy
from repro.core.rpc import RpcChannel
from repro.core.runtime import Command, CommandKind, SideTaskRuntime
from repro.core.states import SideTaskState, Transition
from repro.core.task_spec import TaskSpec
from repro.core.worker import ManagedBubble, SideTaskWorker
from repro.errors import TaskRejectedError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class SideTaskManager:
    """Coordinates workers, bubbles, and side-task state transitions."""

    def __init__(
        self,
        sim: "Engine",
        workers: list[SideTaskWorker],
        policy: AssignmentPolicy = least_loaded_policy,
        rpc_latency_s: float = calibration.RPC_LATENCY_S,
        grace_period_s: float = calibration.GRACE_PERIOD_S,
    ):
        self.sim = sim
        self.workers = list(workers)
        self.policy = policy
        self.grace_period_s = grace_period_s
        self.rpc = RpcChannel(sim, "manager", latency_s=rpc_latency_s)
        self.rejections: list[tuple[str, str]] = []
        #: called with each task runtime after it reaches a terminal state
        #: (the serving frontend uses this to re-dispatch queued requests)
        self.terminal_listeners: list[
            typing.Callable[[SideTaskRuntime], None]
        ] = []
        #: called when serving capacity returns (a crashed worker
        #: restarts) — re-queued requests may be dispatchable again
        self.capacity_listeners: list[typing.Callable[[], None]] = []
        #: per-runtime command the manager sent and has not seen take effect
        self._pending: dict[int, CommandKind] = {}
        #: PREEMPTED tasks parked until a worker can restore them
        self.preempted: list[SideTaskRuntime] = []
        self._sweep_scheduled = False

    # ------------------------------------------------------------------
    # Algorithm 1: task submission
    # ------------------------------------------------------------------
    def eligible_workers(self, gpu_memory_gb: float) -> list[SideTaskWorker]:
        """Algorithm 1 line 5: workers with *strictly* more unreserved
        bubble memory than the task needs. The single definition of
        memory eligibility — the middleware and the serving frontend
        consult it too."""
        return [
            worker for worker in self.workers
            if not worker.crashed and worker.available_gb > gpu_memory_gb
        ]

    def submit(self, spec: TaskSpec, interface: str = "iterative",
               queue_depth: int = 0) -> SideTaskWorker:
        """Assign ``spec`` to a worker or raise :class:`TaskRejectedError`.

        ``queue_depth`` is informational: how many requests the caller
        already has waiting (the serving frontend's admission queue; 0
        for the batch path), attached to the rejection so operators can
        tell "nothing fits" apart from "nothing fits *and* the backlog
        is growing".
        """
        eligible = self.eligible_workers(spec.profile.gpu_memory_gb)
        selected = self.policy(eligible, spec)
        if selected is None:
            policy_name = getattr(self.policy, "__name__", repr(self.policy))
            most_free = max(
                (worker.available_gb for worker in self.workers), default=0.0
            )
            reason = (
                f"no worker has more than {spec.profile.gpu_memory_gb:.2f} GB "
                f"of bubble memory available (policy={policy_name}, "
                f"{len(eligible)}/{len(self.workers)} workers eligible, "
                f"max free {most_free:.2f} GB, queue depth {queue_depth})"
            )
            self.rejections.append((spec.name, reason))
            raise TaskRejectedError(
                f"{spec.name} rejected: {reason}",
                task_name=spec.name,
                policy=policy_name,
                queue_depth=queue_depth,
                eligible_workers=len(eligible),
            )
        runtime = selected.add_task(
            spec, interface, on_terminal=self._on_task_terminal
        )
        runtime.notify = self.notify_transition
        self._wake()
        return selected

    # ------------------------------------------------------------------
    # bubble reports from the instrumented training system
    # ------------------------------------------------------------------
    def add_bubble(self, bubble: ManagedBubble) -> None:
        """Step 5 of Figure 3: a bubble report arrives (already RPC-delayed)."""
        worker = self.workers[bubble.stage]
        worker.enqueue_bubble(bubble)
        if bubble.expected_end is not None:
            # Wake exactly when the manager believes the bubble ends.
            delay = max(0.0, bubble.expected_end - self.sim.now)
            timeout = self.sim.timeout(delay)
            timeout.callbacks.append(lambda _ev: self._wake())
        self._wake()

    def bubble_ended(self, stage: int, now: float) -> None:
        """The training system observed the bubble's actual end."""
        worker = self.workers[stage]
        if worker.current_bubble is not None:
            worker.current_bubble.reported_end = now
        for bubble in worker.bubble_inbox:
            if bubble.reported_end is None:
                bubble.reported_end = now
                break
        self._wake()

    # ------------------------------------------------------------------
    # Algorithm 2: the management sweep
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        if self._sweep_scheduled:
            return
        self._sweep_scheduled = True
        event = self.sim.timeout(0.0)
        event.callbacks.append(lambda _ev: self._run_sweep())

    def _run_sweep(self) -> None:
        self._sweep_scheduled = False
        self._sweep()

    def _sweep(self) -> None:
        now = self.sim.now
        self._place_preempted()
        # Enforcement timers are created *after* the worker loop so the
        # loop's command casts occupy adjacent heap slots and coalesce
        # into one event per sweep (see RpcChannel.cast). The timers
        # fire a grace period later — far from any same-instant tie —
        # so deferring their creation does not reorder the simulation.
        checks: "list[typing.Callable[[], None]]" = []
        for worker in self.workers:
            if worker.crashed:
                continue
            bubble = worker.current_bubble
            if bubble is not None and bubble.has_ended(now):
                task = worker.current_task
                # A task mid-checkpoint must also be paused: the PAUSE
                # command queues and lands when the checkpoint completes.
                if task is not None and task.state in (
                    SideTaskState.RUNNING, SideTaskState.CHECKPOINTED
                ):
                    self._initiate_pause(worker, task, checks)
                worker.current_bubble = None
            if worker.has_new_bubble():
                worker.update_current_bubble()
            if worker.current_task is None or worker.current_task.machine.terminated:
                if worker.current_task is not None:
                    worker.release(worker.current_task)
                worker.current_task = worker.next_task()
            task = worker.current_task
            if task is None or task.machine.terminated:
                continue
            pending = self._pending.get(id(task))
            if task.state is SideTaskState.CREATED:
                if pending is not CommandKind.INIT:
                    self._initiate_init(worker, task, checks)
            elif task.state in (SideTaskState.PAUSED, SideTaskState.RESUMED):
                if pending in (CommandKind.INIT, CommandKind.PAUSE):
                    self._pending.pop(id(task), None)
                    pending = None
                bubble = worker.current_bubble
                if (
                    bubble is not None
                    and not bubble.has_ended(now)
                    and pending is not CommandKind.START
                ):
                    self._initiate_start(task, bubble)
            elif task.state is SideTaskState.RUNNING:
                if pending is CommandKind.START:
                    self._pending.pop(id(task), None)
        for schedule_check in checks:
            schedule_check()

    # ------------------------------------------------------------------
    # transition initiation + framework-enforced protection
    # ------------------------------------------------------------------
    def _initiate_init(self, worker: SideTaskWorker, task: SideTaskRuntime,
                       checks: "list[typing.Callable[[], None]]") -> None:
        self._pending[id(task)] = CommandKind.INIT
        self.rpc.cast(task.deliver, Command(CommandKind.INIT))
        transfer_s = (
            task.spec.profile.gpu_memory_gb / calibration.H2D_BANDWIDTH_GB_S
        )
        deadline = self.grace_period_s + transfer_s
        checks.append(lambda: self._schedule_init_check(worker, task, deadline))

    def _schedule_init_check(self, worker: SideTaskWorker,
                             task: SideTaskRuntime, deadline: float) -> None:
        check = self.sim.timeout(deadline)
        check.callbacks.append(
            lambda _ev: self._enforce_init(worker, task)
        )

    def _initiate_start(self, task: SideTaskRuntime, bubble: ManagedBubble) -> None:
        self._pending[id(task)] = CommandKind.START
        self.rpc.cast(
            task.deliver,
            Command(CommandKind.START, bubble_end=bubble.end_estimate),
        )

    def _initiate_pause(self, worker: SideTaskWorker, task: SideTaskRuntime,
                        checks: "list[typing.Callable[[], None]]") -> None:
        self._pending[id(task)] = CommandKind.PAUSE
        initiated_at = self.sim.now
        self.rpc.cast(task.deliver, Command(CommandKind.PAUSE))
        checks.append(
            lambda: self._schedule_pause_check(worker, task, initiated_at)
        )

    def _schedule_pause_check(self, worker: SideTaskWorker,
                              task: SideTaskRuntime,
                              initiated_at: float) -> None:
        check = self.sim.timeout(self.grace_period_s)
        check.callbacks.append(
            lambda _ev: self._enforce_pause(worker, task, initiated_at)
        )

    def stop_task(self, task: SideTaskRuntime) -> None:
        """Graceful StopSideTask via RPC."""
        self.rpc.cast(task.deliver, Command(CommandKind.STOP))

    def _enforce_pause(
        self, worker: SideTaskWorker, task: SideTaskRuntime, initiated_at: float
    ) -> None:
        """Kill the task if the pause never took effect (section 4.5)."""
        if not task.alive:
            return
        if task.last_paused_at >= initiated_at:
            return
        if task.state is not SideTaskState.RUNNING:
            return
        worker.kill_task(task, "framework-enforced time limit (pause timeout)")
        self._wake()

    def _enforce_init(self, worker: SideTaskWorker, task: SideTaskRuntime) -> None:
        if not task.alive:
            return
        if task.state is SideTaskState.CREATED:
            worker.kill_task(task, "framework-enforced time limit (init timeout)")
            self._wake()

    # ------------------------------------------------------------------
    # worker crashes (fault-injection layer)
    # ------------------------------------------------------------------
    def crash_worker(self, stage: int,
                     restart_after_s: float | None = None) -> None:
        """Worker ``stage`` dies now; optionally restarts after a delay.

        Every live task on the worker loses its process: checkpointed
        tasks are preempted (parked for a later restore on any eligible
        worker), the rest are killed outright.
        """
        worker = self.workers[stage]
        if worker.crashed:
            return
        worker.crash(self.sim.now)
        reason = f"worker {stage} crashed"
        for task in [t for t in worker.all_tasks if not t.machine.terminated]:
            self._pending.pop(id(task), None)
            if task.spec.checkpoint is not None and task.machine.can_apply(
                Transition.PREEMPT
            ):
                task.preempt(reason)
                if task in worker.task_queue:
                    worker.task_queue.remove(task)
                if worker.current_task is task:
                    worker.current_task = None
                worker.release(task)
                self.preempted.append(task)
            else:
                worker.kill_task(task, reason)
        if restart_after_s is not None:
            timeout = self.sim.timeout(restart_after_s)
            timeout.callbacks.append(
                lambda _ev: self._restart_worker(stage)
            )
        self._wake()

    def _restart_worker(self, stage: int) -> None:
        self.workers[stage].restart(self.sim.now)
        self._wake()
        for listener in self.capacity_listeners:
            listener()

    def _place_preempted(self) -> None:
        """Restore parked tasks wherever Algorithm 1 finds room."""
        if not self.preempted:
            return
        waiting: list[SideTaskRuntime] = []
        for task in self.preempted:
            if task.machine.terminated:
                continue
            eligible = self.eligible_workers(task.spec.profile.gpu_memory_gb)
            selected = self.policy(eligible, task.spec)
            if selected is None:
                waiting.append(task)
                continue
            selected.adopt_restored(task)
        self.preempted = waiting

    # ------------------------------------------------------------------
    def _on_task_terminal(self, task: SideTaskRuntime) -> None:
        self._pending.pop(id(task), None)
        if task in self.preempted:
            self.preempted.remove(task)
        for worker in self.workers:
            if worker.current_task is task:
                worker.current_task = None
            if task in worker.all_tasks:
                worker.release(task)
        for listener in self.terminal_listeners:
            listener(task)
        self._wake()

    def live_tasks(self) -> list[SideTaskRuntime]:
        # A restored task appears in two workers' ledgers; report it once.
        seen: set[int] = set()
        live: list[SideTaskRuntime] = []
        for worker in self.workers:
            for task in worker.all_tasks:
                if not task.machine.terminated and id(task) not in seen:
                    seen.add(id(task))
                    live.append(task)
        return live

    def notify_transition(self, _task: SideTaskRuntime) -> None:
        """Runtimes call this (via middleware wiring) after transitions."""
        self._wake()
