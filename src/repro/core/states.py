"""The side-task life-cycle state machine (paper Figure 4a).

Five states capture the life cycle of a side task "from process creation
to termination", each corresponding to a different hardware footprint:

* ``SUBMITTED`` — profiled and handed to the manager; no process yet;
* ``CREATED`` — the worker created the process; context in host memory
  only;
* ``PAUSED`` — context loaded into GPU memory, waiting for a bubble;
* ``RUNNING`` — executing steps on the GPU during a bubble;
* ``STOPPED`` — all resources released, process terminated.

Six transitions connect them; ``RunNextStep`` is the RUNNING self-loop the
iterative interface executes once per step.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import IllegalTransitionError


class SideTaskState(enum.Enum):
    SUBMITTED = "SUBMITTED"
    CREATED = "CREATED"
    PAUSED = "PAUSED"
    RUNNING = "RUNNING"
    STOPPED = "STOPPED"


class Transition(enum.Enum):
    CREATE = "CreateSideTask"
    INIT = "InitSideTask"
    START = "StartSideTask"
    PAUSE = "PauseSideTask"
    RUN_NEXT_STEP = "RunNextStep"
    STOP = "StopSideTask"


#: (from-state, transition) -> to-state; exactly the arrows of Figure 4(a).
TRANSITION_TABLE: dict[tuple[SideTaskState, Transition], SideTaskState] = {
    (SideTaskState.SUBMITTED, Transition.CREATE): SideTaskState.CREATED,
    (SideTaskState.CREATED, Transition.INIT): SideTaskState.PAUSED,
    (SideTaskState.PAUSED, Transition.START): SideTaskState.RUNNING,
    (SideTaskState.RUNNING, Transition.PAUSE): SideTaskState.PAUSED,
    (SideTaskState.RUNNING, Transition.RUN_NEXT_STEP): SideTaskState.RUNNING,
    (SideTaskState.CREATED, Transition.STOP): SideTaskState.STOPPED,
    (SideTaskState.PAUSED, Transition.STOP): SideTaskState.STOPPED,
    (SideTaskState.RUNNING, Transition.STOP): SideTaskState.STOPPED,
}


def legal_transitions(state: SideTaskState) -> set[Transition]:
    """The transitions permitted from ``state``."""
    return {
        transition
        for (from_state, transition) in TRANSITION_TABLE
        if from_state is state
    }


@dataclasses.dataclass
class StateMachine:
    """Tracks one side task's state with legality checking and history."""

    state: SideTaskState = SideTaskState.SUBMITTED
    history: list[tuple[float, SideTaskState]] = dataclasses.field(
        default_factory=list
    )

    def apply(self, transition: Transition, now: float = 0.0) -> SideTaskState:
        """Apply ``transition``; raises :class:`IllegalTransitionError`."""
        key = (self.state, transition)
        if key not in TRANSITION_TABLE:
            raise IllegalTransitionError(self.state.value, transition.value)
        self.state = TRANSITION_TABLE[key]
        self.history.append((now, self.state))
        return self.state

    def can_apply(self, transition: Transition) -> bool:
        return (self.state, transition) in TRANSITION_TABLE

    @property
    def terminated(self) -> bool:
        return self.state is SideTaskState.STOPPED

    def time_in_state(self, state: SideTaskState, until: float) -> float:
        """Total virtual time spent in ``state`` up to ``until``."""
        total = 0.0
        current = SideTaskState.SUBMITTED
        since = 0.0
        for when, new_state in self.history:
            if current is state:
                total += when - since
            current, since = new_state, when
        if current is state:
            total += until - since
        return total
