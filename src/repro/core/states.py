"""The side-task life-cycle state machine (paper Figure 4a, extended).

Five states capture the life cycle of a side task "from process creation
to termination", each corresponding to a different hardware footprint:

* ``SUBMITTED`` — profiled and handed to the manager; no process yet;
* ``CREATED`` — the worker created the process; context in host memory
  only;
* ``PAUSED`` — context loaded into GPU memory, waiting for a bubble;
* ``RUNNING`` — executing steps on the GPU during a bubble;
* ``STOPPED`` — all resources released, process terminated.

Six transitions connect them; ``RunNextStep`` is the RUNNING self-loop the
iterative interface executes once per step.

The fault-tolerance layer (:mod:`repro.faults`) adds three recovery
states on top of the paper's machine:

* ``CHECKPOINTED`` — the task is persisting a resume point; it returns
  to RUNNING once the checkpoint write completes;
* ``PREEMPTED`` — the task's process is gone (worker crash or eviction)
  but its last checkpoint survives; the task is *resumable*, not dead;
* ``RESUMED`` — restored onto a worker from its checkpoint, waiting for
  a bubble exactly like PAUSED.

``STOPPED`` remains the only terminal state.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.errors import IllegalTransitionError


class SideTaskState(enum.Enum):
    SUBMITTED = "SUBMITTED"
    CREATED = "CREATED"
    PAUSED = "PAUSED"
    RUNNING = "RUNNING"
    STOPPED = "STOPPED"
    # recovery states (fault-tolerance layer)
    CHECKPOINTED = "CHECKPOINTED"
    PREEMPTED = "PREEMPTED"
    RESUMED = "RESUMED"


class Transition(enum.Enum):
    CREATE = "CreateSideTask"
    INIT = "InitSideTask"
    START = "StartSideTask"
    PAUSE = "PauseSideTask"
    RUN_NEXT_STEP = "RunNextStep"
    STOP = "StopSideTask"
    # recovery transitions (fault-tolerance layer)
    CHECKPOINT = "CheckpointSideTask"
    RESUME = "ResumeSideTask"
    PREEMPT = "PreemptSideTask"
    RESTORE = "RestoreSideTask"


#: the paper's six transitions (Figure 4a); the rest belong to the
#: fault-tolerance layer
CORE_TRANSITIONS = (
    Transition.CREATE, Transition.INIT, Transition.START,
    Transition.PAUSE, Transition.RUN_NEXT_STEP, Transition.STOP,
)

#: (from-state, transition) -> to-state; the arrows of Figure 4(a) plus
#: the recovery edges.
TRANSITION_TABLE: dict[tuple[SideTaskState, Transition], SideTaskState] = {
    (SideTaskState.SUBMITTED, Transition.CREATE): SideTaskState.CREATED,
    (SideTaskState.CREATED, Transition.INIT): SideTaskState.PAUSED,
    (SideTaskState.PAUSED, Transition.START): SideTaskState.RUNNING,
    (SideTaskState.RUNNING, Transition.PAUSE): SideTaskState.PAUSED,
    (SideTaskState.RUNNING, Transition.RUN_NEXT_STEP): SideTaskState.RUNNING,
    (SideTaskState.CREATED, Transition.STOP): SideTaskState.STOPPED,
    (SideTaskState.PAUSED, Transition.STOP): SideTaskState.STOPPED,
    (SideTaskState.RUNNING, Transition.STOP): SideTaskState.STOPPED,
    # checkpointing: a RUNNING task persists a resume point, then resumes
    (SideTaskState.RUNNING, Transition.CHECKPOINT): SideTaskState.CHECKPOINTED,
    (SideTaskState.CHECKPOINTED, Transition.RESUME): SideTaskState.RUNNING,
    # preemption: any state with a live process can lose it
    (SideTaskState.CREATED, Transition.PREEMPT): SideTaskState.PREEMPTED,
    (SideTaskState.PAUSED, Transition.PREEMPT): SideTaskState.PREEMPTED,
    (SideTaskState.RUNNING, Transition.PREEMPT): SideTaskState.PREEMPTED,
    (SideTaskState.CHECKPOINTED, Transition.PREEMPT): SideTaskState.PREEMPTED,
    (SideTaskState.RESUMED, Transition.PREEMPT): SideTaskState.PREEMPTED,
    # restore: back onto a worker, then started like a PAUSED task
    (SideTaskState.PREEMPTED, Transition.RESTORE): SideTaskState.RESUMED,
    (SideTaskState.RESUMED, Transition.START): SideTaskState.RUNNING,
    # teardown is reachable from every recovery state
    (SideTaskState.CHECKPOINTED, Transition.STOP): SideTaskState.STOPPED,
    (SideTaskState.PREEMPTED, Transition.STOP): SideTaskState.STOPPED,
    (SideTaskState.RESUMED, Transition.STOP): SideTaskState.STOPPED,
}


def legal_transitions(state: SideTaskState) -> set[Transition]:
    """The transitions permitted from ``state``."""
    return {
        transition
        for (from_state, transition) in TRANSITION_TABLE
        if from_state is state
    }


@dataclasses.dataclass
class StateMachine:
    """Tracks one side task's state with legality checking and history."""

    state: SideTaskState = SideTaskState.SUBMITTED
    history: list[tuple[float, SideTaskState]] = dataclasses.field(
        default_factory=list
    )
    #: owning task's name, embedded in IllegalTransitionError messages
    task_id: str = ""
    #: observability seam: called as ``observer(now, new_state)`` after
    #: each applied transition; None (the default) costs one comparison
    #: per transition — the runtime installs one only when tracing is on
    observer: "typing.Callable[[float, SideTaskState], None] | None" = (
        dataclasses.field(default=None, repr=False, compare=False)
    )

    def apply(self, transition: Transition, now: float = 0.0) -> SideTaskState:
        """Apply ``transition``; raises :class:`IllegalTransitionError`."""
        key = (self.state, transition)
        if key not in TRANSITION_TABLE:
            raise IllegalTransitionError(
                self.state.value, transition.value, task_id=self.task_id
            )
        self.state = TRANSITION_TABLE[key]
        self.history.append((now, self.state))
        if self.observer is not None:
            self.observer(now, self.state)
        return self.state

    def can_apply(self, transition: Transition) -> bool:
        return (self.state, transition) in TRANSITION_TABLE

    @property
    def terminated(self) -> bool:
        return self.state is SideTaskState.STOPPED

    @property
    def resumable(self) -> bool:
        """Preempted with a checkpoint to restore from — not dead."""
        return self.state is SideTaskState.PREEMPTED

    def time_in_state(self, state: SideTaskState, until: float) -> float:
        """Total virtual time spent in ``state`` up to ``until``."""
        total = 0.0
        current = SideTaskState.SUBMITTED
        since = 0.0
        for when, new_state in self.history:
            if current is state:
                total += when - since
            current, since = new_state, when
        if current is state:
            total += until - since
        return total
