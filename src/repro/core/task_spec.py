"""Task specifications and measured performance profiles.

A :class:`TaskProfile` is what the automated profiler (section 4.3)
extracts from a side task: GPU memory consumption and — for iterative
tasks only — the per-step duration. The manager uses the memory figure for
Algorithm 1's placement and the step duration for the program-directed
time limit; imperative tasks have no step duration, which is why they can
only be limited by the framework-enforced mechanism.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.interfaces import ImperativeSideTask, IterativeSideTask
    from repro.faults.checkpoint import CheckpointPolicy

_task_ids = itertools.count()


@dataclasses.dataclass(frozen=True)
class TaskProfile:
    """Measured performance characteristics of a side task."""

    #: GPU memory the task holds once initialized (GB), as measured.
    gpu_memory_gb: float
    #: Median measured RunNextStep duration; None for imperative tasks.
    step_time_s: float | None
    #: Work units per step (from the task's own accounting).
    units_per_step: float = 1.0

    def __post_init__(self):
        if self.gpu_memory_gb < 0:
            raise ValueError(
                f"profiled memory must be >= 0, got {self.gpu_memory_gb}"
            )
        if self.step_time_s is not None and self.step_time_s <= 0:
            raise ValueError(
                f"profiled step time must be positive, got {self.step_time_s}"
            )

    @property
    def is_iterative(self) -> bool:
        return self.step_time_s is not None


@dataclasses.dataclass
class TaskSpec:
    """A side task submitted to the manager: workload + profile."""

    workload: "IterativeSideTask | ImperativeSideTask"
    profile: TaskProfile
    name: str = ""
    #: MPS memory limit to apply; defaults to the profiled memory plus
    #: 25% headroom (the worker clamps it to the bubble memory).
    memory_limit_gb: float | None = None
    submitted_at: float = 0.0
    #: latency class the serving layer assigned ("" = no SLO tracking)
    slo_class: str = ""
    #: absolute completion deadline in sim time; None = best effort
    deadline_s: float | None = None
    #: recovery policy: None = a crash kills the task outright; a policy
    #: makes it preemptible/restorable (interval 0 = restart from scratch)
    checkpoint: "CheckpointPolicy | None" = None
    task_id: int = dataclasses.field(default_factory=lambda: next(_task_ids))

    def __post_init__(self):
        if not self.name:
            self.name = f"{self.workload.name}-{self.task_id}"

    @property
    def requested_limit_gb(self) -> float:
        if self.memory_limit_gb is not None:
            return self.memory_limit_gb
        return self.profile.gpu_memory_gb * 1.25

    @property
    def effective_deadline(self) -> float:
        """Deadline for ordering purposes; best-effort sorts last."""
        return self.deadline_s if self.deadline_s is not None else float("inf")
