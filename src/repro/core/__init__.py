"""The FreeRide middleware — the paper's primary contribution.

* :mod:`repro.core.states` — the five-state life-cycle state machine
  (paper Figure 4a);
* :mod:`repro.core.interfaces` — the **iterative** and **imperative**
  side-task programming interfaces (sections 4.2 and 5);
* :mod:`repro.core.runtime` — the state machine made executable,
  including the program-directed time limit and signal-based pausing;
* :mod:`repro.core.profiler` — the automated side-task profiler
  (section 4.3);
* :mod:`repro.core.manager` / :mod:`repro.core.worker` — Algorithms 1
  and 2, plus the framework-enforced kill mechanism (sections 4.4, 4.5);
* :mod:`repro.core.middleware` — the :class:`FreeRide` facade wiring
  instrumented pipeline training to the side-task manager (Figure 3).
"""

from repro.core.interfaces import (
    ImperativeSideTask,
    IterativeSideTask,
    SideTaskContext,
)
from repro.core.manager import SideTaskManager
from repro.core.middleware import FreeRide, FreeRideResult, TaskReport
from repro.core.policies import (
    AssignmentPolicy,
    NAMED_POLICIES,
    best_fit_policy,
    first_fit_policy,
    least_loaded_policy,
    worst_fit_policy,
)
from repro.core.profiler import profile_side_task
from repro.core.rpc import RpcChannel
from repro.core.runtime import (
    Command,
    CommandKind,
    ImperativeRuntime,
    IterativeRuntime,
    SideTaskRuntime,
)
from repro.core.states import (
    SideTaskState,
    StateMachine,
    Transition,
    legal_transitions,
)
from repro.core.task_spec import TaskProfile, TaskSpec
from repro.core.worker import ManagedBubble, SideTaskWorker

__all__ = [
    "AssignmentPolicy",
    "Command",
    "CommandKind",
    "FreeRide",
    "FreeRideResult",
    "ImperativeRuntime",
    "ImperativeSideTask",
    "IterativeRuntime",
    "IterativeSideTask",
    "ManagedBubble",
    "NAMED_POLICIES",
    "RpcChannel",
    "SideTaskContext",
    "SideTaskManager",
    "SideTaskRuntime",
    "SideTaskState",
    "SideTaskWorker",
    "StateMachine",
    "TaskProfile",
    "TaskReport",
    "TaskSpec",
    "Transition",
    "best_fit_policy",
    "first_fit_policy",
    "least_loaded_policy",
    "legal_transitions",
    "profile_side_task",
    "worst_fit_policy",
]
