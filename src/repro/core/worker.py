"""The per-GPU side-task worker.

One worker runs next to each GPU (paper Figure 5). It keeps the metadata
Algorithm 2 consumes — ``GPUMem``, ``TaskQueue``, ``CurrentTask``,
``CurrentBubble`` — creates side-task processes inside a container with an
MPS memory limit, and executes the kill decisions of the framework-enforced
mechanism on the manager's behalf.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.core.runtime import ImperativeRuntime, IterativeRuntime, SideTaskRuntime
from repro.core.task_spec import TaskSpec
from repro.errors import SideTaskError
from repro.gpu.container import Container
from repro.gpu.kernel import Interference, Priority
from repro.gpu.process import GPUProcess
from repro.sim.rng import RandomStreams

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.device import SimGPU
    from repro.gpu.mps import MpsControl
    from repro.sim.engine import Engine


@dataclasses.dataclass
class ManagedBubble:
    """A bubble as the manager tracks it (from an instrumentation report)."""

    stage: int
    start: float
    #: start + profiled duration; the manager pauses the task at this time
    expected_end: float | None
    available_gb: float
    reported_end: float | None = None

    def has_ended(self, now: float) -> bool:
        if self.reported_end is not None and now >= self.reported_end:
            return True
        return self.expected_end is not None and now >= self.expected_end - 1e-9

    @property
    def end_estimate(self) -> float | None:
        return self.expected_end


class SideTaskWorker:
    """Creates, tracks, and (when necessary) kills side-task processes."""

    def __init__(
        self,
        sim: "Engine",
        gpu: "SimGPU",
        stage: int,
        side_task_memory_gb: float,
        mps: "MpsControl | None" = None,
        rng: RandomStreams | None = None,
        name: str = "",
    ):
        self.sim = sim
        self.gpu = gpu
        self.stage = stage
        self.name = name or f"worker{stage}"
        #: GPU memory bubbles on this stage can offer (Algorithm 1's GPUMem)
        self.side_task_memory_gb = side_task_memory_gb
        self.mps = mps
        self.rng = rng or RandomStreams(stage)
        self.container = Container(self.name)
        self.task_queue: collections.deque[SideTaskRuntime] = collections.deque()
        self.current_task: SideTaskRuntime | None = None
        self.current_bubble: ManagedBubble | None = None
        self.bubble_inbox: collections.deque[ManagedBubble] = collections.deque()
        self.all_tasks: list[SideTaskRuntime] = []
        self.reserved_gb = 0.0
        self.kills: list[tuple[str, str]] = []
        #: fault-injection hooks (None in healthy runs — fully inert)
        self.injector = None
        self.crashed = False
        #: [crashed_at, restarted_at | None] per crash, for availability
        self.crash_log: list[list[float | None]] = []

    # ------------------------------------------------------------------
    # Algorithm 1 support
    # ------------------------------------------------------------------
    @property
    def available_gb(self) -> float:
        """Bubble memory not yet reserved by assigned tasks."""
        return self.side_task_memory_gb - self.reserved_gb

    def get_task_num(self) -> int:
        """Live tasks assigned to this worker (queued + current).

        A preempted task counts nowhere (it holds no reservation), and a
        task restored onto another worker counts only there, even though
        it stays in this worker's ``all_tasks`` for reporting.
        """
        return sum(
            1 for task in self.all_tasks
            if not task.machine.terminated
            and not task.machine.resumable
            and (task.reserved_worker is None or task.reserved_worker is self)
        )

    def add_task(
        self,
        spec: TaskSpec,
        interface: str,
        on_terminal: typing.Callable[[SideTaskRuntime], None] | None = None,
    ) -> SideTaskRuntime:
        """CreateSideTask: build the process in a container, apply the MPS
        memory limit, load the host context, and enqueue."""
        if interface not in ("iterative", "imperative"):
            raise SideTaskError(f"unknown interface {interface!r}")
        limit = min(spec.requested_limit_gb, self.side_task_memory_gb)
        proc = GPUProcess(
            self.sim,
            self.gpu,
            name=f"{self.name}:{spec.name}",
            priority=Priority.SIDE,
            interference=Interference(
                mps_on_higher=spec.workload.perf.mps_interference,
                mps_on_lower=0.3,
                time_slice=spec.workload.perf.naive_interference,
            ),
            memory_limit_gb=limit,
        )
        if self.mps is not None:
            self.mps.set_memory_limit(proc, limit)
        self.container.adopt(proc)
        runtime_cls = (
            IterativeRuntime if interface == "iterative" else ImperativeRuntime
        )
        runtime = runtime_cls(
            self.sim,
            spec,
            proc,
            self.container,
            self.rng.spawn(spec.name),
            on_terminal=on_terminal,
        )
        runtime.create()
        runtime.stage = self.stage
        runtime.injector = self.injector
        runtime.reserved_worker = self
        self.reserved_gb += spec.profile.gpu_memory_gb
        self.task_queue.append(runtime)
        self.all_tasks.append(runtime)
        return runtime

    def adopt_restored(self, runtime: SideTaskRuntime) -> SideTaskRuntime:
        """Give a PREEMPTED task a fresh process on this worker.

        The mirror of :meth:`add_task` for the recovery path: same
        container, MPS limit, and reservation accounting, but the
        existing runtime resumes from its snapshot instead of a new one
        being created.
        """
        spec = runtime.spec
        limit = min(spec.requested_limit_gb, self.side_task_memory_gb)
        proc = GPUProcess(
            self.sim,
            self.gpu,
            name=f"{self.name}:{spec.name}:r{runtime.preemptions}",
            priority=Priority.SIDE,
            interference=Interference(
                mps_on_higher=spec.workload.perf.mps_interference,
                mps_on_lower=0.3,
                time_slice=spec.workload.perf.naive_interference,
            ),
            memory_limit_gb=limit,
        )
        if self.mps is not None:
            self.mps.set_memory_limit(proc, limit)
        self.container.adopt(proc)
        runtime.restore_on(proc, stage=self.stage)
        runtime.injector = self.injector
        runtime.reserved_worker = self
        self.reserved_gb += spec.profile.gpu_memory_gb
        self.task_queue.append(runtime)
        if runtime not in self.all_tasks:
            self.all_tasks.append(runtime)
        return runtime

    # ------------------------------------------------------------------
    # crash/restart (fault-injection layer)
    # ------------------------------------------------------------------
    def crash(self, now: float) -> None:
        """The worker process dies: it stops tracking bubbles entirely.

        Task teardown (preempt or kill) is the manager's decision and
        happens in :meth:`SideTaskManager.crash_worker`.
        """
        self.crashed = True
        self.crash_log.append([now, None])
        self.current_bubble = None
        self.bubble_inbox.clear()

    def restart(self, now: float) -> None:
        self.crashed = False
        if self.crash_log and self.crash_log[-1][1] is None:
            self.crash_log[-1][1] = now

    # ------------------------------------------------------------------
    # Algorithm 2 support
    # ------------------------------------------------------------------
    def enqueue_bubble(self, bubble: ManagedBubble) -> None:
        self.bubble_inbox.append(bubble)

    def has_new_bubble(self) -> bool:
        return bool(self.bubble_inbox)

    def update_current_bubble(self) -> None:
        """Adopt the next unexpired bubble from the inbox."""
        now = self.sim.now
        while self.bubble_inbox:
            bubble = self.bubble_inbox.popleft()
            if not bubble.has_ended(now):
                self.current_bubble = bubble
                return
        # everything in the inbox was stale; keep whatever we had

    def next_task(self) -> SideTaskRuntime | None:
        """Pop the oldest live task from the queue (Algorithm 2 line 14)."""
        while self.task_queue:
            runtime = self.task_queue.popleft()
            if not runtime.machine.terminated:
                return runtime
        return None

    # ------------------------------------------------------------------
    # framework-enforced kills (paper section 4.5)
    # ------------------------------------------------------------------
    def kill_task(self, runtime: SideTaskRuntime, reason: str) -> None:
        self.kills.append((runtime.spec.name, reason))
        runtime.kill(reason)

    def release(self, runtime: SideTaskRuntime) -> None:
        """Return a finished task's memory reservation (idempotent).

        The reservation is returned to the worker that holds it, which
        after a cross-worker restore may not be the caller.
        """
        if runtime.released:
            return
        runtime.released = True
        owner = runtime.reserved_worker or self
        owner.reserved_gb = max(
            0.0, owner.reserved_gb - runtime.spec.profile.gpu_memory_gb
        )

    def stop(self) -> None:
        """Tear down the worker's container and everything in it."""
        self.container.stop()
