"""The automated side-task profiler (paper section 4.3).

"FreeRide profiles it with the automated profiling tool for its
performance characteristics of GPU memory consumption and per-step
duration." The tool runs the side task alone on a scratch simulated GPU,
*measures* the memory it allocates and how long its steps take, and emits
a :class:`~repro.core.task_spec.TaskProfile`. For imperative tasks only
memory is profiled — "since the side task is not step-wise, the automated
profiling tool does not measure the per-step duration."

Profiling consumes the probe instance (its counters advance); callers
submit a fresh workload instance for serving, which is what
:meth:`repro.core.middleware.FreeRide.submit` does with its factory
argument.
"""

from __future__ import annotations

import statistics
import typing

from repro.core.interfaces import (
    ImperativeSideTask,
    IterativeSideTask,
    SideTaskContext,
)
from repro.core.task_spec import TaskProfile
from repro.errors import SideTaskError
from repro.gpu.device import SimGPU
from repro.gpu.kernel import Priority
from repro.gpu.process import GPUProcess
from repro.gpu.sharing import SharingMode
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


def profile_side_task(
    workload: "IterativeSideTask | ImperativeSideTask",
    interface: str = "iterative",
    steps: int = 12,
    seed: int = 0,
    gpu_memory_gb: float = 48.0,
) -> TaskProfile:
    """Measure ``workload`` on a dedicated profiling GPU."""
    if interface not in ("iterative", "imperative"):
        raise SideTaskError(f"unknown interface {interface!r}")
    if steps < 1:
        raise SideTaskError(f"need at least one profiling step, got {steps}")
    sim = Engine()
    gpu = SimGPU(sim, "profiler-gpu", memory_gb=gpu_memory_gb,
                 sharing=SharingMode.EXCLUSIVE)
    proc = GPUProcess(sim, gpu, name=f"profile:{workload.name}",
                      priority=Priority.SIDE)
    ctx = SideTaskContext(sim, proc, RandomStreams(seed), workload.name)
    outcome: dict[str, typing.Any] = {}

    def probe():
        workload.create_side_task()
        workload.init_side_task(ctx)
        outcome["memory_gb"] = proc.memory_gb
        if interface == "iterative":
            if not isinstance(workload, IterativeSideTask):
                raise SideTaskError(
                    f"{workload.name} does not implement the iterative interface"
                )
            durations: list[float] = []
            units_before = workload.units_done
            for _ in range(steps):
                begin = sim.now
                yield from workload.run_next_step(ctx)
                durations.append(sim.now - begin)
            outcome["step_time_s"] = statistics.median(durations)
            outcome["units_per_step"] = (
                (workload.units_done - units_before) / steps
            )
        workload.stop_side_task(ctx)
        if False:  # pragma: no cover - keep this a generator for 0-step paths
            yield

    process = sim.process(probe(), name=f"profile:{workload.name}")
    sim.run(until=process)
    return TaskProfile(
        gpu_memory_gb=outcome["memory_gb"],
        step_time_s=outcome.get("step_time_s"),
        units_per_step=outcome.get("units_per_step", 1.0),
    )
