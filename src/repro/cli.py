"""Command-line entry point: regenerate any table or figure.

Examples::

    freeride fig1
    freeride table2 --epochs 16
    freeride serve --seed 7
    python -m repro.cli fig9
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="freeride",
        description="FreeRide reproduction: regenerate the paper's "
                    "tables and figures on the simulated substrate.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                        help="which table/figure to regenerate")
    parser.add_argument("--epochs", type=int, default=None,
                        help="training epochs per run (default: the "
                             "experiment's own default)")
    parser.add_argument("--seed", type=int, default=None,
                        help="root seed for experiments that accept one "
                             "(e.g. serve; default: the experiment's own)")
    args = parser.parse_args(argv)
    module = EXPERIMENTS[args.experiment]
    accepted = inspect.signature(module.run).parameters
    kwargs = {}
    for flag in ("epochs", "seed"):
        value = getattr(args, flag)
        if value is None:
            continue
        if flag not in accepted:
            print(f"warning: {args.experiment} does not take --{flag}; "
                  "ignoring", file=sys.stderr)
            continue
        kwargs[flag] = value
    data = module.run(**kwargs)
    print(module.render(data))
    return 0


if __name__ == "__main__":
    sys.exit(main())
