"""Command-line entry point: regenerate any table or figure.

Examples::

    freeride fig1
    freeride table2 --epochs 16
    freeride fig7
    python -m repro.cli fig9
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="freeride",
        description="FreeRide reproduction: regenerate the paper's "
                    "tables and figures on the simulated substrate.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                        help="which table/figure to regenerate")
    parser.add_argument("--epochs", type=int, default=None,
                        help="training epochs per run (default: the "
                             "experiment's own default)")
    args = parser.parse_args(argv)
    module = EXPERIMENTS[args.experiment]
    kwargs = {}
    if args.epochs is not None and "epochs" in module.run.__code__.co_varnames:
        kwargs["epochs"] = args.epochs
    data = module.run(**kwargs)
    print(module.render(data))
    return 0


if __name__ == "__main__":
    sys.exit(main())
